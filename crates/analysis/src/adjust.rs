//! Feedback-based graph adjustment (paper §3.3).
//!
//! "We first identify critical left nodes that were involved in the most
//! failure sets. […] For the target left node, we find the right node with
//! the highest failure rate and then change the connectivity of the target
//! left node to include a different right node that was not involved in the
//! failures. This opens the closed set that caused the failure and removes
//! the failure set provided that the substitution did not tie one failure
//! set to another. After the adjustment has been completed, the adjusted
//! graph is re-tested."
//!
//! [`adjust_graph`] runs that loop to a target first-failure level,
//! reverting any rewiring that makes things worse and trying the next
//! candidate. Success is not guaranteed — "the success of the algorithm is
//! dependent on the graph" — so the outcome reports whether the target was
//! achieved or the search stalled.

use crate::critical::{check_involvement_counts, critical_sets, involvement_counts};
use tornado_graph::{Graph, NodeId};
use tornado_sim::worst_case::{search_level, KLevelResult};

/// Configuration for the adjustment loop.
#[derive(Clone, Copy, Debug)]
pub struct AdjustConfig {
    /// Desired first-failure level: the adjusted graph should survive every
    /// loss of `target_first_failure − 1` nodes. The paper achieves 5.
    pub target_first_failure: usize,
    /// Maximum accepted rewirings before giving up.
    pub max_iterations: usize,
    /// Cap on failure sets collected per search level (memory bound).
    pub collect_cap: usize,
    /// How many `(target, replacement)` candidates to try per iteration
    /// before declaring a stall.
    pub candidate_budget: usize,
}

impl Default for AdjustConfig {
    fn default() -> Self {
        Self {
            target_first_failure: 5,
            max_iterations: 64,
            collect_cap: 1024,
            candidate_budget: 64,
        }
    }
}

/// One accepted rewiring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdjustmentStep {
    /// The critical left node whose edge was moved.
    pub left: NodeId,
    /// The implicated check it was detached from.
    pub from_check: NodeId,
    /// The uninvolved check it was attached to.
    pub to_check: NodeId,
    /// Failure count at the first-failure level before the move.
    pub failures_before: u64,
    /// Failure count at the same level after the move.
    pub failures_after: u64,
}

/// Result of the adjustment loop.
#[derive(Clone, Debug)]
pub struct AdjustOutcome {
    /// The (possibly improved) graph.
    pub graph: Graph,
    /// Accepted rewirings, in order.
    pub steps: Vec<AdjustmentStep>,
    /// First-failure level of the final graph when searched up to
    /// `target_first_failure − 1` (`None` means the target was achieved).
    pub first_failure_below_target: Option<usize>,
}

impl AdjustOutcome {
    /// Whether the graph now survives every loss below the target level.
    pub fn achieved(&self) -> bool {
        self.first_failure_below_target.is_none()
    }
}

/// Finds the current first failure at or below `max_k`; returns the level
/// result for it.
fn first_failing_level(graph: &Graph, max_k: usize, collect_cap: usize) -> Option<KLevelResult> {
    for k in 1..=max_k {
        let level = search_level(graph, k, collect_cap);
        if level.failures > 0 {
            return Some(level);
        }
    }
    None
}

/// Runs the §3.3 adjustment loop on `graph`.
pub fn adjust_graph(graph: &Graph, cfg: &AdjustConfig) -> AdjustOutcome {
    assert!(cfg.target_first_failure >= 2);
    let below = cfg.target_first_failure - 1;
    let mut current = graph.clone();
    let mut steps = Vec::new();

    for _ in 0..cfg.max_iterations {
        let Some(level) = first_failing_level(&current, below, cfg.collect_cap) else {
            return AdjustOutcome {
                graph: current,
                steps,
                first_failure_below_target: None,
            };
        };
        match try_one_adjustment(&current, &level, cfg) {
            Some((next, step)) => {
                steps.push(step);
                current = next;
            }
            None => {
                // Stalled: no candidate improves this level.
                return AdjustOutcome {
                    graph: current,
                    steps,
                    first_failure_below_target: Some(level.k),
                };
            }
        }
    }
    let residual = first_failing_level(&current, below, 1).map(|l| l.k);
    AdjustOutcome {
        graph: current,
        steps,
        first_failure_below_target: residual,
    }
}

/// Attempts one accepted rewiring against the failing level. Returns the
/// improved graph and the step, or `None` if every candidate within budget
/// made things equal-or-worse.
fn try_one_adjustment(
    graph: &Graph,
    level: &KLevelResult,
    cfg: &AdjustConfig,
) -> Option<(Graph, AdjustmentStep)> {
    let sets = critical_sets(graph, &level.failure_sets);
    let node_counts = involvement_counts(&sets);
    let check_counts = check_involvement_counts(&sets);
    let involved_checks: std::collections::BTreeSet<NodeId> =
        check_counts.iter().map(|&(c, _)| c).collect();

    let mut budget = cfg.candidate_budget;
    // Targets: most-involved left nodes first (the paper's heuristic).
    for &(target, _) in &node_counts {
        // The target's checks, most-implicated first.
        let mut target_checks: Vec<NodeId> = graph.checks_of(target).to_vec();
        target_checks.sort_by_key(|c| {
            std::cmp::Reverse(
                check_counts
                    .iter()
                    .find(|&&(cc, _)| cc == *c)
                    .map(|&(_, n)| n)
                    .unwrap_or(0),
            )
        });
        for &from_check in &target_checks {
            // Replacements: checks of the same level, uninvolved in any
            // failure, not already wired to the target, and deeper than it.
            let level_of = graph.level_of(from_check).clone();
            for to_check in level_of.nodes() {
                if to_check == from_check
                    || involved_checks.contains(&to_check)
                    || to_check <= target
                    || graph.check_neighbors(to_check).contains(&target)
                {
                    continue;
                }
                if budget == 0 {
                    return None;
                }
                budget -= 1;

                let mut builder = graph.to_builder();
                if !builder.move_edge(target, from_check, to_check) {
                    continue;
                }
                let Ok(candidate) = builder.build() else {
                    continue;
                };
                // Accept only strict improvement with nothing worse below.
                let mut worse_below = false;
                for k in 1..level.k {
                    if search_level(&candidate, k, 1).failures > 0 {
                        worse_below = true;
                        break;
                    }
                }
                if worse_below {
                    continue;
                }
                let after = search_level(&candidate, level.k, 1).failures;
                if after < level.failures {
                    return Some((
                        candidate,
                        AdjustmentStep {
                            left: target,
                            from_check,
                            to_check,
                            failures_before: level.failures,
                            failures_after: after,
                        },
                    ));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_gen::{TornadoGenerator, TornadoParams};
    use tornado_graph::GraphBuilder;
    use tornado_sim::{worst_case_search, WorstCaseConfig};

    /// A small graph with a planted 2-node defect that one rewiring fixes:
    /// data 0..6, checks 6..12; nodes 0,1 share checks {6,7} exactly.
    fn planted_defect() -> Graph {
        let mut b = GraphBuilder::new(6);
        b.begin_level("c");
        b.add_check(&[0, 1]); // 6
        b.add_check(&[0, 1]); // 7
        b.add_check(&[2, 3]); // 8
        b.add_check(&[3, 4]); // 9
        b.add_check(&[4, 5]); // 10
        b.add_check(&[5, 2]); // 11
        b.build().unwrap()
    }

    #[test]
    fn repairs_a_planted_pair_defect() {
        let g = planted_defect();
        assert_eq!(
            worst_case_search(&g, &WorstCaseConfig { max_k: 2, ..Default::default() })
                .first_failure(),
            Some(2)
        );
        let outcome = adjust_graph(&g, &AdjustConfig {
            target_first_failure: 3,
            max_iterations: 16,
            collect_cap: 64,
            candidate_budget: 128,
        });
        assert!(outcome.achieved(), "steps: {:?}", outcome.steps);
        assert!(!outcome.steps.is_empty());
        let report = worst_case_search(
            &outcome.graph,
            &WorstCaseConfig { max_k: 2, ..Default::default() },
        );
        assert_eq!(report.first_failure(), None, "no failures at k ≤ 2");
        outcome.graph.validate().unwrap();
    }

    #[test]
    fn already_good_graph_is_untouched() {
        let g = planted_defect();
        let outcome = adjust_graph(&g, &AdjustConfig {
            target_first_failure: 2, // only requires surviving k = 1
            ..Default::default()
        });
        assert!(outcome.achieved());
        assert!(outcome.steps.is_empty());
        assert_eq!(outcome.graph, g);
    }

    #[test]
    fn impossible_target_reports_stall() {
        // A mirrored pair system cannot exceed first failure 2 by rewiring
        // within its single level of single-neighbour checks.
        let g = tornado_gen::mirror::generate_mirror(4).unwrap();
        let outcome = adjust_graph(&g, &AdjustConfig {
            target_first_failure: 3,
            max_iterations: 8,
            collect_cap: 64,
            candidate_budget: 64,
        });
        assert!(!outcome.achieved());
        assert_eq!(outcome.first_failure_below_target, Some(2));
    }

    #[test]
    fn adjusts_a_small_tornado_graph_upward() {
        // 32-node graphs keep debug-mode search cheap: C(32,3) = 4960.
        let params = TornadoParams {
            num_data: 16,
            ..TornadoParams::default()
        };
        // 32-node graphs rarely clear the size-3 screen (the paper also
        // reports small graphs are the hard case); screen at 2 and let the
        // adjustment loop do the rest.
        let (g, _) = TornadoGenerator::new(params)
            .generate_screened(3, 256, 2)
            .unwrap();
        let before = worst_case_search(&g, &WorstCaseConfig { max_k: 3, ..Default::default() })
            .first_failure();
        let outcome = adjust_graph(&g, &AdjustConfig {
            target_first_failure: 4,
            max_iterations: 32,
            collect_cap: 256,
            candidate_budget: 256,
        });
        let after = worst_case_search(
            &outcome.graph,
            &WorstCaseConfig { max_k: 3, ..Default::default() },
        )
        .first_failure();
        // Either the target was achieved, or the graph is at least no worse.
        match (before, after) {
            (Some(b), Some(a)) => assert!(a >= b, "regressed from {b} to {a}"),
            (Some(_), None) => {}
            (None, None) => {}
            (None, Some(a)) => panic!("clean graph regressed to first failure {a}"),
        }
        if outcome.achieved() {
            assert_eq!(after, None);
        }
        outcome.graph.validate().unwrap();
    }

    #[test]
    fn steps_record_strict_improvement() {
        let g = planted_defect();
        let outcome = adjust_graph(&g, &AdjustConfig {
            target_first_failure: 3,
            max_iterations: 16,
            collect_cap: 64,
            candidate_budget: 128,
        });
        for s in &outcome.steps {
            assert!(s.failures_after < s.failures_before, "step {s:?}");
        }
    }
}
