//! Critical node sets (paper §3.2–3.3).
//!
//! A failing erasure pattern from the worst-case search is turned into the
//! paper's working view: the *left nodes* that stayed unrecoverable and,
//! for each, the closed set of *right nodes* (checks) it depends on —
//! "written in the form 'left node [ right nodes ]'".

use tornado_codec::ErasureDecoder;
use tornado_graph::{Graph, NodeId};

/// One failing pattern analysed into its critical structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalSet {
    /// The erasure pattern that failed (node indices, sorted).
    pub erasure: Vec<usize>,
    /// Nodes unrecoverable at fixpoint (data and checks).
    pub lost_nodes: Vec<NodeId>,
    /// Data nodes unrecoverable at fixpoint.
    pub lost_data: Vec<NodeId>,
    /// The "left node [ right nodes ]" view: each lost node paired with the
    /// checks that use it (all of which are blocked for it).
    pub dependencies: Vec<(NodeId, Vec<NodeId>)>,
}

impl CriticalSet {
    /// Every check node implicated in this failure: the union of the
    /// dependency right-node sets.
    pub fn implicated_checks(&self) -> Vec<NodeId> {
        let mut checks: Vec<NodeId> = self
            .dependencies
            .iter()
            .flat_map(|(_, rs)| rs.iter().copied())
            .collect();
        checks.sort_unstable();
        checks.dedup();
        checks
    }

    /// Renders the paper's textual form, one line per lost left node.
    pub fn render(&self) -> String {
        self.dependencies
            .iter()
            .map(|(l, rs)| {
                let rs: Vec<String> = rs.iter().map(|r| r.to_string()).collect();
                format!("{l} [ {} ]", rs.join(", "))
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Analyses each failing pattern into a [`CriticalSet`].
pub fn critical_sets(graph: &Graph, patterns: &[Vec<usize>]) -> Vec<CriticalSet> {
    let mut dec = ErasureDecoder::new(graph);
    patterns
        .iter()
        .map(|pattern| {
            let detail = dec.decode_detailed(pattern);
            let dependencies = detail
                .lost_nodes
                .iter()
                .map(|&l| (l, graph.checks_of(l).to_vec()))
                .collect();
            let mut erasure = pattern.clone();
            erasure.sort_unstable();
            CriticalSet {
                erasure,
                lost_nodes: detail.lost_nodes,
                lost_data: detail.lost_data,
                dependencies,
            }
        })
        .collect()
}

/// Counts, over a batch of critical sets, how often each node appears among
/// the lost nodes — §3.3's "identify critical left nodes that were involved
/// in the most failure sets". Returns `(node, count)` sorted by descending
/// count (ties by ascending id).
pub fn involvement_counts(sets: &[CriticalSet]) -> Vec<(NodeId, usize)> {
    let mut counts: std::collections::BTreeMap<NodeId, usize> = Default::default();
    for s in sets {
        for &l in &s.lost_nodes {
            *counts.entry(l).or_insert(0) += 1;
        }
    }
    let mut v: Vec<(NodeId, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Counts how often each check is implicated across critical sets.
pub fn check_involvement_counts(sets: &[CriticalSet]) -> Vec<(NodeId, usize)> {
    let mut counts: std::collections::BTreeMap<NodeId, usize> = Default::default();
    for s in sets {
        for c in s.implicated_checks() {
            *counts.entry(c).or_insert(0) += 1;
        }
    }
    let mut v: Vec<(NodeId, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_graph::GraphBuilder;

    /// Data 0..4; checks 4,5 = {0,1} twice (closed pair), 6 = {2,3}, 7 = {2}.
    fn defective() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.begin_level("c");
        b.add_check(&[0, 1]);
        b.add_check(&[0, 1]);
        b.add_check(&[2, 3]);
        b.add_check(&[2]);
        b.build().unwrap()
    }

    #[test]
    fn analysis_reports_lost_structure() {
        let g = defective();
        let sets = critical_sets(&g, &[vec![0, 1]]);
        assert_eq!(sets.len(), 1);
        let s = &sets[0];
        assert_eq!(s.lost_data, vec![0, 1]);
        assert_eq!(s.lost_nodes, vec![0, 1]);
        assert_eq!(s.dependencies, vec![(0, vec![4, 5]), (1, vec![4, 5])]);
        assert_eq!(s.implicated_checks(), vec![4, 5]);
    }

    #[test]
    fn render_matches_paper_format() {
        let g = defective();
        let sets = critical_sets(&g, &[vec![0, 1]]);
        assert_eq!(sets[0].render(), "0 [ 4, 5 ]\n1 [ 4, 5 ]");
    }

    #[test]
    fn involvement_counts_rank_by_frequency() {
        let g = defective();
        // Two failing patterns both losing {0,1}; one also kills 3's path.
        let sets = critical_sets(&g, &[vec![0, 1], vec![0, 1, 6, 3]]);
        let counts = involvement_counts(&sets);
        assert_eq!(counts[0].1, 2);
        assert!(counts.iter().any(|&(n, c)| n == 3 && c == 1));
        let check_counts = check_involvement_counts(&sets);
        assert_eq!(check_counts[0], (4, 2));
    }

    #[test]
    fn patterns_that_lose_checks_report_them() {
        let g = defective();
        // Lose 2 and its mirror 7 and sibling 3: data 2,3 unrecoverable and
        // check 6 is blocked… 6 itself was not erased so it stays available.
        let sets = critical_sets(&g, &[vec![2, 3, 7]]);
        assert_eq!(sets[0].lost_data, vec![2, 3]);
        assert_eq!(sets[0].lost_nodes, vec![2, 3, 7]);
    }
}
