//! Conditional reliability for a *degraded* fleet (the live §5.1 model).
//!
//! Table 5 composes the conditional failure profile with the binomial
//! device-failure model for a healthy fleet. A running store is rarely in
//! that state: some devices are already offline. This module rebuilds the
//! same Eq. 2–3 machinery *conditioned on the current erasure pattern* —
//! the profile's row `j` becomes `P(fail | missing ∪ j further random
//! losses)` and the binomial sums over the devices still standing — plus
//! the per-stripe **risk margin** (minimum additional losses until
//! unrecoverable) and an MTTDL-style view of the composed probability.
//!
//! Determinism matters here exactly as in `tornado_sim::monte_carlo`: the
//! live health surface and any offline recomputation must agree bit for
//! bit when given the same `(trials, seed, max_k)` parameters. With no
//! devices missing the sampling path *is* [`sample_level`], so the live
//! healthy-fleet number equals the offline
//! [`crate::reliability::system_failure_probability`] exactly.

use tornado_codec::ErasureDecoder;
use tornado_graph::Graph;
use tornado_numerics::{binomial_u128, compose_failure_probability};
use tornado_sim::monte_carlo::sample_level;
use tornado_sim::FailureProfile;

/// Hours in a year (the AFR's implicit period), Julian convention.
pub const HOURS_PER_YEAR: f64 = 8_766.0;

/// Parameters for building a conditional failure profile.
#[derive(Clone, Debug)]
pub struct ConditionalConfig {
    /// Monte-Carlo trials per additional-loss count `j` (when the row is
    /// not exactly enumerable).
    pub trials_per_k: u64,
    /// Master seed: per-batch reseeding makes rows reproducible
    /// regardless of scheduling, mirroring `tornado_sim::monte_carlo`.
    pub seed: u64,
    /// Largest additional-loss count measured. Rows past it inherit the
    /// last measured fraction through the profile's monotone completion,
    /// which is conservative (failure probability never decreases in the
    /// loss count), so a small `max_k` still yields a sound upper tail.
    pub max_k: usize,
    /// Rows whose full enumeration `C(remaining, j)` is at most this are
    /// enumerated exactly instead of sampled.
    pub exact_cap: u64,
}

impl Default for ConditionalConfig {
    fn default() -> Self {
        Self {
            trials_per_k: 4_000,
            seed: 0x7042_6F72_6E61_646F,
            max_k: 8,
            exact_cap: 2_000,
        }
    }
}

/// Builds `P(fail | j additional losses)` for `j = 0..=max_k`, with the
/// nodes in `missing` *already* erased in every trial.
///
/// The returned profile covers the `n − |missing|` remaining nodes, so it
/// composes with the binomial model over the devices still standing.
/// Row 0 is the exact decodability of the current pattern; later rows are
/// exact enumerations when small enough, deterministic samples otherwise.
/// With `missing` empty the sampled rows delegate to
/// [`sample_level`], so the result is identical to
/// `monte_carlo_profile` over the same `j` range, seed, and trial count.
///
/// # Panics
/// Panics if any missing index is out of range or repeated.
pub fn conditional_failure_profile(
    graph: &Graph,
    missing: &[usize],
    cfg: &ConditionalConfig,
) -> FailureProfile {
    let n = graph.num_nodes();
    let mut seen = vec![false; n];
    for &d in missing {
        assert!(d < n, "missing node {d} out of range ({n} nodes)");
        assert!(!seen[d], "missing node {d} repeated");
        seen[d] = true;
    }
    let n_rem = n - missing.len();
    let mut profile = FailureProfile::new(n_rem);
    let mut dec = ErasureDecoder::new(graph);
    if !missing.is_empty() {
        // Row 0: the current pattern itself, decided exactly.
        let fails = !dec.decode(missing);
        profile.record(0, 1, fails as u64, true);
    }
    let remaining: Vec<usize> = (0..n).filter(|&i| !seen[i]).collect();
    for j in 1..=cfg.max_k.min(n_rem) {
        if missing.is_empty() {
            // Healthy fleet: the same stream `monte_carlo_profile` draws,
            // so live and offline estimates agree exactly.
            let failures = sample_level(graph, j, cfg.trials_per_k, cfg.seed);
            profile.record(j, cfg.trials_per_k, failures, false);
            continue;
        }
        let combos = binomial_u128(n_rem as u64, j as u64);
        if combos <= cfg.exact_cap as u128 {
            let mut failures = 0u64;
            let mut scratch = missing.to_vec();
            for_each_combination(remaining.len(), j, |idxs| {
                scratch.truncate(missing.len());
                scratch.extend(idxs.iter().map(|&i| remaining[i]));
                if !dec.decode(&scratch) {
                    failures += 1;
                }
                true
            });
            profile.record(j, combos as u64, failures, true);
        } else {
            let failures =
                sample_conditional(&mut dec, missing, &remaining, j, cfg.trials_per_k, cfg.seed);
            profile.record(j, cfg.trials_per_k, failures, false);
        }
    }
    profile
}

/// Composes a conditional profile with the binomial failure model over the
/// remaining devices: the live analogue of
/// [`crate::reliability::system_failure_probability`]. `p_device` is the
/// per-device failure probability over the modelled horizon (see
/// [`horizon_failure_probability`]).
pub fn conditional_failure_probability(
    graph: &Graph,
    missing: &[usize],
    p_device: f64,
    cfg: &ConditionalConfig,
) -> f64 {
    let profile = conditional_failure_profile(graph, missing, cfg);
    compose_failure_probability(profile.num_nodes() as u64, p_device, &profile.conditional_vec())
}

/// Per-device failure probability over `horizon_hours`, from an annual
/// failure rate: `1 − (1 − afr)^(horizon/year)` (independent exponential
/// failures, the paper's no-repair convention).
pub fn horizon_failure_probability(afr: f64, horizon_hours: f64) -> f64 {
    assert!((0.0..=1.0).contains(&afr), "afr {afr} is not a probability");
    assert!(horizon_hours >= 0.0);
    1.0 - (1.0 - afr).powf(horizon_hours / HOURS_PER_YEAR)
}

/// MTTDL-style summary of a composed loss probability: the mean time to
/// data loss implied by `P(loss over horizon) = p_loss` under a constant
/// hazard rate. `0` losses → infinite MTTDL; certainty → 0.
pub fn mttdl_hours(p_loss: f64, horizon_hours: f64) -> f64 {
    assert!(horizon_hours > 0.0);
    if p_loss <= 0.0 {
        return f64::INFINITY;
    }
    let p = p_loss.min(1.0);
    // P(loss by t) = 1 − e^(−t/MTTDL)  ⇒  MTTDL = −t / ln(1 − p).
    -horizon_hours / (1.0 - p).ln()
}

/// Minimum number of *additional* node losses (beyond `missing`) that
/// makes the graph unrecoverable, searched exhaustively up to `cap`:
///
/// * `0` — the current pattern is already undecodable;
/// * `1..=cap` — an exact margin (some set of that size fails, none
///   smaller does);
/// * `cap + 1` — every pattern with up to `cap` further losses decodes;
///   the true margin is at least this value.
///
/// # Panics
/// Panics if any missing index is out of range or repeated.
pub fn risk_margin(graph: &Graph, missing: &[usize], cap: usize) -> usize {
    let n = graph.num_nodes();
    let mut seen = vec![false; n];
    for &d in missing {
        assert!(d < n, "missing node {d} out of range ({n} nodes)");
        assert!(!seen[d], "missing node {d} repeated");
        seen[d] = true;
    }
    let mut dec = ErasureDecoder::new(graph);
    if !dec.decode(missing) {
        return 0;
    }
    let remaining: Vec<usize> = (0..n).filter(|&i| !seen[i]).collect();
    let mut scratch = missing.to_vec();
    for j in 1..=cap.min(remaining.len()) {
        let mut found = false;
        for_each_combination(remaining.len(), j, |idxs| {
            scratch.truncate(missing.len());
            scratch.extend(idxs.iter().map(|&i| remaining[i]));
            if !dec.decode(&scratch) {
                found = true;
                return false;
            }
            true
        });
        if found {
            return j;
        }
    }
    cap.min(remaining.len()) + 1
}

/// Deterministic batched sampling of `P(fail | missing ∪ j random further
/// losses)`: the `monte_carlo` batching discipline (fixed-size batches,
/// each reseeded from `(seed, j, batch)`) applied to partial Fisher–Yates
/// draws over the remaining nodes.
fn sample_conditional(
    dec: &mut ErasureDecoder,
    missing: &[usize],
    remaining: &[usize],
    j: usize,
    trials: u64,
    seed: u64,
) -> u64 {
    const BATCH: u64 = 4096;
    let r = remaining.len();
    let mut perm: Vec<usize> = Vec::new();
    let mut scratch = missing.to_vec();
    let mut failures = 0u64;
    for batch in 0..trials.div_ceil(BATCH) {
        let mut state = mix(seed, j as u64, batch);
        perm.clear();
        perm.extend(0..r);
        let count = BATCH.min(trials - batch * BATCH);
        for _ in 0..count {
            for i in 0..j {
                // Lemire-style bounded draw from the SplitMix64 stream —
                // bias is ≤ 2⁻⁵⁶ for these ranges, far below sampling noise.
                state = splitmix(state);
                let span = (r - i) as u64;
                let idx = i + ((state as u128 * span as u128) >> 64) as usize;
                perm.swap(i, idx);
            }
            scratch.truncate(missing.len());
            scratch.extend(perm[..j].iter().map(|&i| remaining[i]));
            if !dec.decode(&scratch) {
                failures += 1;
            }
        }
    }
    failures
}

/// SplitMix64-style seed mixing, the same constants the simulator uses so
/// nearby `(seed, j, batch)` triples give unrelated streams.
fn mix(seed: u64, k: u64, batch: u64) -> u64 {
    splitmix(seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ batch.wrapping_mul(0xBF58_476D_1CE4_E5B9))
}

fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Visits every `j`-combination of `0..n` in lexicographic order. The
/// visitor returns `false` to stop early.
fn for_each_combination(n: usize, j: usize, mut visit: impl FnMut(&[usize]) -> bool) {
    if j > n {
        return;
    }
    let mut idxs: Vec<usize> = (0..j).collect();
    loop {
        if !visit(&idxs) {
            return;
        }
        // Advance the rightmost index that still has room.
        let mut i = j;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idxs[i] != i + n - j {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idxs[i] += 1;
        for t in i + 1..j {
            idxs[t] = idxs[t - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::system_failure_probability;
    use tornado_gen::mirror::generate_mirror;
    use tornado_gen::regular::generate_regular;
    use tornado_sim::{monte_carlo_profile, MonteCarloConfig};

    #[test]
    fn combinations_visit_all_and_stop_early() {
        let mut seen = Vec::new();
        for_each_combination(4, 2, |c| {
            seen.push(c.to_vec());
            true
        });
        assert_eq!(
            seen,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        let mut count = 0;
        for_each_combination(5, 3, |_| {
            count += 1;
            count < 4
        });
        assert_eq!(count, 4, "visitor stops on false");
        for_each_combination(2, 3, |_| panic!("j > n visits nothing"));
        let mut empties = 0;
        for_each_combination(3, 0, |c| {
            assert!(c.is_empty());
            empties += 1;
            true
        });
        assert_eq!(empties, 1, "the empty combination once");
    }

    #[test]
    fn healthy_fleet_matches_offline_model_exactly() {
        // The tentpole acceptance bar: with zero observed failures the
        // live estimate IS the offline §5.1 number — same sampling stream,
        // same composition, bit-for-bit.
        let g = generate_regular(24, 3, 7).unwrap();
        let cfg = ConditionalConfig {
            trials_per_k: 3_000,
            seed: 99,
            max_k: 6,
            exact_cap: 0, // force the sample_level delegation path
        };
        let offline = monte_carlo_profile(
            &g,
            &MonteCarloConfig {
                trials_per_k: cfg.trials_per_k,
                seed: cfg.seed,
                ks: Some((1..=cfg.max_k).collect()),
            },
        );
        let afr = 0.01;
        let live = conditional_failure_probability(&g, &[], afr, &cfg);
        assert_eq!(live, system_failure_probability(&offline, afr));
    }

    #[test]
    fn degraded_fleet_is_strictly_riskier() {
        let g = generate_mirror(8).unwrap(); // 16 nodes, pairs (i, i+8)
        let cfg = ConditionalConfig {
            trials_per_k: 2_000,
            seed: 5,
            max_k: 6,
            exact_cap: 2_000,
        };
        let afr = 0.01;
        let healthy = conditional_failure_probability(&g, &[], afr, &cfg);
        let degraded = conditional_failure_probability(&g, &[0, 3], afr, &cfg);
        assert!(
            degraded > healthy,
            "degraded {degraded} must exceed healthy {healthy}"
        );
    }

    #[test]
    fn conditional_profile_rows_are_exact_for_small_counts() {
        // Mirror of 4 pairs, node 0 missing: decoding fails exactly when
        // node 4 (its mirror) also goes. Row 1 enumerates C(7,1) = 7
        // patterns, one fatal.
        let g = generate_mirror(4).unwrap();
        let p = conditional_failure_profile(&g, &[0], &ConditionalConfig::default());
        assert_eq!(p.num_nodes(), 7);
        let e0 = p.entry(0);
        assert!(e0.exact);
        assert_eq!(e0.failures, 0, "one missing node always decodes");
        let e1 = p.entry(1);
        assert!(e1.exact);
        assert_eq!((e1.trials, e1.failures), (7, 1));
        // Row 2: C(7,2) = 21 patterns; fatal iff node 4 is in the pair
        // (6 ways) or the pair is itself a mirror pair ({1,5},{2,6},{3,7}).
        let e2 = p.entry(2);
        assert!(e2.exact);
        assert_eq!((e2.trials, e2.failures), (21, 9));
    }

    #[test]
    fn undecodable_pattern_composes_to_near_certain_loss() {
        let g = generate_mirror(4).unwrap();
        let cfg = ConditionalConfig::default();
        // A whole mirror pair gone: row 0 fails, so P(loss) = 1 regardless
        // of further failures.
        let p = conditional_failure_probability(&g, &[0, 4], 0.01, &cfg);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn risk_margin_matches_brute_force_on_small_graphs() {
        let graphs = [generate_mirror(4).unwrap(), generate_regular(12, 3, 1).unwrap()];
        let missing_sets: [&[usize]; 4] = [&[], &[0], &[0, 3], &[1, 2, 5]];
        for g in &graphs {
            for missing in missing_sets {
                let cap = 3;
                let got = risk_margin(g, missing, cap);
                let want = brute_force_margin(g, missing, cap);
                assert_eq!(got, want, "graph n={} missing {missing:?}", g.num_nodes());
            }
        }
    }

    /// Independent oracle: test every subset of the remaining nodes up to
    /// `cap` by bitmask enumeration (no shared combination walker).
    fn brute_force_margin(g: &Graph, missing: &[usize], cap: usize) -> usize {
        let n = g.num_nodes();
        let mut dec = ErasureDecoder::new(g);
        if !dec.decode(missing) {
            return 0;
        }
        let remaining: Vec<usize> =
            (0..n).filter(|i| !missing.contains(i)).collect();
        let mut best = cap.min(remaining.len()) + 1;
        for mask in 1u64..(1 << remaining.len()) {
            let size = mask.count_ones() as usize;
            if size > cap || size >= best {
                continue;
            }
            let mut pattern = missing.to_vec();
            for (i, &node) in remaining.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    pattern.push(node);
                }
            }
            if !dec.decode(&pattern) {
                best = size;
            }
        }
        best
    }

    #[test]
    fn risk_margin_degenerate_cases() {
        let g = generate_mirror(4).unwrap();
        // A dead mirror pair is already unrecoverable.
        assert_eq!(risk_margin(&g, &[2, 6], 3), 0);
        // Healthy mirror: the closest failure is any one full pair, two
        // losses away.
        assert_eq!(risk_margin(&g, &[], 3), 2);
        // One node down: its mirror is a single loss away.
        assert_eq!(risk_margin(&g, &[5], 3), 1);
        // Cap smaller than the true margin reports cap + 1.
        assert_eq!(risk_margin(&g, &[], 1), 2);
    }

    #[test]
    fn horizon_probability_and_mttdl_behave() {
        assert_eq!(horizon_failure_probability(0.0, 1_000.0), 0.0);
        let year = horizon_failure_probability(0.01, HOURS_PER_YEAR);
        assert!((year - 0.01).abs() < 1e-12);
        let month = horizon_failure_probability(0.01, HOURS_PER_YEAR / 12.0);
        assert!(month > 0.0 && month < year);

        assert_eq!(mttdl_hours(0.0, 100.0), f64::INFINITY);
        let m = mttdl_hours(1e-6, 8_766.0);
        // Small p: MTTDL ≈ horizon / p.
        assert!((m - 8_766.0 / 1e-6).abs() / m < 1e-3, "got {m}");
        assert_eq!(mttdl_hours(1.0, 10.0), 0.0);
    }

    #[test]
    fn sampled_conditional_rows_are_deterministic() {
        let g = generate_regular(24, 3, 3).unwrap();
        let cfg = ConditionalConfig {
            trials_per_k: 2_000,
            seed: 42,
            max_k: 5,
            exact_cap: 0, // force sampling even for small rows
        };
        let a = conditional_failure_profile(&g, &[1, 7], &cfg);
        let b = conditional_failure_profile(&g, &[1, 7], &cfg);
        assert_eq!(a, b);
        let c = conditional_failure_profile(
            &g,
            &[1, 7],
            &ConditionalConfig { seed: 43, ..cfg },
        );
        assert_ne!(a, c, "different seed, different stream");
    }
}
