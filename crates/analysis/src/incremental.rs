//! Incremental-retrieval overhead — the literature's metric (paper §5.2).
//!
//! The paper is explicit that its fixed-count methodology "is not overhead
//! as described in the literature. To determine the overhead of a graph, a
//! testing system would start with a certain number of online nodes and
//! retrieve nodes until the graph can be reconstructed." That is Plank &
//! Thomason's measurement, which reported LDPC overheads below 1.2 and
//! which §6 plans to study. This module implements it: draw a uniformly
//! random retrieval order, fetch one block at a time, and record how many
//! blocks were in hand when reconstruction first succeeded.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tornado_codec::ErasureDecoder;
use tornado_graph::Graph;

/// Distribution summary of the incremental-retrieval experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct IncrementalOverhead {
    /// Trials run.
    pub trials: u64,
    /// Mean blocks retrieved at first successful reconstruction.
    pub mean_blocks: f64,
    /// Mean divided by the number of data blocks (Plank's overhead; 1.0 is
    /// MDS-optimal).
    pub mean_overhead: f64,
    /// Minimum observed.
    pub min_blocks: usize,
    /// Maximum observed.
    pub max_blocks: usize,
    /// Histogram: `histogram[i]` counts trials that finished after
    /// retrieving exactly `i` blocks (index 0 unused).
    pub histogram: Vec<u64>,
}

/// Runs `trials` random-order incremental retrievals against `graph`.
/// Deterministic in `seed`.
pub fn incremental_overhead(graph: &Graph, trials: u64, seed: u64) -> IncrementalOverhead {
    let n = graph.num_nodes();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut dec = ErasureDecoder::new(graph);
    let mut order: Vec<usize> = (0..n).collect();
    let mut histogram = vec![0u64; n + 1];
    let mut total: u64 = 0;
    let (mut min_b, mut max_b) = (usize::MAX, 0usize);
    for _ in 0..trials {
        order.shuffle(&mut rng);
        // Retrieved prefix grows; the rest counts as missing. Binary search
        // on the prefix length would re-decode O(log n) times; a linear
        // scan from the information-theoretic minimum k is simpler and the
        // decoder is O(edges), so the cost stays trivial at n = 96.
        let k = graph.num_data();
        let mut got = k;
        loop {
            debug_assert!(got <= n, "full retrieval always reconstructs");
            let missing = &order[got..];
            if dec.decode(missing) {
                break;
            }
            got += 1;
        }
        histogram[got] += 1;
        total += got as u64;
        min_b = min_b.min(got);
        max_b = max_b.max(got);
    }
    let mean_blocks = total as f64 / trials as f64;
    IncrementalOverhead {
        trials,
        mean_blocks,
        mean_overhead: mean_blocks / graph.num_data() as f64,
        min_blocks: min_b,
        max_blocks: max_b,
        histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_gen::mirror::generate_mirror;
    use tornado_graph::GraphBuilder;

    #[test]
    fn single_pair_needs_one_block() {
        // 1 data + 1 mirror: either block alone reconstructs.
        let g = generate_mirror(1).unwrap();
        let r = incremental_overhead(&g, 200, 1);
        assert_eq!(r.mean_blocks, 1.0);
        assert_eq!(r.mean_overhead, 1.0);
        assert_eq!((r.min_blocks, r.max_blocks), (1, 1));
        assert_eq!(r.histogram[1], 200);
    }

    #[test]
    fn mirrors_need_one_copy_of_each() {
        // 4 pairs: reconstruction needs ≥ 4 blocks covering all pairs; the
        // coupon-collector effect pushes the mean above 4.
        let g = generate_mirror(4).unwrap();
        let r = incremental_overhead(&g, 4_000, 2);
        assert!(r.min_blocks >= 4);
        assert!(r.mean_blocks > 4.2, "mean {}", r.mean_blocks);
        assert!(r.max_blocks <= 8);
        let total: u64 = r.histogram.iter().sum();
        assert_eq!(total, 4_000);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generate_mirror(4).unwrap();
        let a = incremental_overhead(&g, 500, 7);
        let b = incremental_overhead(&g, 500, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn bounds_are_consistent() {
        // A small cascade: mean sits between the information-theoretic
        // minimum (k) and everything (n).
        let mut b = GraphBuilder::new(4);
        b.begin_level("c1");
        b.add_check(&[0, 1]);
        b.add_check(&[2, 3]);
        b.begin_level("c2");
        b.add_check(&[4, 5]);
        let g = b.build().unwrap();
        let r = incremental_overhead(&g, 2_000, 3);
        assert!(r.min_blocks >= 4);
        assert!(r.max_blocks <= 7);
        assert!(r.mean_blocks >= 4.0 && r.mean_blocks <= 7.0);
        assert!(r.mean_overhead >= 1.0);
    }
}
