//! Reliability modelling, critical-set analysis, and the feedback graph
//! adjustment procedure.
//!
//! * [`reliability`] — composes a measured conditional failure profile with
//!   the binomial device-failure model (paper §5.1, Eqs. 2–3, Table 5).
//! * [`critical`] — turns the worst-case search's failing erasure patterns
//!   into *critical left-node sets* with their closed right-node
//!   dependencies, the paper's "left node [ right nodes ]" view (§3.2–3.3).
//! * [`adjust`] — the §3.3 feedback loop: pick the left node implicated in
//!   the most failure sets, rewire its most-implicated check edge to a
//!   check outside the failures, re-test, repeat. Takes screened graphs
//!   from first failure at 4 to first failure at 5.
//! * [`overhead`] — reconstruction-efficiency metrics (§5.2, Table 6).
//! * [`incremental`] — the literature's retrieve-until-decodable overhead
//!   (Plank's metric, which §5.2 contrasts with and §6 plans to study).
//! * [`lifetime`] — time-stepped reliability with proactive scrub/repair,
//!   extending Table 5's no-repair model toward the §6 scrubber design.
//! * [`stopping`] — exact minimum blocking sets by certificate-guided
//!   branch and bound, an independent cross-check of the brute-force
//!   worst-case search.
//! * [`health`] — the live variant of [`reliability`]: failure profiles and
//!   P(loss) conditioned on the fleet's *current* erasure pattern, risk
//!   margins (additional losses until unrecoverable), and MTTDL summaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjust;
pub mod critical;
pub mod health;
pub mod incremental;
pub mod lifetime;
pub mod overhead;
pub mod reliability;
pub mod stopping;

pub use adjust::{adjust_graph, AdjustConfig, AdjustOutcome, AdjustmentStep};
pub use critical::{critical_sets, CriticalSet};
pub use health::{
    conditional_failure_probability, conditional_failure_profile, horizon_failure_probability,
    mttdl_hours, risk_margin, ConditionalConfig,
};
pub use incremental::{incremental_overhead, IncrementalOverhead};
pub use lifetime::{simulate_graph_lifetime, simulate_lifetime, LifetimeConfig, LifetimeReport};
pub use stopping::{min_blocking_exact, minimum_distance};
pub use overhead::{overhead_report, OverheadReport};
pub use reliability::{system_failure_probability, ReliabilityRow};
