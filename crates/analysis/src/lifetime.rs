//! Time-stepped reliability simulation with proactive repair.
//!
//! Table 5 assumes "no repair": every failure in the year accumulates. The
//! paper's §6 proposes the opposite regime — a scrubber that "proactively
//! monitors … and reconstructs missing blocks before a stripe approaches
//! the initial failure point". This module quantifies what that buys:
//! device failure times are drawn from an exponential model calibrated to
//! the AFR, scrubs at fixed intervals replace failed devices and re-encode
//! their blocks (possible whenever the stripe is still decodable), and
//! data is lost only if the failures *within a single scrub interval*
//! already defeat the code.
//!
//! With zero scrubs the simulation reduces to the paper's Eq. 2–3
//! composition, which the tests verify.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for the lifetime simulation.
#[derive(Clone, Copy, Debug)]
pub struct LifetimeConfig {
    /// Devices in the system.
    pub devices: usize,
    /// Annual failure rate of one device (paper: 0.01).
    pub afr: f64,
    /// Scrub/repair passes during the horizon (`0` = the paper's no-repair
    /// model).
    pub scrubs: usize,
    /// Horizon in years.
    pub years: f64,
    /// Monte-Carlo trials.
    pub trials: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for LifetimeConfig {
    fn default() -> Self {
        Self {
            devices: 96,
            afr: 0.01,
            scrubs: 0,
            years: 1.0,
            trials: 100_000,
            seed: 0x11FE,
        }
    }
}

/// Result of a lifetime simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LifetimeReport {
    /// Trials simulated.
    pub trials: u64,
    /// Trials that lost data.
    pub losses: u64,
}

impl LifetimeReport {
    /// Estimated probability of data loss over the horizon.
    pub fn loss_probability(&self) -> f64 {
        self.losses as f64 / self.trials as f64
    }
}

/// Simulates the horizon. `fails(pattern)` must return whether the erasure
/// pattern (device indices) loses data — pass a decoder closure for graph
/// codes or a group-tolerance closure for RAID.
pub fn simulate_lifetime<F: FnMut(&[usize]) -> bool>(
    cfg: &LifetimeConfig,
    mut fails: F,
) -> LifetimeReport {
    assert!(cfg.devices > 0 && cfg.trials > 0);
    assert!((0.0..1.0).contains(&cfg.afr), "AFR must be in [0, 1)");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    // Exponential rate so that P(fail within 1 year) = afr. ln(1) is -0.0,
    // which would flip failure times to -inf — clamp to a true zero.
    let rate = (-(1.0 - cfg.afr).ln()).max(0.0);
    if rate == 0.0 {
        return LifetimeReport {
            trials: cfg.trials,
            losses: 0,
        };
    }
    let intervals = cfg.scrubs + 1;
    let dt = cfg.years / intervals as f64;
    let mut losses = 0u64;
    let mut interval_failures: Vec<Vec<usize>> = vec![Vec::new(); intervals];
    for _ in 0..cfg.trials {
        for v in interval_failures.iter_mut() {
            v.clear();
        }
        for d in 0..cfg.devices {
            // Inverse-CDF sample of the exponential failure time.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let t = -u.ln() / rate;
            if t < cfg.years {
                let slot = ((t / dt) as usize).min(intervals - 1);
                interval_failures[slot].push(d);
            }
        }
        // A scrub fully restores the system iff the stripe is decodable at
        // the boundary; failures therefore only accumulate within an
        // interval. (If an interval's failures already lose data, no later
        // scrub can help.)
        if interval_failures.iter().any(|f| !f.is_empty() && fails(f)) {
            losses += 1;
        }
    }
    LifetimeReport {
        trials: cfg.trials,
        losses,
    }
}

/// Convenience adapter: lifetime of a graph-coded system (device `i` holds
/// node `i`).
pub fn simulate_graph_lifetime(
    graph: &tornado_graph::Graph,
    cfg: &LifetimeConfig,
) -> LifetimeReport {
    assert_eq!(cfg.devices, graph.num_nodes(), "one device per node");
    let mut dec = tornado_codec::ErasureDecoder::new(graph);
    simulate_lifetime(cfg, |pattern| !dec.decode(pattern))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_gen::mirror::generate_mirror;
    use tornado_numerics::compose_failure_probability;
    use tornado_sim::mirror::mirrored_profile;

    #[test]
    fn no_repair_matches_the_eq3_composition() {
        // Mirrored 8-pair system, no repair: the simulated annual loss
        // probability must match the analytic composition.
        let g = generate_mirror(8).unwrap();
        let cfg = LifetimeConfig {
            devices: 16,
            afr: 0.05, // inflated so the MC estimate is well-resolved
            scrubs: 0,
            years: 1.0,
            trials: 300_000,
            seed: 3,
        };
        let sim = simulate_graph_lifetime(&g, &cfg);
        let profile = mirrored_profile(8);
        let analytic = compose_failure_probability(16, 0.05, &profile.conditional_vec());
        let p = sim.loss_probability();
        let sigma = (analytic * (1.0 - analytic) / cfg.trials as f64).sqrt();
        assert!(
            (p - analytic).abs() < 5.0 * sigma,
            "sim {p} vs analytic {analytic} (sigma {sigma})"
        );
    }

    #[test]
    fn scrubbing_improves_reliability() {
        let g = generate_mirror(8).unwrap();
        let base = LifetimeConfig {
            devices: 16,
            afr: 0.10,
            scrubs: 0,
            years: 1.0,
            trials: 150_000,
            seed: 5,
        };
        let none = simulate_graph_lifetime(&g, &base).loss_probability();
        let monthly = simulate_graph_lifetime(
            &g,
            &LifetimeConfig {
                scrubs: 12,
                ..base
            },
        )
        .loss_probability();
        assert!(
            monthly < none / 3.0,
            "monthly scrubs {monthly} vs none {none}"
        );
    }

    #[test]
    fn zero_afr_never_loses() {
        let g = generate_mirror(4).unwrap();
        let cfg = LifetimeConfig {
            devices: 8,
            afr: 0.0,
            trials: 1_000,
            ..Default::default()
        };
        assert_eq!(simulate_graph_lifetime(&g, &cfg).losses, 0);
    }

    #[test]
    fn closure_adapter_supports_group_systems() {
        // Striping (any failure is fatal): loss probability equals
        // 1 − (1 − afr)^n regardless of scrubbing (a failure is always
        // immediately fatal, repair never gets a chance).
        let cfg = LifetimeConfig {
            devices: 10,
            afr: 0.05,
            scrubs: 4,
            years: 1.0,
            trials: 200_000,
            seed: 9,
        };
        let sim = simulate_lifetime(&cfg, |pattern| !pattern.is_empty());
        let analytic = 1.0 - (1.0f64 - 0.05).powi(10);
        let p = sim.loss_probability();
        let sigma = (analytic * (1.0 - analytic) / cfg.trials as f64).sqrt();
        assert!((p - analytic).abs() < 5.0 * sigma, "sim {p} vs {analytic}");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generate_mirror(4).unwrap();
        let cfg = LifetimeConfig {
            devices: 8,
            afr: 0.1,
            trials: 10_000,
            ..Default::default()
        };
        let a = simulate_graph_lifetime(&g, &cfg);
        let b = simulate_graph_lifetime(&g, &cfg);
        assert_eq!(a, b);
    }
}
