//! Reconstruction-efficiency metrics (paper §5.2, Table 6).
//!
//! "We determined the minimum number of nodes that provide a 50 %
//! probability of being able to reconstruct the stripe and then calculate
//! overhead from that number of nodes." The paper is careful that this is
//! *not* the literature's overhead definition — the testing system fixes
//! the online-node count in advance rather than retrieving incrementally —
//! and reports e.g. 62/96 blocks sufficing half the time (overhead 1.29).

use tornado_sim::FailureProfile;

/// Table 6-style report for one graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverheadReport {
    /// Minimum online nodes giving ≥ 50 % reconstruction probability.
    pub nodes_for_half: usize,
    /// `nodes_for_half / num_data` (1.29 for the paper's best graphs).
    pub overhead: f64,
    /// The paper's "average number of nodes capable of reconstructing the
    /// data" (Tables 1–4), included here because both derive from the same
    /// profile.
    pub average_to_reconstruct: f64,
    /// `average_to_reconstruct / num_data` — the parenthesised column of
    /// Tables 1–4.
    pub average_overhead: f64,
}

/// Computes the Table 6 metrics from a failure profile.
///
/// # Panics
/// Panics if the profile cannot reach 50 % success even with every node
/// online (impossible for a real graph, where zero losses always succeed).
pub fn overhead_report(profile: &FailureProfile, num_data: usize) -> OverheadReport {
    let nodes_for_half = profile
        .nodes_for_success_probability(0.5)
        .expect("a full complement of nodes always reconstructs");
    let avg = profile.average_nodes_to_reconstruct();
    OverheadReport {
        nodes_for_half,
        overhead: nodes_for_half as f64 / num_data as f64,
        average_to_reconstruct: avg,
        average_overhead: avg / num_data as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_threshold_profile() {
        // Succeeds iff ≥ 6 of 8 nodes online.
        let mut p = FailureProfile::new(8);
        for k in 1..=8 {
            let fails = if k > 2 { 100 } else { 0 };
            p.record(k, 100, fails, true);
        }
        let r = overhead_report(&p, 4);
        assert_eq!(r.nodes_for_half, 6);
        assert!((r.overhead - 1.5).abs() < 1e-12);
        assert!((r.average_to_reconstruct - 6.0).abs() < 1e-12);
        assert!((r.average_overhead - 1.5).abs() < 1e-12);
    }

    #[test]
    fn graded_profile_interpolates() {
        // 50 % failure at k = 3 (of 6): with 3 online, success = 0.5.
        let mut p = FailureProfile::new(6);
        p.record(1, 10, 0, true);
        p.record(2, 10, 0, true);
        p.record(3, 10, 5, true);
        p.record(4, 10, 8, true);
        p.record(5, 10, 10, true);
        p.record(6, 10, 10, true);
        let r = overhead_report(&p, 3);
        // online m = 3 ⇔ k = 3 offline ⇒ success 0.5 ≥ 0.5.
        assert_eq!(r.nodes_for_half, 3);
        assert!((r.overhead - 1.0).abs() < 1e-12);
        // Average threshold: Σ m·(s(m)−s(m−1)) with s = [0,0,.2,.5,1,1,1].
        let expected = 2.0 * 0.2 + 3.0 * 0.3 + 4.0 * 0.5;
        assert!((r.average_to_reconstruct - expected).abs() < 1e-12);
    }
}
