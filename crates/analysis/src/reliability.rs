//! System reliability under independent device failures
//! (paper §5.1, Eqs. 2–3, Table 5).

use tornado_numerics::{compose_failure_probability, BinomialFailureModel};
use tornado_sim::FailureProfile;

/// One row of a Table 5-style reliability report.
#[derive(Clone, Debug, PartialEq)]
pub struct ReliabilityRow {
    /// System label (e.g. "RAID5", "Tornado Graph 1").
    pub system: String,
    /// Data devices presented to the user.
    pub data_devices: usize,
    /// Parity devices.
    pub parity_devices: usize,
    /// `P(fail)` over the modelled period (paper: one year, AFR = 0.01, no
    /// repair).
    pub p_fail: f64,
}

impl ReliabilityRow {
    /// Formats the probability the way the paper's Table 5 does (fixed
    /// point for large values, scientific for tiny ones).
    pub fn formatted_p_fail(&self) -> String {
        if self.p_fail >= 1e-4 {
            format!("{:.5}", self.p_fail)
        } else {
            format!("{:.3E}", self.p_fail)
        }
    }
}

/// Composes a conditional failure profile with the binomial failure model:
/// `P(fail) = Σ_k P(fail | k lost) · P(k lost)` (Eq. 3) with
/// `P(k lost) = C(n,k) p^k (1-p)^(n-k)` (Eq. 2).
pub fn system_failure_probability(profile: &FailureProfile, afr: f64) -> f64 {
    let n = profile.num_nodes() as u64;
    compose_failure_probability(n, afr, &profile.conditional_vec())
}

/// Builds a report row from a profile.
pub fn row_from_profile(
    system: &str,
    data_devices: usize,
    parity_devices: usize,
    profile: &FailureProfile,
    afr: f64,
) -> ReliabilityRow {
    ReliabilityRow {
        system: system.to_string(),
        data_devices,
        parity_devices,
        p_fail: system_failure_probability(profile, afr),
    }
}

/// `P(fail)` for a striped system of `n` devices: any device failure loses
/// data. Closed form `1 − (1−p)ⁿ`; Table 5 reports 0.61895 for `n = 96`,
/// `p = 0.01`.
pub fn striping_failure_probability(n: u64, afr: f64) -> f64 {
    let m = BinomialFailureModel::new(n, afr);
    1.0 - m.pmf(0)
}

/// `P(fail)` for a single independent device — Table 5's "Individual Disk"
/// row, which is just the AFR itself.
pub fn individual_disk_failure_probability(afr: f64) -> f64 {
    afr
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_sim::mirror::mirrored_profile;

    const AFR: f64 = 0.01;

    #[test]
    fn striping_matches_table5() {
        let p = striping_failure_probability(96, AFR);
        assert!((p - 0.61895).abs() < 5e-5, "got {p}");
    }

    #[test]
    fn individual_disk_is_afr() {
        assert_eq!(individual_disk_failure_probability(AFR), 0.01);
    }

    #[test]
    fn mirrored_system_matches_table5() {
        // Table 5: Mirrored (48+48) → P(fail) = 0.00479.
        let profile = mirrored_profile(48);
        let p = system_failure_probability(&profile, AFR);
        assert!((p - 0.00479).abs() < 5e-5, "got {p}");
    }

    #[test]
    fn perfect_system_never_fails() {
        // All-zero conditional profile → P(fail) = 0.
        let profile = FailureProfile::new(96); // only k=0 measured (never fails)
        let p = system_failure_probability(&profile, AFR);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn always_failing_system_fails_with_any_loss() {
        let mut profile = FailureProfile::new(8);
        for k in 1..=8 {
            profile.record(k, 1, 1, true);
        }
        let p = system_failure_probability(&profile, AFR);
        let expected = 1.0 - (1.0f64 - AFR).powi(8);
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn first_failure_level_dominates() {
        // Paper §5.1: "the reliability of the entire system is dominated by
        // the worst case failures". A profile failing from k = 5 should be
        // orders of magnitude more reliable than one failing from k = 2.
        let mut early = FailureProfile::new(96);
        let mut late = FailureProfile::new(96);
        for k in 1..=96u64 {
            early.record(k as usize, 1000, if k >= 2 { 10 } else { 0 }, false);
            late.record(k as usize, 1000, if k >= 5 { 10 } else { 0 }, false);
        }
        let pe = system_failure_probability(&early, AFR);
        let pl = system_failure_probability(&late, AFR);
        // P(≥2 of 96 fail) / P(≥5 fail) ≈ 86 at AFR 0.01.
        assert!(pe > 50.0 * pl, "early {pe} vs late {pl}");
    }

    #[test]
    fn row_formatting_matches_table_style() {
        let row = ReliabilityRow {
            system: "Tornado Graph 1".into(),
            data_devices: 48,
            parity_devices: 48,
            p_fail: 1.34e-9,
        };
        assert_eq!(row.formatted_p_fail(), "1.340E-9");
        let row2 = ReliabilityRow {
            system: "RAID5".into(),
            data_devices: 88,
            parity_devices: 8,
            p_fail: 0.04834,
        };
        assert_eq!(row2.formatted_p_fail(), "0.04834");
    }
}
