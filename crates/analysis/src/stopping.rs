//! Exact minimum blocking sets by certificate-guided branch and bound.
//!
//! The worst-case search certifies a graph by brute force; this module
//! computes the same quantity — the minimum number of erasures that makes
//! a given data node (or any data node) unrecoverable — by a *directed*
//! search, giving an independent cross-check that is exponentially cheaper
//! for small answers.
//!
//! The key object is the **recovery certificate**: when the peeling decoder
//! recovers a target under an erasure set `S`, the certificate is the set
//! of initially-available nodes its derivation actually consumed (the same
//! backward walk the guided-retrieval planner uses). Any strictly larger
//! erasure set that still blocks the target must erase at least one
//! certificate node — otherwise the recorded derivation would still apply.
//! Branching over certificate members with iterative deepening is therefore
//! a complete search.

use tornado_codec::{recovery_certificate, ErasureDecoder};
use tornado_graph::{Graph, NodeId};

/// Exact minimum-size erasure set leaving `target` unrecoverable, searched
/// up to `cap` erasures. Returns `None` if every set of size ≤ `cap`
/// still recovers the target.
///
/// Complete by the certificate argument (module docs); complexity is
/// roughly `b^cap` with `b` the certificate size, so keep `cap` modest
/// (≤ 6 covers the paper's regime).
pub fn min_blocking_exact(graph: &Graph, target: NodeId, cap: usize) -> Option<Vec<usize>> {
    assert!(graph.is_data(target), "{target} is not a data node");
    let mut dec = ErasureDecoder::new(graph);
    for depth in 1..=cap {
        let mut set = vec![target as usize];
        if let Some(found) = dfs(graph, &mut dec, &mut set, depth - 1, target) {
            return Some(found);
        }
    }
    None
}

fn dfs(
    graph: &Graph,
    dec: &mut ErasureDecoder<'_>,
    set: &mut Vec<usize>,
    remaining: usize,
    target: NodeId,
) -> Option<Vec<usize>> {
    let detail = dec.decode_detailed(set);
    if detail.lost_data.contains(&target) {
        let mut s = set.clone();
        s.sort_unstable();
        return Some(s);
    }
    if remaining == 0 {
        return None;
    }
    let certificate = recovery_certificate(graph, &detail, target);
    debug_assert!(
        !certificate.is_empty(),
        "a recovered erased target must have consumed something"
    );
    for e in certificate {
        if set.contains(&(e as usize)) {
            continue;
        }
        set.push(e as usize);
        let found = dfs(graph, dec, set, remaining - 1, target);
        set.pop();
        if found.is_some() {
            return found;
        }
    }
    None
}

/// The graph's erasure minimum distance: the smallest erasure set losing
/// *any* data node, searched to `cap`. Equals the worst-case search's
/// first-failure level when that level is ≤ `cap`.
pub fn minimum_distance(graph: &Graph, cap: usize) -> Option<(usize, Vec<usize>)> {
    let mut best: Option<Vec<usize>> = None;
    for d in graph.data_ids() {
        let node_cap = best.as_ref().map_or(cap, |b| b.len() - 1);
        if node_cap == 0 {
            break;
        }
        if let Some(s) = min_blocking_exact(graph, d, node_cap) {
            best = Some(s);
        }
    }
    best.map(|s| (s.len(), s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_gen::mirror::generate_mirror;
    use tornado_gen::{TornadoGenerator, TornadoParams};
    use tornado_graph::GraphBuilder;
    use tornado_sim::{worst_case_search, WorstCaseConfig};

    #[test]
    fn mirror_minimum_is_the_pair() {
        let g = generate_mirror(4).unwrap();
        for d in 0..4u32 {
            let s = min_blocking_exact(&g, d, 3).unwrap();
            assert_eq!(s, vec![d as usize, d as usize + 4]);
        }
        let (dist, set) = minimum_distance(&g, 4).unwrap();
        assert_eq!(dist, 2);
        assert_eq!(set[1], set[0] + 4);
    }

    #[test]
    fn deep_cascade_requires_certificate_branching() {
        // data 0..4; 4 = 0^1, 5 = 2^3, 6 = 4^5: the naive {target, its
        // check} set does not block; the exact search must find {0, 1}.
        let mut b = GraphBuilder::new(4);
        b.begin_level("c1");
        b.add_check(&[0, 1]);
        b.add_check(&[2, 3]);
        b.begin_level("c2");
        b.add_check(&[4, 5]);
        let g = b.build().unwrap();
        assert_eq!(min_blocking_exact(&g, 0, 4).unwrap(), vec![0, 1]);
    }

    #[test]
    fn cap_below_the_answer_returns_none() {
        let g = generate_mirror(3).unwrap();
        assert_eq!(min_blocking_exact(&g, 0, 1), None);
        assert!(min_blocking_exact(&g, 0, 2).is_some());
    }

    #[test]
    fn agrees_with_worst_case_search_on_small_tornado_graphs() {
        let (g, _) = TornadoGenerator::new(TornadoParams {
            num_data: 16,
            ..TornadoParams::default()
        })
        .generate_screened(5, 256, 2)
        .unwrap();
        let brute = worst_case_search(
            &g,
            &WorstCaseConfig {
                max_k: 4,
                collect_cap: 16,
                stop_at_first_failure: true,
            },
        )
        .first_failure();
        let directed = minimum_distance(&g, 4).map(|(d, _)| d);
        assert_eq!(brute, directed, "brute force and B&B must agree");
        // And the witness actually fails.
        if let Some((_, set)) = minimum_distance(&g, 4) {
            let mut dec = ErasureDecoder::new(&g);
            assert!(!dec.decode(&set));
        }
    }

    #[test]
    fn certificate_matches_planner_semantics() {
        // Erase {0}: recovery uses check 4 and sibling 1 only.
        let mut b = GraphBuilder::new(4);
        b.begin_level("c1");
        b.add_check(&[0, 1]);
        b.add_check(&[2, 3]);
        let g = b.build().unwrap();
        let mut dec = ErasureDecoder::new(&g);
        let detail = dec.decode_detailed(&[0]);
        let cert = recovery_certificate(&g, &detail, 0);
        assert_eq!(cert, vec![1, 4]);
        // Unrelated target: empty certificate (never erased).
        assert!(recovery_certificate(&g, &detail, 2).is_empty());
    }
}
