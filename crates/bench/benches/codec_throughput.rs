//! Encode/decode throughput of the XOR codec (the paper's §2.1 motivation:
//! Tornado Codes en/decode "in substantially less time than Reed-Solomon").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tornado_codec::Codec;

fn bench_codec(c: &mut Criterion) {
    let graph = tornado_core::tornado_graph_1();
    let codec = Codec::new(&graph);
    let mut group = c.benchmark_group("codec");
    for &block_len in &[1usize << 10, 1 << 14, 1 << 17] {
        let data: Vec<Vec<u8>> = (0..48)
            .map(|i| vec![(i * 37 + 11) as u8; block_len])
            .collect();
        let stripe_bytes = (48 * block_len) as u64;
        group.throughput(Throughput::Bytes(stripe_bytes));
        group.bench_with_input(
            BenchmarkId::new("encode", block_len),
            &data,
            |b, data| b.iter(|| black_box(codec.encode(black_box(data)).unwrap())),
        );

        let blocks = codec.encode(&data).unwrap();
        group.bench_with_input(
            BenchmarkId::new("decode_4_losses", block_len),
            &blocks,
            |b, blocks| {
                b.iter(|| {
                    let mut stored: Vec<Option<Vec<u8>>> =
                        blocks.iter().cloned().map(Some).collect();
                    for lost in [3usize, 17, 48, 95] {
                        stored[lost] = None;
                    }
                    let report = codec.decode(&mut stored).unwrap();
                    black_box(report.complete())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
