//! Latency of one availability-only decode trial — the quantum of the
//! worst-case search and Monte-Carlo suites (§3's 962 M test cases are
//! exactly this operation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tornado_codec::ErasureDecoder;

fn bench_decode_trial(c: &mut Criterion) {
    let graph = tornado_core::tornado_graph_1();
    let mut dec = ErasureDecoder::new(&graph);
    let mut group = c.benchmark_group("decode_trial");
    for &k in &[1usize, 4, 16, 48] {
        // A deterministic spread-out pattern of k losses.
        let missing: Vec<usize> = (0..k).map(|i| (i * 53) % 96).collect();
        group.bench_with_input(BenchmarkId::new("erasures", k), &missing, |b, missing| {
            b.iter(|| black_box(dec.decode(black_box(missing))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decode_trial);
criterion_main!(benches);
