//! Latency of one availability-only decode trial — the quantum of the
//! worst-case search and Monte-Carlo suites (§3's 962 M test cases are
//! exactly this operation).
//!
//! Every group runs A/B: `dense` is the retained pre-sparse reference
//! kernel (`tornado_codec::reference::DenseDecoder`, full O(n) reset +
//! all-checks seeding), `sparse` is the epoch-stamped kernel. The
//! `lex_sweep` group additionally exercises the shared-prefix path the
//! worst-case search uses, and `unrank` isolates the combinadic
//! enumeration cost to show it stays a small fraction of a k = 4 trial
//! (see the `combination_overhead` bin check in
//! `src/bin/bench_decode_trial.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tornado_bitset::combinations::{binomial, CombinationIter};
use tornado_codec::reference::DenseDecoder;
use tornado_codec::ErasureDecoder;

fn bench_decode_trial(c: &mut Criterion) {
    let graph = tornado_core::tornado_graph_1();
    let mut sparse = ErasureDecoder::new(&graph);
    let mut dense = DenseDecoder::new(&graph);
    let mut group = c.benchmark_group("decode_trial");
    for &k in &[1usize, 4, 16, 48] {
        // A deterministic spread-out pattern of k losses.
        let missing: Vec<usize> = (0..k).map(|i| (i * 53) % 96).collect();
        group.bench_with_input(BenchmarkId::new("sparse", k), &missing, |b, missing| {
            b.iter(|| black_box(sparse.decode(black_box(missing))))
        });
        group.bench_with_input(BenchmarkId::new("dense", k), &missing, |b, missing| {
            b.iter(|| black_box(dense.decode(black_box(missing))))
        });
    }
    group.finish();
}

/// The worst-case search inner loop: a lexicographic slice of `C(96, k)`,
/// one decode per combination. The sparse side re-marks the shared prefix
/// only when it changes; the dense side pays a full reset every trial.
fn bench_lex_sweep(c: &mut Criterion) {
    let graph = tornado_core::tornado_graph_1();
    let n = graph.num_nodes();
    let mut sparse = ErasureDecoder::new(&graph);
    let mut dense = DenseDecoder::new(&graph);
    let mut group = c.benchmark_group("lex_sweep");
    for &k in &[2usize, 4] {
        const TRIALS: u64 = 4096;
        // Start mid-sequence so prefixes are non-trivial, but never so late
        // that the sweep runs off the end of C(n, k) (matters at k = 2).
        let total = binomial(n as u64, k as u64);
        let start = (total / 3).min(total - u128::from(TRIALS));
        group.throughput(Throughput::Elements(TRIALS));
        group.bench_function(BenchmarkId::new("sparse_prefix_reuse", k), |b| {
            b.iter(|| {
                let mut it = CombinationIter::from_rank(n, k, start);
                let mut prefix: Vec<usize> = vec![usize::MAX];
                let mut failures = 0u64;
                for _ in 0..TRIALS {
                    let combo = it.next_slice().unwrap();
                    let split = k - 1;
                    if combo[..split] != prefix[..] {
                        sparse.begin_pattern(&combo[..split]);
                        prefix.clear();
                        prefix.extend_from_slice(&combo[..split]);
                    }
                    failures += u64::from(!sparse.decode_tail(&combo[split..]));
                }
                black_box(failures)
            })
        });
        group.bench_function(BenchmarkId::new("sparse_one_shot", k), |b| {
            b.iter(|| {
                let mut it = CombinationIter::from_rank(n, k, start);
                let mut failures = 0u64;
                for _ in 0..TRIALS {
                    failures += u64::from(!sparse.decode(it.next_slice().unwrap()));
                }
                black_box(failures)
            })
        });
        group.bench_function(BenchmarkId::new("dense", k), |b| {
            b.iter(|| {
                let mut it = CombinationIter::from_rank(n, k, start);
                let mut failures = 0u64;
                for _ in 0..TRIALS {
                    failures += u64::from(!dense.decode(it.next_slice().unwrap()));
                }
                black_box(failures)
            })
        });
    }
    group.finish();
}

/// Combinadic enumeration alone: `next_slice` must stay well under 5% of a
/// k = 4 sparse trial for the data-parallel split to be effectively free.
fn bench_unrank(c: &mut Criterion) {
    let mut group = c.benchmark_group("unrank");
    const TRIALS: u64 = 4096;
    group.throughput(Throughput::Elements(TRIALS));
    group.bench_function("next_slice_k4", |b| {
        b.iter(|| {
            let mut it = CombinationIter::from_rank(96, 4, binomial(96, 4) / 3);
            let mut acc = 0usize;
            for _ in 0..TRIALS {
                acc ^= it.next_slice().unwrap()[3];
            }
            black_box(acc)
        })
    });
    group.bench_function("from_rank_k4", |b| {
        b.iter(|| black_box(CombinationIter::from_rank(96, 4, black_box(1_234_567))))
    });
    group.finish();
}

/// Decode-metrics recorder A/B on the worst-case-search inner loop: the
/// recorder is plain `u64` increments behind one branch, so the enabled
/// side must track the disabled side within noise (the release bin check
/// in `src/bin/bench_decode_trial.rs` enforces the 3% budget).
fn bench_recording_overhead(c: &mut Criterion) {
    let graph = tornado_core::tornado_graph_1();
    let n = graph.num_nodes();
    let mut sparse = ErasureDecoder::new(&graph);
    let mut group = c.benchmark_group("recording_overhead");
    const TRIALS: u64 = 4096;
    let start = binomial(n as u64, 4) / 3;
    group.throughput(Throughput::Elements(TRIALS));
    for recording in [false, true] {
        let name = if recording { "recording_on" } else { "recording_off" };
        group.bench_function(BenchmarkId::new("lex_sweep", name), |b| {
            sparse.set_recording(recording);
            b.iter(|| {
                let mut it = CombinationIter::from_rank(n, 4, start);
                let mut prefix: Vec<usize> = vec![usize::MAX];
                let mut failures = 0u64;
                for _ in 0..TRIALS {
                    let combo = it.next_slice().unwrap();
                    if combo[..3] != prefix[..] {
                        sparse.begin_pattern(&combo[..3]);
                        prefix.clear();
                        prefix.extend_from_slice(&combo[..3]);
                    }
                    failures += u64::from(!sparse.decode_tail(&combo[3..]));
                }
                black_box(failures)
            });
            sparse.set_recording(false);
            black_box(sparse.take_cells());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decode_trial,
    bench_lex_sweep,
    bench_unrank,
    bench_recording_overhead
);
criterion_main!(benches);
