//! Graph generation and screening cost (§3.1–3.2: generation is cheap; the
//! expensive part is testing, which is why screened generation retries
//! freely).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tornado_gen::defects::find_stopping_sets;
use tornado_gen::{TornadoGenerator, TornadoParams};

fn bench_generation(c: &mut Criterion) {
    let gen = TornadoGenerator::new(TornadoParams::paper_96());
    let mut group = c.benchmark_group("generation");

    group.bench_function("generate_96", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(gen.generate(seed).unwrap())
        })
    });

    group.bench_function("screen_stopping_sets_3", |b| {
        let g = gen.generate(1).unwrap();
        b.iter(|| black_box(find_stopping_sets(&g, 3)))
    });

    group.bench_function("generate_screened_96", |b| {
        let mut seed = 1000u64;
        b.iter(|| {
            seed += 1;
            black_box(gen.generate_screened(seed, 256, 3).unwrap().0)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
