//! Monte-Carlo trial rate (paper §3: 962,144,153 cases / 34 CPU-days per
//! graph; this measures trials per second on the same estimator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tornado_sim::monte_carlo::sample_level;

fn bench_monte_carlo(c: &mut Criterion) {
    let graph = tornado_core::tornado_graph_1();
    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(20);
    let trials = 20_000u64;
    group.throughput(Throughput::Elements(trials));
    for &k in &[5usize, 24, 48] {
        group.bench_with_input(BenchmarkId::new("offline", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(sample_level(&graph, k, trials, seed))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_monte_carlo);
criterion_main!(benches);
