//! Tornado vs Reed–Solomon throughput at the same (96, 48) configuration —
//! the §2.1 claim ("Tornado Codes encode and decode files in substantially
//! less time than Reed-Solomon codes") made measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tornado_codec::{Codec, ReedSolomon};

fn bench_rs_comparison(c: &mut Criterion) {
    let graph = tornado_core::tornado_graph_1();
    let tornado = Codec::new(&graph);
    let rs = ReedSolomon::new(48, 96);
    let mut group = c.benchmark_group("tornado_vs_rs");
    group.sample_size(10);

    for &block_len in &[1usize << 12, 1 << 16] {
        let data: Vec<Vec<u8>> = (0..48)
            .map(|i| vec![(i * 37 + 11) as u8; block_len])
            .collect();
        group.throughput(Throughput::Bytes((48 * block_len) as u64));

        group.bench_with_input(
            BenchmarkId::new("tornado_encode", block_len),
            &data,
            |b, data| b.iter(|| black_box(tornado.encode(black_box(data)).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("rs_encode", block_len),
            &data,
            |b, data| b.iter(|| black_box(rs.encode(black_box(data)).unwrap())),
        );

        // Decode with 4 losses (the Tornado worst-case tolerance) so the
        // codes face the same repair job.
        let t_blocks = tornado.encode(&data).unwrap();
        let r_blocks = rs.encode(&data).unwrap();
        group.bench_with_input(
            BenchmarkId::new("tornado_decode_4", block_len),
            &t_blocks,
            |b, blocks| {
                b.iter(|| {
                    let mut stored: Vec<Option<Vec<u8>>> =
                        blocks.iter().cloned().map(Some).collect();
                    for lost in [3usize, 17, 48, 95] {
                        stored[lost] = None;
                    }
                    black_box(tornado.decode(&mut stored).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rs_decode_4", block_len),
            &r_blocks,
            |b, blocks| {
                b.iter(|| {
                    let mut stored: Vec<Option<Vec<u8>>> =
                        blocks.iter().cloned().map(Some).collect();
                    for lost in [3usize, 17, 48, 95] {
                        stored[lost] = None;
                    }
                    black_box(rs.decode(&mut stored).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rs_comparison);
criterion_main!(benches);
