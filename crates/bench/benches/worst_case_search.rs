//! Rate of the exhaustive worst-case search (paper §3: "the test set
//! requires only 21 CPU hours" for C(96,1..6); this measures how fast the
//! rayon-parallel implementation chews the same enumeration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tornado_bitset::combinations::binomial;
use tornado_sim::worst_case::search_level;

fn bench_worst_case(c: &mut Criterion) {
    let graph = tornado_core::tornado_graph_1();
    let mut group = c.benchmark_group("worst_case_search");
    group.sample_size(10);
    for &k in &[2usize, 3] {
        group.throughput(Throughput::Elements(binomial(96, k as u64) as u64));
        group.bench_with_input(BenchmarkId::new("level", k), &k, |b, &k| {
            b.iter(|| black_box(search_level(&graph, k, 4).failures))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_worst_case);
criterion_main!(benches);
