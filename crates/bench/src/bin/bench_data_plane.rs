//! Measures the data-plane kernel A/B (word-wide vs byte-serial scalar)
//! at 64 KiB blocks and writes `BENCH_data_plane.json` at the repository
//! root.
//!
//! Five cases: the two kernels in isolation (`xor_into`, `mul_acc`) and
//! the paths built on them (`encode`, `decode`, `scrub`), each reported
//! as decimal MB/s for both sides plus the speedup ratio. The headline
//! floors are kernel-level: `xor_into` must be ≥ 4× and `mul_acc` ≥ 3×
//! the byte-serial oracle. The end-to-end rows are informational — their
//! speedups depend on how much non-kernel work (hashing, framing, graph
//! walks) each path carries.
//!
//! A second section, `scrub_modes`, A/Bs the checksum-gated scrub tiers
//! (`verify_clean`, `verify_dirty`, `incremental_clean`) against the
//! historical full-read + byte-serial data path. Its floor is end-to-end:
//! `verify_clean` must clear ≥ 5× the baseline in release (≥ 3× under
//! `--quick`) — the PR's headline claim.
//!
//! Usage: `cargo run --release -p tornado-bench --bin bench_data_plane`.
//! `--check` verifies the full floors without rewriting the JSON;
//! `--quick` is the CI smoke: fewer samples, relaxed ≥ 1.0 floors (CI
//! machines are noisy and sometimes byte-serial-hostile in odd ways),
//! and the JSON is schema-validated in memory but never written. Debug
//! builds refuse to write since their numbers are meaningless.

use tornado_bench::experiments::data_plane;

fn main() {
    let check_only = std::env::args().any(|a| a == "--check");
    let quick = std::env::args().any(|a| a == "--quick");
    let block_bytes = 65536usize;
    let samples = if quick { 3 } else { 9 };

    let r = data_plane::measure(block_bytes, samples);

    println!(
        "data plane A/B: {} KiB blocks, {} samples/case, {} build",
        block_bytes / 1024,
        samples,
        if cfg!(debug_assertions) { "debug" } else { "release" }
    );
    for c in &r.cases {
        println!(
            "  {:<9} scalar {:>8.0} MB/s   word-wide {:>8.0} MB/s   speedup {:>5.2}x",
            c.name,
            c.scalar_mb_s,
            c.word_mb_s,
            c.speedup()
        );
    }
    println!(
        "  pool: {} hits / {} misses ({:.1}% hit rate)",
        r.pool_hits,
        r.pool_misses,
        r.pool_hit_rate() * 100.0
    );
    println!(
        "  kernel volume: {:.1} MB xored, {:.1} MB muled, {:.1} MB hashed",
        r.bytes_xored as f64 / 1e6,
        r.bytes_muled as f64 / 1e6,
        r.bytes_hashed as f64 / 1e6
    );

    let (xor_floor, mul_floor) = if quick { (1.0, 1.0) } else { (4.0, 3.0) };
    let xor = r.case("xor_into").speedup();
    let mul = r.case("mul_acc").speedup();
    let target_met = xor >= 4.0 && mul >= 3.0;
    println!(
        "  target: xor_into >= 4x and mul_acc >= 3x scalar -> {}",
        if target_met { "MET" } else { "NOT MET" }
    );

    let sm = data_plane::measure_scrub_modes(block_bytes, samples);
    println!("scrub tiers vs full-read byte-serial baseline:");
    for c in &sm.cases {
        println!(
            "  {:<18} baseline {:>8.0} MB/s   full-word {:>8.0} MB/s   tier {:>8.0} MB/s   vs baseline {:>6.2}x   vs full {:>5.2}x",
            c.name,
            c.baseline_mb_s,
            c.full_word_mb_s,
            c.mode_mb_s,
            c.speedup_vs_baseline(),
            c.speedup_vs_full(),
        );
    }
    println!(
        "  checksum kernel volume: {:.1} MB hashed",
        sm.bytes_hashed as f64 / 1e6
    );
    let verify_clean = sm.case("verify_clean").speedup_vs_baseline();
    let scrub_floor = if quick { 3.0 } else { 5.0 };
    let scrub_target_met = verify_clean >= 5.0;
    println!(
        "  target: verify_clean >= 5x full-read baseline -> {}",
        if scrub_target_met { "MET" } else { "NOT MET" }
    );

    // Hand-formatted JSON (the workspace deliberately has no serde); the
    // parser round-trip below keeps the formatting honest.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"data_plane\",\n");
    json.push_str("  \"graph\": \"tornado_graph_1 (96 nodes, 48 data)\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if cfg!(debug_assertions) { "debug" } else { "release" }
    ));
    json.push_str(&format!("  \"block_bytes\": {block_bytes},\n"));
    json.push_str(&format!("  \"samples_per_case\": {samples},\n"));
    json.push_str("  \"units\": \"mb_per_s_decimal\",\n");
    json.push_str("  \"cases\": [\n");
    for (i, c) in r.cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"scalar_mb_s\": {:.1}, \"word_mb_s\": {:.1}, \"speedup\": {:.2}}}{}\n",
            c.name,
            c.scalar_mb_s,
            c.word_mb_s,
            c.speedup(),
            if i + 1 < r.cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"pool\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},\n",
        r.pool_hits,
        r.pool_misses,
        r.pool_hit_rate()
    ));
    json.push_str(&format!(
        "  \"kernel_volume\": {{\"bytes_xored\": {}, \"bytes_muled\": {}, \"bytes_hashed\": {}}},\n",
        r.bytes_xored, r.bytes_muled, r.bytes_hashed
    ));
    json.push_str("  \"scrub_modes\": [\n");
    for (i, c) in sm.cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"baseline_mb_s\": {:.1}, \"full_word_mb_s\": {:.1}, \"mode_mb_s\": {:.1}, \"vs_baseline\": {:.2}, \"vs_full\": {:.2}}}{}\n",
            c.name,
            c.baseline_mb_s,
            c.full_word_mb_s,
            c.mode_mb_s,
            c.speedup_vs_baseline(),
            c.speedup_vs_full(),
            if i + 1 < sm.cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"target\": \"xor_into >= 4x and mul_acc >= 3x byte-serial scalar\",\n");
    json.push_str(&format!("  \"target_met\": {target_met},\n"));
    json.push_str(
        "  \"scrub_target\": \"verify_clean >= 5x full-read byte-serial baseline\",\n",
    );
    json.push_str(&format!("  \"scrub_target_met\": {scrub_target_met}\n"));
    json.push_str("}\n");

    // Schema self-check: the JSON must parse and carry every field the
    // docs (EXPERIMENTS.md) and CI rely on.
    let doc = tornado_obs::json::parse(&json).expect("bench JSON must parse");
    for field in [
        "bench",
        "cases",
        "pool",
        "kernel_volume",
        "target_met",
        "scrub_modes",
        "scrub_target_met",
    ] {
        assert!(
            doc.get(field).is_some(),
            "bench JSON is missing the '{field}' field"
        );
    }

    assert!(
        xor >= xor_floor,
        "xor_into speedup {xor:.2}x is below the {xor_floor}x floor"
    );
    assert!(
        mul >= mul_floor,
        "mul_acc speedup {mul:.2}x is below the {mul_floor}x floor"
    );
    assert!(
        verify_clean >= scrub_floor,
        "verify_clean speedup {verify_clean:.2}x is below the {scrub_floor}x floor"
    );

    if quick {
        println!("--quick: kernel and scrub-tier floors hold, JSON schema valid");
        return;
    }
    if cfg!(debug_assertions) {
        println!("debug build: numbers are meaningless, not writing JSON");
        return;
    }
    if check_only {
        println!("--check: floors hold, JSON left untouched");
        return;
    }

    // The bin lives two levels below the workspace root.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_data_plane.json");
    std::fs::write(out, json).expect("write BENCH_data_plane.json");
    println!("wrote {out}");
}
