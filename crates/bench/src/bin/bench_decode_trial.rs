//! Measures the decode-trial A/B (dense reference kernel vs sparse
//! epoch-stamped kernel) on the 96-node catalog graph and writes
//! `BENCH_decode_trial.json` at the repository root.
//!
//! The headline number is the k = 4 lexicographic sweep — the exact shape
//! of the worst-case search inner loop — where the sparse kernel must be
//! ≥ 3× the dense baseline. The combinadic enumeration share is also
//! checked: `CombinationIter::next_slice` must cost < 5% of a k = 4 sparse
//! trial. A third A/B runs the same sweep with the decode metrics recorder
//! enabled (no sink attached); it must stay within 3% of recording-off.
//!
//! Usage: `cargo run --release -p tornado-bench --bin bench_decode_trial`
//! (pass `--check` to only verify invariants without rewriting the JSON,
//! as CI does; debug builds refuse to write since their numbers are
//! meaningless).

use std::time::Instant;
use tornado_bitset::combinations::{binomial, CombinationIter};
use tornado_codec::reference::DenseDecoder;
use tornado_codec::ErasureDecoder;

/// Median ns per inner iteration of `f` (which must run `batch` iterations
/// per call), over `samples` timed calls after one warmup call.
fn measure(batch: u64, samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup: touch caches, fault pages
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    per_iter[per_iter.len() / 2]
}

struct Case {
    name: &'static str,
    dense_ns: f64,
    sparse_ns: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.dense_ns / self.sparse_ns
    }
}

fn main() {
    let check_only = std::env::args().any(|a| a == "--check");
    let graph = tornado_core::tornado_graph_1();
    let n = graph.num_nodes();
    let mut sparse = ErasureDecoder::new(&graph);
    let mut dense = DenseDecoder::new(&graph);
    let samples = 9;
    let mut cases: Vec<Case> = Vec::new();

    // Fixed-pattern single trials.
    for k in [1usize, 4] {
        let missing: Vec<usize> = (0..k).map(|i| (i * 53) % 96).collect();
        let batch = 20_000u64;
        let sparse_ns = measure(batch, samples, || {
            for _ in 0..batch {
                std::hint::black_box(sparse.decode(std::hint::black_box(&missing)));
            }
        });
        let dense_ns = measure(batch, samples, || {
            for _ in 0..batch {
                std::hint::black_box(dense.decode(std::hint::black_box(&missing)));
            }
        });
        cases.push(Case {
            name: if k == 1 { "single_k1" } else { "single_k4" },
            dense_ns,
            sparse_ns,
        });
    }

    // Lexicographic sweep (the worst-case search inner loop), k = 4.
    let batch = 65_536u64;
    let start = binomial(n as u64, 4) / 3;
    let sweep_sparse_ns = measure(batch, samples, || {
        let mut it = CombinationIter::from_rank(n, 4, start);
        let mut prefix: Vec<usize> = vec![usize::MAX];
        let mut failures = 0u64;
        for _ in 0..batch {
            let combo = it.next_slice().unwrap();
            if combo[..3] != prefix[..] {
                sparse.begin_pattern(&combo[..3]);
                prefix.clear();
                prefix.extend_from_slice(&combo[..3]);
            }
            failures += u64::from(!sparse.decode_tail(&combo[3..]));
        }
        std::hint::black_box(failures);
    });
    let sweep_dense_ns = measure(batch, samples, || {
        let mut it = CombinationIter::from_rank(n, 4, start);
        let mut failures = 0u64;
        for _ in 0..batch {
            failures += u64::from(!dense.decode(it.next_slice().unwrap()));
        }
        std::hint::black_box(failures);
    });
    cases.push(Case {
        name: "lex_sweep_k4",
        dense_ns: sweep_dense_ns,
        sparse_ns: sweep_sparse_ns,
    });

    // Observability A/B: the same k = 4 sweep with the decode recorder
    // enabled (counters ticking, no sink attached). The recorder is plain
    // u64 increments behind one branch, so it must stay within 3% of the
    // recording-off sweep — keeping `--metrics` runs honest about speed.
    // Clock-frequency and cache drift between distant measurements runs to
    // ±10% here — far above the recorder's real cost — so the two sides are
    // interleaved off/on per round and compared as a median of per-round
    // ratios, which cancels any drift slower than one round.
    let mut timed_sweep = |rec: bool| {
        sparse.set_recording(rec);
        let t = Instant::now();
        let mut it = CombinationIter::from_rank(n, 4, start);
        let mut prefix: Vec<usize> = vec![usize::MAX];
        let mut failures = 0u64;
        for _ in 0..batch {
            let combo = it.next_slice().unwrap();
            if combo[..3] != prefix[..] {
                sparse.begin_pattern(&combo[..3]);
                prefix.clear();
                prefix.extend_from_slice(&combo[..3]);
            }
            failures += u64::from(!sparse.decode_tail(&combo[3..]));
        }
        std::hint::black_box(failures);
        let ns = t.elapsed().as_nanos() as f64 / batch as f64;
        sparse.set_recording(false);
        std::hint::black_box(sparse.take_cells());
        ns
    };
    timed_sweep(false); // warmup
    timed_sweep(true);
    let mut off_ns = Vec::with_capacity(samples);
    let mut on_ns = Vec::with_capacity(samples);
    let mut ratios: Vec<f64> = (0..samples)
        .map(|_| {
            let off = timed_sweep(false);
            let on = timed_sweep(true);
            off_ns.push(off);
            on_ns.push(on);
            on / off
        })
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let sweep_off_ns = median(&mut off_ns);
    let sweep_recording_ns = median(&mut on_ns);
    let recording_overhead = ratios[ratios.len() / 2] - 1.0;

    // Combinadic enumeration share of a k = 4 sparse sweep trial.
    let unrank_ns = measure(batch, samples, || {
        let mut it = CombinationIter::from_rank(n, 4, start);
        let mut acc = 0usize;
        for _ in 0..batch {
            acc ^= it.next_slice().unwrap()[3];
        }
        std::hint::black_box(acc);
    });
    let unrank_share = unrank_ns / sweep_sparse_ns;

    let headline = cases.iter().find(|c| c.name == "lex_sweep_k4").unwrap();
    let target_met = headline.speedup() >= 3.0;

    println!("graph: tornado_graph_1 ({n} nodes), {samples} samples/case");
    for c in &cases {
        println!(
            "  {:<14} dense {:>8.1} ns/trial   sparse {:>8.1} ns/trial   speedup {:>5.2}x",
            c.name,
            c.dense_ns,
            c.sparse_ns,
            c.speedup()
        );
    }
    println!(
        "  unrank         {:>8.1} ns/step = {:.1}% of a sparse k=4 sweep trial (budget 5%)",
        unrank_ns,
        unrank_share * 100.0
    );
    println!(
        "  recording      {:>8.1} ns/trial (off {:>6.1}) = {:+.1}% median paired ratio (budget 3%)",
        sweep_recording_ns,
        sweep_off_ns,
        recording_overhead * 100.0
    );
    println!(
        "  target: sparse >= 3x dense on lex_sweep_k4 -> {}",
        if target_met { "MET" } else { "NOT MET" }
    );

    assert!(
        unrank_share < 0.05,
        "combination enumeration costs {:.1}% of a k=4 trial (budget 5%)",
        unrank_share * 100.0
    );

    if cfg!(debug_assertions) {
        println!("debug build: numbers are meaningless, not writing JSON");
        return;
    }
    assert!(
        target_met,
        "lex_sweep_k4 speedup {:.2}x is below the 3x floor",
        headline.speedup()
    );
    assert!(
        recording_overhead < 0.03,
        "recording-enabled sweep is {:+.1}% vs recording-off (budget 3%)",
        recording_overhead * 100.0
    );
    if check_only {
        println!("--check: invariants hold, JSON left untouched");
        return;
    }

    // Hand-formatted JSON (the workspace deliberately has no serde).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"decode_trial\",\n");
    json.push_str("  \"graph\": \"tornado_graph_1 (96 nodes, 48 data)\",\n");
    json.push_str("  \"mode\": \"release\",\n");
    json.push_str(&format!("  \"samples_per_case\": {samples},\n"));
    json.push_str("  \"units\": \"ns_per_trial\",\n");
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"dense\": {:.1}, \"sparse\": {:.1}, \"speedup\": {:.2}}}{}\n",
            c.name,
            c.dense_ns,
            c.sparse_ns,
            c.speedup(),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"unrank_ns_per_step\": {unrank_ns:.1},\n"
    ));
    json.push_str(&format!(
        "  \"unrank_share_of_sparse_k4_trial\": {unrank_share:.4},\n"
    ));
    json.push_str(&format!(
        "  \"recording_ns_per_trial\": {sweep_recording_ns:.1},\n"
    ));
    json.push_str(&format!(
        "  \"recording_overhead_vs_off\": {recording_overhead:.4},\n"
    ));
    json.push_str("  \"target\": \"sparse >= 3x dense on lex_sweep_k4\",\n");
    json.push_str(&format!("  \"target_met\": {target_met}\n"));
    json.push_str("}\n");

    // The bin lives two levels below the workspace root.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decode_trial.json");
    std::fs::write(out, json).expect("write BENCH_decode_trial.json");
    println!("wrote {out}");
}
