//! Measures cold-start recovery time vs store size for both durable
//! backends and writes `BENCH_recovery.json` at the repository root.
//!
//! Each point builds a 96-device store under the system temp dir,
//! ingests N small objects, shuts down cleanly (which leaves the full
//! intent/commit journal on disk — only recovery truncates it), then
//! times the cold `ArchivalStore::open`: journal scan, sidecar load,
//! stripe-map rebuild.
//!
//! Floors (exact, not timing-dependent, so they hold in every build):
//! recovery finds every object, rolls nothing back after a clean
//! shutdown, and scans exactly two journal records per put.
//!
//! Usage: `cargo run --release -p tornado-bench --bin bench_recovery`.
//! `--check` verifies the floors without rewriting the JSON; `--quick` is
//! the CI smoke: small stores, JSON schema-validated in memory but never
//! written. Debug builds refuse to write so the committed file always
//! comes from a release run.

use tornado_bench::experiments::recovery;

fn main() {
    let check_only = std::env::args().any(|a| a == "--check");
    let quick = std::env::args().any(|a| a == "--quick");
    let counts: Vec<usize> = if quick { vec![2, 4, 8] } else { vec![16, 64, 256] };

    let r = recovery::measure(&counts);
    println!(
        "cold-start recovery: {} backends × {} store sizes, {} B objects, {} build",
        r.backends.len(),
        r.object_counts.len(),
        r.payload_bytes,
        if cfg!(debug_assertions) { "debug" } else { "release" }
    );
    for b in &r.backends {
        for p in &b.sweep {
            println!(
                "  {:<8} {:>5} objects: recovery {:>8} µs, open {:>8} µs, {:>6} journal records ({:.1} µs/object)",
                b.backend,
                p.objects,
                p.recovery_us,
                p.open_wall_us,
                p.journal_records,
                p.recovery_us as f64 / p.objects.max(1) as f64
            );
        }
    }

    // Hand-formatted JSON (the workspace deliberately has no serde); the
    // parser round-trip below keeps the formatting honest.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"recovery\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if cfg!(debug_assertions) { "debug" } else { "release" }
    ));
    json.push_str(&format!("  \"payload_bytes\": {},\n", r.payload_bytes));
    json.push_str(&format!(
        "  \"object_counts\": [{}],\n",
        r.object_counts.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", ")
    ));
    json.push_str("  \"backends\": [\n");
    for (i, b) in r.backends.iter().enumerate() {
        json.push_str(&format!("    {{\"backend\": \"{}\", \"sweep\": [\n", b.backend));
        for (j, p) in b.sweep.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"objects\": {}, \"data_bytes\": {}, \"recovery_us\": {}, \"open_wall_us\": {}, \"journal_records\": {}, \"objects_recovered\": {}, \"us_per_object\": {:.2}}}{}\n",
                p.objects,
                p.data_bytes,
                p.recovery_us,
                p.open_wall_us,
                p.journal_records,
                p.objects_recovered,
                p.recovery_us as f64 / p.objects.max(1) as f64,
                if j + 1 < b.sweep.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < r.backends.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    // Schema self-check: the JSON must parse and carry every field and
    // backend EXPERIMENTS.md and CI rely on.
    let doc = tornado_obs::json::parse(&json).expect("bench JSON must parse");
    for field in ["bench", "mode", "payload_bytes", "object_counts", "backends"] {
        assert!(doc.get(field).is_some(), "bench JSON is missing the '{field}' field");
    }
    let object_counts = match doc.get("object_counts") {
        Some(tornado_obs::Json::Arr(a)) => a.len(),
        other => panic!("'object_counts' must be an array, got {other:?}"),
    };
    assert!(object_counts >= 3, "need >= 3 store sizes, got {object_counts}");
    let backends = match doc.get("backends") {
        Some(tornado_obs::Json::Arr(a)) => a,
        other => panic!("'backends' must be an array, got {other:?}"),
    };
    assert_eq!(backends.len(), 2, "file + segment");
    for b in backends {
        for field in ["backend", "sweep"] {
            assert!(b.get(field).is_some(), "backend row missing '{field}'");
        }
        let sweep = match b.get("sweep") {
            Some(tornado_obs::Json::Arr(a)) => a,
            other => panic!("'sweep' must be an array, got {other:?}"),
        };
        assert_eq!(sweep.len(), counts.len(), "one sweep point per store size");
        for p in sweep {
            for field in [
                "objects",
                "data_bytes",
                "recovery_us",
                "open_wall_us",
                "journal_records",
                "objects_recovered",
                "us_per_object",
            ] {
                assert!(p.get(field).is_some(), "sweep point missing '{field}'");
            }
        }
    }

    // Sanity floors: exact recovery invariants, independent of build mode.
    for b in &r.backends {
        for p in &b.sweep {
            assert_eq!(p.objects_recovered, p.objects, "{}: lost objects", b.backend);
            assert_eq!(
                p.journal_records,
                p.objects * 2,
                "{}: intent + commit per clean put",
                b.backend
            );
        }
    }

    if quick {
        println!("--quick: schema valid, sanity floors hold, JSON not written");
        return;
    }
    if cfg!(debug_assertions) {
        println!("debug build: not writing JSON (commit release numbers only)");
        return;
    }
    if check_only {
        println!("--check: floors hold, JSON left untouched");
        return;
    }

    // The bin lives two levels below the workspace root.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(out, json).expect("write BENCH_recovery.json");
    println!("wrote {out}");
}
