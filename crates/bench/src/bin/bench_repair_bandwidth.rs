//! Runs the repair-bandwidth bake-off across the code zoo and writes
//! `BENCH_repair_bandwidth.json` at the repository root.
//!
//! Six generator families (tornado, doubled, shifted, regular-degree-4,
//! fixed-degree cascade, mirroring) are swept empirically — random
//! offline patterns through `plan_repair`, costs from the retrieval
//! planner's `RepairCost` — and the paper's RAID5/RAID6 drawer systems
//! ride along in closed form. Every code gets the same x-axis (devices
//! offline, 1..=8) and y-axes (P(loss), repair bytes per lost block,
//! devices contacted).
//!
//! Floors (exact, not timing-dependent, so they hold in every build):
//! mirroring repairs 1 block per lost block; RAID5 contacts the other 11
//! drawer members; tornado survives every k = 1 pattern.
//!
//! Usage: `cargo run --release -p tornado-bench --bin bench_repair_bandwidth`.
//! `--check` verifies the floors without rewriting the JSON; `--quick` is
//! the CI smoke: fewer trials, JSON schema-validated in memory but never
//! written. Debug builds refuse to write so the committed file always
//! comes from a release run.

use tornado_bench::experiments::repair_bandwidth;

fn main() {
    let check_only = std::env::args().any(|a| a == "--check");
    let quick = std::env::args().any(|a| a == "--quick");
    let trials: u64 = if quick { 100 } else { 2_000 };
    let ks: Vec<usize> = (1..=8).collect();
    let seed = 0x70_52_4E;

    let r = repair_bandwidth::measure(trials, &ks, seed);
    println!(
        "repair-bandwidth bake-off: {} codes, {} offline patterns per (code, k), {} KiB blocks, {} build",
        r.codes.len(),
        r.trials_per_k,
        r.block_bytes / 1024,
        if cfg!(debug_assertions) { "debug" } else { "release" }
    );
    for c in &r.codes {
        println!(
            "  {:<17} {:<8} overhead {:.2}  k=1: p_loss {:.4}, {:>5.1} blocks/lost, {:>5.1} devices   k=4: p_loss {:.4}",
            c.code,
            c.kind,
            c.overhead,
            c.at(1).p_loss,
            c.at(1).repair_blocks_per_lost,
            c.at(1).devices_contacted,
            c.at(4).p_loss,
        );
    }

    // Hand-formatted JSON (the workspace deliberately has no serde); the
    // parser round-trip below keeps the formatting honest.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"repair_bandwidth\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if cfg!(debug_assertions) { "debug" } else { "release" }
    ));
    json.push_str(&format!("  \"block_bytes\": {},\n", r.block_bytes));
    json.push_str(&format!("  \"trials_per_k\": {},\n", r.trials_per_k));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!(
        "  \"ks\": [{}],\n",
        ks.iter().map(|k| k.to_string()).collect::<Vec<_>>().join(", ")
    ));
    json.push_str("  \"codes\": [\n");
    for (i, c) in r.codes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"code\": \"{}\", \"kind\": \"{}\", \"nodes\": {}, \"data\": {}, \"overhead\": {:.4}, \"sweep\": [\n",
            c.code, c.kind, c.nodes, c.data, c.overhead
        ));
        for (j, p) in c.sweep.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"k\": {}, \"p_loss\": {:.6}, \"repair_blocks_per_lost\": {:.4}, \"repair_bytes_per_lost\": {:.1}, \"devices_contacted\": {:.4}, \"recovery_depth\": {:.4}}}{}\n",
                p.k,
                p.p_loss,
                p.repair_blocks_per_lost,
                p.repair_bytes_per_lost,
                p.devices_contacted,
                p.recovery_depth,
                if j + 1 < c.sweep.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < r.codes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    // Schema self-check: the JSON must parse and carry every field and
    // code EXPERIMENTS.md and CI rely on.
    let doc = tornado_obs::json::parse(&json).expect("bench JSON must parse");
    for field in ["bench", "block_bytes", "trials_per_k", "ks", "codes"] {
        assert!(
            doc.get(field).is_some(),
            "bench JSON is missing the '{field}' field"
        );
    }
    let codes = match doc.get("codes") {
        Some(tornado_obs::Json::Arr(a)) => a,
        other => panic!("'codes' must be an array, got {other:?}"),
    };
    assert!(
        codes.len() >= 8,
        "expected >= 6 graph families + 2 analytic rows, got {}",
        codes.len()
    );
    for c in codes {
        for field in ["code", "kind", "overhead", "sweep"] {
            assert!(c.get(field).is_some(), "code row missing '{field}'");
        }
        let sweep = match c.get("sweep") {
            Some(tornado_obs::Json::Arr(a)) => a,
            other => panic!("'sweep' must be an array, got {other:?}"),
        };
        assert_eq!(sweep.len(), ks.len(), "one sweep point per k");
        for p in sweep {
            for field in [
                "k",
                "p_loss",
                "repair_blocks_per_lost",
                "repair_bytes_per_lost",
                "devices_contacted",
                "recovery_depth",
            ] {
                assert!(p.get(field).is_some(), "sweep point missing '{field}'");
            }
        }
    }

    // Sanity floors: exact properties of the codes, independent of trial
    // count and build mode.
    let mirror = r.code("mirror").at(1);
    assert!(
        (mirror.repair_blocks_per_lost - 1.0).abs() < 1e-12,
        "mirroring must repair exactly 1 block per lost block, got {}",
        mirror.repair_blocks_per_lost
    );
    let raid5 = r.code("raid5").at(1);
    assert_eq!(
        raid5.devices_contacted, 11.0,
        "RAID5 rebuild must contact the other n - 1 = 11 drawer members"
    );
    assert_eq!(
        r.code("tornado").at(1).p_loss,
        0.0,
        "tornado must survive every single-device loss"
    );

    if quick {
        println!("--quick: schema valid, sanity floors hold, JSON not written");
        return;
    }
    if cfg!(debug_assertions) {
        println!("debug build: not writing JSON (commit release numbers only)");
        return;
    }
    if check_only {
        println!("--check: floors hold, JSON left untouched");
        return;
    }

    // The bin lives two levels below the workspace root.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repair_bandwidth.json");
    std::fs::write(out, json).expect("write BENCH_repair_bandwidth.json");
    println!("wrote {out}");
}
