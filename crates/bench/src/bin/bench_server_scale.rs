//! Connection-count scaling bench for the event-loop server; writes
//! `BENCH_server_scale.json` at the repository root.
//!
//! Two sections:
//!
//! * `sweep` — an open-loop GET stream at a fixed 1,000 ops/s offered
//!   rate, multiplexed over 64 → 10,000 concurrent connections by a
//!   single driver thread. Fixed load + growing connection count
//!   isolates the cost of *holding and serving sockets*; the deliverable
//!   is the p99-vs-connections curve (latency measured from scheduled
//!   arrival, so backlog can never hide as reduced throughput).
//! * `ab_64_connections` — closed-loop event-loop vs
//!   thread-per-connection at 64 connections, same seed and mix.
//!
//! Floors (asserted here, not just reported):
//!
//! * the sweep establishes ≥ 10,000 concurrent connections (≥ 1,000
//!   under `--quick`) with zero errors and zero unanswered requests;
//! * p99 at every point stays bounded (≤ 2 s — an open-loop stream that
//!   backlogs past that has stopped keeping up);
//! * event-loop ops/s at 64 connections ≥ 0.9× thread-per-connection.
//!
//! The 10k sweep point needs two sockets per connection, which does not
//! fit one process's fd budget under a 20k hard cap — the sweep server
//! therefore runs as a separate process (the sibling `tornado` binary;
//! build the workspace first). Usage: `cargo run --release -p
//! tornado-bench --bin bench_server_scale`. `--check` verifies floors
//! without rewriting the JSON; `--quick` is the CI smoke (smaller sweep,
//! JSON schema-validated in memory but never written). Debug builds
//! refuse to write since their numbers are meaningless.

use tornado_bench::experiments::server_scale;

fn main() {
    let check_only = std::env::args().any(|a| a == "--check");
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = 42u64;

    let r = server_scale::measure(quick, seed);

    println!(
        "server scale: {} sweep server, {} shards, {} build",
        r.sweep_server,
        r.shards,
        if cfg!(debug_assertions) { "debug" } else { "release" }
    );
    println!(
        "  {:>11}  {:>10}  {:>9}  {:>9}  {:>6}  {:>6}  {:>6}",
        "connections", "ops/s", "p50 us", "p99 us", "busy", "shed", "errors"
    );
    for p in &r.sweep {
        println!(
            "  {:>11}  {:>10.0}  {:>9}  {:>9}  {:>6}  {:>6}  {:>6}",
            p.connected, p.achieved_rate, p.p50_us, p.p99_us, p.busy, p.shed, p.errors
        );
    }
    println!(
        "  A/B at {} connections: threaded {:.0} ops/s (p99 {} us)   event-loop {:.0} ops/s (p99 {} us)   ratio {:.2}x",
        r.ab_connections,
        r.ab_threaded.ops_per_sec,
        r.ab_threaded.p99_us,
        r.ab_event_loop.ops_per_sec,
        r.ab_event_loop.p99_us,
        r.ab_ratio()
    );

    let conn_floor = if quick { 1_000 } else { 10_000 };
    let p99_ceiling_us = 2_000_000u64;
    let ab_floor = 0.9;
    let max_conns = r.max_connections();
    let worst_p99 = r.sweep.iter().map(|p| p.p99_us).max().unwrap_or(0);
    let target_met =
        max_conns >= 10_000 && worst_p99 <= p99_ceiling_us && r.ab_ratio() >= ab_floor;
    println!(
        "  target: >=10k conns, p99 <= {p99_ceiling_us} us, event-loop >= {ab_floor}x threaded at 64 conns -> {}",
        if target_met { "MET" } else { "NOT MET" }
    );

    // Hand-formatted JSON (the workspace deliberately has no serde); the
    // parser round-trip below keeps the formatting honest.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"server_scale\",\n");
    json.push_str("  \"graph\": \"tornado_graph_1 (96 nodes, 48 data)\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if cfg!(debug_assertions) { "debug" } else { "release" }
    ));
    json.push_str(&format!("  \"sweep_server\": \"{}\",\n", r.sweep_server));
    json.push_str(&format!("  \"shards\": {},\n", r.shards));
    json.push_str("  \"discipline\": \"open_loop_1000_ops_per_sec_scheduled_latency\",\n");
    json.push_str("  \"sweep\": [\n");
    for (i, p) in r.sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"connections\": {}, \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"busy\": {}, \"shed\": {}, \"errors\": {}, \"unanswered\": {}}}{}\n",
            p.connected,
            p.achieved_rate,
            p.p50_us,
            p.p99_us,
            p.busy,
            p.shed,
            p.errors,
            p.unanswered,
            if i + 1 < r.sweep.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"ab_64_connections\": {{\"threaded_ops_per_sec\": {:.1}, \"threaded_p99_us\": {}, \"event_loop_ops_per_sec\": {:.1}, \"event_loop_p99_us\": {}, \"ratio\": {:.3}}},\n",
        r.ab_threaded.ops_per_sec,
        r.ab_threaded.p99_us,
        r.ab_event_loop.ops_per_sec,
        r.ab_event_loop.p99_us,
        r.ab_ratio()
    ));
    json.push_str(
        "  \"target\": \">=10000 concurrent connections with bounded p99; event-loop >= 0.9x threaded at 64 connections\",\n",
    );
    json.push_str(&format!("  \"target_met\": {target_met}\n"));
    json.push_str("}\n");

    // Schema self-check: the JSON must parse and carry every field the
    // docs (EXPERIMENTS.md) and CI rely on.
    let doc = tornado_obs::json::parse(&json).expect("bench JSON must parse");
    for field in ["bench", "sweep_server", "shards", "sweep", "ab_64_connections", "target_met"] {
        assert!(doc.get(field).is_some(), "bench JSON is missing the '{field}' field");
    }
    let sweep_rows = match doc.get("sweep") {
        Some(tornado_obs::Json::Arr(rows)) => rows.len(),
        _ => 0,
    };
    assert_eq!(sweep_rows, r.sweep.len(), "sweep rows survive the JSON round-trip");

    for p in &r.sweep {
        assert_eq!(
            p.connected, p.connections,
            "only {} of {} connections established",
            p.connected, p.connections
        );
        assert_eq!(p.errors, 0, "sweep at {} conns hit {} errors", p.connected, p.errors);
        assert_eq!(
            p.unanswered, 0,
            "sweep at {} conns left {} requests unanswered",
            p.connected, p.unanswered
        );
        assert_eq!(p.payload_mismatches, 0, "sweep GETs must verify byte-for-byte");
        assert!(
            p.p99_us <= p99_ceiling_us,
            "p99 {} us at {} conns exceeds the {} us ceiling",
            p.p99_us,
            p.connected,
            p99_ceiling_us
        );
    }
    assert!(
        max_conns >= conn_floor,
        "sweep reached {max_conns} concurrent connections — floor is {conn_floor}"
    );
    assert!(
        r.ab_ratio() >= ab_floor,
        "event-loop at {:.0} ops/s is {:.2}x threaded ({:.0} ops/s) — floor is {ab_floor}x",
        r.ab_event_loop.ops_per_sec,
        r.ab_ratio(),
        r.ab_threaded.ops_per_sec
    );

    if quick {
        println!("--quick: connection, latency, and A/B floors hold, JSON schema valid");
        return;
    }
    if cfg!(debug_assertions) {
        println!("debug build: numbers are meaningless, not writing JSON");
        return;
    }
    if check_only {
        println!("--check: floors hold, JSON left untouched");
        return;
    }

    // The bin lives two levels below the workspace root.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server_scale.json");
    std::fs::write(out, json).expect("write BENCH_server_scale.json");
    println!("wrote {out}");
}
