//! Regenerates the artefact implemented by
//! `tornado_bench::experiments::fed_profile` (see that module's docs).

fn main() {
    let effort = tornado_bench::Effort::from_env();
    print!("{}", tornado_bench::experiments::fed_profile::run(&effort));
}
