//! Regenerates the paper artefact implemented by
//! `tornado_bench::experiments::fig3_table1` (see that module's docs).

fn main() {
    let effort = tornado_bench::Effort::from_env();
    print!("{}", tornado_bench::experiments::fig3_table1::run(&effort));
}
