//! Regenerates the paper artefact implemented by
//! `tornado_bench::experiments::fig5_table3` (see that module's docs).

fn main() {
    let effort = tornado_bench::Effort::from_env();
    print!("{}", tornado_bench::experiments::fig5_table3::run(&effort));
}
