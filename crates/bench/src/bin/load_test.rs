//! Standalone runner for the serving-layer load test.

use tornado_bench::experiments::load_test;
use tornado_bench::Effort;

fn main() {
    print!("{}", load_test::run(&Effort::from_env()));
}
