//! Regenerates the artefact implemented by
//! `tornado_bench::experiments::plank_overhead` (see that module's docs).

fn main() {
    let effort = tornado_bench::Effort::from_env();
    print!("{}", tornado_bench::experiments::plank_overhead::run(&effort));
}
