//! Runs every experiment in paper order, printing one combined report —
//! the source of EXPERIMENTS.md's measured columns.

use std::time::Instant;
use tornado_bench::experiments as exp;
use tornado_bench::Effort;

/// One experiment: display name and its entry point.
type Experiment = (&'static str, fn(&Effort) -> String);

fn main() {
    let effort = Effort::from_env();
    println!("# Tornado Codes for Archival Storage — full experiment suite");
    println!("# effort: {effort:?}\n");
    let experiments: Vec<Experiment> = vec![
        ("Eq. 1 validation", exp::eq1::run),
        ("Figure 3 + Table 1", exp::fig3_table1::run),
        ("Figure 4 + Table 2", exp::fig4_table2::run),
        ("Figure 5 + Table 3", exp::fig5_table3::run),
        ("Figure 6 + Table 4", exp::fig6_table4::run),
        ("Table 5", exp::table5::run),
        ("Table 6", exp::table6::run),
        ("Table 7", exp::table7::run),
        ("Guided retrieval ablation", exp::retrieval::run),
        ("Degree sweep ablation", exp::degree_sweep::run),
        ("Incremental overhead (Plank metric)", exp::plank_overhead::run),
        ("Scrub-interval sweep", exp::scrub_sweep::run),
        ("Size sweep (Plank regime)", exp::size_sweep::run),
        ("Federated failure profiles", exp::fed_profile::run),
    ];
    for (name, run) in experiments {
        let t = Instant::now();
        let report = run(&effort);
        println!("{report}");
        println!("# [{name}] completed in {:.1?}\n", t.elapsed());
    }
}
