//! Runs every experiment in paper order, printing one combined report —
//! the source of EXPERIMENTS.md's measured columns.
//!
//! Besides the per-experiment reports, the run emits:
//!
//! * a final per-experiment timing table, and
//! * `run_manifest.json` (override with `--manifest PATH`) recording the
//!   suite configuration and wall time of each experiment, so a finished
//!   run is auditable without re-parsing its stdout.

use std::time::Instant;
use tornado_bench::experiments as exp;
use tornado_bench::Effort;
use tornado_obs::Json;

/// One experiment: display name and its entry point.
type Experiment = (&'static str, fn(&Effort) -> String);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let manifest_path = args
        .iter()
        .position(|a| a == "--manifest")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("run_manifest.json");

    let effort = Effort::from_env();
    println!("# Tornado Codes for Archival Storage — full experiment suite");
    println!("# effort: {effort:?}\n");
    let experiments: Vec<Experiment> = vec![
        ("Eq. 1 validation", exp::eq1::run),
        ("Figure 3 + Table 1", exp::fig3_table1::run),
        ("Figure 4 + Table 2", exp::fig4_table2::run),
        ("Figure 5 + Table 3", exp::fig5_table3::run),
        ("Figure 6 + Table 4", exp::fig6_table4::run),
        ("Table 5", exp::table5::run),
        ("Table 6", exp::table6::run),
        ("Table 7", exp::table7::run),
        ("Guided retrieval ablation", exp::retrieval::run),
        ("Degree sweep ablation", exp::degree_sweep::run),
        ("Incremental overhead (Plank metric)", exp::plank_overhead::run),
        ("Scrub-interval sweep", exp::scrub_sweep::run),
        ("Size sweep (Plank regime)", exp::size_sweep::run),
        ("Federated failure profiles", exp::fed_profile::run),
        ("Serving-layer load test", exp::load_test::run),
        ("Event-loop connection scaling", exp::server_scale::run),
        ("Data-plane kernels", exp::data_plane::run),
        ("Checksum-gated scrub tiers", exp::data_plane::run_scrub_modes),
        ("Repair-bandwidth bake-off", exp::repair_bandwidth::run),
        ("Cold-start recovery", exp::recovery::run),
    ];

    let suite_start = Instant::now();
    let mut timings: Vec<(&'static str, u64)> = Vec::new();
    for (name, run) in experiments {
        let t = Instant::now();
        let report = run(&effort);
        let wall_ms = t.elapsed().as_millis() as u64;
        println!("{report}");
        println!("# [{name}] completed in {wall_ms} ms\n");
        timings.push((name, wall_ms));
    }
    let total_ms = suite_start.elapsed().as_millis() as u64;

    println!("# Timing summary");
    println!("# {:<38} {:>10}", "experiment", "wall ms");
    for (name, wall_ms) in &timings {
        println!("# {name:<38} {wall_ms:>10}");
    }
    println!("# {:<38} {:>10}", "TOTAL", total_ms);

    let mut manifest_fields = vec![
        ("suite".into(), Json::Str("tornado-run-all".into())),
        ("mode".into(), Json::Str(build_mode().into())),
        ("mc_trials".into(), Json::U64(effort.mc_trials)),
        (
            "exhaustive_max_k".into(),
            Json::U64(effort.exhaustive_max_k as u64),
        ),
        ("seed".into(), Json::U64(effort.seed)),
        ("total_wall_ms".into(), Json::U64(total_ms)),
        (
            "experiments".into(),
            Json::Arr(
                timings
                    .iter()
                    .map(|&(name, wall_ms)| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(name.into())),
                            ("wall_ms".into(), Json::U64(wall_ms)),
                            ("output".into(), Json::Str("stdout".into())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    // The load test is the one experiment whose headline numbers matter
    // beyond its wall time; surface them as a manifest summary row.
    if let Some(s) = *exp::load_test::LAST_SUMMARY.lock().unwrap() {
        manifest_fields.push((
            "load_test".into(),
            Json::Obj(vec![
                ("ops".into(), Json::U64(s.ops)),
                ("ops_per_sec".into(), Json::F64(s.ops_per_sec)),
                ("latency_p99_us".into(), Json::U64(s.p99_us)),
                ("degraded_reads".into(), Json::U64(s.degraded_reads)),
                ("payload_mismatches".into(), Json::U64(s.payload_mismatches)),
                ("ops_per_sec_untraced".into(), Json::F64(s.ops_per_sec_untraced)),
                ("ops_per_sec_traced_1_in_256".into(), Json::F64(s.ops_per_sec_traced)),
                ("tracing_overhead_frac".into(), Json::F64(s.tracing_overhead_frac)),
                ("traced_spans_recorded".into(), Json::U64(s.traced_spans_recorded)),
                ("ops_per_sec_health_off".into(), Json::F64(s.ops_per_sec_health_off)),
                ("ops_per_sec_health_on".into(), Json::F64(s.ops_per_sec_health_on)),
                ("health_recomputes".into(), Json::U64(s.health_recomputes)),
                ("health_compute_frac".into(), Json::F64(s.health_compute_frac)),
            ]),
        ));
    }
    // Likewise the connection-scaling run: its sweep shape and A/B ratio
    // are the reviewable outcome.
    if let Some(s) = *exp::server_scale::LAST_SUMMARY.lock().unwrap() {
        manifest_fields.push((
            "server_scale".into(),
            Json::Obj(vec![
                ("max_connections".into(), Json::U64(s.max_connections as u64)),
                ("p99_at_max_us".into(), Json::U64(s.p99_at_max_us)),
                ("ops_per_sec_at_max".into(), Json::F64(s.rate_at_max)),
                ("ab_event_loop_ops_per_sec".into(), Json::F64(s.ops_per_sec_event_loop)),
                ("ab_threaded_ops_per_sec".into(), Json::F64(s.ops_per_sec_threaded)),
                ("ab_ratio".into(), Json::F64(s.ab_ratio)),
            ]),
        ));
    }
    let manifest = Json::Obj(manifest_fields);
    match std::fs::write(manifest_path, manifest.to_pretty()) {
        Ok(()) => println!("# wrote {manifest_path}"),
        Err(e) => eprintln!("# could not write {manifest_path}: {e}"),
    }
}

fn build_mode() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}
