//! Regenerates the artefact implemented by
//! `tornado_bench::experiments::scrub_sweep` (see that module's docs).

fn main() {
    let effort = tornado_bench::Effort::from_env();
    print!("{}", tornado_bench::experiments::scrub_sweep::run(&effort));
}
