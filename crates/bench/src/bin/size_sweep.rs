//! Regenerates the artefact implemented by
//! `tornado_bench::experiments::size_sweep` (see that module's docs).

fn main() {
    let effort = tornado_bench::Effort::from_env();
    print!("{}", tornado_bench::experiments::size_sweep::run(&effort));
}
