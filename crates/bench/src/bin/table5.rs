//! Regenerates the paper artefact implemented by
//! `tornado_bench::experiments::table5` (see that module's docs).

fn main() {
    let effort = tornado_bench::Effort::from_env();
    print!("{}", tornado_bench::experiments::table5::run(&effort));
}
