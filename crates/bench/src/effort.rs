//! Experiment fidelity configuration.

/// Fidelity knobs for the experiment suite.
///
/// The paper's full suite is 962 million Monte-Carlo cases plus exhaustive
/// search to `C(96, 6)` — about 34 CPU-days per graph. The estimators here
/// are identical; only the trial counts differ, so scaling up is purely a
/// matter of these knobs (see DESIGN.md's substitution table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Effort {
    /// Monte-Carlo trials per offline-count data point.
    pub mc_trials: u64,
    /// Exhaustive worst-case search depth (`k_max`).
    pub exhaustive_max_k: usize,
    /// Master seed for all randomised steps.
    pub seed: u64,
}

impl Default for Effort {
    fn default() -> Self {
        Self {
            mc_trials: 20_000,
            exhaustive_max_k: 4,
            seed: 0x70_52_4E,
        }
    }
}

impl Effort {
    /// Reads `TORNADO_TRIALS`, `TORNADO_MAX_K`, and `TORNADO_SEED` from the
    /// environment, falling back to the defaults.
    pub fn from_env() -> Self {
        let mut e = Self::default();
        if let Some(t) = read_env("TORNADO_TRIALS") {
            e.mc_trials = t;
        }
        if let Some(k) = read_env("TORNADO_MAX_K") {
            e.exhaustive_max_k = k as usize;
        }
        if let Some(s) = read_env("TORNADO_SEED") {
            e.seed = s;
        }
        e
    }

    /// A tiny-effort configuration for unit tests of the harness itself.
    pub fn smoke() -> Self {
        Self {
            mc_trials: 200,
            exhaustive_max_k: 2,
            seed: 7,
        }
    }
}

fn read_env(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_laptop_scale() {
        let e = Effort::default();
        assert_eq!(e.mc_trials, 20_000);
        assert_eq!(e.exhaustive_max_k, 4);
    }

    #[test]
    fn smoke_is_smaller() {
        assert!(Effort::smoke().mc_trials < Effort::default().mc_trials);
    }
}
