//! Data-plane kernel throughput A/B: word-wide vs byte-serial scalar.
//!
//! Measures the two kernels in isolation (`xor_into`, `mul_acc`) and the
//! paths built from them end-to-end (stripe encode, erasure decode, a
//! scrub pass), each as MB/s with the word-wide kernels against the
//! byte-serial `scalar` oracle. The end-to-end scalar side is produced by
//! [`tornado_codec::kernels::set_force_scalar`] — same code, same pools,
//! same graph, only the inner loops differ.
//!
//! The scalar baseline is genuinely one-byte-at-a-time (its loop index is
//! threaded through `black_box`, so the optimiser cannot vectorise it);
//! the speedups quantify what the word-wide layout buys over byte-serial
//! execution, not over whatever autovectorisation would have rescued.

use crate::effort::Effort;
use std::fmt::Write as _;
use std::time::Instant;
use tornado_codec::gf256::Gf256;
use tornado_codec::{kernels, pool, Codec};
use tornado_store::{ArchivalStore, ScrubMode, Scrubber};

/// One measured A/B case.
#[derive(Clone, Copy, Debug)]
pub struct Case {
    /// Case label (stable across the JSON schema and EXPERIMENTS.md).
    pub name: &'static str,
    /// Byte-serial oracle throughput, decimal MB/s.
    pub scalar_mb_s: f64,
    /// Word-wide kernel throughput, decimal MB/s.
    pub word_mb_s: f64,
}

impl Case {
    /// Word-wide over scalar ratio.
    pub fn speedup(&self) -> f64 {
        self.word_mb_s / self.scalar_mb_s
    }
}

/// A full data-plane measurement.
pub struct DataPlaneReport {
    /// Block size measured, bytes.
    pub block_bytes: usize,
    /// Timed samples per case side (median taken).
    pub samples: usize,
    /// Kernel and end-to-end cases, in fixed order:
    /// `xor_into`, `mul_acc`, `encode`, `decode`, `scrub`.
    pub cases: Vec<Case>,
    /// Block-pool hits during the measurement.
    pub pool_hits: u64,
    /// Block-pool misses during the measurement.
    pub pool_misses: u64,
    /// Bytes through the XOR kernel during the measurement.
    pub bytes_xored: u64,
    /// Bytes through the GF multiply kernel during the measurement.
    pub bytes_muled: u64,
    /// Bytes through the checksum kernel during the measurement.
    pub bytes_hashed: u64,
}

impl DataPlaneReport {
    /// Looks a case up by name.
    pub fn case(&self, name: &str) -> &Case {
        self.cases
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("no case {name}"))
    }

    /// Pool hit fraction over the measurement window.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }
}

/// Median ns per inner iteration of `f` (which must run `batch` iterations
/// per call), over `samples` timed calls after one warmup call.
fn median_ns(batch: u64, samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup: touch caches, fault pages, warm the pools
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    per_iter[per_iter.len() / 2]
}

/// Decimal MB/s for `bytes` processed in `ns` nanoseconds.
fn mb_s(bytes: usize, ns: f64) -> f64 {
    bytes as f64 / ns * 1000.0
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

/// Runs the whole A/B at one block size. `samples` timed calls per side;
/// medians reported.
pub fn measure(block_bytes: usize, samples: usize) -> DataPlaneReport {
    let pool0 = (
        pool::metrics().hits.get(),
        pool::metrics().misses.get(),
    );
    let kern0 = (
        kernels::metrics().bytes_xored.get(),
        kernels::metrics().bytes_muled.get(),
        kernels::metrics().bytes_hashed.get(),
    );
    let mut cases = Vec::new();

    // Kernel-level: xor_into. The word side is measured through the public
    // dispatch (what the data plane actually calls); the scalar side calls
    // the oracle directly.
    let word_batch = ((4 << 20) / block_bytes.max(1)).clamp(1, 4096) as u64;
    let scalar_batch = ((1 << 20) / block_bytes.max(1)).clamp(1, 1024) as u64;
    let src = pattern(block_bytes, 3);
    let mut dst = pattern(block_bytes, 7);
    let word_ns = median_ns(word_batch, samples, || {
        for _ in 0..word_batch {
            kernels::xor_into(std::hint::black_box(&mut dst), std::hint::black_box(&src));
        }
    });
    let scalar_ns = median_ns(scalar_batch, samples, || {
        for _ in 0..scalar_batch {
            kernels::scalar::xor_into(std::hint::black_box(&mut dst), std::hint::black_box(&src));
        }
    });
    cases.push(Case {
        name: "xor_into",
        scalar_mb_s: mb_s(block_bytes, scalar_ns),
        word_mb_s: mb_s(block_bytes, word_ns),
    });

    // Kernel-level: mul_acc with a non-trivial coefficient (table build
    // included on both sides, amortised over the block).
    let field = Gf256::new();
    let word_ns = median_ns(word_batch, samples, || {
        for _ in 0..word_batch {
            kernels::mul_acc(
                &field,
                std::hint::black_box(&mut dst),
                std::hint::black_box(&src),
                0x53,
            );
        }
    });
    let scalar_ns = median_ns(scalar_batch, samples, || {
        for _ in 0..scalar_batch {
            kernels::scalar::mul_acc(
                &field,
                std::hint::black_box(&mut dst),
                std::hint::black_box(&src),
                0x53,
            );
        }
    });
    cases.push(Case {
        name: "mul_acc",
        scalar_mb_s: mb_s(block_bytes, scalar_ns),
        word_mb_s: mb_s(block_bytes, word_ns),
    });

    // End-to-end A/B through the force_scalar switch: identical code and
    // pooling on both sides, only the kernel dispatch differs.
    let graph = tornado_core::tornado_graph_1();
    let codec = Codec::new(&graph);
    let k = graph.num_data();
    let data: Vec<Vec<u8>> = (0..k).map(|i| pattern(block_bytes, i as u8)).collect();
    let data_bytes = k * block_bytes;

    let mut encode_once = || {
        let input: Vec<Vec<u8>> =
            pool::with_thread_pool(|p| data.iter().map(|b| p.take_copy(b)).collect());
        let mut out = codec.encode_owned(input).expect("encode");
        pool::with_thread_pool(|p| {
            for b in out.drain(..) {
                p.recycle(b);
            }
        });
    };
    let ab = |f: &mut dyn FnMut()| {
        let word_ns = median_ns(1, samples, &mut *f);
        kernels::set_force_scalar(true);
        let scalar_ns = median_ns(1, samples, &mut *f);
        kernels::set_force_scalar(false);
        (scalar_ns, word_ns)
    };
    let (scalar_ns, word_ns) = ab(&mut encode_once);
    cases.push(Case {
        name: "encode",
        scalar_mb_s: mb_s(data_bytes, scalar_ns),
        word_mb_s: mb_s(data_bytes, word_ns),
    });

    // Decode: four data blocks erased, recovered by the peeling schedule.
    let blocks = codec.encode(&data).expect("encode");
    let erased = [0usize, 7, 19, 33];
    let mut stored: Vec<Option<Vec<u8>>> = blocks.into_iter().map(Some).collect();
    let mut decode_once = || {
        pool::with_thread_pool(|p| {
            for &e in &erased {
                if let Some(b) = stored[e].take() {
                    p.recycle(b);
                }
            }
        });
        let report = codec.decode(&mut stored).expect("decode");
        assert!(report.complete());
    };
    let (scalar_ns, word_ns) = ab(&mut decode_once);
    cases.push(Case {
        name: "decode",
        scalar_mb_s: mb_s(erased.len() * block_bytes, scalar_ns),
        word_mb_s: mb_s(erased.len() * block_bytes, word_ns),
    });

    // Scrub: a small store with one failed device; every pass reads every
    // stripe and decodes the missing block (no repair, so each pass does
    // identical work). Pinned to `ScrubMode::Full` — this row tracks the
    // historical full-read data path; the tiered modes get their own A/B
    // in [`measure_scrub_modes`].
    let store = ArchivalStore::new(tornado_core::tornado_graph_1());
    let objects = 2usize;
    let payload = vec![0xA5u8; k * block_bytes - 8];
    for i in 0..objects {
        store.put(&format!("bench-{i}"), &payload).expect("put");
    }
    store.fail_device(3).expect("fail");
    let n = graph.num_nodes();
    let scrubber = Scrubber::new(1);
    let mut scrub_once = || {
        let out = scrubber.run(&store, 5, false, ScrubMode::Full);
        assert_eq!(out.degraded_count(), objects);
    };
    let (scalar_ns, word_ns) = ab(&mut scrub_once);
    let scrub_bytes = objects * (n - 1) * block_bytes;
    cases.push(Case {
        name: "scrub",
        scalar_mb_s: mb_s(scrub_bytes, scalar_ns),
        word_mb_s: mb_s(scrub_bytes, word_ns),
    });

    DataPlaneReport {
        block_bytes,
        samples,
        cases,
        pool_hits: pool::metrics().hits.get() - pool0.0,
        pool_misses: pool::metrics().misses.get() - pool0.1,
        bytes_xored: kernels::metrics().bytes_xored.get() - kern0.0,
        bytes_muled: kernels::metrics().bytes_muled.get() - kern0.1,
        bytes_hashed: kernels::metrics().bytes_hashed.get() - kern0.2,
    }
}

/// One scrub-tier A/B case: the tier under test against the PR 5 data
/// path (full read + byte-serial checksum + decode on damage).
///
/// All three throughputs use the same nominal denominator — the bytes of
/// archive the pass covers (`objects × n × block_bytes`) — so the ratios
/// are pure wall-time ratios and "MB/s" reads as *archive covered per
/// second*, which is the number an operator planning scrub cadence needs.
#[derive(Clone, Copy, Debug)]
pub struct ScrubModeCase {
    /// Case label (stable across the JSON schema and EXPERIMENTS.md).
    pub name: &'static str,
    /// Historical baseline: `ScrubMode::Full` with byte-serial kernels.
    pub baseline_mb_s: f64,
    /// `ScrubMode::Full` with word-wide kernels (isolates the copy/decode
    /// cost from the checksum-kernel win).
    pub full_word_mb_s: f64,
    /// The tier under test with word-wide kernels.
    pub mode_mb_s: f64,
}

impl ScrubModeCase {
    /// Tier over the PR 5 full-read byte-serial baseline.
    pub fn speedup_vs_baseline(&self) -> f64 {
        self.mode_mb_s / self.baseline_mb_s
    }

    /// Tier over word-wide full decode (what checksum gating alone buys).
    pub fn speedup_vs_full(&self) -> f64 {
        self.mode_mb_s / self.full_word_mb_s
    }
}

/// A full scrub-tier measurement.
pub struct ScrubModeReport {
    /// Block size measured, bytes.
    pub block_bytes: usize,
    /// Timed samples per case side (median taken).
    pub samples: usize,
    /// Tier cases, in fixed order:
    /// `verify_clean`, `verify_dirty`, `incremental_clean`.
    pub cases: Vec<ScrubModeCase>,
    /// Bytes through the checksum kernel during the measurement.
    pub bytes_hashed: u64,
}

impl ScrubModeReport {
    /// Looks a case up by name.
    pub fn case(&self, name: &str) -> &ScrubModeCase {
        self.cases
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("no case {name}"))
    }
}

/// Measures the three scrub tiers against the full-read baseline.
///
/// * `verify_clean` — hash-verify pass over an undamaged store: the
///   default scrub, where the win is copy elimination × word-wide hashing.
/// * `verify_dirty` — hash-verify with one failed device: every stripe
///   still pays the decode, so the gain is just the healthy blocks that
///   skipped the copy.
/// * `incremental_clean` — warm skip tier over an undamaged store: the
///   steady-state background scrub, bounded by the generation-map walk.
pub fn measure_scrub_modes(block_bytes: usize, samples: usize) -> ScrubModeReport {
    let hash0 = kernels::metrics().bytes_hashed.get();
    let graph = tornado_core::tornado_graph_1();
    let k = graph.num_data();
    let n = graph.num_nodes();
    let objects = 2usize;
    let payload = vec![0xA5u8; k * block_bytes - 8];
    let nominal = objects * n * block_bytes;

    let clean = ArchivalStore::new(tornado_core::tornado_graph_1());
    let dirty = ArchivalStore::new(tornado_core::tornado_graph_1());
    for i in 0..objects {
        clean.put(&format!("bench-{i}"), &payload).expect("put");
        dirty.put(&format!("bench-{i}"), &payload).expect("put");
    }
    dirty.fail_device(3).expect("fail");

    // One scrubber per (store, timing block): clean marks must not leak a
    // skip tier into a Verify/Full measurement.
    let time = |store: &ArchivalStore, mode: ScrubMode, force: bool| -> f64 {
        let scrubber = Scrubber::new(1);
        if mode == ScrubMode::Incremental {
            // Warm the skip tier: steady state, not first-pass discovery.
            scrubber.run(store, 5, false, mode);
        }
        kernels::set_force_scalar(force);
        let ns = median_ns(1, samples, || {
            let out = scrubber.run(store, 5, false, mode);
            assert_eq!(out.stripes.len(), objects);
        });
        kernels::set_force_scalar(false);
        mb_s(nominal, ns)
    };

    let mut cases = Vec::new();
    for (name, store, mode) in [
        ("verify_clean", &clean, ScrubMode::Verify),
        ("verify_dirty", &dirty, ScrubMode::Verify),
        ("incremental_clean", &clean, ScrubMode::Incremental),
    ] {
        cases.push(ScrubModeCase {
            name,
            baseline_mb_s: time(store, ScrubMode::Full, true),
            full_word_mb_s: time(store, ScrubMode::Full, false),
            mode_mb_s: time(store, mode, false),
        });
    }

    ScrubModeReport {
        block_bytes,
        samples,
        cases,
        bytes_hashed: kernels::metrics().bytes_hashed.get() - hash0,
    }
}

/// Runs the scrub-tier A/B and formats the throughput table.
pub fn run_scrub_modes(effort: &Effort) -> String {
    let smoke = effort.mc_trials < 1_000;
    let (block_bytes, samples) = if smoke { (4096, 3) } else { (65536, 7) };
    let r = measure_scrub_modes(block_bytes, samples);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Checksum-gated scrub tiers vs full-read baseline, {} KiB blocks, archive MB/s (decimal)",
        r.block_bytes / 1024
    );
    let _ = writeln!(
        out,
        "case, baseline_mb_s, full_word_mb_s, mode_mb_s, vs_baseline, vs_full"
    );
    for c in &r.cases {
        let _ = writeln!(
            out,
            "{}, {:.0}, {:.0}, {:.0}, {:.2}, {:.2}",
            c.name,
            c.baseline_mb_s,
            c.full_word_mb_s,
            c.mode_mb_s,
            c.speedup_vs_baseline(),
            c.speedup_vs_full(),
        );
    }
    let _ = writeln!(
        out,
        "checksum kernel volume: {:.1} MB hashed",
        r.bytes_hashed as f64 / 1e6,
    );
    out
}

/// Runs the A/B and formats the throughput table.
pub fn run(effort: &Effort) -> String {
    // Smoke efforts shrink the block so harness tests stay fast; the
    // committed numbers come from the release-mode bench bin at 64 KiB.
    let smoke = effort.mc_trials < 1_000;
    let (block_bytes, samples) = if smoke { (4096, 3) } else { (65536, 7) };
    let r = measure(block_bytes, samples);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Data-plane kernels — word-wide vs byte-serial scalar, {} KiB blocks, MB/s (decimal)",
        r.block_bytes / 1024
    );
    let _ = writeln!(out, "case, scalar_mb_s, word_mb_s, speedup");
    for c in &r.cases {
        let _ = writeln!(
            out,
            "{}, {:.0}, {:.0}, {:.2}",
            c.name, c.scalar_mb_s, c.word_mb_s, c.speedup()
        );
    }
    let _ = writeln!(
        out,
        "pool: {} hits / {} misses ({:.1}% hit rate); kernel volume: {:.1} MB xored, {:.1} MB muled",
        r.pool_hits,
        r.pool_misses,
        r.pool_hit_rate() * 100.0,
        r.bytes_xored as f64 / 1e6,
        r.bytes_muled as f64 / 1e6,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_all_cases_and_sane_numbers() {
        let r = measure(512, 1);
        assert_eq!(r.block_bytes, 512);
        for name in ["xor_into", "mul_acc", "encode", "decode", "scrub"] {
            let c = r.case(name);
            assert!(c.scalar_mb_s > 0.0, "{name} scalar");
            assert!(c.word_mb_s > 0.0, "{name} word");
        }
        assert!(r.pool_hits + r.pool_misses > 0, "pools were exercised");
        assert!(r.bytes_xored > 0);
        assert!(r.bytes_muled > 0);
        assert!(r.bytes_hashed > 0, "the scrub row exercises the checksum kernel");
    }

    #[test]
    fn run_formats_every_row() {
        let report = run(&Effort::smoke());
        for name in ["xor_into,", "mul_acc,", "encode,", "decode,", "scrub,"] {
            assert!(report.contains(name), "missing row {name}:\n{report}");
        }
        assert!(report.contains("hit rate"));
    }

    #[test]
    fn scrub_mode_report_has_all_cases_and_sane_numbers() {
        let r = measure_scrub_modes(512, 1);
        assert_eq!(r.block_bytes, 512);
        for name in ["verify_clean", "verify_dirty", "incremental_clean"] {
            let c = r.case(name);
            assert!(c.baseline_mb_s > 0.0, "{name} baseline");
            assert!(c.full_word_mb_s > 0.0, "{name} full word");
            assert!(c.mode_mb_s > 0.0, "{name} mode");
        }
        assert!(r.bytes_hashed > 0, "verify tiers hash in place");
    }

    #[test]
    fn run_scrub_modes_formats_every_row() {
        let report = run_scrub_modes(&Effort::smoke());
        for name in ["verify_clean,", "verify_dirty,", "incremental_clean,"] {
            assert!(report.contains(name), "missing row {name}:\n{report}");
        }
        assert!(report.contains("MB hashed"));
    }
}
