//! Connectivity trade-off ablation (extends paper §4.3).
//!
//! The paper samples fixed cascade degrees 3, 4 and 6; this ablation sweeps
//! 2–8 to chart the full trade-off it describes: "Increasing the
//! connectivity initially increases the tolerance to failure … However,
//! with too much connectivity, right nodes become incapable of assisting
//! with reconstruction."

use crate::effort::Effort;
use crate::harness::{first_failure_cell, graph_profile, paper_sampling_window};
use std::fmt::Write as _;
use tornado_analysis::overhead_report;
use tornado_gen::cascaded::generate_fixed_degree_screened;
use tornado_gen::TornadoParams;

/// Runs the sweep.
pub fn run(effort: &Effort) -> String {
    let params = TornadoParams::paper_96();
    let mut out = String::new();
    let _ = writeln!(out, "# Degree sweep — fixed-degree cascades, 96 nodes (screened)");
    let _ = writeln!(
        out,
        "degree, first_failure, avg_to_reconstruct, overhead_at_half"
    );
    for degree in 2u32..=8 {
        let g = match generate_fixed_degree_screened(params, degree, effort.seed, 256, 3) {
            Ok(g) => g,
            Err(e) => {
                let _ = writeln!(out, "{degree}, generation failed: {e}");
                continue;
            }
        };
        let profile = graph_profile(&g, effort);
        let avg = profile.average_online_given_success(paper_sampling_window(96));
        let report = overhead_report(&profile, 48);
        let _ = writeln!(
            out,
            "{degree}, {}, {avg:.2}, {:.2}",
            first_failure_cell(&profile),
            report.overhead
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_degrees() {
        let report = run(&Effort::smoke());
        for degree in 2..=8 {
            assert!(
                report.lines().any(|l| l.starts_with(&format!("{degree},"))),
                "degree {degree} missing:\n{report}"
            );
        }
    }
}
