//! Simulator validation against the mirrored closed form (paper §3, Eq. 1).
//!
//! The paper built a 96-node mirrored system with its graph tool and
//! verified the sampled failure fractions against Eq. 1 "to at least 9
//! significant digits". We reproduce the check: the graph-based sampler
//! must agree with `1 − C(n,k)·2^k / C(2n,k)` within binomial sampling
//! error at every k, and *exactly* on the exhaustively enumerated levels.

use crate::effort::Effort;
use std::fmt::Write as _;
use tornado_gen::mirror::generate_mirror;
use tornado_sim::mirror::mirrored_failure_probability;
use tornado_sim::monte_carlo::sample_level;
use tornado_sim::worst_case::search_level;

/// Runs the validation; the report lists per-k analytic vs sampled values
/// and the worst deviation in sampling sigmas.
pub fn run(effort: &Effort) -> String {
    let pairs = 48usize;
    let graph = generate_mirror(pairs).expect("mirror generation");
    let n = graph.num_nodes();
    let mut out = String::new();
    let _ = writeln!(out, "# Eq. 1 validation — 96-device mirrored system");
    let _ = writeln!(out, "k, analytic, sampled, |diff|/sigma");

    // Exhaustive levels: agreement must be exact.
    for k in 1..=effort.exhaustive_max_k.min(n) {
        let level = search_level(&graph, k, 1);
        let sampled = level.failures as f64 / level.cases as f64;
        let analytic = mirrored_failure_probability(pairs, k);
        assert!(
            (sampled - analytic).abs() < 1e-12,
            "exhaustive level {k} disagrees: {sampled} vs {analytic}"
        );
        let _ = writeln!(out, "{k}, {analytic:.9}, {sampled:.9}, exact");
    }

    let mut worst_sigmas = 0.0f64;
    for k in (effort.exhaustive_max_k + 1..=n).step_by(4) {
        let failures = sample_level(&graph, k, effort.mc_trials, effort.seed ^ k as u64);
        let sampled = failures as f64 / effort.mc_trials as f64;
        let analytic = mirrored_failure_probability(pairs, k);
        let sigma = (analytic * (1.0 - analytic) / effort.mc_trials as f64)
            .sqrt()
            .max(1e-9);
        let dev = (sampled - analytic).abs() / sigma;
        worst_sigmas = worst_sigmas.max(dev);
        let _ = writeln!(out, "{k}, {analytic:.9}, {sampled:.9}, {dev:.2}");
    }
    let _ = writeln!(out, "# worst deviation: {worst_sigmas:.2} sigma");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_runs_and_agrees() {
        let report = run(&Effort::smoke());
        assert!(report.contains("exact"));
        assert!(report.contains("worst deviation"));
    }
}
