//! Federated failure profile (extends Table 7).
//!
//! Table 7 reports only the *first failure detected* for two-site systems;
//! this extension measures the full fraction-failed curve over the 192
//! federated devices, comparing four-copy mirroring against identical and
//! complementary Tornado pairs. Expected shape: the complementary pair's
//! curve sits below the identical pair's, which sits far below mirroring —
//! the same ordering Table 7's first-failure column summarises.

use crate::effort::Effort;
use crate::harness::{render_figure, SystemRow};
use tornado_gen::mirror::generate_mirror;
use tornado_sim::multi::FederatedSystem;
use tornado_sim::{monte_carlo_profile, MonteCarloConfig};

/// Builds profiles for the three federation configurations.
pub fn rows(effort: &Effort) -> Vec<SystemRow> {
    let t1 = tornado_core::tornado_graph_1();
    let t2 = tornado_core::tornado_graph_2();
    let mirror = generate_mirror(48).expect("mirror generation");

    let configs = vec![
        ("Mirrored (4 copies)", FederatedSystem::new(&mirror, &mirror)),
        ("Tornado 1 + Tornado 1", FederatedSystem::new(&t1, &t1)),
        ("Tornado 1 + Tornado 2", FederatedSystem::new(&t1, &t2)),
    ];
    configs
        .into_iter()
        .map(|(label, fed)| {
            let profile = monte_carlo_profile(
                fed.graph(),
                &MonteCarloConfig {
                    trials_per_k: effort.mc_trials,
                    seed: effort.seed,
                    // Sample every 4th k: 192 points would dominate runtime
                    // without changing the curve's shape.
                    ks: Some((1..=fed.total_devices()).step_by(4).collect()),
                },
            );
            SystemRow {
                label: label.to_string(),
                profile,
                num_data: fed.num_data(),
            }
        })
        .collect()
}

/// Runs the experiment.
pub fn run(effort: &Effort) -> String {
    render_figure(
        "Federated failure profiles — 192 devices, two sites (extends Table 7)",
        &rows(effort),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complementary_pair_dominates_mirroring() {
        let rows = rows(&Effort::smoke());
        let frac = |label: &str, k: usize| {
            rows.iter()
                .find(|r| r.label.starts_with(label))
                .unwrap()
                .profile
                .entry(k)
                .fraction()
        };
        // At a quarter of the devices lost, four-copy mirroring fails far
        // more often than either Tornado federation.
        let k = 49;
        assert!(
            frac("Mirrored", k) > 3.0 * frac("Tornado 1 + Tornado 2", k),
            "mirror {} vs complementary {}",
            frac("Mirrored", k),
            frac("Tornado 1 + Tornado 2", k)
        );
    }
}
