//! Fig. 3 + Table 1: RAID and mirrored systems vs the best Tornado graphs
//! (paper §4.1).
//!
//! Paper shape to reproduce: mirrored fails from k = 2, RAID5 from 2,
//! RAID6 from 3, while the Tornado graphs survive any four losses and fail
//! only a dozen-odd times in 61 M cases at k = 5. The Tornado failure
//! fraction stays below the alternatives through the transition region.

use crate::effort::Effort;
use crate::harness::{graph_profile, render_figure, render_summary_table, SystemRow};
use tornado_raid::{mirrored_profile, GroupSystem};

/// Builds the system rows shared by the figure and the table.
pub fn rows(effort: &Effort) -> Vec<SystemRow> {
    let mut rows = vec![
        SystemRow {
            label: "Mirrored (RAID 10)".into(),
            profile: mirrored_profile(48),
            num_data: 48,
        },
        SystemRow {
            label: "RAID5 (8x12)".into(),
            profile: GroupSystem::raid5_paper().profile(),
            num_data: 88,
        },
        SystemRow {
            label: "RAID6 (8x12)".into(),
            profile: GroupSystem::raid6_paper().profile(),
            num_data: 80,
        },
    ];
    for (label, graph) in tornado_core::catalog::all() {
        rows.push(SystemRow {
            label: label.into(),
            profile: graph_profile(&graph, effort),
            num_data: graph.num_data(),
        });
    }
    rows
}

/// Runs the experiment and renders both artefacts.
pub fn run(effort: &Effort) -> String {
    let rows = rows(effort);
    let mut out = render_figure(
        "Figure 3 — fraction reconstruction failure by missing nodes (96-device systems)",
        &rows,
    );
    out.push('\n');
    out.push_str(&render_summary_table(
        "Table 1 — first failure and average nodes to reconstruct",
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_ordering() {
        // Smoke effort still reproduces the qualitative result because the
        // RAID/mirror rows are analytic and the Tornado rows are exhaustive
        // at k ≤ 2.
        let rows = rows(&Effort::smoke());
        let first = |label: &str| {
            rows.iter()
                .find(|r| r.label.starts_with(label))
                .unwrap()
                .profile
                .first_failure()
        };
        assert_eq!(first("Mirrored"), Some(2));
        assert_eq!(first("RAID5"), Some(2));
        assert_eq!(first("RAID6"), Some(3));
        // Tornado graphs: no failures at the smoke-tested exhaustive depth.
        for r in rows.iter().filter(|r| r.label.starts_with("Tornado")) {
            let ff = r.profile.first_failure();
            assert!(ff.is_none() || ff.unwrap() > 2, "{}: {ff:?}", r.label);
        }
    }
}
