//! Fig. 4 + Table 2: the effect of defect screening and feedback
//! adjustment (paper §4.2).
//!
//! Paper shape: "the worst initial prototype graphs without any form of
//! defect detection failed at two nodes, but the introduction of defect
//! detection increased the first failure for new graphs to four nodes. The
//! feedback-based graph adjustment procedure was able to increase the
//! fault tolerance of the graphs by one more node" — i.e. 2-ish → 4 → 5.

use crate::effort::Effort;
use crate::harness::{graph_profile, render_figure, render_summary_table, SystemRow};
use tornado_analysis::{adjust_graph, AdjustConfig};
use tornado_gen::{TornadoGenerator, TornadoParams};

/// Builds the three stages of one graph lineage: raw (first random graph,
/// no screening), screened, and screened + adjusted.
pub fn rows(effort: &Effort) -> Vec<SystemRow> {
    let gen = TornadoGenerator::new(TornadoParams::paper_96());
    // "Raw": scan seeds for the first *defective* random graph so the row
    // shows what unscreened generation risks (the paper's two-node
    // failures).
    let raw = (0..512u64)
        .map(|s| gen.generate(effort.seed ^ s).expect("generation"))
        .find(|g| tornado_gen::defects::screen(g, 3).is_err())
        .expect("defective random graphs occur well within 512 seeds");
    let (screened, _) = gen
        .generate_screened(effort.seed, 256, 3)
        .expect("screened generation");
    // The adjustment target tracks the exhaustive depth so the smoke
    // configuration stays affordable, capped at the paper's target of 5 —
    // the paper found 6 unreachable ("insufficient candidates for
    // replacement were available"), and every candidate evaluation at
    // target 6 costs a C(96,5) sweep.
    let adjusted = adjust_graph(
        &screened,
        &AdjustConfig {
            target_first_failure: (effort.exhaustive_max_k + 1).min(5),
            ..AdjustConfig::default()
        },
    )
    .graph;

    vec![
        SystemRow {
            label: "Prototype (no defect detection)".into(),
            profile: graph_profile(&raw, effort),
            num_data: 48,
        },
        SystemRow {
            label: "Screened (defect detection)".into(),
            profile: graph_profile(&screened, effort),
            num_data: 48,
        },
        SystemRow {
            label: "Screened + adjusted (§3.3)".into(),
            profile: graph_profile(&adjusted, effort),
            num_data: 48,
        },
    ]
}

/// Runs the experiment and renders both artefacts.
pub fn run(effort: &Effort) -> String {
    let rows = rows(effort);
    let mut out = render_figure(
        "Figure 4 — failure fraction: unadjusted vs screened vs adjusted Tornado graphs",
        &rows,
    );
    out.push('\n');
    out.push_str(&render_summary_table(
        "Table 2 — effect of defect detection and adjustment",
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screening_strictly_helps_at_small_k() {
        let rows = rows(&Effort::smoke());
        let raw_ff = rows[0].profile.first_failure();
        // The deliberately defective graph fails within the screened sizes.
        assert!(matches!(raw_ff, Some(k) if k <= 3), "raw: {raw_ff:?}");
        // Screened graphs never fail at k ≤ 2 (smoke exhaustive depth).
        let scr_ff = rows[1].profile.first_failure();
        assert!(scr_ff.is_none() || scr_ff.unwrap() > 2, "screened: {scr_ff:?}");
    }
}
