//! Fig. 5 + Table 3: non-Tornado and altered distributions (paper §4.3).
//!
//! Paper shape: regular single-stage graphs of degree 4 and 11 "performed
//! poorly"; the altered Tornado distributions (doubled / shifted +1) reach
//! first failure 5 but with an *earlier* average failure point than the
//! best Tornado graph (higher average-to-reconstruct: 77.41 and 75.58 vs
//! 73.77 in the paper).

use crate::effort::Effort;
use crate::harness::{graph_profile, render_figure, render_summary_table, SystemRow};
use tornado_gen::altered::{generate_doubled_screened, generate_shifted_screened};
use tornado_gen::regular::generate_regular;
use tornado_gen::TornadoParams;

/// Builds the comparison rows.
pub fn rows(effort: &Effort) -> Vec<SystemRow> {
    let params = TornadoParams::paper_96();
    let mut rows = Vec::new();
    for degree in [4u32, 11] {
        let g = generate_regular(48, degree, effort.seed).expect("regular generation");
        rows.push(SystemRow {
            label: format!("Regular - Degree = {degree}"),
            profile: graph_profile(&g, effort),
            num_data: 48,
        });
    }
    let doubled =
        generate_doubled_screened(params, effort.seed, 256).expect("doubled generation");
    rows.push(SystemRow {
        label: "Altered Tornado (dist. doubled)".into(),
        profile: graph_profile(&doubled, effort),
        num_data: 48,
    });
    let shifted =
        generate_shifted_screened(params, effort.seed, 256).expect("shifted generation");
    rows.push(SystemRow {
        label: "Altered Tornado (dist. shifted)".into(),
        profile: graph_profile(&shifted, effort),
        num_data: 48,
    });
    let best = tornado_core::tornado_graph_3();
    rows.push(SystemRow {
        label: "Tornado Graph 3 (best)".into(),
        profile: graph_profile(&best, effort),
        num_data: 48,
    });
    rows
}

/// Runs the experiment and renders both artefacts.
pub fn run(effort: &Effort) -> String {
    let rows = rows(effort);
    let mut out = render_figure(
        "Figure 5 — failure fraction: Tornado vs regular and altered graphs",
        &rows,
    );
    out.push('\n');
    out.push_str(&render_summary_table(
        "Table 3 — regular and altered graph families",
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::paper_sampling_window;

    #[test]
    fn altered_families_have_later_average_failure_than_best_tornado() {
        // "Altering Tornado Code graphs by increasing the connectivity
        // generally increased the first failure but with the penalty of an
        // earlier average failure point" — i.e. a *larger* average number
        // of nodes needed to reconstruct than the best graph (77.41/75.58
        // vs 73.77 in Table 3).
        let rows = rows(&Effort::smoke());
        let avg = |label: &str| {
            let r = rows.iter().find(|r| r.label.contains(label)).unwrap();
            r.profile
                .average_online_given_success(paper_sampling_window(96))
        };
        let best = avg("best");
        assert!(avg("doubled") > best, "doubled {} vs best {best}", avg("doubled"));
        // Regular degree-11 is far worse than the best Tornado graph.
        assert!(avg("Degree = 11") > best);
    }
}
