//! Fig. 6 + Table 4: fixed-degree cascaded random graphs (paper §4.3).
//!
//! Paper shape: degree-3 cascades almost match the best Tornado graph's
//! reconstruction profile (74.00 vs 73.77 average) but first-fail earlier
//! (4 vs 5); degree-6 cascades reach first failure 5 but with a much worse
//! average (80.39). "With too much connectivity, right nodes become
//! incapable of assisting with reconstruction."

use crate::effort::Effort;
use crate::harness::{graph_profile, render_figure, render_summary_table, SystemRow};
use tornado_gen::cascaded::generate_fixed_degree_screened;
use tornado_gen::TornadoParams;

/// Builds the comparison rows (cascade degrees 6, 4, 3 in the paper's
/// order, then the best Tornado graph). Cascades are screened like every
/// other family — the paper's comparators first-fail at 4–5, which random
/// unscreened wiring does not reliably reach.
pub fn rows(effort: &Effort) -> Vec<SystemRow> {
    let params = TornadoParams::paper_96();
    let mut rows = Vec::new();
    for degree in [6u32, 4, 3] {
        let g = generate_fixed_degree_screened(params, degree, effort.seed, 256, 3)
            .expect("cascade generation");
        rows.push(SystemRow {
            label: format!("Cascaded - Degree = {degree}"),
            profile: graph_profile(&g, effort),
            num_data: 48,
        });
    }
    rows.push(SystemRow {
        label: "Tornado Graph 3 (best)".into(),
        profile: graph_profile(&tornado_core::tornado_graph_3(), effort),
        num_data: 48,
    });
    rows
}

/// Runs the experiment and renders both artefacts.
pub fn run(effort: &Effort) -> String {
    let rows = rows(effort);
    let mut out = render_figure(
        "Figure 6 — failure fraction: fixed-degree cascades vs best Tornado graph",
        &rows,
    );
    out.push('\n');
    out.push_str(&render_summary_table(
        "Table 4 — fixed-degree cascaded random graphs",
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::paper_sampling_window;

    #[test]
    fn connectivity_tradeoff_shows() {
        // Table 4's trade-off: the degree-6 cascade needs more nodes on
        // average than the degree-3 cascade (80.39 vs 74.00 in the paper) —
        // too much connectivity leaves right nodes with several missing
        // neighbours, unable to assist.
        let rows = rows(&Effort::smoke());
        let avg = |label: &str| {
            let r = rows.iter().find(|r| r.label.contains(label)).unwrap();
            r.profile
                .average_online_given_success(paper_sampling_window(96))
        };
        assert!(
            avg("Degree = 6") > avg("Degree = 3"),
            "degree 6 avg {} should exceed degree 3 avg {}",
            avg("Degree = 6"),
            avg("Degree = 3")
        );
    }
}
