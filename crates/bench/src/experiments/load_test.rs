//! Serving-layer load test: degraded reads under live concurrent load.
//!
//! The paper measures its codes statically; this experiment measures them
//! *serving*. It boots an in-process `tornado-server` on a loopback
//! ephemeral port, drives it with the seeded closed-loop load generator
//! (weighted put/get/delete, zipfian popularity), fails four devices
//! mid-run — the certified tolerance of catalog graph 1 — and reports
//! throughput, latency percentiles, and how many reads the Tornado decoder
//! served through the failures. Every GET is verified byte-for-byte, so
//! the `payload mismatches` row is the live analogue of the worst-case
//! search's "no pattern of 4 losses is fatal".

use crate::effort::Effort;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use tornado_obs::{Json, Tracer};
use tornado_server::{
    run_load, serve, Client, HealthConfig, LoadConfig, LoadReport, ServerConfig, ServerObserver,
};
use tornado_store::ArchivalStore;

/// Headline numbers of the last [`run`], for the `run_all` manifest.
#[derive(Clone, Copy, Debug)]
pub struct LoadSummary {
    /// Completed operations.
    pub ops: u64,
    /// Completed operations per second.
    pub ops_per_sec: f64,
    /// 99th-percentile client-observed latency, microseconds.
    pub p99_us: u64,
    /// Reads the server answered through the degraded (decode) path.
    pub degraded_reads: u64,
    /// GETs whose payload failed byte-for-byte verification (must be 0).
    pub payload_mismatches: u64,
    /// A/B arm A: ops/s with tracing fully off (untraced wire format).
    pub ops_per_sec_untraced: f64,
    /// A/B arm B: ops/s with 1-in-256 sampling and trace ids on the wire.
    pub ops_per_sec_traced: f64,
    /// Fractional throughput cost of arm B vs arm A (negative = noise in
    /// B's favour).
    pub tracing_overhead_frac: f64,
    /// Spans the server recorded during arm B.
    pub traced_spans_recorded: u64,
    /// A/B: ops/s with the durability observatory disabled.
    pub ops_per_sec_health_off: f64,
    /// A/B: ops/s with the observatory on at an aggressive cadence.
    pub ops_per_sec_health_on: f64,
    /// Model recomputations during the health-on arm.
    pub health_recomputes: u64,
    /// Fraction of the health-on arm's wall time spent recomputing the
    /// model — the observatory's directly-accounted compute overhead
    /// (bounded at 2% by this experiment).
    pub health_compute_frac: f64,
}

/// Last run's summary (populated by [`run`], read by `run_all`).
pub static LAST_SUMMARY: Mutex<Option<LoadSummary>> = Mutex::new(None);

/// Devices the injector fails mid-run — within the certified tolerance of
/// catalog graph 1 (survives ANY four losses), so correctness must hold.
pub const FAIL_DEVICES: [u32; 4] = [7, 29, 55, 88];

/// Boots a fresh in-process server (optionally with a tracer, with the
/// durability observatory per `health`), drives it with `cfg`, shuts it
/// down, and returns the report plus the server's `trace.spans_recorded`
/// counter.
fn run_arm(cfg: &LoadConfig, tracer: Option<Tracer>, health: HealthConfig) -> (LoadReport, u64) {
    let store = Arc::new(ArchivalStore::new(tornado_core::tornado_graph_1()));
    let server_cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 64,
        health,
        ..ServerConfig::default()
    };
    let mut obs = ServerObserver::disabled();
    if let Some(t) = tracer {
        obs = obs.with_tracer(t);
    }
    let handle = serve(server_cfg, store, Arc::new(obs)).expect("bind loopback");
    let addr = handle.local_addr().to_string();
    let report = run_load(&LoadConfig { addr: addr.clone(), ..cfg.clone() })
        .expect("load run against in-process server");
    let mut admin = Client::connect(&addr).expect("admin connection");
    admin.shutdown().expect("graceful shutdown");
    handle.join();
    let spans = tornado_obs::json::parse(&report.server_metrics_json)
        .ok()
        .and_then(|doc| {
            doc.get("counters")
                .and_then(|c| c.get("trace.spans_recorded"))
                .and_then(Json::as_u64)
        })
        .unwrap_or(0);
    (report, spans)
}

/// Observatory accounting from a final server metrics snapshot:
/// (recompute count, total recompute microseconds, server uptime ms).
fn health_accounting(metrics_json: &str) -> (u64, u64, u64) {
    let doc = match tornado_obs::json::parse(metrics_json) {
        Ok(d) => d,
        Err(_) => return (0, 0, 0),
    };
    let recomputes = doc
        .get("counters")
        .and_then(|c| c.get("health.recomputes"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let total_us = doc
        .get("histograms")
        .and_then(|h| h.get("health.recompute_us"))
        .and_then(|h| h.get("sum"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let uptime_ms = doc.get("elapsed_ms").and_then(Json::as_u64).unwrap_or(0);
    (recomputes, total_us, uptime_ms)
}

/// Observatory disabled: the control arm and the pure-tracing A/B arms.
fn health_off() -> HealthConfig {
    HealthConfig { enabled: false, ..HealthConfig::default() }
}

/// Runs the load test.
pub fn run(effort: &Effort) -> String {
    // Scale the measured window with effort, but keep the smoke setting
    // fast enough for CI.
    let duration_ms = (effort.mc_trials / 16).clamp(800, 5_000);

    let cfg = LoadConfig {
        connections: 4,
        duration_ms,
        seed: effort.seed,
        prefill: 6,
        payload_min: 1 << 10,
        payload_max: 32 << 10,
        fail_devices: FAIL_DEVICES.to_vec(),
        fail_after_ms: duration_ms / 4,
        fail_spacing_ms: 25,
        ..LoadConfig::default()
    };
    // The main run serves with the production default: observatory on.
    // Four mid-run failures make it recompute under churn, so the
    // recompute histogram below reflects transition cost, not idle cost.
    let (report, _) = run_arm(&cfg, None, HealthConfig::default());
    let (churn_recomputes, churn_recompute_us, _) = health_accounting(&report.server_metrics_json);

    // Tracing-overhead A/B: same seed and mix, no failure injection (so
    // both arms serve identical healthy-path work), fresh server per arm.
    // Arm A stamps no trace ids (pre-trace wire bytes, tracer off); arm B
    // samples 1 in 256 with ids on every request. The observatory is off
    // in both arms so the delta is tracing alone.
    let ab_cfg = LoadConfig {
        duration_ms: (duration_ms / 2).clamp(500, 2_500),
        fail_devices: Vec::new(),
        trace_sample: 0,
        ..cfg.clone()
    };
    let (untraced, _) = run_arm(&ab_cfg, None, health_off());
    let (traced, traced_spans) = run_arm(
        &LoadConfig { trace_sample: 256, ..ab_cfg.clone() },
        Some(Tracer::new(256, 4096, 16)),
        health_off(),
    );
    let overhead_frac = if untraced.ops_per_sec > 0.0 {
        (untraced.ops_per_sec - traced.ops_per_sec) / untraced.ops_per_sec
    } else {
        0.0
    };

    // Observatory-overhead A/B under steady load (no failure injection:
    // event-driven recomputation means a stable fleet serves the cached
    // document, so this measures the observatory's standing cost). The
    // direct accounting — recompute microseconds over server uptime — is
    // the asserted budget; the ops/s pair is recorded for context since
    // short loopback windows are noisy.
    let (health_off_report, _) = run_arm(&ab_cfg, None, health_off());
    let (health_on_report, _) = run_arm(&ab_cfg, None, HealthConfig::default());
    let (steady_recomputes, steady_recompute_us, steady_uptime_ms) =
        health_accounting(&health_on_report.server_metrics_json);
    let health_compute_frac = if steady_uptime_ms > 0 {
        steady_recompute_us as f64 / (steady_uptime_ms as f64 * 1_000.0)
    } else {
        0.0
    };

    *LAST_SUMMARY.lock().unwrap() = Some(LoadSummary {
        ops: report.ops,
        ops_per_sec: report.ops_per_sec,
        p99_us: report.p99_us(),
        degraded_reads: report.degraded_reads,
        payload_mismatches: report.payload_mismatches,
        ops_per_sec_untraced: untraced.ops_per_sec,
        ops_per_sec_traced: traced.ops_per_sec,
        tracing_overhead_frac: overhead_frac,
        traced_spans_recorded: traced_spans,
        ops_per_sec_health_off: health_off_report.ops_per_sec,
        ops_per_sec_health_on: health_on_report.ops_per_sec,
        health_recomputes: steady_recomputes,
        health_compute_frac,
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Serving-layer load test — catalog graph 1, {} connections, seed {}",
        cfg.connections, cfg.seed
    );
    let _ = writeln!(
        out,
        "# {} devices failed mid-run at t={} ms: {:?}",
        FAIL_DEVICES.len(),
        cfg.fail_after_ms,
        report.devices_failed
    );
    let _ = writeln!(out, "metric, value");
    let _ = writeln!(out, "window_ms, {}", report.elapsed_ms);
    let _ = writeln!(out, "ops, {}", report.ops);
    let _ = writeln!(out, "ops_per_sec, {:.0}", report.ops_per_sec);
    let _ = writeln!(
        out,
        "mix_put_get_delete, {}/{}/{}",
        report.puts, report.gets, report.deletes
    );
    let _ = writeln!(out, "latency_p50_us, {}", report.p50_us());
    let _ = writeln!(out, "latency_p99_us, {}", report.p99_us());
    let _ = writeln!(out, "busy_retries, {}", report.busy_retries);
    let _ = writeln!(out, "errors, {}", report.errors);
    let _ = writeln!(out, "degraded_reads_served, {}", report.degraded_reads);
    let _ = writeln!(out, "unrecoverable_reads, {}", report.unrecoverable);
    let _ = writeln!(out, "payload_mismatches, {}", report.payload_mismatches);
    for e in &report.slowest {
        let _ = writeln!(
            out,
            "slow_trace_exemplar, {} us {} trace {:#018x}",
            e.latency_us, e.op, e.trace_id
        );
    }
    let _ = writeln!(out, "ops_per_sec_untraced, {:.0}", untraced.ops_per_sec);
    let _ = writeln!(out, "ops_per_sec_traced_1_in_256, {:.0}", traced.ops_per_sec);
    let _ = writeln!(out, "tracing_overhead_pct, {:.2}", overhead_frac * 100.0);
    let _ = writeln!(out, "traced_spans_recorded, {traced_spans}");
    let _ = writeln!(out, "health_recomputes_under_churn, {churn_recomputes}");
    let _ = writeln!(
        out,
        "health_recompute_us_mean_under_churn, {}",
        churn_recompute_us / churn_recomputes.max(1)
    );
    let _ = writeln!(out, "ops_per_sec_health_off, {:.0}", health_off_report.ops_per_sec);
    let _ = writeln!(out, "ops_per_sec_health_on, {:.0}", health_on_report.ops_per_sec);
    let _ = writeln!(out, "health_steady_recomputes, {steady_recomputes}");
    let _ = writeln!(
        out,
        "health_steady_compute_pct, {:.3}",
        health_compute_frac * 100.0
    );
    assert_eq!(
        report.payload_mismatches, 0,
        "reads through {} failures must stay byte-perfect",
        FAIL_DEVICES.len()
    );
    assert!(untraced.ops > 0 && traced.ops > 0, "both A/B arms made progress");
    assert!(
        health_off_report.ops > 0 && health_on_report.ops > 0,
        "both observatory A/B arms made progress"
    );
    // The observatory's acceptance budget: event-driven recomputation must
    // keep model compute at or below 2% of server wall time under steady
    // load. This is direct accounting (recompute histogram over uptime),
    // so unlike the ops/s pair it is not subject to loopback noise.
    assert!(
        steady_recomputes >= 1,
        "the sampler must have produced at least the initial document"
    );
    assert!(
        health_compute_frac <= 0.02,
        "observatory spent {:.2}% of wall time recomputing under steady load — budget is 2%",
        health_compute_frac * 100.0
    );
    // Loose sanity bound only: the recorded numbers are the deliverable;
    // short windows (especially debug builds) are too noisy for a tight
    // threshold, but a halving of throughput would be a real regression.
    assert!(
        overhead_frac < 0.5,
        "1-in-256 tracing cost {:.1}% ops/s — far beyond its overhead budget",
        overhead_frac * 100.0
    );
    out
}
