//! Serving-layer load test: degraded reads under live concurrent load.
//!
//! The paper measures its codes statically; this experiment measures them
//! *serving*. It boots an in-process `tornado-server` on a loopback
//! ephemeral port, drives it with the seeded closed-loop load generator
//! (weighted put/get/delete, zipfian popularity), fails four devices
//! mid-run — the certified tolerance of catalog graph 1 — and reports
//! throughput, latency percentiles, and how many reads the Tornado decoder
//! served through the failures. Every GET is verified byte-for-byte, so
//! the `payload mismatches` row is the live analogue of the worst-case
//! search's "no pattern of 4 losses is fatal".

use crate::effort::Effort;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use tornado_server::{run_load, serve, Client, LoadConfig, ServerConfig, ServerObserver};
use tornado_store::ArchivalStore;

/// Headline numbers of the last [`run`], for the `run_all` manifest.
#[derive(Clone, Copy, Debug)]
pub struct LoadSummary {
    /// Completed operations.
    pub ops: u64,
    /// Completed operations per second.
    pub ops_per_sec: f64,
    /// 99th-percentile client-observed latency, microseconds.
    pub p99_us: u64,
    /// Reads the server answered through the degraded (decode) path.
    pub degraded_reads: u64,
    /// GETs whose payload failed byte-for-byte verification (must be 0).
    pub payload_mismatches: u64,
}

/// Last run's summary (populated by [`run`], read by `run_all`).
pub static LAST_SUMMARY: Mutex<Option<LoadSummary>> = Mutex::new(None);

/// Devices the injector fails mid-run — within the certified tolerance of
/// catalog graph 1 (survives ANY four losses), so correctness must hold.
pub const FAIL_DEVICES: [u32; 4] = [7, 29, 55, 88];

/// Runs the load test.
pub fn run(effort: &Effort) -> String {
    // Scale the measured window with effort, but keep the smoke setting
    // fast enough for CI.
    let duration_ms = (effort.mc_trials / 16).clamp(800, 5_000);

    let store = Arc::new(ArchivalStore::new(tornado_core::tornado_graph_1()));
    let server_cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 64,
        ..ServerConfig::default()
    };
    let handle = serve(server_cfg, store, ServerObserver::shared()).expect("bind loopback");
    let addr = handle.local_addr().to_string();

    let cfg = LoadConfig {
        addr: addr.clone(),
        connections: 4,
        duration_ms,
        seed: effort.seed,
        prefill: 6,
        payload_min: 1 << 10,
        payload_max: 32 << 10,
        fail_devices: FAIL_DEVICES.to_vec(),
        fail_after_ms: duration_ms / 4,
        fail_spacing_ms: 25,
        ..LoadConfig::default()
    };
    let report = run_load(&cfg).expect("load run against in-process server");

    let mut admin = Client::connect(&addr).expect("admin connection");
    admin.shutdown().expect("graceful shutdown");
    handle.join();

    *LAST_SUMMARY.lock().unwrap() = Some(LoadSummary {
        ops: report.ops,
        ops_per_sec: report.ops_per_sec,
        p99_us: report.p99_us(),
        degraded_reads: report.degraded_reads,
        payload_mismatches: report.payload_mismatches,
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Serving-layer load test — catalog graph 1, {} connections, seed {}",
        cfg.connections, cfg.seed
    );
    let _ = writeln!(
        out,
        "# {} devices failed mid-run at t={} ms: {:?}",
        FAIL_DEVICES.len(),
        cfg.fail_after_ms,
        report.devices_failed
    );
    let _ = writeln!(out, "metric, value");
    let _ = writeln!(out, "window_ms, {}", report.elapsed_ms);
    let _ = writeln!(out, "ops, {}", report.ops);
    let _ = writeln!(out, "ops_per_sec, {:.0}", report.ops_per_sec);
    let _ = writeln!(
        out,
        "mix_put_get_delete, {}/{}/{}",
        report.puts, report.gets, report.deletes
    );
    let _ = writeln!(out, "latency_p50_us, {}", report.p50_us());
    let _ = writeln!(out, "latency_p99_us, {}", report.p99_us());
    let _ = writeln!(out, "busy_retries, {}", report.busy_retries);
    let _ = writeln!(out, "errors, {}", report.errors);
    let _ = writeln!(out, "degraded_reads_served, {}", report.degraded_reads);
    let _ = writeln!(out, "unrecoverable_reads, {}", report.unrecoverable);
    let _ = writeln!(out, "payload_mismatches, {}", report.payload_mismatches);
    assert_eq!(
        report.payload_mismatches, 0,
        "reads through {} failures must stay byte-perfect",
        FAIL_DEVICES.len()
    );
    out
}
