//! One module per paper artefact. Every `run` takes an [`crate::Effort`]
//! and returns the finished report text (also suitable for EXPERIMENTS.md).

pub mod data_plane;
pub mod degree_sweep;
pub mod eq1;
pub mod fed_profile;
pub mod fig3_table1;
pub mod fig4_table2;
pub mod fig5_table3;
pub mod fig6_table4;
pub mod load_test;
pub mod plank_overhead;
pub mod recovery;
pub mod repair_bandwidth;
pub mod retrieval;
pub mod scrub_sweep;
pub mod server_scale;
pub mod size_sweep;
pub mod table5;
pub mod table6;
pub mod table7;
