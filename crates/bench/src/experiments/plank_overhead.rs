//! Incremental-retrieval overhead (Plank's metric; paper §5.2/§6).
//!
//! The literature the paper cites reports LDPC overheads below 1.2 when
//! measured by retrieving blocks until reconstruction first succeeds. The
//! paper's own Table 6 number (1.27–1.29) is deliberately *not* that
//! metric; this experiment computes the literature's version for the
//! catalog graphs so both are on record. Expected shape: means around
//! 1.15–1.25 for the Tornado graphs, 1.0 only for an MDS code.

use crate::effort::Effort;
use std::fmt::Write as _;
use tornado_analysis::incremental_overhead;

/// Runs the measurement for each catalog graph.
pub fn run(effort: &Effort) -> String {
    let trials = (effort.mc_trials / 4).clamp(500, 200_000);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Incremental-retrieval overhead (Plank's metric), {trials} trials"
    );
    let _ = writeln!(out, "system, mean_blocks, overhead, min, max");
    for (label, graph) in tornado_core::catalog::all() {
        let r = incremental_overhead(&graph, trials, effort.seed);
        let _ = writeln!(
            out,
            "{label}, {:.2}, {:.4}, {}, {}",
            r.mean_blocks, r.mean_overhead, r.min_blocks, r.max_blocks
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_land_in_the_literature_band() {
        let report = run(&Effort::smoke());
        for line in report.lines().filter(|l| l.starts_with("Tornado")) {
            let overhead: f64 = line
                .split(", ")
                .nth(2)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("bad row: {line}"));
            assert!(
                (1.0..1.6).contains(&overhead),
                "overhead {overhead} outside plausible band: {line}"
            );
        }
    }
}
