//! Cold-start recovery benchmark for the durable backends (ISSUE 8).
//!
//! Recovery-on-open is the price a durable archival store pays at every
//! restart: scan the intent journal, load the metadata sidecars, roll
//! back torn puts, rebuild the stripe map. This experiment measures that
//! wall time as a function of store size for both on-disk backends
//! (file-per-block directories and append-only segment stores) so the
//! scaling behaviour — it should be linear in object count — is a
//! committed number, not folklore.
//!
//! Every point populates a fresh store at the paper's 96-device
//! configuration, drops it (a clean shutdown leaves the journal intact;
//! only recovery truncates it), reopens it cold, and records both the
//! store's own [`RecoveryReport::duration_us`] and the end-to-end wall
//! time of `ArchivalStore::open`.
//!
//! [`RecoveryReport::duration_us`]: tornado_store::RecoveryReport

use crate::effort::Effort;
use std::fmt::Write as _;
use tornado_store::{ArchivalStore, BackendKind, DurableConfig};

/// Payload size per object; recovery cost is dominated by per-object
/// bookkeeping, not payload bytes, which this keeps small enough to show.
pub const PAYLOAD_BYTES: usize = 4096;

/// One (backend, store-size) measurement.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPoint {
    /// Objects in the store at reopen.
    pub objects: usize,
    /// User bytes ingested (`objects × payload`).
    pub data_bytes: u64,
    /// Recovery time reported by the store (scan + replay + rebuild), µs.
    pub recovery_us: u64,
    /// End-to-end `ArchivalStore::open` wall time, µs.
    pub open_wall_us: u64,
    /// Journal records scanned (2 per clean put: intent + commit).
    pub journal_records: usize,
    /// Objects the recovery rebuilt into the stripe map.
    pub objects_recovered: usize,
}

/// One backend's sweep over store sizes.
#[derive(Clone, Debug)]
pub struct BackendSweep {
    /// Backend label (`"file"` or `"segment"`).
    pub backend: &'static str,
    /// Points in ascending object count.
    pub sweep: Vec<RecoveryPoint>,
}

/// The whole benchmark.
#[derive(Clone, Debug)]
pub struct RecoveryBenchReport {
    /// Payload bytes per object.
    pub payload_bytes: usize,
    /// Store sizes swept (object counts).
    pub object_counts: Vec<usize>,
    /// One sweep per durable backend.
    pub backends: Vec<BackendSweep>,
}

impl RecoveryBenchReport {
    /// Looks a backend sweep up by label.
    pub fn backend(&self, backend: &str) -> &BackendSweep {
        self.backends
            .iter()
            .find(|b| b.backend == backend)
            .unwrap_or_else(|| panic!("no backend {backend}"))
    }
}

fn payload_for(i: usize) -> Vec<u8> {
    (0..PAYLOAD_BYTES)
        .map(|b| {
            (b as u64)
                .wrapping_mul(131)
                .wrapping_add((i as u64).wrapping_mul(0x9e3779b97f4a7c15)) as u8
        })
        .collect()
}

/// Measures cold-start recovery for both durable backends at each store
/// size. Stores are built and torn down under the system temp dir.
pub fn measure(object_counts: &[usize]) -> RecoveryBenchReport {
    let mut backends = Vec::new();
    for kind in [BackendKind::File, BackendKind::Segment] {
        let mut sweep = Vec::with_capacity(object_counts.len());
        for &objects in object_counts {
            let dir = std::env::temp_dir().join(format!(
                "tornado-bench-recovery-{}-{objects}-{}",
                kind.as_str(),
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let (store, _) = ArchivalStore::open(
                tornado_core::tornado_graph_1(),
                DurableConfig::new_nosync(dir.clone(), kind),
            )
            .expect("open fresh bench store");
            for i in 0..objects {
                store.put(&format!("bench-{i}"), &payload_for(i)).expect("put");
            }
            drop(store);

            let t = std::time::Instant::now();
            let (store, report) = ArchivalStore::open(
                tornado_core::tornado_graph_1(),
                DurableConfig::new_nosync(dir.clone(), kind),
            )
            .expect("cold reopen");
            let open_wall_us = t.elapsed().as_micros() as u64;
            assert_eq!(report.objects, objects, "recovery found every object");
            assert_eq!(report.rolled_back, 0, "clean shutdown: nothing torn");
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);

            sweep.push(RecoveryPoint {
                objects,
                data_bytes: (objects * PAYLOAD_BYTES) as u64,
                recovery_us: report.duration_us,
                open_wall_us,
                journal_records: report.journal_records,
                objects_recovered: report.objects,
            });
        }
        backends.push(BackendSweep { backend: kind.as_str(), sweep });
    }
    RecoveryBenchReport {
        payload_bytes: PAYLOAD_BYTES,
        object_counts: object_counts.to_vec(),
        backends,
    }
}

/// Effort → store sizes: smoke efforts shrink the counts, never the
/// schema (always ≥ 3 sizes so the scaling trend is visible).
pub fn object_counts(effort: &Effort) -> Vec<usize> {
    if effort.mc_trials <= 1_000 {
        vec![4, 8, 16]
    } else {
        vec![16, 64, 256]
    }
}

/// Runs the benchmark and formats the EXPERIMENTS.md table.
pub fn run(effort: &Effort) -> String {
    let r = measure(&object_counts(effort));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Cold-start recovery: 96-device store, {} B objects, clean-shutdown journals",
        r.payload_bytes
    );
    let _ = writeln!(out, "backend, objects, journal_records, recovery_us, open_wall_us, us_per_object");
    for b in &r.backends {
        for p in &b.sweep {
            let _ = writeln!(
                out,
                "{}, {}, {}, {}, {}, {:.1}",
                b.backend,
                p.objects,
                p.journal_records,
                p.recovery_us,
                p.open_wall_us,
                p.recovery_us as f64 / p.objects.max(1) as f64
            );
        }
    }
    let _ = writeln!(
        out,
        "recovery replays the journal and sidecars, never payload blocks — cost scales with \
         the catalog, not the archive"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_both_backends_at_every_size() {
        let r = measure(&[2, 4]);
        assert_eq!(r.backends.len(), 2);
        for b in &r.backends {
            assert_eq!(b.sweep.len(), 2, "{}", b.backend);
            for p in &b.sweep {
                assert_eq!(p.objects_recovered, p.objects);
                assert_eq!(p.journal_records, p.objects * 2, "intent + commit per put");
            }
        }
    }

    #[test]
    fn run_formats_both_backend_rows() {
        let report = run(&Effort::smoke());
        assert!(report.contains("file, 4,"), "{report}");
        assert!(report.contains("segment, 16,"), "{report}");
    }
}
