//! Repair-bandwidth bake-off across the code zoo (ROADMAP item 4).
//!
//! The fault-tolerance experiments rank codes by P(loss) alone; the
//! repair-bandwidth literature (Park et al.'s LDPC arrays, the Dimakis
//! regenerating-codes line) argues that what a repair *costs* is an equal
//! design axis. This experiment runs every graph family the generators
//! produce — plus the paper's RAID5/RAID6 drawer systems in closed form —
//! through one unified sweep: x = devices offline, y = {P(loss), repair
//! bytes per lost block, devices contacted per recovery}.
//!
//! Graph families are measured empirically: random offline patterns feed
//! [`tornado_store::plan_repair`], whose guided repair cone is exactly
//! what the scrubber reads, and [`RetrievalPlan::cost`] converts the plan
//! into a [`RepairCost`] under the one-block-per-device layout. RAID rows
//! are analytic: a RAID5 group of `g` devices rebuilds any single loss by
//! reading the other `g - 1` members; RAID6 solves from any `g - 2`.
//!
//! [`RetrievalPlan::cost`]: tornado_store::RetrievalPlan::cost
//! [`RepairCost`]: tornado_store::RepairCost

use crate::effort::Effort;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt::Write as _;
use tornado_gen::TornadoParams;
use tornado_graph::{Graph, NodeId};
use tornado_raid::GroupSystem;
use tornado_store::plan_repair;

/// Block size the byte columns assume (costs scale linearly with it).
pub const BLOCK_BYTES: usize = 65_536;

/// One (code, devices-offline) measurement.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Devices offline.
    pub k: usize,
    /// Fraction of offline patterns the code could not repair.
    pub p_loss: f64,
    /// Mean blocks read per lost block, over repairable patterns.
    pub repair_blocks_per_lost: f64,
    /// Mean bytes read per lost block ([`BLOCK_BYTES`]-byte blocks).
    pub repair_bytes_per_lost: f64,
    /// Mean distinct devices contacted per repair.
    pub devices_contacted: f64,
    /// Mean longest dependency chain in the repair schedule.
    pub recovery_depth: f64,
}

/// One code's full sweep.
#[derive(Clone, Debug)]
pub struct CodeReport {
    /// Stable code label (JSON schema key).
    pub code: &'static str,
    /// `"graph"` (empirical, via `plan_repair`) or `"analytic"`.
    pub kind: &'static str,
    /// Total devices in the system.
    pub nodes: usize,
    /// Data devices presented to the user.
    pub data: usize,
    /// Storage overhead: total devices per data device.
    pub overhead: f64,
    /// Points in ascending `k`.
    pub sweep: Vec<SweepPoint>,
}

impl CodeReport {
    /// Looks a sweep point up by offline count.
    pub fn at(&self, k: usize) -> &SweepPoint {
        self.sweep
            .iter()
            .find(|p| p.k == k)
            .unwrap_or_else(|| panic!("{}: no sweep point at k = {k}", self.code))
    }
}

/// The whole bake-off.
#[derive(Clone, Debug)]
pub struct RepairBandwidthReport {
    /// Block size the byte columns assume.
    pub block_bytes: usize,
    /// Random offline patterns per (graph code, k).
    pub trials_per_k: u64,
    /// Offline counts swept.
    pub ks: Vec<usize>,
    /// One report per code, generator order then analytic.
    pub codes: Vec<CodeReport>,
}

impl RepairBandwidthReport {
    /// Looks a code up by label.
    pub fn code(&self, code: &str) -> &CodeReport {
        self.codes
            .iter()
            .find(|c| c.code == code)
            .unwrap_or_else(|| panic!("no code {code}"))
    }
}

/// Sweeps one graph-family code empirically.
fn sweep_graph(
    code: &'static str,
    graph: &Graph,
    ks: &[usize],
    trials: u64,
    seed: u64,
) -> CodeReport {
    let n = graph.num_nodes();
    let mut sweep = Vec::with_capacity(ks.len());
    for (ki, &k) in ks.iter().enumerate() {
        // One rng stream per (code, k): adding a k to the sweep never
        // reshuffles the patterns of the others.
        let mut rng = SmallRng::seed_from_u64(
            seed ^ (code.len() as u64) << 48 ^ (graph.fingerprint() << 8) ^ ki as u64,
        );
        let mut losses = 0u64;
        let mut repaired = 0u64;
        let (mut blocks, mut devices, mut depth) = (0f64, 0f64, 0f64);
        let mut ids: Vec<NodeId> = (0..n as NodeId).collect();
        for _ in 0..trials {
            // Shuffle-and-split: the first k ids are the offline pattern,
            // the rest are the surviving devices.
            ids.shuffle(&mut rng);
            let mut available: Vec<NodeId> = ids[k.min(n)..].to_vec();
            available.sort_unstable();
            match plan_repair(graph, &available) {
                None => losses += 1,
                Some(plan) => {
                    let cost = plan.cost(graph, BLOCK_BYTES);
                    repaired += 1;
                    blocks += cost.blocks_fetched as f64 / k as f64;
                    devices += cost.devices_contacted as f64;
                    depth += cost.recovery_depth as f64;
                }
            }
        }
        let mean = |sum: f64| if repaired == 0 { 0.0 } else { sum / repaired as f64 };
        sweep.push(SweepPoint {
            k,
            p_loss: losses as f64 / trials as f64,
            repair_blocks_per_lost: mean(blocks),
            repair_bytes_per_lost: mean(blocks) * BLOCK_BYTES as f64,
            devices_contacted: mean(devices),
            recovery_depth: mean(depth),
        });
    }
    CodeReport {
        code,
        kind: "graph",
        nodes: n,
        data: graph.num_data(),
        overhead: n as f64 / graph.num_data() as f64,
        sweep,
    }
}

/// Sweeps a drawer-parity system in closed form. A surviving group of
/// size `g` with tolerance `t` rebuilds each lost member by reading
/// `g - t` of the others (RAID5: the remaining `g - 1`; RAID6: any
/// `g - 2`), and every read is a distinct device — a flat, depth-1 repair.
fn sweep_raid(code: &'static str, sys: &GroupSystem, ks: &[usize]) -> CodeReport {
    let nodes = sys.data_devices() + sys.parity_devices();
    let group = nodes / sys.layout.groups();
    let reads = (group - sys.tolerance) as f64;
    let sweep = ks
        .iter()
        .map(|&k| SweepPoint {
            k,
            p_loss: sys.failure_probability(k),
            repair_blocks_per_lost: reads,
            repair_bytes_per_lost: reads * BLOCK_BYTES as f64,
            devices_contacted: reads,
            recovery_depth: 1.0,
        })
        .collect();
    CodeReport {
        code,
        kind: "analytic",
        nodes,
        data: sys.data_devices(),
        overhead: nodes as f64 / sys.data_devices() as f64,
        sweep,
    }
}

/// Runs the whole bake-off: six generator families plus the two paper
/// RAID systems, all at 96-device scale.
pub fn measure(trials_per_k: u64, ks: &[usize], seed: u64) -> RepairBandwidthReport {
    let params = TornadoParams::paper_96();
    let tornado = tornado_core::tornado_graph_1();
    let doubled = tornado_gen::altered::generate_doubled(params, seed).expect("doubled");
    let shifted = tornado_gen::altered::generate_shifted(params, seed).expect("shifted");
    let regular = tornado_gen::regular::generate_regular(48, 4, seed).expect("regular");
    let cascade =
        tornado_gen::cascaded::generate_fixed_degree(params, 4, seed).expect("cascade");
    let mirror = tornado_gen::mirror::generate_mirror(48).expect("mirror");

    let graphs: [(&'static str, &Graph); 6] = [
        ("tornado", &tornado),
        ("tornado_doubled", &doubled),
        ("tornado_shifted", &shifted),
        ("regular_d4", &regular),
        ("cascade_fixed_d4", &cascade),
        ("mirror", &mirror),
    ];
    let mut codes: Vec<CodeReport> = graphs
        .iter()
        .map(|(code, g)| sweep_graph(code, g, ks, trials_per_k, seed))
        .collect();
    codes.push(sweep_raid("raid5", &GroupSystem::raid5_paper(), ks));
    codes.push(sweep_raid("raid6", &GroupSystem::raid6_paper(), ks));

    RepairBandwidthReport {
        block_bytes: BLOCK_BYTES,
        trials_per_k,
        ks: ks.to_vec(),
        codes,
    }
}

/// Effort → sweep shape: the full sweep reaches the interesting loss
/// region (k = 8 is past every family's worst-case bound); smoke efforts
/// shrink trials, never the schema.
pub fn sweep_config(effort: &Effort) -> (u64, Vec<usize>) {
    let trials = (effort.mc_trials / 20).clamp(25, 5_000);
    (trials, (1..=8).collect())
}

/// Runs the bake-off and formats the EXPERIMENTS.md table.
pub fn run(effort: &Effort) -> String {
    let (trials, ks) = sweep_config(effort);
    let r = measure(trials, &ks, effort.seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Repair-bandwidth bake-off: {} random offline patterns per (code, k), {} KiB blocks",
        r.trials_per_k,
        r.block_bytes / 1024
    );
    let _ = writeln!(
        out,
        "code, kind, overhead, k, p_loss, repair_blocks_per_lost, devices_contacted, depth"
    );
    for c in &r.codes {
        for p in &c.sweep {
            let _ = writeln!(
                out,
                "{}, {}, {:.2}, {}, {:.4}, {:.2}, {:.2}, {:.2}",
                c.code,
                c.kind,
                c.overhead,
                p.k,
                p.p_loss,
                p.repair_blocks_per_lost,
                p.devices_contacted,
                p.recovery_depth
            );
        }
    }
    let mirror1 = r.code("mirror").at(1);
    let tornado1 = r.code("tornado").at(1);
    let _ = writeln!(
        out,
        "mirroring repairs {:.0} block/block at depth {:.0}; tornado reads {:.1} blocks/block \
         from {:.1} devices — the bandwidth price of surviving what mirroring cannot",
        mirror1.repair_blocks_per_lost,
        mirror1.recovery_depth,
        tornado1.repair_blocks_per_lost,
        tornado1.devices_contacted
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_family_and_analytic_row() {
        let r = measure(25, &[1, 2], 7);
        assert_eq!(r.codes.len(), 8);
        assert!(r.codes.iter().filter(|c| c.kind == "graph").count() >= 6);
        for c in &r.codes {
            assert_eq!(c.sweep.len(), 2, "{}", c.code);
            assert!(c.overhead >= 1.0, "{}", c.code);
        }
    }

    #[test]
    fn mirror_repairs_one_block_per_block() {
        let r = measure(50, &[1], 3);
        let p = r.code("mirror").at(1);
        assert_eq!(p.p_loss, 0.0, "one loss never defeats a mirror pair");
        assert!(
            (p.repair_blocks_per_lost - 1.0).abs() < 1e-12,
            "a mirror repair reads exactly the surviving copy, got {}",
            p.repair_blocks_per_lost
        );
        assert!((p.devices_contacted - 1.0).abs() < 1e-12);
    }

    #[test]
    fn raid_rows_match_the_closed_form() {
        let r = measure(25, &[1, 2, 3], 3);
        let raid5 = r.code("raid5");
        assert_eq!(raid5.at(1).devices_contacted, 11.0, "reads the other 11");
        assert_eq!(raid5.at(1).p_loss, 0.0, "RAID5 survives any single loss");
        assert!(raid5.at(2).p_loss > 0.0, "two losses can share a drawer");
        let raid6 = r.code("raid6");
        assert_eq!(raid6.at(1).devices_contacted, 10.0, "solves from any 10");
        assert_eq!(raid6.at(2).p_loss, 0.0, "RAID6 survives any double loss");
    }

    #[test]
    fn tornado_single_loss_is_always_repairable() {
        let r = measure(50, &[1], 11);
        let p = r.code("tornado").at(1);
        assert_eq!(p.p_loss, 0.0);
        assert!(p.repair_blocks_per_lost >= 1.0, "a repair reads something");
        assert!(p.recovery_depth >= 1.0);
    }

    #[test]
    fn run_formats_every_code_row() {
        let report = run(&Effort::smoke());
        for code in [
            "tornado,",
            "tornado_doubled,",
            "tornado_shifted,",
            "regular_d4,",
            "cascade_fixed_d4,",
            "mirror,",
            "raid5,",
            "raid6,",
        ] {
            assert!(report.contains(code), "missing row {code}:\n{report}");
        }
    }
}
