//! Guided retrieval ablation (paper §5.2 discussion and §6 future work).
//!
//! "We plan on examining several guided search techniques to minimize the
//! number of devices accessed to reconstruct an encoded stripe." This
//! experiment implements and measures that idea: for increasing numbers of
//! failed devices, how many blocks does a `get` touch under (a) naive
//! fetch-everything-available and (b) the pruned-schedule planner?

use crate::effort::Effort;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use tornado_graph::NodeId;
use tornado_store::retrieval::{plan_fetch_all, plan_retrieval};

/// Runs the ablation over the catalog's first graph.
pub fn run(effort: &Effort) -> String {
    let graph = tornado_core::tornado_graph_1();
    let n = graph.num_nodes();
    let trials = (effort.mc_trials / 100).clamp(20, 2_000);
    let mut rng = SmallRng::seed_from_u64(effort.seed);
    let mut out = String::new();
    let _ = writeln!(out, "# Guided retrieval ablation — blocks fetched per get");
    let _ = writeln!(
        out,
        "k_failed, trials, planned_avg, naive_avg, planned/naive, unrecoverable"
    );
    let mut perm: Vec<usize> = (0..n).collect();
    for k in [0usize, 2, 4, 8, 12, 16, 24, 32, 40] {
        let mut planned_total = 0usize;
        let mut naive_total = 0usize;
        let mut decodable = 0u64;
        let mut unrecoverable = 0u64;
        for _ in 0..trials {
            for i in 0..k {
                let j = rng.gen_range(i..n);
                perm.swap(i, j);
            }
            let missing = &perm[..k];
            let available: Vec<NodeId> = (0..n as NodeId)
                .filter(|v| !missing.contains(&(*v as usize)))
                .collect();
            match plan_retrieval(&graph, &available) {
                Some(plan) => {
                    planned_total += plan.blocks_fetched();
                    naive_total += plan_fetch_all(&graph, &available)
                        .expect("plan exists")
                        .blocks_fetched();
                    decodable += 1;
                }
                None => unrecoverable += 1,
            }
        }
        if decodable > 0 {
            let planned = planned_total as f64 / decodable as f64;
            let naive = naive_total as f64 / decodable as f64;
            let _ = writeln!(
                out,
                "{k}, {trials}, {planned:.1}, {naive:.1}, {:.2}, {unrecoverable}",
                planned / naive
            );
        } else {
            let _ = writeln!(out, "{k}, {trials}, -, -, -, {unrecoverable}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_beats_naive_on_healthy_and_degraded_stripes() {
        let report = run(&Effort::smoke());
        // The healthy row must show 48 planned vs 96 naive = ratio 0.50.
        let healthy = report
            .lines()
            .find(|l| l.starts_with("0,"))
            .expect("healthy row");
        assert!(healthy.contains("48.0, 96.0, 0.50"), "row: {healthy}");
    }
}
