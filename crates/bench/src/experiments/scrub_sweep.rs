//! Scrub-interval reliability sweep (extends Table 5 toward §6).
//!
//! Table 5 assumes no repair; the paper's §6 scrubber exists precisely to
//! beat that. This ablation sweeps the number of annual scrub/repair
//! passes for the Table 5 systems and reports the simulated annual data
//! loss probability. Expected shape: striping gains nothing (any failure
//! is instantly fatal), parity systems gain polynomially, and the Tornado
//! system's loss probability falls below measurement resolution almost
//! immediately.

use crate::effort::Effort;
use std::fmt::Write as _;
use tornado_analysis::lifetime::{simulate_lifetime, LifetimeConfig};
use tornado_codec::ErasureDecoder;
use tornado_gen::mirror::generate_mirror;
use tornado_raid::GroupSystem;

/// The sweep of scrubs-per-year (0 = Table 5's model).
pub const SCRUBS: [usize; 4] = [0, 4, 12, 52];

/// Runs the sweep.
pub fn run(effort: &Effort) -> String {
    let trials = (effort.mc_trials * 5).clamp(50_000, 2_000_000);
    let afr = 0.01;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Scrub sweep — simulated annual P(data loss), AFR = {afr}, {trials} trials"
    );
    let _ = writeln!(out, "system, scrubs_per_year, p_loss");

    let base = |scrubs: usize| LifetimeConfig {
        devices: 96,
        afr,
        scrubs,
        years: 1.0,
        trials,
        seed: effort.seed,
    };

    for &scrubs in &SCRUBS {
        let r = simulate_lifetime(&base(scrubs), |p| !p.is_empty());
        let _ = writeln!(out, "Striping, {scrubs}, {:.6}", r.loss_probability());
    }
    for (label, sys) in [
        ("RAID5", GroupSystem::raid5_paper()),
        ("RAID6", GroupSystem::raid6_paper()),
    ] {
        for &scrubs in &SCRUBS {
            let r = simulate_lifetime(&base(scrubs), |p| sys.pattern_fails(p));
            let _ = writeln!(out, "{label}, {scrubs}, {:.6}", r.loss_probability());
        }
    }
    let mirror = generate_mirror(48).expect("mirror");
    for &scrubs in &SCRUBS {
        let mut dec = ErasureDecoder::new(&mirror);
        let r = simulate_lifetime(&base(scrubs), |p| !dec.decode(p));
        let _ = writeln!(out, "Mirrored, {scrubs}, {:.6}", r.loss_probability());
    }
    let tornado = tornado_core::tornado_graph_1();
    for &scrubs in &SCRUBS {
        let mut dec = ErasureDecoder::new(&tornado);
        let r = simulate_lifetime(&base(scrubs), |p| !dec.decode(p));
        let _ = writeln!(out, "Tornado Graph 1, {scrubs}, {:.6}", r.loss_probability());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_expected_shape() {
        let report = run(&Effort::smoke());
        let value = |sys: &str, scrubs: usize| -> f64 {
            report
                .lines()
                .find(|l| l.starts_with(&format!("{sys}, {scrubs},")))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("row {sys}/{scrubs} missing:\n{report}"))
        };
        // Striping is scrub-immune (within MC noise of the same estimate).
        let s0 = value("Striping", 0);
        let s52 = value("Striping", 52);
        assert!((s0 - s52).abs() < 0.05, "striping {s0} vs {s52}");
        assert!(s0 > 0.5, "striping must lose data often");
        // RAID5 benefits from weekly scrubs.
        assert!(value("RAID5", 52) < value("RAID5", 0));
        // Tornado with no repair is already ~0 at 96 devices/AFR 1%.
        assert!(value("Tornado Graph 1", 0) < 0.01);
    }
}
