//! Connection-count scaling of the event-loop server.
//!
//! Two questions, one harness:
//!
//! 1. **How far do connections scale?** An open-loop GET stream at a
//!    fixed aggregate rate is multiplexed over `N` concurrent
//!    connections from a single driver thread ([`tornado_server::load::mux`]),
//!    with `N` swept from 64 to 10,000+. The offered load stays
//!    constant, so the p99-vs-connections curve isolates what holding
//!    (and serving) more sockets costs the server, not what more demand
//!    costs it. Latency is measured from each operation's *scheduled*
//!    arrival — a server that buckles under connection count shows up as
//!    p99 inflation, never as silently reduced throughput.
//! 2. **Does the event loop give anything up at low counts?** A
//!    closed-loop A/B at 64 connections, event-loop vs the legacy
//!    thread-per-connection path, same seed and mix, fresh in-process
//!    server per arm.
//!
//! The process `RLIMIT_NOFILE` hard cap (20k in CI containers) cannot
//! hold two sockets per connection at the 10k point, so the sweep's
//! server runs as a *separate process* — the sibling `tornado serve`
//! binary — giving each side its own descriptor budget and a real
//! process boundary. When that binary is absent (e.g. `cargo run -p
//! tornado-bench` without building the CLI) the sweep falls back to an
//! in-process server and caps the sweep at what the fd budget fits,
//! reporting which mode ran.

use crate::effort::Effort;
use std::fmt::Write as _;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tornado_server::load::mux::{run_mux, MuxConfig, MuxReport};
use tornado_server::{
    run_load, serve, Client, HealthConfig, LoadConfig, OpMix, ServerConfig, ServerObserver,
};
use tornado_store::ArchivalStore;

/// One sweep point: `connections` held concurrently under a fixed
/// offered load.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Connections requested at this point.
    pub connections: usize,
    /// Connections actually established (must equal `connections`).
    pub connected: usize,
    /// Offered (open-loop) arrival rate, ops/s.
    pub target_rate: f64,
    /// Completed ops/s over the measured window.
    pub achieved_rate: f64,
    /// Completed operations.
    pub ops: u64,
    /// Median latency from scheduled arrival, µs.
    pub p50_us: u64,
    /// 99th-percentile latency from scheduled arrival, µs.
    pub p99_us: u64,
    /// BUSY answers (not retried; open loop sheds at the server).
    pub busy: u64,
    /// Arrivals shed at the driver (every connection at its cap).
    pub shed: u64,
    /// Transport/server errors.
    pub errors: u64,
    /// Requests still unanswered at the drain deadline.
    pub unanswered: u64,
    /// Verified GETs with wrong bytes (must be 0).
    pub payload_mismatches: u64,
}

/// One closed-loop A/B arm at fixed connection count.
#[derive(Clone, Copy, Debug)]
pub struct AbPoint {
    /// Completed operations.
    pub ops: u64,
    /// Completed ops/s.
    pub ops_per_sec: f64,
    /// Median client latency, µs.
    pub p50_us: u64,
    /// 99th-percentile client latency, µs.
    pub p99_us: u64,
}

/// Full result of one scaling run.
#[derive(Clone, Debug)]
pub struct ScaleResult {
    /// Event-loop shards serving the sweep.
    pub shards: usize,
    /// `"external-process"` or `"in-process"` (fd-budget fallback).
    pub sweep_server: &'static str,
    /// Sweep points, ascending connection count.
    pub sweep: Vec<SweepPoint>,
    /// Connections at the A/B point.
    pub ab_connections: usize,
    /// Thread-per-connection arm.
    pub ab_threaded: AbPoint,
    /// Event-loop arm.
    pub ab_event_loop: AbPoint,
}

impl ScaleResult {
    /// Largest connection count the sweep actually established.
    pub fn max_connections(&self) -> usize {
        self.sweep.iter().map(|p| p.connected).max().unwrap_or(0)
    }

    /// Event-loop ops/s at the A/B point relative to threaded.
    pub fn ab_ratio(&self) -> f64 {
        if self.ab_threaded.ops_per_sec > 0.0 {
            self.ab_event_loop.ops_per_sec / self.ab_threaded.ops_per_sec
        } else {
            0.0
        }
    }
}

/// Headline numbers of the last [`run`], for the `run_all` manifest.
#[derive(Clone, Copy, Debug)]
pub struct ScaleSummary {
    /// Largest concurrent connection count established.
    pub max_connections: usize,
    /// p99 latency at that count, µs.
    pub p99_at_max_us: u64,
    /// Achieved ops/s at that count.
    pub rate_at_max: f64,
    /// Event-loop closed-loop ops/s at the A/B point.
    pub ops_per_sec_event_loop: f64,
    /// Thread-per-connection closed-loop ops/s at the A/B point.
    pub ops_per_sec_threaded: f64,
    /// Event-loop / threaded ratio.
    pub ab_ratio: f64,
}

/// Last run's summary (populated by [`run`], read by `run_all`).
pub static LAST_SUMMARY: Mutex<Option<ScaleSummary>> = Mutex::new(None);

/// A server for the sweep: either a child process or an in-process
/// handle, shut down via the wire op either way.
enum SweepServer {
    External(Child),
    InProcess(tornado_server::ServerHandle),
}

/// File descriptors reserved for everything that is not a benchmark
/// socket (stdio, listener, epoll/waker fds, admin + prefill conns).
const FD_SLACK: u64 = 512;

/// Boots the sweep server with `shards` event-loop shards, preferring
/// the sibling `tornado` binary so driver and server each get a full
/// descriptor budget. Returns the server, its address, and which mode.
fn boot_sweep_server(shards: usize) -> (SweepServer, String, &'static str) {
    if let Some((child, addr)) = spawn_external(shards) {
        return (SweepServer::External(child), addr, "external-process");
    }
    let store = Arc::new(ArchivalStore::new(tornado_core::tornado_graph_1()));
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 256,
        shards,
        health: HealthConfig { enabled: false, ..HealthConfig::default() },
        ..ServerConfig::default()
    };
    let handle =
        serve(cfg, store, Arc::new(ServerObserver::disabled())).expect("bind loopback server");
    let addr = handle.local_addr().to_string();
    (SweepServer::InProcess(handle), addr, "in-process")
}

/// Spawns `tornado serve` (sibling binary of the current exe) and reads
/// the kernel-assigned address from its `--port-file`. `None` when the
/// binary is missing or the server does not come up in time.
fn spawn_external(shards: usize) -> Option<(Child, String)> {
    let exe = std::env::current_exe().ok()?;
    let cli = exe.parent()?.join("tornado");
    if !cli.exists() {
        return None;
    }
    let port_file = std::env::temp_dir().join(format!(
        "tornado-scale-port-{}-{shards}",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&port_file);
    let mut child = Command::new(&cli)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--queue-depth",
            "256",
            "--shards",
        ])
        .arg(shards.to_string())
        .args(["--no-health", "--quiet", "--port-file"])
        .arg(&port_file)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .ok()?;
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if let Ok(addr) = std::fs::read_to_string(&port_file) {
            let addr = addr.trim().to_string();
            if !addr.is_empty() {
                let _ = std::fs::remove_file(&port_file);
                return Some((child, addr));
            }
        }
        if let Ok(Some(_)) = child.try_wait() {
            // Died before publishing a port (e.g. stale build).
            let _ = std::fs::remove_file(&port_file);
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_file(&port_file);
    None
}

/// Asks the sweep server to drain and waits for it to exit.
fn stop_sweep_server(server: SweepServer, addr: &str) {
    if let Ok(mut admin) = Client::connect(addr) {
        let _ = admin.shutdown();
    }
    match server {
        SweepServer::External(mut child) => {
            let deadline = Instant::now() + Duration::from_secs(10);
            while Instant::now() < deadline {
                if let Ok(Some(_)) = child.try_wait() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            let _ = child.kill();
            let _ = child.wait();
        }
        SweepServer::InProcess(handle) => handle.join(),
    }
}

/// Runs one closed-loop A/B arm against a fresh in-process server.
fn run_ab_arm(event_loop: bool, shards: usize, connections: usize, duration_ms: u64, seed: u64) -> AbPoint {
    let store = Arc::new(ArchivalStore::new(tornado_core::tornado_graph_1()));
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 256,
        event_loop,
        shards,
        health: HealthConfig { enabled: false, ..HealthConfig::default() },
        ..ServerConfig::default()
    };
    let handle =
        serve(cfg, store, Arc::new(ServerObserver::disabled())).expect("bind loopback server");
    let addr = handle.local_addr().to_string();
    let report = run_load(&LoadConfig {
        addr: addr.clone(),
        connections,
        duration_ms,
        seed,
        mix: OpMix { put: 10, get: 88, delete: 2 },
        payload_min: 1 << 10,
        payload_max: 8 << 10,
        prefill: 4,
        trace_sample: 0,
        ..LoadConfig::default()
    })
    .expect("closed-loop A/B arm");
    if let Ok(mut admin) = Client::connect(&addr) {
        let _ = admin.shutdown();
    }
    handle.join();
    assert_eq!(report.payload_mismatches, 0, "A/B arm must verify byte-for-byte");
    AbPoint {
        ops: report.ops,
        ops_per_sec: report.ops_per_sec,
        p50_us: report.p50_us(),
        p99_us: report.p99_us(),
    }
}

/// Runs the sweep and A/B, returning the structured result.
///
/// `quick` caps the sweep at ~1k connections with shorter windows — the
/// CI smoke; the full run reaches 10,000.
pub fn measure(quick: bool, seed: u64) -> ScaleResult {
    let shards = 2usize;
    let rate = 1_000.0;
    let (duration_ms, counts): (u64, Vec<usize>) = if quick {
        (800, vec![64, 256, 1_024])
    } else {
        (2_000, vec![64, 256, 1_024, 4_096, 10_000])
    };

    let (server, addr, sweep_server) = boot_sweep_server(shards);

    // In-process fallback shares one fd budget between both socket ends;
    // cap the sweep so two fds per connection plus slack always fit.
    let fd_cap = tornado_server::reactor::raise_nofile_limit(42_000).unwrap_or(1_024);
    let conn_cap = if sweep_server == "in-process" {
        ((fd_cap.saturating_sub(FD_SLACK)) / 2) as usize
    } else {
        (fd_cap.saturating_sub(FD_SLACK)) as usize
    };

    let mut sweep = Vec::new();
    for (i, &want) in counts.iter().enumerate() {
        let connections = want.min(conn_cap);
        let report: MuxReport = run_mux(&MuxConfig {
            addr: addr.clone(),
            connections,
            duration_ms,
            rate_ops_per_sec: rate,
            seed: seed ^ (i as u64 + 1),
            prefill: 16,
            payload_len: 4 << 10,
            max_inflight_per_conn: 32,
            verify_sample: 64,
            ..MuxConfig::default()
        })
        .expect("open-loop sweep point");
        sweep.push(SweepPoint {
            connections,
            connected: report.connected,
            target_rate: report.target_rate,
            achieved_rate: report.achieved_rate,
            ops: report.ops,
            p50_us: report.p50_us(),
            p99_us: report.p99_us(),
            busy: report.busy,
            shed: report.shed,
            errors: report.errors,
            unanswered: report.unanswered,
            payload_mismatches: report.payload_mismatches,
        });
    }
    stop_sweep_server(server, &addr);

    // Closed-loop A/B at low connection count, in-process both arms.
    let ab_connections = 64;
    let ab_ms = if quick { 800 } else { 1_500 };
    let ab_threaded = run_ab_arm(false, shards, ab_connections, ab_ms, seed);
    let ab_event_loop = run_ab_arm(true, shards, ab_connections, ab_ms, seed);

    let result = ScaleResult {
        shards,
        sweep_server,
        sweep,
        ab_connections,
        ab_threaded,
        ab_event_loop,
    };
    let at_max = result
        .sweep
        .iter()
        .max_by_key(|p| p.connected)
        .copied()
        .expect("non-empty sweep");
    *LAST_SUMMARY.lock().unwrap() = Some(ScaleSummary {
        max_connections: result.max_connections(),
        p99_at_max_us: at_max.p99_us,
        rate_at_max: at_max.achieved_rate,
        ops_per_sec_event_loop: result.ab_event_loop.ops_per_sec,
        ops_per_sec_threaded: result.ab_threaded.ops_per_sec,
        ab_ratio: result.ab_ratio(),
    });
    result
}

/// Runs the experiment for `run_all`, returning the printable report.
pub fn run(effort: &Effort) -> String {
    // run_all always runs the quick shape: the 10k point is the
    // standalone bin's job (it needs the sibling CLI binary and a
    // release build to mean anything).
    let r = measure(true, effort.seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Event-loop connection scaling — open-loop sweep ({} server, {} shards) + 64-conn A/B",
        r.sweep_server, r.shards
    );
    let _ = writeln!(out, "connections, achieved_ops_s, p50_us, p99_us, busy, errors");
    for p in &r.sweep {
        let _ = writeln!(
            out,
            "{}, {:.0}, {}, {}, {}, {}",
            p.connected, p.achieved_rate, p.p50_us, p.p99_us, p.busy, p.errors
        );
    }
    let _ = writeln!(
        out,
        "ab_64conn_threaded_ops_s, {:.0}",
        r.ab_threaded.ops_per_sec
    );
    let _ = writeln!(
        out,
        "ab_64conn_event_loop_ops_s, {:.0}",
        r.ab_event_loop.ops_per_sec
    );
    let _ = writeln!(out, "ab_event_loop_vs_threaded, {:.2}", r.ab_ratio());
    for p in &r.sweep {
        assert_eq!(p.payload_mismatches, 0, "sweep GETs must verify byte-for-byte");
    }
    out
}
