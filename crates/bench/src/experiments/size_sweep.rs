//! Graph-size sweep (Plank's finite-size observation, paper §2.1/§3).
//!
//! "Plank concludes that LDPC codes demonstrate their least favorable
//! overhead for graphs containing between 10 and 100 nodes" — which is why
//! the paper calls its 96-node stripes "an appropriate lower bound". This
//! sweep measures both overhead metrics across total graph sizes from 32
//! to 256 nodes; the expected shape is overhead *decreasing* towards the
//! asymptotic regime as graphs grow.

use crate::effort::Effort;
use std::fmt::Write as _;
use tornado_analysis::incremental_overhead;
use tornado_gen::{TornadoGenerator, TornadoParams};

/// Data-node counts swept (total nodes are double these).
pub const SIZES: [usize; 5] = [16, 32, 48, 96, 128];

/// Runs the sweep.
pub fn run(effort: &Effort) -> String {
    let trials = (effort.mc_trials / 10).clamp(500, 50_000);
    let mut out = String::new();
    let _ = writeln!(out, "# Size sweep — incremental overhead vs graph size, {trials} trials");
    let _ = writeln!(out, "total_nodes, mean_blocks, overhead, min, max");
    for &num_data in &SIZES {
        let params = TornadoParams {
            num_data,
            ..TornadoParams::default()
        };
        let graph = match TornadoGenerator::new(params).generate_screened(effort.seed, 256, 2) {
            Ok((g, _)) => g,
            Err(e) => {
                let _ = writeln!(out, "{}, generation failed: {e}", 2 * num_data);
                continue;
            }
        };
        let r = incremental_overhead(&graph, trials, effort.seed);
        let _ = writeln!(
            out,
            "{}, {:.2}, {:.4}, {}, {}",
            graph.num_nodes(),
            r.mean_blocks,
            r.mean_overhead,
            r.min_blocks,
            r.max_blocks
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_improves_with_size() {
        let report = run(&Effort::smoke());
        let overhead = |nodes: usize| -> f64 {
            report
                .lines()
                .find(|l| l.starts_with(&format!("{nodes},")))
                .and_then(|l| l.split(", ").nth(2))
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("row for {nodes} missing:\n{report}"))
        };
        // The asymptotic trend: 256-node graphs beat 32-node graphs.
        assert!(
            overhead(256) < overhead(32),
            "{} !< {}",
            overhead(256),
            overhead(32)
        );
        for &d in &SIZES {
            assert!(overhead(2 * d) >= 1.0, "overhead below MDS bound at {d}");
        }
    }
}
