//! Table 5: theoretical probability of data loss for 96-disk systems at
//! AFR 0.01 with no repair (paper §5.1).
//!
//! Paper values to reproduce in shape: striping 0.61895, RAID5 0.04834,
//! RAID6 0.00164, mirrored 0.00479 (all exact here, so they match to
//! rounding), and Tornado graphs around 10⁻⁹ — five to seven orders of
//! magnitude below every alternative.

use crate::effort::Effort;
use crate::harness::graph_profile;
use std::fmt::Write as _;
use tornado_analysis::reliability::{
    individual_disk_failure_probability, striping_failure_probability, system_failure_probability,
    ReliabilityRow,
};
use tornado_raid::{mirrored_profile, GroupSystem};

/// The modelled annual failure rate (paper §5.1).
pub const AFR: f64 = 0.01;

/// Computes every Table 5 row.
pub fn rows(effort: &Effort) -> Vec<ReliabilityRow> {
    let mut rows = vec![
        ReliabilityRow {
            system: "Individual Disk".into(),
            data_devices: 96,
            parity_devices: 0,
            p_fail: individual_disk_failure_probability(AFR),
        },
        ReliabilityRow {
            system: "Striping".into(),
            data_devices: 96,
            parity_devices: 0,
            p_fail: striping_failure_probability(96, AFR),
        },
    ];
    for (name, sys) in [
        ("RAID5", GroupSystem::raid5_paper()),
        ("RAID6", GroupSystem::raid6_paper()),
    ] {
        rows.push(ReliabilityRow {
            system: name.into(),
            data_devices: sys.data_devices(),
            parity_devices: sys.parity_devices(),
            p_fail: system_failure_probability(&sys.profile(), AFR),
        });
    }
    rows.push(ReliabilityRow {
        system: "Mirrored".into(),
        data_devices: 48,
        parity_devices: 48,
        p_fail: system_failure_probability(&mirrored_profile(48), AFR),
    });
    for (label, graph) in tornado_core::catalog::all() {
        let profile = graph_profile(&graph, effort);
        rows.push(ReliabilityRow {
            system: label.into(),
            data_devices: 48,
            parity_devices: 48,
            p_fail: system_failure_probability(&profile, AFR),
        });
    }
    rows
}

/// Runs the experiment and renders the table.
pub fn run(effort: &Effort) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 5 — P(fail) for 96-disk systems, AFR = {AFR}, no repair"
    );
    let _ = writeln!(out, "{:<20} {:>5} {:>7} {:>12}", "System", "Data", "Parity", "P(fail)");
    for r in rows(effort) {
        let _ = writeln!(
            out,
            "{:<20} {:>5} {:>7} {:>12}",
            r.system,
            r.data_devices,
            r.parity_devices,
            r.formatted_p_fail()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_rows_match_paper_to_rounding() {
        let rows = rows(&Effort::smoke());
        let get = |name: &str| rows.iter().find(|r| r.system == name).unwrap().p_fail;
        assert!((get("Striping") - 0.61895).abs() < 5e-5);
        assert!((get("RAID5") - 0.04834).abs() < 5e-5);
        assert!((get("RAID6") - 0.00164).abs() < 5e-5);
        assert!((get("Mirrored") - 0.00479).abs() < 5e-5);
        assert_eq!(get("Individual Disk"), 0.01);
    }

    #[test]
    fn tornado_rows_beat_every_alternative() {
        // Even at smoke fidelity (exhaustive only to k = 2, noisy MC above)
        // the Tornado graphs must land far below RAID6.
        let rows = rows(&Effort::smoke());
        let raid6 = rows.iter().find(|r| r.system == "RAID6").unwrap().p_fail;
        for r in rows.iter().filter(|r| r.system.starts_with("Tornado")) {
            assert!(
                r.p_fail < raid6,
                "{} p_fail {} not below RAID6 {raid6}",
                r.system,
                r.p_fail
            );
        }
    }
}
