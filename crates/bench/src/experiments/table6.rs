//! Table 6: nodes required for 50 % reconstruction probability and the
//! resulting overhead (paper §5.2).
//!
//! Paper shape: 61–62 of 96 nodes give a 50 % chance of immediate
//! reconstruction, an overhead of 1.27–1.29 relative to the 48 data
//! blocks — deliberately larger than the literature's ~1.2 because the
//! testing system fixes the node count in advance.

use crate::effort::Effort;
use crate::harness::graph_profile;
use std::fmt::Write as _;
use tornado_analysis::overhead_report;

/// Runs the experiment and renders the table.
pub fn run(effort: &Effort) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Table 6 — nodes for 50% reconstruction and overhead");
    let _ = writeln!(out, "{:<20} {:>6} {:>9}", "System", "Nodes", "Overhead");
    for (label, graph) in tornado_core::catalog::all() {
        let profile = graph_profile(&graph, effort);
        let report = overhead_report(&profile, graph.num_data());
        let _ = writeln!(
            out,
            "{:<20} {:>6} {:>9.2}",
            label, report.nodes_for_half, report.overhead
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::graph_profile;

    #[test]
    fn half_probability_threshold_is_in_the_paper_band() {
        // Even at smoke fidelity the 50% crossing lands in the right
        // region: more than the 48 data blocks, well under all 96.
        let g = tornado_core::tornado_graph_1();
        let profile = graph_profile(&g, &Effort::smoke());
        let report = overhead_report(&profile, 48);
        assert!(
            (49..=80).contains(&report.nodes_for_half),
            "nodes_for_half = {}",
            report.nodes_for_half
        );
        assert!(report.overhead > 1.0 && report.overhead < 1.7);
    }
}
