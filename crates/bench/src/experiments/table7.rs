//! Table 7: first failure detected for two-site multi-graph federations
//! (paper §5.3).
//!
//! Paper shape: four-copy mirroring fails at 4 devices; the same Tornado
//! graph at both sites fails at 2 × its single-site first failure (10);
//! *complementary* graph pairs push the detected first failure to 17–19
//! because both sites must lose the same critical data nodes.
//!
//! Exactly like the paper, the search is targeted ("First Failure
//! Detected"): candidates are built from the per-graph critical sets and
//! verified by joint decoding, so the number is an upper bound on the true
//! minimum.

use crate::effort::Effort;
use std::fmt::Write as _;
use tornado_codec::ErasureDecoder;
use tornado_gen::mirror::generate_mirror;
use tornado_sim::multi::{first_failure_detected, FederatedFailure, FederatedSearchConfig, FederatedSystem};

/// One Table 7 row.
pub struct FederationRow {
    /// Configuration label.
    pub label: String,
    /// The detected joint failure.
    pub failure: FederatedFailure,
}

/// Runs the targeted search for every configuration in the paper's table.
pub fn rows(effort: &Effort) -> Vec<FederationRow> {
    let cfg = FederatedSearchConfig {
        seed: effort.seed,
        rounds_per_node: (effort.mc_trials / 500).clamp(8, 200) as usize,
        escalation_cap: 24,
        // Seed with the exhaustively detected critical sets, as the paper
        // does; depth 5 at default effort (the paper's first-failure level).
        exhaustive_seed_depth: Some(effort.exhaustive_max_k + 1),
    };
    let t1 = tornado_core::tornado_graph_1();
    let t2 = tornado_core::tornado_graph_2();
    let t3 = tornado_core::tornado_graph_3();
    let mirror = generate_mirror(48).expect("mirror generation");

    let configs: Vec<(String, &tornado_graph::Graph, &tornado_graph::Graph)> = vec![
        ("Mirrored (4 copies)".into(), &mirror, &mirror),
        ("Tornado 1 + Tornado 1".into(), &t1, &t1),
        ("Tornado 1 + Tornado 2".into(), &t1, &t2),
        ("Tornado 1 + Tornado 3".into(), &t1, &t3),
        ("Tornado 2 + Tornado 3".into(), &t2, &t3),
    ];
    configs
        .into_iter()
        .map(|(label, a, b)| {
            let failure = first_failure_detected(a, b, &cfg);
            // Verify the detected failure is genuine before reporting it.
            let fed = FederatedSystem::new(a, b);
            let mut dec = ErasureDecoder::new(fed.graph());
            assert!(
                !dec.decode(&failure.devices),
                "{label}: reported failure actually decodes"
            );
            FederationRow { label, failure }
        })
        .collect()
}

/// Runs the experiment and renders the table.
pub fn run(effort: &Effort) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Table 7 — federated multi-graph first failure detected");
    let _ = writeln!(out, "{:<24} {:>22}", "System", "First Failure Detected");
    for row in rows(effort) {
        let _ = writeln!(out, "{:<24} {:>22}", row.label, row.failure.size());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrored_federation_detects_four() {
        let cfg = FederatedSearchConfig {
            seed: 3,
            rounds_per_node: 4,
            escalation_cap: 8,
            exhaustive_seed_depth: Some(2),
        };
        let mirror = generate_mirror(48).unwrap();
        let f = first_failure_detected(&mirror, &mirror, &cfg);
        assert_eq!(f.size(), 4, "four copies of one block");
    }

    #[test]
    fn identical_tornado_pair_doubles_and_verifies() {
        // Use small mirrors as a fast stand-in for the doubling law; the
        // full Tornado rows run in the release experiment binary.
        let cfg = FederatedSearchConfig {
            seed: 5,
            rounds_per_node: 8,
            escalation_cap: 8,
            exhaustive_seed_depth: Some(2),
        };
        let m = generate_mirror(6).unwrap();
        let f = first_failure_detected(&m, &m, &cfg);
        assert_eq!(f.size(), 4, "2 (single-site pair) x 2 sites");
    }
}
