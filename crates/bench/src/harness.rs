//! Shared measurement and report-formatting helpers.

use crate::effort::Effort;
use std::fmt::Write as _;
use tornado_graph::Graph;
use tornado_sim::{
    monte_carlo_profile, worst_case_search, FailureProfile, MonteCarloConfig, WorstCaseConfig,
};

/// Builds the paper's hybrid profile for a graph: exhaustive counts for
/// `k ≤ exhaustive_max_k`, Monte-Carlo for every larger `k`.
pub fn graph_profile(graph: &Graph, effort: &Effort) -> FailureProfile {
    let report = worst_case_search(
        graph,
        &WorstCaseConfig {
            max_k: effort.exhaustive_max_k,
            collect_cap: 64,
            stop_at_first_failure: false,
        },
    );
    let mut profile = report.to_profile(graph.num_nodes());
    let ks: Vec<usize> = (effort.exhaustive_max_k + 1..=graph.num_nodes()).collect();
    profile.merge(&monte_carlo_profile(
        graph,
        &MonteCarloConfig {
            trials_per_k: effort.mc_trials,
            seed: effort.seed,
            ks: Some(ks),
        },
    ));
    profile
}

/// The worst-case failure cell for the paper's tables: the first
/// exhaustively certified failing level, or `">D"` when all exact levels
/// (depth `D`) are clean — sampled rows cannot resolve the ~10⁻⁷ failure
/// fractions the worst-case column is about.
pub fn first_failure_cell(profile: &FailureProfile) -> String {
    match profile.first_failure_exact() {
        Some(k) => k.to_string(),
        None => format!(">{}", profile.max_exact_k()),
    }
}

/// One labelled system in a figure/table.
pub struct SystemRow {
    /// Display label.
    pub label: String,
    /// Its failure profile.
    pub profile: FailureProfile,
    /// Data nodes (for overhead normalisation).
    pub num_data: usize,
}

/// Renders a Fig. 3/4/5/6-style series block: for each system, the fraction
/// of failed reconstructions by number of missing nodes (CSV-ish, one
/// series per system).
pub fn render_figure(title: &str, rows: &[SystemRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "# series: k, fraction_failed (one block per system)");
    for row in rows {
        let _ = writeln!(out, "## {}", row.label);
        for e in row.profile.entries() {
            if e.k > 0 && e.trials > 0 {
                // Scientific notation: exact rows resolve fractions down to
                // ~10⁻⁸ (13 failures in 61 M cases must not print as zero).
                let _ = writeln!(out, "{}, {:.4e}", e.k, e.fraction());
            }
        }
    }
    out
}

/// The paper's Monte-Carlo sampling window for 96-node systems: offline
/// counts from 5 (above the exhaustively searched worst-case regime) to 48
/// (half the devices). Scaled proportionally for other sizes.
pub fn paper_sampling_window(num_nodes: usize) -> std::ops::RangeInclusive<usize> {
    let lo = (num_nodes * 5 / 96).max(1);
    let hi = (num_nodes / 2).max(lo);
    lo..=hi
}

/// Renders a Table 1/2/3/4-style summary: first failure and the paper's
/// "average number of nodes capable of reconstructing the data" (mean
/// online nodes over successful trials in the sampling window), with the
/// ratio to the data-node count in parentheses, as the paper prints it.
pub fn render_summary_table(title: &str, rows: &[SystemRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "{:<36} {:>13} {:>24}", "System", "First Failure", "Avg to Reconstruct");
    for row in rows {
        let avg = row
            .profile
            .average_online_given_success(paper_sampling_window(row.profile.num_nodes()));
        let _ = writeln!(
            out,
            "{:<36} {:>13} {:>17.2} ({:.2})",
            row.label,
            first_failure_cell(&row.profile),
            avg,
            avg / row.num_data as f64,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_gen::mirror::generate_mirror;

    #[test]
    fn graph_profile_combines_exact_and_sampled_rows() {
        let g = generate_mirror(4).unwrap();
        let p = graph_profile(&g, &Effort::smoke());
        assert!(p.entry(1).exact);
        assert!(p.entry(2).exact);
        assert!(!p.entry(3).exact);
        assert_eq!(p.entry(3).trials, 200);
        assert_eq!(p.first_failure(), Some(2));
    }

    #[test]
    fn figure_and_table_render() {
        let g = generate_mirror(4).unwrap();
        let p = graph_profile(&g, &Effort::smoke());
        let rows = vec![SystemRow {
            label: "Mirrored".into(),
            profile: p,
            num_data: 4,
        }];
        let fig = render_figure("Figure X", &rows);
        assert!(fig.contains("# Figure X"));
        assert!(fig.contains("## Mirrored"));
        assert!(fig.lines().count() > 8);
        let table = render_summary_table("Table X", &rows);
        assert!(table.contains("Mirrored"));
        assert!(table.contains("First Failure"));
        assert!(table.contains('2'), "mirror first failure");
    }
}
