//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment lives in [`experiments`] as a library function returning
//! its report as text (so the `run_all` binary can assemble
//! `EXPERIMENTS.md` data), with a thin `src/bin/` wrapper per table/figure:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `validate_eq1` | §3 simulator validation against Eq. 1 |
//! | `fig3_table1` | Fig. 3 + Table 1 — RAID/mirrored vs Tornado graphs |
//! | `fig4_table2` | Fig. 4 + Table 2 — unadjusted vs screened vs adjusted |
//! | `fig5_table3` | Fig. 5 + Table 3 — regular/altered families |
//! | `fig6_table4` | Fig. 6 + Table 4 — fixed-degree cascades |
//! | `table5` | Table 5 — reliability at AFR 0.01 |
//! | `table6` | Table 6 — 50 % reconstruction node count / overhead |
//! | `table7` | Table 7 — federated multi-graph first failure |
//! | `retrieval_ablation` | §5.2/§6 guided-retrieval extension |
//! | `degree_sweep` | §4.3 connectivity trade-off ablation |
//! | `load_test` | serving-layer load test — degraded reads under live load |
//! | `run_all` | everything above, in order |
//!
//! Fidelity knobs come from the environment so `cargo bench` and CI stay
//! fast while full-fidelity runs remain one variable away:
//! `TORNADO_TRIALS` (Monte-Carlo trials per point, default 20 000) and
//! `TORNADO_MAX_K` (exhaustive search depth, default 4; the paper used 6).

pub mod effort;
pub mod experiments;
pub mod harness;

pub use effort::Effort;
