//! Lexicographic *k*-subset enumeration with combinatorial (un)ranking.
//!
//! The worst-case failure search in the paper examines every way of taking
//! `k` nodes offline out of 96 — up to `C(96, 5) ≈ 6.1 × 10⁷` (and
//! `C(96, 6) ≈ 9.3 × 10⁸`) decode trials. To run that data-parallel we need
//! to split the combination sequence into independent chunks; the
//! *combinadic* rank/unrank bijection below maps `0..C(n, k)` to
//! combinations in lexicographic order, so chunk `i` simply unranks its start
//! index and iterates forward.

/// Binomial coefficient `C(n, k)` computed exactly in `u128`.
///
/// Uses the multiplicative formula with interleaved division (each partial
/// product is an integer), so intermediate values stay small. Values up to
/// `C(192, 96)` overflow `u128`; this function is intended for the
/// `n ≤ 128`-ish range used by subset enumeration and panics on overflow.
///
/// ```
/// use tornado_bitset::combinations::binomial;
/// assert_eq!(binomial(96, 4), 3_321_960);
/// assert_eq!(binomial(96, 5), 61_124_064);
/// ```
#[must_use]
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result
            .checked_mul((n - i) as u128)
            .expect("binomial coefficient overflows u128");
        result /= (i + 1) as u128;
    }
    result
}

/// Iterator over all `k`-subsets of `0..n` in lexicographic order.
///
/// Yields each combination as a sorted slice view to avoid per-item
/// allocation; use [`CombinationIter::next_slice`] in hot loops or the
/// `Iterator` impl (which clones into a `Vec`) for convenience.
#[derive(Clone, Debug)]
pub struct CombinationIter {
    n: usize,
    indices: Vec<usize>,
    started: bool,
    done: bool,
}

impl CombinationIter {
    /// Starts at the lexicographically first combination `[0, 1, .., k-1]`.
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        Self {
            n,
            indices: (0..k).collect(),
            started: false,
            done: k > n,
        }
    }

    /// Starts at the combination with the given lexicographic `rank`
    /// (`0 ≤ rank < C(n, k)`).
    #[must_use]
    pub fn from_rank(n: usize, k: usize, rank: u128) -> Self {
        let indices = unrank(n, k, rank);
        Self {
            n,
            indices,
            started: false,
            done: k > n,
        }
    }

    /// Advances to the next combination and returns it as a sorted slice,
    /// or `None` when exhausted. The first call returns the starting
    /// combination itself.
    ///
    /// `#[inline]` is load-bearing: the worst-case search calls this once
    /// per decode trial, and inlining lets the common case (only the last
    /// index advances) fold into the caller's loop with no branch to the
    /// reset tail.
    #[inline]
    pub fn next_slice(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.indices);
        }
        let k = self.indices.len();
        if k == 0 {
            self.done = true;
            return None;
        }
        // Find the rightmost index that can be incremented.
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                return None;
            }
            i -= 1;
            if self.indices[i] != i + self.n - k {
                break;
            }
        }
        self.indices[i] += 1;
        for j in i + 1..k {
            self.indices[j] = self.indices[j - 1] + 1;
        }
        debug_assert!(
            self.indices.windows(2).all(|w| w[0] < w[1])
                && self.indices.last().is_none_or(|&last| last < self.n),
            "advance broke the sorted-in-range invariant: {:?} (n = {})",
            self.indices,
            self.n
        );
        Some(&self.indices)
    }
}

impl Iterator for CombinationIter {
    type Item = Vec<usize>;
    fn next(&mut self) -> Option<Vec<usize>> {
        self.next_slice().map(|s| s.to_vec())
    }
}

/// Convenience constructor: all `k`-subsets of `0..n`, lexicographic.
///
/// ```
/// use tornado_bitset::Combinations;
/// let all: Vec<Vec<usize>> = Combinations::of(4, 2).collect();
/// assert_eq!(all.len(), 6);
/// assert_eq!(all[0], vec![0, 1]);
/// assert_eq!(all[5], vec![2, 3]);
/// ```
pub struct Combinations;

impl Combinations {
    /// Returns a lexicographic iterator over the `k`-subsets of `0..n`.
    pub fn of(n: usize, k: usize) -> CombinationIter {
        CombinationIter::new(n, k)
    }

    /// Total number of `k`-subsets of `0..n`.
    pub fn count(n: usize, k: usize) -> u128 {
        binomial(n as u64, k as u64)
    }
}

/// Lexicographic rank of a sorted combination of `0..n`.
///
/// Inverse of [`unrank`]. `combo` must be strictly increasing with all
/// elements `< n`.
pub fn rank(n: usize, combo: &[usize]) -> u128 {
    let k = combo.len();
    let mut r: u128 = 0;
    let mut prev: isize = -1;
    for (i, &c) in combo.iter().enumerate() {
        debug_assert!(c < n && c as isize > prev, "combination must be sorted, unique, in-range");
        // Count combinations whose element at position i is smaller than c
        // while positions 0..i match.
        for v in (prev + 1) as usize..c {
            r += binomial((n - v - 1) as u64, (k - i - 1) as u64);
        }
        prev = c as isize;
    }
    r
}

/// The combination of `k` elements from `0..n` with lexicographic `rank`.
///
/// # Panics
/// Panics if `rank >= C(n, k)`.
pub fn unrank(n: usize, k: usize, mut rank: u128) -> Vec<usize> {
    assert!(
        rank < binomial(n as u64, k as u64),
        "rank {rank} out of range for C({n}, {k})"
    );
    let mut combo = Vec::with_capacity(k);
    let mut v = 0usize;
    for i in 0..k {
        loop {
            let below = binomial((n - v - 1) as u64, (k - i - 1) as u64);
            if rank < below {
                combo.push(v);
                v += 1;
                break;
            }
            rank -= below;
            v += 1;
        }
    }
    combo
}

/// Splits the full `C(n, k)` combination sequence into at most `chunks`
/// contiguous `(start_rank, len)` ranges of near-equal size.
///
/// Used by the parallel worst-case search: each range is enumerated
/// independently via [`CombinationIter::from_rank`]. Ranges are returned
/// in ascending rank order and partition `0..C(n, k)` exactly — the
/// deterministic capped collection in the search relies on both.
#[must_use]
pub fn chunk_ranges(n: usize, k: usize, chunks: usize) -> Vec<(u128, u128)> {
    let total = binomial(n as u64, k as u64);
    if total == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = (chunks as u128).min(total);
    let base = total / chunks;
    let extra = total % chunks;
    let mut out = Vec::with_capacity(chunks as usize);
    let mut start: u128 = 0;
    for i in 0..chunks {
        let len = base + u128::from(i < extra);
        out.push((start, len));
        start += len;
    }
    debug_assert_eq!(start, total, "ranges must partition the rank space");
    debug_assert!(out.iter().all(|&(_, len)| len > 0), "no empty ranges");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(96, 1), 96);
        assert_eq!(binomial(96, 2), 4560);
        assert_eq!(binomial(96, 3), 142_880);
        assert_eq!(binomial(96, 4), 3_321_960);
        assert_eq!(binomial(96, 6), 927_048_304);
    }

    #[test]
    fn binomial_pascal_identity() {
        for n in 1..40u64 {
            for k in 1..n {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }

    #[test]
    fn binomial_symmetric() {
        for k in 0..=96u64 {
            assert_eq!(binomial(96, k), binomial(96, 96 - k));
        }
    }

    #[test]
    fn enumeration_is_complete_and_lexicographic() {
        let combos: Vec<Vec<usize>> = Combinations::of(6, 3).collect();
        assert_eq!(combos.len() as u128, binomial(6, 3));
        for w in combos.windows(2) {
            assert!(w[0] < w[1], "not lexicographic: {:?} !< {:?}", w[0], w[1]);
        }
        for c in &combos {
            assert_eq!(c.len(), 3);
            assert!(c.windows(2).all(|p| p[0] < p[1]));
            assert!(c.iter().all(|&x| x < 6));
        }
    }

    #[test]
    fn edge_cases() {
        assert_eq!(Combinations::of(5, 0).count(), 1, "one empty combination");
        assert_eq!(Combinations::of(5, 5).count(), 1);
        assert_eq!(Combinations::of(3, 4).count(), 0);
        assert_eq!(Combinations::of(0, 0).count(), 1);
    }

    #[test]
    fn rank_unrank_roundtrip() {
        let (n, k) = (10, 4);
        for (i, combo) in Combinations::of(n, k).enumerate() {
            assert_eq!(rank(n, &combo), i as u128);
            assert_eq!(unrank(n, k, i as u128), combo);
        }
    }

    #[test]
    fn from_rank_resumes_mid_sequence() {
        let (n, k) = (8, 3);
        let all: Vec<Vec<usize>> = Combinations::of(n, k).collect();
        let mut it = CombinationIter::from_rank(n, k, 20);
        for expected in &all[20..] {
            assert_eq!(it.next_slice().unwrap(), expected.as_slice());
        }
        assert!(it.next_slice().is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_out_of_range_panics() {
        unrank(5, 2, binomial(5, 2));
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        let (n, k) = (20, 4);
        let ranges = chunk_ranges(n, k, 7);
        let total: u128 = ranges.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, binomial(n as u64, k as u64));
        let mut expect_start = 0u128;
        for &(s, l) in &ranges {
            assert_eq!(s, expect_start);
            assert!(l > 0);
            expect_start += l;
        }
        // Chunked enumeration visits exactly the same sequence.
        let all: Vec<Vec<usize>> = Combinations::of(n, k).collect();
        let mut recon = Vec::new();
        for (s, l) in ranges {
            let mut it = CombinationIter::from_rank(n, k, s);
            for _ in 0..l {
                recon.push(it.next_slice().unwrap().to_vec());
            }
        }
        assert_eq!(recon, all);
    }

    #[test]
    fn chunk_ranges_more_chunks_than_items() {
        let ranges = chunk_ranges(4, 2, 100);
        assert_eq!(ranges.len() as u128, binomial(4, 2));
        assert!(ranges.iter().all(|&(_, l)| l == 1));
    }

    #[test]
    fn unrank_first_and_last() {
        assert_eq!(unrank(96, 4, 0), vec![0, 1, 2, 3]);
        let last = binomial(96, 4) - 1;
        assert_eq!(unrank(96, 4, last), vec![92, 93, 94, 95]);
    }
}
