//! Heap-backed bit set for sizes not known at compile time.
//!
//! The storage layer deals in device populations whose size is a runtime
//! configuration choice (one site, two federated sites, arbitrary stripe
//! widths), so it uses [`DynBitSet`] rather than the const-generic
//! [`crate::FixedBitSet`].

use std::fmt;

/// A growable bit set over `usize` indices.
///
/// The set has an explicit *universe size* fixed at construction: operations
/// that combine two sets require equal universe sizes, which catches
/// unit-mismatch bugs (e.g. mixing a 96-device pattern with a 192-device
/// pattern) early.
///
/// ```
/// use tornado_bitset::DynBitSet;
/// let mut s = DynBitSet::new(192);
/// s.insert(191);
/// assert_eq!(s.len(), 1);
/// assert_eq!(s.complement().len(), 191);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DynBitSet {
    universe: usize,
    words: Vec<u64>,
}

impl DynBitSet {
    /// Creates an empty set over the universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        Self {
            universe,
            words: vec![0; universe.div_ceil(64)],
        }
    }

    /// Creates a set containing all of `0..universe`.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::new(universe);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        s.trim_tail();
        s
    }

    /// Creates a set over `0..universe` from an iterator of member indices.
    ///
    /// # Panics
    /// Panics if any index is `>= universe`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(universe: usize, indices: I) -> Self {
        let mut s = Self::new(universe);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// The universe size this set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    fn trim_tail(&mut self) {
        let rem = self.universe % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    #[inline]
    fn check(&self, bit: usize) {
        assert!(
            bit < self.universe,
            "index {bit} out of universe 0..{}",
            self.universe
        );
    }

    /// Inserts `bit`; returns `true` if newly inserted.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        self.check(bit);
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        let was = self.words[w] & m != 0;
        self.words[w] |= m;
        !was
    }

    /// Removes `bit`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        self.check(bit);
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        let was = self.words[w] & m != 0;
        self.words[w] &= !m;
        was
    }

    /// Tests membership.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        if bit >= self.universe {
            return false;
        }
        self.words[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every member (universe unchanged).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    fn assert_same_universe(&self, other: &Self) {
        assert_eq!(
            self.universe, other.universe,
            "bit sets range over different universes ({} vs {})",
            self.universe, other.universe
        );
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &Self) {
        self.assert_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &Self) {
        self.assert_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: removes every member of `other`.
    pub fn difference_with(&mut self, other: &Self) {
        self.assert_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns the complement within the universe.
    pub fn complement(&self) -> Self {
        let mut s = self.clone();
        for w in s.words.iter_mut() {
            *w = !*w;
        }
        s.trim_tail();
        s
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.assert_same_universe(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Whether the sets share no members.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.assert_same_universe(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Number of members shared with `other`.
    pub fn intersection_len(&self, other: &Self) -> usize {
        self.assert_same_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> DynBitIter<'_> {
        DynBitIter {
            words: &self.words,
            current: self.words.first().copied().unwrap_or(0),
            word_idx: 0,
        }
    }

    /// Collects members into a vector, ascending.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

/// Iterator over members of a [`DynBitSet`], ascending.
pub struct DynBitIter<'a> {
    words: &'a [u64],
    current: u64,
    word_idx: usize,
}

impl Iterator for DynBitIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + tz);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl fmt::Debug for DynBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = DynBitSet::new(100);
        assert!(e.is_empty());
        assert_eq!(e.universe(), 100);
        let f = DynBitSet::full(100);
        assert_eq!(f.len(), 100);
        assert!(f.contains(99));
        assert!(!f.contains(100), "outside universe is never a member");
    }

    #[test]
    fn full_trims_partial_word() {
        let f = DynBitSet::full(65);
        assert_eq!(f.len(), 65);
        assert_eq!(f.to_vec().last(), Some(&64));
    }

    #[test]
    fn insert_remove() {
        let mut s = DynBitSet::new(10);
        assert!(s.insert(9));
        assert!(!s.insert(9));
        assert!(s.remove(9));
        assert!(!s.remove(9));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        DynBitSet::new(10).insert(10);
    }

    #[test]
    fn algebra() {
        let mut a = DynBitSet::from_indices(130, [0, 1, 128]);
        let b = DynBitSet::from_indices(130, [1, 2, 129]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![0, 1, 2, 128, 129]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![1]);
        a.difference_with(&b);
        assert_eq!(a.to_vec(), vec![0, 128]);
    }

    #[test]
    fn complement_within_universe() {
        let s = DynBitSet::from_indices(5, [0, 2, 4]);
        assert_eq!(s.complement().to_vec(), vec![1, 3]);
        assert_eq!(s.complement().complement().to_vec(), s.to_vec());
    }

    #[test]
    fn subset_and_disjoint() {
        let a = DynBitSet::from_indices(96, [3, 50]);
        let b = DynBitSet::from_indices(96, [3, 50, 70]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let c = DynBitSet::from_indices(96, [4]);
        assert!(a.is_disjoint(&c));
        assert_eq!(a.intersection_len(&b), 2);
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn mismatched_universe_panics() {
        let a = DynBitSet::new(96);
        let b = DynBitSet::new(192);
        a.is_subset(&b);
    }

    #[test]
    fn iteration_matches_insertion() {
        let members = [0usize, 63, 64, 65, 126];
        let s = DynBitSet::from_indices(127, members);
        assert_eq!(s.to_vec(), members.to_vec());
    }

    #[test]
    fn clear_retains_universe() {
        let mut s = DynBitSet::full(77);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.universe(), 77);
    }
}
