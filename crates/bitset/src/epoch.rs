//! Epoch-stamped set and counter arrays with O(1) bulk clear.
//!
//! The simulator's decode kernel runs up to `C(96, 6) ≈ 9.3 × 10⁸` trials,
//! and each trial must start from a clean "everything available" state. A
//! `Vec<bool>`/`Vec<u16>` reset costs O(n + checks) per trial — more than
//! the peeling work itself for small erasure counts. The types here make
//! the reset O(1): every slot carries a `u32` generation stamp, membership
//! means "stamp equals the current epoch", and clearing the whole structure
//! is a single epoch increment.
//!
//! Wraparound is handled explicitly: once every `u32::MAX` clears, the
//! stamp arrays are re-filled with a word-level `fill` (the compiler lowers
//! it to `memset`), so a stale stamp from four billion epochs ago can never
//! alias the current epoch. Amortised over the wrap period the fill is
//! free.
//!
//! [`EpochSet`] additionally keeps a *journal* of the indices inserted in
//! the current epoch, so "which members survive at fixpoint" queries are
//! O(inserted), not O(universe) — the sparse complement of a full scan.

/// A set over `0..universe` with O(1) `clear`, O(1) insert/remove/contains,
/// and an insertion journal for sparse member enumeration.
///
/// ```
/// use tornado_bitset::EpochSet;
/// let mut s = EpochSet::new(8);
/// s.insert(3);
/// s.insert(5);
/// assert!(s.contains(3) && !s.contains(4));
/// s.clear(); // O(1): bumps the epoch
/// assert!(!s.contains(3));
/// ```
#[derive(Clone, Debug)]
pub struct EpochSet {
    /// Slot `i` is a member iff `stamps[i] == epoch`.
    stamps: Vec<u32>,
    /// Current generation; never 0 (0 is the "blank" fill value).
    epoch: u32,
    /// Indices inserted since the last `clear`, in insertion order. May
    /// contain indices later removed; `members` re-checks the stamp.
    journal: Vec<u32>,
}

impl EpochSet {
    /// An empty set over `0..universe`.
    pub fn new(universe: usize) -> Self {
        Self {
            stamps: vec![0; universe],
            epoch: 1,
            journal: Vec::new(),
        }
    }

    /// Size of the universe the set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.stamps.len()
    }

    /// Removes every member in O(1) (amortised; a word-level refill runs
    /// once per `u32` wrap).
    #[inline]
    pub fn clear(&mut self) {
        self.journal.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One memset per ~4.3 × 10⁹ clears keeps stale stamps from
            // aliasing the restarted epoch counter.
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// Whether `index` is a member.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.stamps[index] == self.epoch
    }

    /// Inserts `index`; returns `true` if it was not already a member.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        if self.stamps[index] == self.epoch {
            return false;
        }
        self.stamps[index] = self.epoch;
        self.journal.push(index as u32);
        true
    }

    /// Removes `index`; returns `true` if it was a member.
    ///
    /// The journal entry (if any) is kept — [`EpochSet::members`] filters
    /// by stamp, so removed indices simply stop being reported.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        if self.stamps[index] != self.epoch {
            return false;
        }
        // Any value ≠ epoch works; epoch − 1 can never equal a *future*
        // epoch before the wraparound refill resets everything.
        self.stamps[index] = self.epoch.wrapping_sub(1);
        true
    }

    /// The current members, in insertion order, in O(inserted-this-epoch)
    /// time (never scans the universe).
    pub fn members(&self) -> impl Iterator<Item = usize> + '_ {
        self.journal
            .iter()
            .map(|&i| i as usize)
            .filter(|&i| self.contains(i))
    }

    /// Every index inserted since the last clear, members or not.
    #[inline]
    pub fn journal(&self) -> &[u32] {
        &self.journal
    }

    /// Current length of the insertion journal. Pair with
    /// [`EpochSet::truncate_journal`] to bracket a speculative sequence of
    /// operations.
    #[inline]
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Drops journal entries recorded after `len`.
    ///
    /// Contract: every *member* must still have a journal entry at position
    /// `< len` — i.e. the caller has already un-done the speculative inserts
    /// (or re-inserted nodes whose original entry lies below `len`).
    /// [`EpochSet::members`] silently misreports otherwise.
    #[inline]
    pub fn truncate_journal(&mut self, len: usize) {
        debug_assert!(len <= self.journal.len());
        self.journal.truncate(len);
    }
}

/// An array of `u16` counters over `0..universe` with O(1) bulk reset.
///
/// Reading a slot whose stamp is stale yields 0, so after a `clear` every
/// counter is logically zero without touching memory.
///
/// ```
/// use tornado_bitset::StampedCounts;
/// let mut c = StampedCounts::new(4);
/// assert_eq!(c.inc(2), 1);
/// assert_eq!(c.inc(2), 2);
/// assert_eq!(c.get(2), 2);
/// c.clear();
/// assert_eq!(c.get(2), 0);
/// ```
#[derive(Clone, Debug)]
pub struct StampedCounts {
    counts: Vec<u16>,
    stamps: Vec<u32>,
    epoch: u32,
}

impl StampedCounts {
    /// All-zero counters over `0..universe`.
    pub fn new(universe: usize) -> Self {
        Self {
            counts: vec![0; universe],
            stamps: vec![0; universe],
            epoch: 1,
        }
    }

    /// Number of counters.
    #[inline]
    pub fn universe(&self) -> usize {
        self.counts.len()
    }

    /// Zeroes every counter in O(1) (amortised; see [`EpochSet::clear`]).
    #[inline]
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// Current value of counter `index`.
    #[inline]
    pub fn get(&self, index: usize) -> u16 {
        if self.stamps[index] == self.epoch {
            self.counts[index]
        } else {
            0
        }
    }

    /// Increments counter `index`, returning the new value.
    #[inline]
    pub fn inc(&mut self, index: usize) -> u16 {
        if self.stamps[index] == self.epoch {
            self.counts[index] += 1;
        } else {
            self.stamps[index] = self.epoch;
            self.counts[index] = 1;
        }
        self.counts[index]
    }

    /// Decrements counter `index`, returning the new value.
    ///
    /// # Panics
    /// Debug-asserts that the counter is non-zero (a zero counter can only
    /// be decremented by a logic error in the caller).
    #[inline]
    pub fn dec(&mut self, index: usize) -> u16 {
        debug_assert!(
            self.stamps[index] == self.epoch && self.counts[index] > 0,
            "decrement of zero counter {index}"
        );
        self.counts[index] -= 1;
        self.counts[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = EpochSet::new(10);
        assert!(!s.contains(4));
        assert!(s.insert(4));
        assert!(!s.insert(4), "duplicate insert reports false");
        assert!(s.contains(4));
        assert!(s.remove(4));
        assert!(!s.remove(4));
        assert!(!s.contains(4));
        // Re-insert after remove works within the same epoch.
        assert!(s.insert(4));
        assert!(s.contains(4));
    }

    #[test]
    fn clear_is_logical_empty() {
        let mut s = EpochSet::new(10);
        for i in 0..10 {
            s.insert(i);
        }
        s.clear();
        assert!((0..10).all(|i| !s.contains(i)));
        assert_eq!(s.members().count(), 0);
    }

    #[test]
    fn members_tracks_inserts_minus_removes() {
        let mut s = EpochSet::new(10);
        s.insert(7);
        s.insert(2);
        s.insert(9);
        s.remove(2);
        let m: Vec<usize> = s.members().collect();
        assert_eq!(m, vec![7, 9], "insertion order, removed filtered");
        assert_eq!(s.journal(), &[7, 2, 9]);
    }

    #[test]
    fn epoch_wraparound_refills() {
        // Force the wrap quickly by starting near the top.
        let mut s = EpochSet::new(4);
        s.epoch = u32::MAX - 1;
        s.insert(1);
        s.clear(); // epoch = MAX
        s.insert(2);
        s.clear(); // wraps: refill, epoch = 1
        assert_eq!(s.epoch, 1);
        assert!(!s.contains(1) && !s.contains(2));
        s.insert(3);
        assert!(s.contains(3));
    }

    #[test]
    fn counts_reset_and_accumulate() {
        let mut c = StampedCounts::new(6);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.inc(0), 1);
        assert_eq!(c.inc(0), 2);
        assert_eq!(c.dec(0), 1);
        c.clear();
        assert_eq!(c.get(0), 0);
        assert_eq!(c.inc(0), 1, "stale slot restarts from zero");
    }

    #[test]
    fn counts_wraparound_refills() {
        let mut c = StampedCounts::new(3);
        c.epoch = u32::MAX;
        c.inc(2);
        c.clear(); // wraps
        assert_eq!(c.epoch, 1);
        assert_eq!(c.get(2), 0);
    }

    #[test]
    fn many_epochs_never_leak_state() {
        let mut s = EpochSet::new(5);
        let mut c = StampedCounts::new(5);
        for round in 0..10_000usize {
            let i = round % 5;
            assert!(!s.contains(i));
            assert_eq!(c.get(i), 0);
            s.insert(i);
            c.inc(i);
            s.clear();
            c.clear();
        }
    }
}
