//! Stack-allocated, const-generic bit sets.
//!
//! [`FixedBitSet<W>`] stores `64 * W` bits in an array of `u64` words. It is
//! `Copy`, allocation-free, and every operation is branch-light word
//! arithmetic — exactly what the erasure simulator's inner loop needs.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not, Sub, SubAssign};

/// A fixed-capacity bit set backed by `W` 64-bit words (capacity `64 * W` bits).
///
/// Bits are indexed from zero. Out-of-range indices panic in debug builds via
/// the usual slice checks.
///
/// ```
/// use tornado_bitset::Bits128;
/// let mut s = Bits128::empty();
/// s.insert(3);
/// s.insert(95);
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(95));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 95]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FixedBitSet<const W: usize> {
    words: [u64; W],
}

impl<const W: usize> Default for FixedBitSet<W> {
    fn default() -> Self {
        Self::empty()
    }
}

/// One-word bit set (up to 64 elements).
pub type Bits64 = FixedBitSet<1>;
/// Two-word bit set (up to 128 elements) — covers the paper's 96-node graphs.
pub type Bits128 = FixedBitSet<2>;
/// Four-word bit set (up to 256 elements) — covers two-site federated systems.
pub type Bits256 = FixedBitSet<4>;

impl<const W: usize> FixedBitSet<W> {
    /// Total bit capacity of this set.
    pub const CAPACITY: usize = 64 * W;

    /// Creates an empty set.
    #[inline]
    pub const fn empty() -> Self {
        Self { words: [0; W] }
    }

    /// Creates a set containing every index in `0..n`.
    ///
    /// # Panics
    /// Panics if `n > Self::CAPACITY`.
    #[inline]
    pub fn all_below(n: usize) -> Self {
        assert!(n <= Self::CAPACITY, "n = {n} exceeds capacity {}", Self::CAPACITY);
        let mut words = [0u64; W];
        let full = n / 64;
        for w in words.iter_mut().take(full) {
            *w = u64::MAX;
        }
        let rem = n % 64;
        if rem != 0 {
            words[full] = (1u64 << rem) - 1;
        }
        Self { words }
    }

    /// Creates a set from an iterator of indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut s = Self::empty();
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Inserts `bit` into the set. Returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        let was = self.words[w] & m != 0;
        self.words[w] |= m;
        !was
    }

    /// Removes `bit` from the set. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        let was = self.words[w] & m != 0;
        self.words[w] &= !m;
        was
    }

    /// Tests membership.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        self.words[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    #[inline]
    pub fn clear(&mut self) {
        self.words = [0; W];
    }

    /// Whether `self` is a subset of `other`.
    #[inline]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether `self` is a superset of `other`.
    #[inline]
    pub fn is_superset(&self, other: &Self) -> bool {
        other.is_subset(self)
    }

    /// Whether the two sets share no elements.
    #[inline]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// Number of elements common to both sets.
    #[inline]
    pub fn intersection_len(&self, other: &Self) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Smallest element, or `None` if empty.
    #[inline]
    pub fn min_element(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Largest element, or `None` if empty.
    #[inline]
    pub fn max_element(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(i * 64 + 63 - w.leading_zeros() as usize);
            }
        }
        None
    }

    /// Iterates over the elements in ascending order.
    #[inline]
    pub fn iter(&self) -> FixedBitIter<W> {
        FixedBitIter {
            words: self.words,
            word_idx: 0,
        }
    }

    /// Collects the elements into a vector, ascending.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Access to the raw words (low word first).
    #[inline]
    pub fn words(&self) -> &[u64; W] {
        &self.words
    }

    /// Builds a set directly from raw words.
    #[inline]
    pub const fn from_words(words: [u64; W]) -> Self {
        Self { words }
    }
}

/// Iterator over set bits of a [`FixedBitSet`], ascending.
#[derive(Clone)]
pub struct FixedBitIter<const W: usize> {
    words: [u64; W],
    word_idx: usize,
}

impl<const W: usize> Iterator for FixedBitIter<W> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.word_idx < W {
            let w = self.words[self.word_idx];
            if w != 0 {
                let tz = w.trailing_zeros() as usize;
                self.words[self.word_idx] = w & (w - 1);
                return Some(self.word_idx * 64 + tz);
            }
            self.word_idx += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.words[self.word_idx.min(W - 1)..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl<const W: usize> IntoIterator for &FixedBitSet<W> {
    type Item = usize;
    type IntoIter = FixedBitIter<W>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<const W: usize> FromIterator<usize> for FixedBitSet<W> {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Self::from_indices(iter)
    }
}

impl<const W: usize> fmt::Debug for FixedBitSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

macro_rules! impl_bitops {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        // The macro instantiates &, |, ^ uniformly; clippy flags the ^ arm
        // as "suspicious use in BitAnd/BitOr impl" because it cannot see
        // the generic operator token.
        #[allow(clippy::suspicious_arithmetic_impl, clippy::assign_op_pattern)]
        impl<const W: usize> $trait for FixedBitSet<W> {
            type Output = Self;
            #[inline]
            fn $method(mut self, rhs: Self) -> Self {
                for i in 0..W {
                    self.words[i] = self.words[i] $op rhs.words[i];
                }
                self
            }
        }
        #[allow(clippy::suspicious_op_assign_impl)]
        impl<const W: usize> $assign_trait for FixedBitSet<W> {
            #[inline]
            fn $assign_method(&mut self, rhs: Self) {
                for i in 0..W {
                    self.words[i] = self.words[i] $op rhs.words[i];
                }
            }
        }
    };
}

impl_bitops!(BitAnd, bitand, BitAndAssign, bitand_assign, &);
impl_bitops!(BitOr, bitor, BitOrAssign, bitor_assign, |);
impl_bitops!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^);

impl<const W: usize> Sub for FixedBitSet<W> {
    type Output = Self;
    /// Set difference: elements of `self` not in `rhs`.
    #[inline]
    fn sub(mut self, rhs: Self) -> Self {
        for i in 0..W {
            self.words[i] &= !rhs.words[i];
        }
        self
    }
}

impl<const W: usize> SubAssign for FixedBitSet<W> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        for i in 0..W {
            self.words[i] &= !rhs.words[i];
        }
    }
}

impl<const W: usize> Not for FixedBitSet<W> {
    type Output = Self;
    /// Complement over the full `64 * W`-bit capacity.
    #[inline]
    fn not(mut self) -> Self {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_members() {
        let s = Bits128::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.min_element(), None);
        assert_eq!(s.max_element(), None);
        assert!((0..128).all(|i| !s.contains(i)));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = Bits128::empty();
        assert!(s.insert(5));
        assert!(!s.insert(5), "second insert reports already-present");
        assert!(s.contains(5));
        assert!(s.remove(5));
        assert!(!s.remove(5), "second remove reports already-absent");
        assert!(!s.contains(5));
    }

    #[test]
    fn all_below_boundaries() {
        assert_eq!(Bits128::all_below(0).len(), 0);
        assert_eq!(Bits128::all_below(1).to_vec(), vec![0]);
        assert_eq!(Bits128::all_below(64).len(), 64);
        assert_eq!(Bits128::all_below(65).len(), 65);
        assert_eq!(Bits128::all_below(96).len(), 96);
        assert_eq!(Bits128::all_below(128).len(), 128);
        assert_eq!(Bits128::all_below(96).max_element(), Some(95));
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn all_below_overflow_panics() {
        let _ = Bits128::all_below(129);
    }

    #[test]
    fn iteration_is_ascending_across_words() {
        let s = Bits128::from_indices([95, 0, 63, 64, 3]);
        assert_eq!(s.to_vec(), vec![0, 3, 63, 64, 95]);
        assert_eq!(s.min_element(), Some(0));
        assert_eq!(s.max_element(), Some(95));
    }

    #[test]
    fn set_algebra() {
        let a = Bits128::from_indices([1, 2, 3, 70]);
        let b = Bits128::from_indices([3, 4, 70, 71]);
        assert_eq!((a | b).to_vec(), vec![1, 2, 3, 4, 70, 71]);
        assert_eq!((a & b).to_vec(), vec![3, 70]);
        assert_eq!((a ^ b).to_vec(), vec![1, 2, 4, 71]);
        assert_eq!((a - b).to_vec(), vec![1, 2]);
        assert_eq!(a.intersection_len(&b), 2);
        assert!(!a.is_disjoint(&b));
        assert!((a - b).is_disjoint(&b));
    }

    #[test]
    fn subset_relations() {
        let small = Bits128::from_indices([2, 70]);
        let big = Bits128::from_indices([1, 2, 70, 100]);
        assert!(small.is_subset(&big));
        assert!(big.is_superset(&small));
        assert!(!big.is_subset(&small));
        assert!(small.is_subset(&small));
    }

    #[test]
    fn complement_is_involutive() {
        let a = Bits128::from_indices([0, 17, 64, 127]);
        assert_eq!(!!a, a);
        assert_eq!((!a).len(), 128 - a.len());
    }

    #[test]
    fn from_iterator_collects() {
        let s: Bits128 = vec![9, 8, 7].into_iter().collect();
        assert_eq!(s.to_vec(), vec![7, 8, 9]);
    }

    #[test]
    fn debug_format_lists_members() {
        let s = Bits64::from_indices([1, 5]);
        assert_eq!(format!("{s:?}"), "{1, 5}");
    }

    #[test]
    fn words_roundtrip() {
        let s = Bits128::from_indices([0, 64, 127]);
        let t = Bits128::from_words(*s.words());
        assert_eq!(s, t);
    }

    #[test]
    fn bits256_spans_192_devices() {
        let mut s = Bits256::empty();
        s.insert(191);
        s.insert(0);
        assert_eq!(s.to_vec(), vec![0, 191]);
        assert_eq!(Bits256::all_below(192).len(), 192);
    }
}
