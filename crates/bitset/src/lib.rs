//! Bit-set primitives for erasure-pattern simulation.
//!
//! The fault-tolerance testing system in this workspace decodes hundreds of
//! millions of erasure patterns over 96-node graphs. Each pattern is a set of
//! node indices; this crate provides the set representations used on that hot
//! path:
//!
//! * [`FixedBitSet`] — a const-generic, stack-allocated bit set backed by
//!   `u64` words. [`Bits128`] (two words) covers the paper's 96-node graphs
//!   and [`Bits256`] (four words) covers the 192-device federated systems.
//! * [`DynBitSet`] — a heap-backed bit set for arbitrary sizes, used by the
//!   storage layer and anywhere graph sizes are not known at compile time.
//! * [`EpochSet`] / [`StampedCounts`] — generation-stamped membership and
//!   counter arrays whose `clear` is a single epoch bump instead of an O(n)
//!   refill. They are the state representation behind the sparse-reset decode
//!   kernel: a trial that touches *t* nodes costs O(t) to reset, not O(n).
//! * [`combinations`] — lexicographic *k*-subset enumeration with
//!   combinatorial ranking/unranking, which lets the simulator split an
//!   exhaustive `C(96, k)` search into independent, evenly sized chunks for
//!   data-parallel execution.
//!
//! All types are `Copy`/cheaply clonable where possible and perform no
//! allocation in their query operations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combinations;
pub mod dynamic;
pub mod epoch;
pub mod fixed;

pub use combinations::{CombinationIter, Combinations};
pub use dynamic::DynBitSet;
pub use epoch::{EpochSet, StampedCounts};
pub use fixed::{Bits128, Bits256, Bits64, FixedBitSet};
