//! Property-based tests for the bit-set algebra and the combinadic
//! rank/unrank bijection.

use proptest::prelude::*;
use tornado_bitset::combinations::{binomial, chunk_ranges, rank, unrank};
use tornado_bitset::{Bits128, CombinationIter, DynBitSet};

fn arb_members() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..128, 0..40)
}

proptest! {
    #[test]
    fn fixed_set_reflects_membership(members in arb_members()) {
        let s = Bits128::from_indices(members.iter().copied());
        let mut expect: Vec<usize> = members.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(s.to_vec(), expect.clone());
        prop_assert_eq!(s.len(), expect.len());
        for &m in &expect {
            prop_assert!(s.contains(m));
        }
    }

    #[test]
    fn demorgan_laws_hold(a in arb_members(), b in arb_members()) {
        let sa = Bits128::from_indices(a.iter().copied());
        let sb = Bits128::from_indices(b.iter().copied());
        prop_assert_eq!(!(sa | sb), !sa & !sb);
        prop_assert_eq!(!(sa & sb), !sa | !sb);
    }

    #[test]
    fn difference_and_symmetric_difference(a in arb_members(), b in arb_members()) {
        let sa = Bits128::from_indices(a.iter().copied());
        let sb = Bits128::from_indices(b.iter().copied());
        prop_assert_eq!(sa - sb, sa & !sb);
        prop_assert_eq!(sa ^ sb, (sa - sb) | (sb - sa));
        prop_assert!((sa - sb).is_disjoint(&sb));
        prop_assert!((sa & sb).is_subset(&sa));
    }

    #[test]
    fn dynamic_matches_fixed(a in arb_members(), b in arb_members()) {
        let sa = Bits128::from_indices(a.iter().copied());
        let sb = Bits128::from_indices(b.iter().copied());
        let mut da = DynBitSet::from_indices(128, a.iter().copied());
        let db = DynBitSet::from_indices(128, b.iter().copied());
        prop_assert_eq!(da.intersection_len(&db), sa.intersection_len(&sb));
        prop_assert_eq!(da.is_subset(&db), sa.is_subset(&sb));
        da.union_with(&db);
        prop_assert_eq!(da.to_vec(), (sa | sb).to_vec());
    }

    #[test]
    fn rank_unrank_bijection(n in 1usize..26, seed in any::<u64>()) {
        let k = (seed as usize % n).clamp(1, 6.min(n));
        let total = binomial(n as u64, k as u64);
        let r = (seed as u128) % total;
        let combo = unrank(n, k, r);
        prop_assert_eq!(combo.len(), k);
        prop_assert!(combo.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(combo.iter().all(|&x| x < n));
        prop_assert_eq!(rank(n, &combo), r);
    }

    #[test]
    fn chunked_enumeration_is_a_partition(n in 2usize..16, k in 1usize..5, chunks in 1usize..9) {
        prop_assume!(k <= n);
        let ranges = chunk_ranges(n, k, chunks);
        let total: u128 = ranges.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(total, binomial(n as u64, k as u64));
        let mut seen = Vec::new();
        for (start, len) in ranges {
            let mut it = CombinationIter::from_rank(n, k, start);
            for _ in 0..len {
                seen.push(it.next_slice().unwrap().to_vec());
            }
        }
        let direct: Vec<Vec<usize>> = CombinationIter::new(n, k).collect();
        prop_assert_eq!(seen, direct);
    }
}
