//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed `--key value` pairs (values may repeat for list-style flags).
#[derive(Debug, Default)]
pub struct ParsedArgs {
    values: BTreeMap<String, Vec<String>>,
}

impl ParsedArgs {
    /// Parses `--key value` pairs; bare `--key` at end-of-args or before
    /// another flag is treated as boolean `true`.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{arg}'"))?;
            if key.is_empty() {
                return Err("empty flag name".into());
            }
            let next_is_value = argv.get(i + 1).map(|n| !n.starts_with("--")).unwrap_or(false);
            if next_is_value {
                values.entry(key.to_string()).or_default().push(argv[i + 1].clone());
                i += 2;
            } else {
                values.entry(key.to_string()).or_default().push("true".into());
                i += 1;
            }
        }
        Ok(Self { values })
    }

    /// Last value of a flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).and_then(|v| v.last()).map(|s| s.as_str())
    }

    /// All values of a repeatable flag.
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.values
            .get(key)
            .map(|v| v.iter().map(|s| s.as_str()).collect())
            .unwrap_or_default()
    }

    /// Parses a flag as `T`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|e| format!("--{key} {s}: {e}")),
        }
    }

    /// A required flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required --{key}"))
    }

    /// Whether a boolean flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn key_value_pairs() {
        let a = parse(&["--seed", "7", "--out", "x.graphml"]);
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get("out"), Some("x.graphml"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn boolean_flags() {
        let a = parse(&["--screened", "--seed", "3"]);
        assert!(a.flag("screened"));
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 3);
    }

    #[test]
    fn repeated_flags_collect() {
        let a = parse(&["--graph", "a", "--graph", "b"]);
        assert_eq!(a.get_all("graph"), vec!["a", "b"]);
        assert_eq!(a.get("graph"), Some("b"), "last wins for scalar reads");
    }

    #[test]
    fn parse_errors() {
        assert!(ParsedArgs::parse(&["seed".into()]).is_err());
        let a = parse(&["--seed", "x"]);
        assert!(a.get_parsed("seed", 0u64).is_err());
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]);
        assert_eq!(a.get_parsed("trials", 500u64).unwrap(), 500);
        assert!(a.require("graph").is_err());
    }
}
