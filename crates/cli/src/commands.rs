//! Command implementations.

use crate::args::ParsedArgs;
use crate::obs::CliObs;
use tornado_analysis::{adjust_graph, overhead_report, system_failure_probability, AdjustConfig};
use tornado_gen::{TornadoGenerator, TornadoParams};
use tornado_graph::{dot, graphml, DegreeStats, Graph};
use tornado_obs::Json;
use tornado_raid::GroupSystem;
use tornado_sim::{
    monte_carlo_profile, monte_carlo_profile_observed, worst_case_search,
    worst_case_search_observed, MonteCarloConfig, WorstCaseConfig,
};

type CmdResult = Result<(), String>;

fn load_graph(path: &str) -> Result<Graph, String> {
    let xml = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    graphml::from_graphml(&xml).map_err(|e| format!("{path}: {e}"))
}

/// Resolves `--catalog N` or `--graph FILE` to a graph plus a label for
/// metrics snapshots.
fn load_target_graph(args: &ParsedArgs) -> Result<(Graph, String), String> {
    if let Some(idx) = args.get("catalog") {
        let index: usize = idx.parse().map_err(|e| format!("--catalog {idx}: {e}"))?;
        let graph = match index {
            1 => tornado_core::tornado_graph_1(),
            2 => tornado_core::tornado_graph_2(),
            3 => tornado_core::tornado_graph_3(),
            other => return Err(format!("catalog index {other} (valid: 1, 2, 3)")),
        };
        Ok((graph, format!("catalog:{index}")))
    } else {
        let path = args.require("graph")?;
        Ok((load_graph(path)?, path.to_string()))
    }
}

fn write_or_print(out: Option<&str>, content: &str) -> CmdResult {
    match out {
        Some(path) => std::fs::write(path, content).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

/// `tornado generate`
pub fn generate(args: &ParsedArgs) -> CmdResult {
    let seed: u64 = args.get_parsed("seed", 1)?;
    let num_data: usize = args.get_parsed("data", 48)?;
    let screen: usize = args.get_parsed("screen", 3)?;
    let family = args.get("family").unwrap_or("tornado");
    let degree: u32 = args.get_parsed("degree", 4)?;
    let params = TornadoParams {
        num_data,
        ..TornadoParams::default()
    };
    let graph = match family {
        "tornado" => {
            if args.flag("no-screen") {
                TornadoGenerator::new(params).generate(seed).map_err(|e| e.to_string())?
            } else {
                TornadoGenerator::new(params)
                    .generate_screened(seed, 256, screen)
                    .map_err(|e| e.to_string())?
                    .0
            }
        }
        "regular" => tornado_gen::regular::generate_regular(num_data, degree, seed)
            .map_err(|e| e.to_string())?,
        "cascaded" => tornado_gen::cascaded::generate_fixed_degree(params, degree, seed)
            .map_err(|e| e.to_string())?,
        "mirror" => tornado_gen::mirror::generate_mirror(num_data).map_err(|e| e.to_string())?,
        "doubled" => tornado_gen::altered::generate_doubled(params, seed).map_err(|e| e.to_string())?,
        "shifted" => tornado_gen::altered::generate_shifted(params, seed).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown family '{other}'")),
    };
    CliObs::from_args(args).status(
        "graph_generated",
        &[
            ("family", Json::Str(family.to_string())),
            ("nodes", Json::U64(graph.num_nodes() as u64)),
            ("edges", Json::U64(graph.num_edges() as u64)),
            ("fingerprint", Json::Str(format!("{:#018x}", graph.fingerprint()))),
        ],
    );
    write_or_print(args.get("out"), &graphml::to_graphml(&graph))
}

/// `tornado catalog`
pub fn catalog(args: &ParsedArgs) -> CmdResult {
    let index: usize = args.get_parsed("index", 1)?;
    let graph = match index {
        1 => tornado_core::tornado_graph_1(),
        2 => tornado_core::tornado_graph_2(),
        3 => tornado_core::tornado_graph_3(),
        other => return Err(format!("catalog index {other} (valid: 1, 2, 3)")),
    };
    write_or_print(args.get("out"), &graphml::to_graphml(&graph))
}

/// `tornado inspect`
pub fn inspect(args: &ParsedArgs) -> CmdResult {
    let graph = load_graph(args.require("graph")?)?;
    let stats = DegreeStats::of(&graph);
    println!("nodes:        {} ({} data + {} check)", graph.num_nodes(), graph.num_data(), graph.num_checks());
    println!("edges:        {}", graph.num_edges());
    println!("fingerprint:  {:#018x}", graph.fingerprint());
    let shape: Vec<String> = graph
        .levels()
        .iter()
        .map(|l| format!("{}({})", l.label, l.len()))
        .collect();
    println!("levels:       {}", shape.join(" -> "));
    println!("mean degree:  {:.2} per node (2E/N)", stats.mean_degree_per_node);
    println!("edges/node:   {:.2} (paper's 'average degree')", graph.num_edges() as f64 / graph.num_nodes() as f64);
    println!(
        "check degree: min {} max {}",
        stats.check_degree_range.0, stats.check_degree_range.1
    );
    if stats.unprotected_data_nodes > 0 {
        println!("WARNING: {} unprotected data node(s)", stats.unprotected_data_nodes);
    }
    let defects = tornado_gen::defects::find_stopping_sets(&graph, 3);
    if defects.is_empty() {
        println!("screen:       no stopping sets of size <= 3");
    } else {
        println!("screen:       DEFECTIVE — stopping sets: {defects:?}");
    }
    Ok(())
}

/// `tornado dot`
pub fn dot(args: &ParsedArgs) -> CmdResult {
    let graph = load_graph(args.require("graph")?)?;
    write_or_print(args.get("out"), &dot::to_dot(&graph))
}

/// `tornado test` — alias for [`worst_case`], kept for compatibility.
pub fn test(args: &ParsedArgs) -> CmdResult {
    worst_case(args)
}

/// `tornado worst-case`
pub fn worst_case(args: &ParsedArgs) -> CmdResult {
    let obs = CliObs::from_args(args);
    let (graph, label) = load_target_graph(args)?;
    let max_k: usize = args.get_parsed("max-k", 4)?;
    let report = worst_case_search_observed(
        &graph,
        &WorstCaseConfig {
            max_k,
            collect_cap: 16,
            stop_at_first_failure: false,
        },
        &obs.sim_observer(),
    );
    println!("k, cases, failures, fraction");
    for l in &report.levels {
        println!(
            "{}, {}, {}, {:.3e}",
            l.k,
            l.cases,
            l.failures,
            l.failures as f64 / l.cases as f64
        );
    }
    match report.first_failure() {
        Some(k) => {
            println!("first failure: {k} lost nodes");
            for s in report.levels[k - 1].failure_sets.iter().take(8) {
                println!("  failure set: {s:?}");
            }
        }
        None => println!("first failure: none up to k = {max_k}"),
    }
    obs.write_metrics("worst-case", |snap| {
        snap.set("graph", Json::Str(label.clone()))
            .set("max_k", Json::U64(max_k as u64));
        match report.first_failure() {
            Some(k) => snap.set("first_failure", Json::U64(k as u64)),
            None => snap.set("first_failure", Json::Null),
        };
        let levels: Vec<Json> = report
            .levels
            .iter()
            .map(|l| {
                Json::Obj(vec![
                    ("k".into(), Json::U64(l.k as u64)),
                    (
                        "cases".into(),
                        Json::U64(u64::try_from(l.cases).unwrap_or(u64::MAX)),
                    ),
                    ("failures".into(), Json::U64(l.failures)),
                ])
            })
            .collect();
        snap.set("levels", Json::Arr(levels));
    })
}

/// `tornado profile` — alias for [`monte_carlo`], kept for compatibility.
pub fn profile(args: &ParsedArgs) -> CmdResult {
    monte_carlo(args)
}

/// `tornado monte-carlo`
pub fn monte_carlo(args: &ParsedArgs) -> CmdResult {
    let obs = CliObs::from_args(args);
    let (graph, label) = load_target_graph(args)?;
    let trials: u64 = args.get_parsed("trials", 20_000)?;
    let seed: u64 = args.get_parsed("seed", 1)?;
    let profile = monte_carlo_profile_observed(
        &graph,
        &MonteCarloConfig {
            trials_per_k: trials,
            seed,
            ks: None,
        },
        &obs.sim_observer(),
    );
    println!("k, trials, failures, fraction");
    for e in profile.entries() {
        if e.trials > 0 {
            println!("{}, {}, {}, {:.6}", e.k, e.trials, e.failures, e.fraction());
        }
    }
    let report = overhead_report(&profile, graph.num_data());
    println!("nodes for 50% reconstruction: {}", report.nodes_for_half);
    println!("overhead: {:.2}", report.overhead);
    println!(
        "average nodes to reconstruct: {:.2} ({:.2})",
        report.average_to_reconstruct, report.average_overhead
    );
    obs.write_metrics("monte-carlo", |snap| {
        snap.set("graph", Json::Str(label.clone()))
            .set("trials_per_k", Json::U64(trials))
            .set("seed", Json::U64(seed))
            .set("overhead", Json::F64(report.overhead));
    })
}

/// `tornado scrub`
pub fn scrub(args: &ParsedArgs) -> CmdResult {
    let obs = CliObs::from_args(args);
    let (graph, label) = load_target_graph(args)?;
    let objects: usize = args.get_parsed("objects", 8)?;
    let level: usize = args.get_parsed("level", 5)?;
    let repair = args.flag("repair");
    // `--threads 0` means automatic; 1 (the default) scrubs serially.
    let threads: usize = args.get_parsed("threads", 1)?;
    // Tier selection: hash-verify by default; `--full` forces the
    // historical read-and-decode-everything pass; `--incremental` also
    // skips stripes unchanged since the last clean pass (only observable
    // with `--cycles` > 1, since marks start empty).
    let mode = match (args.flag("full"), args.flag("verify"), args.flag("incremental")) {
        (true, false, false) => tornado_store::ScrubMode::Full,
        (false, _, false) => tornado_store::ScrubMode::Verify,
        (false, false, true) => tornado_store::ScrubMode::Incremental,
        _ => return Err("pick at most one of --full / --verify / --incremental".into()),
    };
    let cycles: usize = args.get_parsed("cycles", 1)?;
    if cycles == 0 {
        return Err("--cycles must be at least 1".into());
    }
    let store = tornado_store::ArchivalStore::new(graph);
    for i in 0..objects {
        let payload = vec![(i % 251) as u8; 4096];
        store
            .put(&format!("object-{i}"), &payload)
            .map_err(|e| e.to_string())?;
    }
    let mut failed = Vec::new();
    for dev in args.get_all("fail") {
        let d: usize = dev.parse().map_err(|e| format!("--fail {dev}: {e}"))?;
        store.fail_device(d).map_err(|e| e.to_string())?;
        failed.push(d);
    }
    // `--replace` brings a failed device back online empty, so a repair
    // scrub has somewhere to rewrite the reconstructed blocks.
    for dev in args.get_all("replace") {
        let d: usize = dev.parse().map_err(|e| format!("--replace {dev}: {e}"))?;
        store.replace_device(d).map_err(|e| e.to_string())?;
    }
    let store_obs = obs.store_observer();
    // One scrubber across all cycles: the worker pool is built once and
    // the clean marks accumulate, so later incremental cycles skip.
    let scrubber = tornado_store::Scrubber::new(threads);
    let mut outcome = scrubber.run_observed(&store, level, repair, mode, &store_obs);
    for cycle in 1..cycles {
        println!(
            "cycle {cycle}: {} skipped / {} verified / {} decoded",
            outcome.skipped_count(),
            outcome.verified_count(),
            outcome.decoded_count()
        );
        outcome = scrubber.run_observed(&store, level, repair, mode, &store_obs);
    }
    println!("stripes scanned:     {}", outcome.stripes.len());
    println!("  skipped (clean):   {}", outcome.skipped_count());
    println!("  hash-verified:     {}", outcome.verified_count());
    println!("  read and decoded:  {}", outcome.decoded_count());
    println!("degraded stripes:    {}", outcome.degraded_count());
    println!("urgent stripes:      {}", outcome.urgent_count());
    println!("blocks repaired:     {}", outcome.blocks_repaired);
    let repair_cost = outcome.repair_cost();
    println!(
        "repair cost:         {} bytes / {} blocks / {} device contacts (max depth {})",
        repair_cost.bytes_read,
        repair_cost.blocks_fetched,
        repair_cost.devices_contacted,
        repair_cost.recovery_depth
    );
    println!("objects incomplete:  {}", outcome.objects_incomplete.len());
    for s in outcome.stripes.iter().filter(|s| s.degraded()) {
        println!(
            "  object {}: {} missing, margin {}{}",
            s.id,
            s.missing_blocks.len(),
            s.margin,
            if s.urgent() { " (URGENT)" } else { "" }
        );
    }
    obs.write_metrics("scrub", |snap| {
        snap.set("graph", Json::Str(label.clone()))
            .set("objects", Json::U64(objects as u64))
            .set("level", Json::U64(level as u64))
            .set("repair", Json::Bool(repair))
            .set("mode", Json::Str(format!("{mode:?}").to_lowercase()))
            .set("cycles", Json::U64(cycles as u64))
            .set(
                "failed_devices",
                Json::Arr(failed.iter().map(|&d| Json::U64(d as u64)).collect()),
            );
        store_obs.fill_snapshot(snap);
    })
}

/// `tornado validate-metrics`
pub fn validate_metrics(args: &ParsedArgs) -> CmdResult {
    let path = args.require("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = tornado_obs::json::parse(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
    tornado_obs::snapshot::validate(&doc).map_err(|e| format!("{path}: invalid snapshot: {e}"))?;
    let command = doc.get("command").and_then(Json::as_str).unwrap_or("?");
    let elapsed = doc.get("elapsed_ms").and_then(Json::as_u64).unwrap_or(0);
    let counters = match doc.get("counters") {
        Some(Json::Obj(entries)) => entries.len(),
        _ => 0,
    };
    println!("valid {} snapshot: command={command} elapsed_ms={elapsed} counters={counters}",
        tornado_obs::snapshot::SCHEMA);
    Ok(())
}

/// `tornado adjust`
pub fn adjust(args: &ParsedArgs) -> CmdResult {
    let graph = load_graph(args.require("graph")?)?;
    let target: usize = args.get_parsed("target", 5)?;
    let outcome = adjust_graph(
        &graph,
        &AdjustConfig {
            target_first_failure: target,
            ..AdjustConfig::default()
        },
    );
    for s in &outcome.steps {
        println!(
            "moved left {} from check {} to check {} (failures {} -> {})",
            s.left, s.from_check, s.to_check, s.failures_before, s.failures_after
        );
    }
    match outcome.first_failure_below_target {
        None => println!("target achieved: survives any {} losses", target - 1),
        Some(k) => println!("stalled: still fails at k = {k}"),
    }
    write_or_print(args.get("out"), &graphml::to_graphml(&outcome.graph))
}

/// `tornado reliability`
pub fn reliability(args: &ParsedArgs) -> CmdResult {
    let afr: f64 = args.get_parsed("afr", 0.01)?;
    let trials: u64 = args.get_parsed("trials", 20_000)?;
    println!("system, data, parity, p_fail");
    println!("Individual Disk, 96, 0, {afr:.5}");
    println!(
        "Striping, 96, 0, {:.5}",
        tornado_analysis::reliability::striping_failure_probability(96, afr)
    );
    for (name, sys) in [
        ("RAID5", GroupSystem::raid5_paper()),
        ("RAID6", GroupSystem::raid6_paper()),
    ] {
        println!(
            "{name}, {}, {}, {:.5}",
            sys.data_devices(),
            sys.parity_devices(),
            system_failure_probability(&sys.profile(), afr)
        );
    }
    println!(
        "Mirrored, 48, 48, {:.5}",
        system_failure_probability(&tornado_raid::mirrored_profile(48), afr)
    );
    for path in args.get_all("graph") {
        let graph = load_graph(path)?;
        let mut profile = worst_case_search(
            &graph,
            &WorstCaseConfig {
                max_k: 4,
                collect_cap: 4,
                stop_at_first_failure: false,
            },
        )
        .to_profile(graph.num_nodes());
        profile.merge(&monte_carlo_profile(
            &graph,
            &MonteCarloConfig {
                trials_per_k: trials,
                seed: 1,
                ks: Some((5..=graph.num_nodes()).collect()),
            },
        ));
        println!(
            "{path}, {}, {}, {:.3e}",
            graph.num_data(),
            graph.num_checks(),
            system_failure_probability(&profile, afr)
        );
    }
    Ok(())
}

/// `tornado demo`
pub fn demo(args: &ParsedArgs) -> CmdResult {
    let seed: u64 = args.get_parsed("seed", 1)?;
    let params = TornadoParams {
        num_data: 16,
        ..TornadoParams::default()
    };
    let graph = TornadoGenerator::new(params)
        .generate_screened(seed, 256, 2)
        .map_err(|e| e.to_string())?
        .0;
    let store = tornado_store::ArchivalStore::new(graph);
    println!("created a {}-device archival store", store.num_devices());
    let id = store
        .put("demo-object", b"the archival payload survives device failures")
        .map_err(|e| e.to_string())?;
    println!("stored object {id}");
    store.fail_device(0).map_err(|e| e.to_string())?;
    store.fail_device(7).map_err(|e| e.to_string())?;
    println!("failed devices 0 and 7");
    let (payload, fetched) = store.get_with_stats(id).map_err(|e| e.to_string())?;
    println!(
        "recovered {} bytes by fetching {fetched}/{} blocks: {:?}",
        payload.len(),
        store.num_devices(),
        String::from_utf8_lossy(&payload)
    );
    let scrubbed = tornado_store::scrubber::scrub(&store, 3, true);
    println!(
        "scrub: {} degraded stripe(s), {} block(s) repaired",
        scrubbed.degraded_count(),
        scrubbed.blocks_repaired
    );
    Ok(())
}

/// `tornado mindist`
pub fn mindist(args: &ParsedArgs) -> CmdResult {
    let graph = load_graph(args.require("graph")?)?;
    let cap: usize = args.get_parsed("cap", 5)?;
    match tornado_analysis::minimum_distance(&graph, cap) {
        Some((dist, witness)) => {
            println!("minimum blocking distance: {dist}");
            println!("witness erasure set: {witness:?}");
        }
        None => println!("no blocking set of size <= {cap}: the graph survives any {cap} losses"),
    }
    Ok(())
}

/// `tornado incremental`
pub fn incremental(args: &ParsedArgs) -> CmdResult {
    let graph = load_graph(args.require("graph")?)?;
    let trials: u64 = args.get_parsed("trials", 2_000)?;
    let seed: u64 = args.get_parsed("seed", 1)?;
    let r = tornado_analysis::incremental_overhead(&graph, trials, seed);
    println!("trials: {}", r.trials);
    println!("mean blocks to reconstruct: {:.2}", r.mean_blocks);
    println!("overhead (vs {} data blocks): {:.4}", graph.num_data(), r.mean_overhead);
    println!("range: {}..={}", r.min_blocks, r.max_blocks);
    Ok(())
}

/// `tornado lifetime`
pub fn lifetime(args: &ParsedArgs) -> CmdResult {
    let graph = load_graph(args.require("graph")?)?;
    let afr: f64 = args.get_parsed("afr", 0.01)?;
    let scrubs: usize = args.get_parsed("scrubs", 0)?;
    let trials: u64 = args.get_parsed("trials", 100_000)?;
    let seed: u64 = args.get_parsed("seed", 1)?;
    let cfg = tornado_analysis::LifetimeConfig {
        devices: graph.num_nodes(),
        afr,
        scrubs,
        years: 1.0,
        trials,
        seed,
    };
    let r = tornado_analysis::simulate_graph_lifetime(&graph, &cfg);
    println!(
        "annual P(data loss) with {scrubs} scrub(s)/year at AFR {afr}: {:.3e} ({}/{} trials)",
        r.loss_probability(),
        r.losses,
        r.trials
    );
    Ok(())
}

/// `tornado workload`
pub fn workload(args: &ParsedArgs) -> CmdResult {
    let seed: u64 = args.get_parsed("seed", 1)?;
    let objects: usize = args.get_parsed("objects", 20)?;
    let reads: usize = args.get_parsed("reads", 100)?;
    let graph = tornado_core::tornado_graph_1();
    let store = tornado_store::ArchivalStore::new(graph);
    let cfg = tornado_store::WorkloadConfig {
        objects,
        reads,
        seed,
        ..Default::default()
    };
    let events = tornado_store::generate_events(&cfg, store.num_devices());
    let report = tornado_store::replay(&store, &events);
    println!("reads ok/failed: {}/{}", report.reads_ok, report.reads_failed);
    if report.events_failed > 0 {
        println!("events rejected mid-replay: {}", report.events_failed);
    }
    println!("bytes ingested/served: {}/{}", report.bytes_ingested, report.bytes_served);
    println!(
        "blocks fetched vs naive: {}/{} ({:.0}% activations saved)",
        report.blocks_fetched,
        report.blocks_naive,
        100.0 * report.activation_savings()
    );
    println!("blocks repaired by scrubs: {}", report.blocks_repaired);
    Ok(())
}

/// `tornado serve`
pub fn serve(args: &ParsedArgs) -> CmdResult {
    let obs = CliObs::from_args(args);
    let addr = args.get("addr").unwrap_or("127.0.0.1:7401").to_string();
    let workers: usize = args.get_parsed("workers", 4)?;
    let queue_depth: usize = args.get_parsed("queue-depth", 64)?;
    let default_deadline_ms: u32 = args.get_parsed("deadline-ms", 0)?;
    let trace_sample: u64 = args.get_parsed("trace-sample", 0)?;
    let trace_capacity: usize = args.get_parsed("trace-capacity", 4096)?;
    let trace_slow_keep: usize = args.get_parsed("trace-slow-keep", 16)?;
    let slow_ms: u64 = args.get_parsed("slow-ms", 0)?;
    let timeseries_interval_ms: u64 = args.get_parsed("timeseries-ms", 500)?;
    let shards: usize = args.get_parsed("shards", 2)?;
    let max_inflight: usize = args.get_parsed("max-inflight", 64)?;
    let event_loop = !args.flag("thread-per-conn");
    let health = health_config_from_args(args)?;
    let (graph, label) = if args.get("graph").is_some() || args.get("catalog").is_some() {
        load_target_graph(args)?
    } else {
        (tornado_core::tornado_graph_1(), "catalog:1".into())
    };

    // A `--data-dir` turns the in-memory simulation store into a durable
    // one: blocks live in a file or segment backend and puts are
    // journaled, so a SIGKILLed server recovers its catalog on restart.
    let (store, recovery) = match args.get("data-dir") {
        Some(dir) => {
            let backend = args.get("backend").unwrap_or("file");
            let kind = tornado_store::BackendKind::parse(backend)
                .ok_or_else(|| format!("--backend {backend}: expected file|segment"))?;
            if kind == tornado_store::BackendKind::Memory {
                return Err("--backend memory cannot be combined with --data-dir".into());
            }
            let cfg = if args.flag("no-fsync") {
                tornado_store::DurableConfig::new_nosync(dir, kind)
            } else {
                tornado_store::DurableConfig::new(dir, kind)
            };
            let (store, report) =
                tornado_store::ArchivalStore::open(graph, cfg).map_err(|e| format!("open: {e}"))?;
            (store, Some(report))
        }
        None => {
            if args.get("backend").is_some() {
                return Err("--backend requires --data-dir".into());
            }
            (tornado_store::ArchivalStore::new(graph), None)
        }
    };
    let store = std::sync::Arc::new(store);
    let mut server_obs = tornado_server::ServerObserver::disabled().with_events(obs.events());
    if trace_sample > 0 {
        server_obs = server_obs.with_tracer(tornado_obs::Tracer::new(
            trace_sample,
            trace_capacity,
            trace_slow_keep,
        ));
    }
    if let Some(report) = &recovery {
        server_obs.store_obs.record_recovery(report);
        if server_obs.tracer.is_enabled() {
            server_obs.tracer.record(tornado_obs::trace::SpanRecord {
                trace_id: 0,
                span_id: server_obs.tracer.next_span_id(),
                parent_id: None,
                name: "store.recover",
                start_us: 0,
                dur_us: report.duration_us,
                fields: vec![
                    ("objects", Json::U64(report.objects as u64)),
                    ("journal_records", Json::U64(report.journal_records as u64)),
                    ("rolled_back", Json::U64(report.rolled_back as u64)),
                ],
            });
        }
        obs.status(
            "serve_recovered",
            &[
                ("objects", Json::U64(report.objects as u64)),
                ("journal_records", Json::U64(report.journal_records as u64)),
                ("committed_puts", Json::U64(report.committed_puts as u64)),
                ("rolled_back", Json::U64(report.rolled_back as u64)),
                ("deletes_replayed", Json::U64(report.deletes_replayed as u64)),
                ("torn_tail", Json::Bool(report.torn_tail)),
                ("duration_us", Json::U64(report.duration_us)),
            ],
        );
    }
    let server_obs = std::sync::Arc::new(server_obs);
    let config = tornado_server::ServerConfig {
        addr,
        workers,
        queue_depth,
        default_deadline_ms,
        trace_sample,
        trace_capacity,
        trace_slow_keep,
        slow_request_us: slow_ms.saturating_mul(1_000),
        timeseries_interval_ms,
        event_loop,
        shards,
        max_inflight_per_conn: max_inflight,
        health,
        ..tornado_server::ServerConfig::default()
    };
    let handle = tornado_server::serve(config, std::sync::Arc::clone(&store), std::sync::Arc::clone(&server_obs))
        .map_err(|e| format!("bind: {e}"))?;
    let bound = handle.local_addr();
    obs.status(
        "serve_listening",
        &[
            ("addr", Json::Str(bound.to_string())),
            ("graph", Json::Str(label.clone())),
            ("backend", Json::Str(store.backend_kind().to_string())),
            ("workers", Json::U64(workers as u64)),
            ("queue_depth", Json::U64(queue_depth as u64)),
            (
                "mode",
                Json::Str(if event_loop { "event_loop".into() } else { "threads".into() }),
            ),
            ("shards", Json::U64(if event_loop { shards as u64 } else { 0 })),
        ],
    );

    // With `--addr 127.0.0.1:0` the kernel picks the port; publish it
    // atomically (write + rename) so scripts can poll for the file and
    // never observe a partial write.
    if let Some(port_file) = args.get("port-file") {
        let tmp = format!("{port_file}.tmp");
        std::fs::write(&tmp, format!("{bound}\n")).map_err(|e| format!("{tmp}: {e}"))?;
        std::fs::rename(&tmp, port_file).map_err(|e| format!("{port_file}: {e}"))?;
    }

    // Serve until a SHUTDOWN op drains the server — or, on unix, until
    // SIGTERM: the reactor latches the signal into a flag (the handler
    // itself only stores an atomic), and this supervising loop turns it
    // into the same graceful drain the wire op triggers.
    let started = std::time::Instant::now();
    #[cfg(unix)]
    {
        let sigterm = tornado_server::reactor::install_sigterm_flag();
        while !handle.is_shutting_down()
            && !sigterm.load(std::sync::atomic::Ordering::SeqCst)
        {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        if sigterm.load(std::sync::atomic::Ordering::SeqCst) {
            obs.status("serve_sigterm", &[]);
        }
        handle.shutdown();
    }
    handle.join();
    // After the drain every in-flight root span is recorded, so the
    // export written here is complete and well-nested by construction.
    if let Some(path) = args.get("trace-file") {
        let spans = server_obs.tracer.spans();
        let json = tornado_obs::trace::to_chrome_trace(&spans).to_pretty();
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        obs.status(
            "trace_written",
            &[
                ("path", Json::Str(path.into())),
                ("spans", Json::U64(spans.len() as u64)),
                ("dropped", Json::U64(server_obs.tracer.dropped())),
            ],
        );
    }
    obs.write_metrics("serve", |snap| {
        snap.set("graph", Json::Str(label.clone()));
        snap.set("addr", Json::Str(bound.to_string()));
        let final_snap = server_obs.snapshot(&store, started.elapsed().as_millis() as u64);
        if let Ok(doc) = tornado_obs::json::parse(&final_snap.to_pretty()) {
            snap.set("server", doc);
        }
    })?;
    obs.status("serve_stopped", &[]);
    Ok(())
}

/// `tornado load`
pub fn load(args: &ParsedArgs) -> CmdResult {
    let obs = CliObs::from_args(args);
    let mut fail_devices = Vec::new();
    for d in args.get_all("fail") {
        fail_devices.push(d.parse::<u32>().map_err(|e| format!("--fail {d}: {e}"))?);
    }
    let cfg = tornado_server::LoadConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7401").to_string(),
        connections: args.get_parsed("connections", 4)?,
        duration_ms: args.get_parsed("duration-ms", 2_000)?,
        seed: args.get_parsed("seed", 1)?,
        mix: tornado_server::OpMix {
            put: args.get_parsed("put", 20)?,
            get: args.get_parsed("get", 75)?,
            delete: args.get_parsed("delete", 5)?,
        },
        payload_min: args.get_parsed("payload-min", 1usize << 10)?,
        payload_max: args.get_parsed("payload-max", 64usize << 10)?,
        zipf_theta: args.get_parsed("zipf", 0.99)?,
        prefill: args.get_parsed("prefill", 8)?,
        fail_devices,
        fail_after_ms: args.get_parsed("fail-after-ms", 300)?,
        fail_spacing_ms: args.get_parsed("fail-spacing-ms", 50)?,
        deadline_ms: args.get_parsed("deadline-ms", 0)?,
        trace_sample: args.get_parsed("trace-sample", 256)?,
        op_limit: args.get_parsed("op-limit", 0)?,
        pipeline_depth: args.get_parsed("pipeline", 1)?,
        rate_ops_per_sec: args.get_parsed("rate", 0.0)?,
    };

    let report = tornado_server::run_load(&cfg).map_err(|e| format!("load: {e}"))?;
    if cfg.pipeline_depth > 1 || cfg.rate_ops_per_sec > 0.0 {
        let loop_kind =
            if cfg.rate_ops_per_sec > 0.0 { "open loop".to_string() } else { "closed loop".into() };
        let rate = if cfg.rate_ops_per_sec > 0.0 {
            format!(", target rate {:.0}/s", cfg.rate_ops_per_sec)
        } else {
            String::new()
        };
        println!("discipline: {loop_kind}, pipeline depth {}{rate}", cfg.pipeline_depth.max(1));
    }
    println!(
        "ops: {} in {} ms ({:.0} ops/s)",
        report.ops, report.elapsed_ms, report.ops_per_sec
    );
    println!(
        "mix: {} put / {} get / {} delete",
        report.puts, report.gets, report.deletes
    );
    println!(
        "latency us: p50 {} / p99 {} (mean {:.0}, max {})",
        report.p50_us(),
        report.p99_us(),
        report.latency_us.mean(),
        report.latency_us.max().unwrap_or(0)
    );
    if !report.slowest.is_empty() {
        println!(
            "slowest sampled traces ({} ids kept at 1-in-{}; look them up in the server's trace export):",
            report.sampled_trace_ids.len(),
            cfg.trace_sample
        );
        for e in &report.slowest {
            println!("  {:>8} us  {:<6}  trace {:#018x}", e.latency_us, e.op, e.trace_id);
        }
    }
    println!(
        "backpressure: {} busy retries; errors: {}; unrecoverable: {}",
        report.busy_retries, report.errors, report.unrecoverable
    );
    println!(
        "payload mismatches: {} (must be 0)",
        report.payload_mismatches
    );
    if !report.devices_failed.is_empty() {
        println!(
            "devices failed mid-run: {:?}; degraded reads served: {}",
            report.devices_failed, report.degraded_reads
        );
    }
    println!(
        "repair: {} replans; {} repair bytes read by degraded GETs",
        report.replans, report.repair_bytes
    );

    if let Some(path) = args.get("metrics") {
        report
            .snapshot(cfg.seed)
            .write(path)
            .map_err(|e| format!("{path}: {e}"))?;
        obs.status("metrics_written", &[("path", Json::Str(path.into()))]);
    }
    if args.flag("shutdown") {
        let mut c = tornado_server::Client::connect(&cfg.addr).map_err(|e| format!("shutdown: {e}"))?;
        c.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        obs.status("server_shutdown_sent", &[]);
    }
    if report.payload_mismatches > 0 {
        return Err(format!("{} payload mismatches", report.payload_mismatches));
    }
    Ok(())
}

/// `tornado put` — store one object on a running server. Prints the
/// assigned object id (bare, on stdout) so shell scripts can capture it.
pub fn put(args: &ParsedArgs) -> CmdResult {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7401").to_string();
    let name = args.require("name")?;
    let path = args.require("payload-file")?;
    let payload = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let mut client =
        tornado_server::Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let id = client.put(name, &payload).map_err(|e| format!("put: {e}"))?;
    println!("{id}");
    Ok(())
}

/// `tornado get` — fetch one object from a running server by id, writing
/// the payload to `--out FILE` (or raw bytes to stdout without it).
pub fn get(args: &ParsedArgs) -> CmdResult {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7401").to_string();
    let id: u64 = args
        .require("id")?
        .parse()
        .map_err(|e| format!("--id: {e}"))?;
    let mut client =
        tornado_server::Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let payload = client.get(id).map_err(|e| format!("get {id}: {e}"))?;
    match args.get("out") {
        Some(path) => std::fs::write(path, &payload).map_err(|e| format!("{path}: {e}"))?,
        None => {
            use std::io::Write;
            std::io::stdout()
                .write_all(&payload)
                .map_err(|e| format!("stdout: {e}"))?;
        }
    }
    Ok(())
}

/// `tornado watch` — live windowed rates from a running server's
/// time-series ring (polls the METRICS admin op).
pub fn watch(args: &ParsedArgs) -> CmdResult {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7401").to_string();
    let interval_ms: u64 = args.get_parsed("interval-ms", 1_000)?;
    let count: u64 = args.get_parsed("count", 0)?; // 0 = until interrupted
    let mut client =
        tornado_server::Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;

    println!("{:>10} {:>9} {:>9} {:>9} {:>9} {:>11} {:>11} {:>10} {:>7} {:>8} {:>12}",
        "req/s", "put/s", "get/s", "busy/s", "degr/s", "MB out/s", "rep MB/s", "scrub/s", "conns", "inflight", "window req/s");
    let mut tick = 0u64;
    loop {
        tick += 1;
        let doc = tornado_obs::json::parse(&client.metrics().map_err(|e| format!("metrics: {e}"))?)
            .map_err(|e| format!("metrics: {e}"))?;
        let points = doc
            .get("timeseries")
            .and_then(tornado_obs::timeseries::points_from_json)
            .unwrap_or_default();
        if points.len() < 2 {
            println!("(waiting for the server's sampler: {} point(s) so far)", points.len());
        } else {
            // Event-loop occupancy is a point-in-time gauge, not a
            // cumulative counter: show the latest sample raw, never as a
            // rate.
            let latest = |k: &str| {
                points
                    .last()
                    .and_then(|p| p.values.iter().find(|(name, _)| name == k))
                    .map_or(0, |(_, v)| *v)
            };
            let conns = latest("server.loop.connections");
            let inflight = latest("server.loop.inflight");
            // Rebuild the ring client-side so the same windowed-rate code
            // serves the live view and the server.
            let series = tornado_obs::TimeSeries::new(points.len().max(2));
            for p in points {
                series.push(p);
            }
            let rate = |k: &str| series.latest_rate(k).unwrap_or(0.0);
            // Stripes scrubbed per second across all three tiers; a
            // skip-heavy cadence shows here as high scrub/s at near-zero
            // device traffic.
            let scrub_rate =
                rate("scrub.skipped") + rate("scrub.verified") + rate("scrub.decoded");
            println!(
                "{:>10.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>11.2} {:>11.2} {:>10.1} {:>7} {:>8} {:>12.1}",
                rate("server.requests"),
                rate("server.put"),
                rate("server.get"),
                rate("server.busy_rejected"),
                rate("server.get.degraded"),
                rate("server.bytes_out") / (1024.0 * 1024.0),
                // Repair bandwidth: check-block bytes degraded GETs pulled
                // plus scrub decode-tier reads, per second.
                rate("repair.bytes_read") / (1024.0 * 1024.0),
                scrub_rate,
                conns,
                inflight,
                series.window_rate("server.requests").unwrap_or(0.0),
            );
        }
        // The metrics snapshot embeds the observatory's cached document;
        // one compact durability line rides under the rate row.
        if let Some(health) = doc.get("health") {
            let u = |sec: &str, key: &str| {
                health.get(sec).and_then(|s| s.get(key)).and_then(Json::as_u64).unwrap_or(0)
            };
            let p_loss = health
                .get("reliability")
                .and_then(|r| r.get("p_loss"))
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN);
            let alerts = match health.get("slo") {
                Some(Json::Obj(slos)) => slos
                    .iter()
                    .map(|(_, e)| e.get("alerts_total").and_then(Json::as_u64).unwrap_or(0))
                    .sum::<u64>(),
                _ => 0,
            };
            println!(
                "  health: P(loss)={p_loss:.3e} offline={} margin={} at-risk={}/{} alerts={alerts}",
                u("fleet", "offline"),
                u("margins", "min_margin"),
                u("margins", "stripes_at_margin_le_1"),
                u("margins", "stripes_total"),
            );
        }
        if count > 0 && tick >= count {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(1)));
    }
}

/// `tornado trace` — export a running server's retained spans as Chrome
/// trace-event JSON (open the file in Perfetto / chrome://tracing).
pub fn trace(args: &ParsedArgs) -> CmdResult {
    let obs = CliObs::from_args(args);
    let addr = args.get("addr").unwrap_or("127.0.0.1:7401").to_string();
    let mut client =
        tornado_server::Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let json = client.trace_export().map_err(|e| format!("trace export: {e}"))?;
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
            obs.status("trace_written", &[("path", Json::Str(path.into()))]);
            Ok(())
        }
        None => {
            println!("{json}");
            Ok(())
        }
    }
}

/// `tornado validate-trace` — check a trace export is structurally valid
/// Chrome trace-event JSON with well-nested spans; `--require NAME`
/// (repeatable) additionally demands that span names be present.
pub fn validate_trace(args: &ParsedArgs) -> CmdResult {
    let path = args.require("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = tornado_obs::json::parse(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
    let require = args.get_all("require");
    let stats = tornado_obs::trace::validate_chrome_trace(&doc, &require)
        .map_err(|e| format!("{path}: invalid trace: {e}"))?;
    println!(
        "valid Chrome trace: {} events across {} traces ({} roots)",
        stats.events, stats.traces, stats.roots
    );
    Ok(())
}

/// Builds a [`tornado_server::HealthConfig`] from `serve` flags.
/// `--slo-window label:short_ms:long_ms:threshold` (repeatable) replaces
/// the standard 5m/1h + 30m/6h pairs — CI shrinks these to seconds so a
/// burn-rate alert can fire inside a smoke test.
fn health_config_from_args(args: &ParsedArgs) -> Result<tornado_server::HealthConfig, String> {
    let defaults = tornado_server::HealthConfig::default();
    let mut cfg = tornado_server::HealthConfig {
        enabled: !args.flag("no-health"),
        afr: args.get_parsed("afr", defaults.afr)?,
        horizon_hours: args.get_parsed("horizon-hours", defaults.horizon_hours)?,
        trials_per_k: args.get_parsed("health-trials", defaults.trials_per_k)?,
        seed: args.get_parsed("health-seed", defaults.seed)?,
        max_k: args.get_parsed("health-max-k", defaults.max_k)?,
        margin_cap: args.get_parsed("margin-cap", defaults.margin_cap)?,
        min_recompute_ms: args.get_parsed("health-recompute-ms", defaults.min_recompute_ms)?,
        degraded_read_objective: args.get_parsed("slo-degraded", defaults.degraded_read_objective)?,
        corruption_objective: args.get_parsed("slo-corruption", defaults.corruption_objective)?,
        ..defaults
    };
    let windows = args.get_all("slo-window");
    if !windows.is_empty() {
        cfg.slo_windows = windows
            .iter()
            .map(|spec| {
                let parts: Vec<&str> = spec.split(':').collect();
                if parts.len() != 4 {
                    return Err(format!(
                        "--slo-window {spec}: expected label:short_ms:long_ms:threshold"
                    ));
                }
                Ok(tornado_obs::slo::BurnWindow {
                    label: parts[0].to_string(),
                    short_ms: parts[1].parse().map_err(|e| format!("--slo-window {spec}: {e}"))?,
                    long_ms: parts[2].parse().map_err(|e| format!("--slo-window {spec}: {e}"))?,
                    threshold: parts[3].parse().map_err(|e| format!("--slo-window {spec}: {e}"))?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
    }
    Ok(cfg)
}

/// `tornado health` — fetch a running server's durability document,
/// validate it, and print a summary (or the raw JSON / Prometheus text).
/// The `--expect-*` flags turn the command into a smoke-test assertion.
pub fn health(args: &ParsedArgs) -> CmdResult {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7401").to_string();
    let mut client =
        tornado_server::Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let json = client.health().map_err(|e| format!("health: {e}"))?;
    let doc = tornado_obs::json::parse(&json).map_err(|e| format!("health: parse error: {e}"))?;
    tornado_server::validate_health(&doc).map_err(|e| format!("invalid health doc: {e}"))?;
    if let Some(path) = args.get("out") {
        std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
    }
    if args.flag("prometheus") {
        print!("{}", tornado_obs::expo::render_flat("tornado_health", &doc));
    } else if args.flag("json") {
        println!("{json}");
    } else {
        print_health_summary(&doc);
    }
    check_health_expectations(args, &doc)
}

fn print_health_summary(doc: &Json) {
    let g = |path: &[&str]| -> Option<&Json> {
        let mut cur = doc;
        for k in path {
            cur = cur.get(k)?;
        }
        Some(cur)
    };
    let f = |path: &[&str]| g(path).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let u = |path: &[&str]| g(path).and_then(Json::as_u64).unwrap_or(0);
    println!(
        "fleet: {} devices, {} offline (pool epoch {})",
        u(&["fleet", "devices"]),
        u(&["fleet", "offline"]),
        u(&["fleet", "pool_epoch"])
    );
    println!(
        "reliability: P(loss|{:.0}h) = {:.3e} (healthy {:.3e}), afr {:.3}",
        f(&["reliability", "horizon_hours"]),
        f(&["reliability", "p_loss"]),
        f(&["reliability", "p_loss_healthy"]),
        f(&["reliability", "afr"]),
    );
    match g(&["reliability", "mttdl_hours"]).and_then(Json::as_f64) {
        Some(m) => println!("mttdl: {:.3e} hours ({:.1} years)", m, m / 8_766.0),
        None => println!("mttdl: effectively unbounded at this resolution"),
    }
    println!(
        "margins: min {}{} (cap {}), {}/{} stripes at margin <= 1",
        u(&["margins", "min_margin"]),
        if g(&["margins", "min_margin_exact"]) == Some(&Json::Bool(false)) { "+" } else { "" },
        u(&["margins", "margin_cap"]),
        u(&["margins", "stripes_at_margin_le_1"]),
        u(&["margins", "stripes_total"]),
    );
    if let Some(Json::Obj(slos)) = doc.get("slo") {
        for (name, entry) in slos {
            let firing: Vec<String> = entry
                .get("windows")
                .and_then(Json::as_arr)
                .map(|ws| {
                    ws.iter()
                        .filter(|w| w.get("firing") == Some(&Json::Bool(true)))
                        .filter_map(|w| w.get("label").and_then(Json::as_str))
                        .map(String::from)
                        .collect()
                })
                .unwrap_or_default();
            println!(
                "slo {name}: {}/{} bad (objective {}), alerts {}{}",
                entry.get("bad").and_then(Json::as_u64).unwrap_or(0),
                entry.get("total").and_then(Json::as_u64).unwrap_or(0),
                entry.get("objective").and_then(Json::as_f64).unwrap_or(0.0),
                entry.get("alerts_total").and_then(Json::as_u64).unwrap_or(0),
                if firing.is_empty() {
                    String::new()
                } else {
                    format!(" FIRING[{}]", firing.join(","))
                },
            );
        }
    }
}

/// `--expect-offline N`, `--expect-max-margin N`, `--expect-alert`:
/// smoke-test assertions against a fetched (and already validated)
/// health document.
fn check_health_expectations(args: &ParsedArgs, doc: &Json) -> CmdResult {
    if let Some(want) = args.get("expect-offline") {
        let want: u64 = want.parse().map_err(|e| format!("--expect-offline: {e}"))?;
        let got = doc
            .get("fleet")
            .and_then(|f| f.get("offline"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if got != want {
            return Err(format!("expected {want} offline devices, health reports {got}"));
        }
    }
    if let Some(want) = args.get("expect-max-margin") {
        let want: u64 = want.parse().map_err(|e| format!("--expect-max-margin: {e}"))?;
        let got = doc
            .get("margins")
            .and_then(|m| m.get("min_margin"))
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX);
        if got > want {
            return Err(format!("expected min margin <= {want}, health reports {got}"));
        }
    }
    if args.flag("expect-alert") {
        let fired = match doc.get("slo") {
            Some(Json::Obj(slos)) => slos.iter().any(|(_, entry)| {
                entry.get("alerts_total").and_then(Json::as_u64).unwrap_or(0) > 0
            }),
            _ => false,
        };
        if !fired {
            return Err("expected at least one burn-rate alert, none fired".into());
        }
    }
    Ok(())
}

/// `tornado validate-health` — check a saved health document parses and
/// satisfies the `tornado-health-v1` schema (same `--expect-*` assertions
/// as `health`, for post-hoc CI checks on captured files).
pub fn validate_health(args: &ParsedArgs) -> CmdResult {
    let path = args.require("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = tornado_obs::json::parse(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
    tornado_server::validate_health(&doc).map_err(|e| format!("{path}: invalid: {e}"))?;
    check_health_expectations(args, &doc)?;
    println!(
        "valid {} document: {} devices, {} offline, min margin {}",
        tornado_server::HEALTH_SCHEMA,
        doc.get("fleet").and_then(|f| f.get("devices")).and_then(Json::as_u64).unwrap_or(0),
        doc.get("fleet").and_then(|f| f.get("offline")).and_then(Json::as_u64).unwrap_or(0),
        doc.get("margins").and_then(|m| m.get("min_margin")).and_then(Json::as_u64).unwrap_or(0),
    );
    Ok(())
}
