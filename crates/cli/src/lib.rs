//! `tornado` CLI implementation (library side, for testability).
//!
//! The binary in `main.rs` is a thin wrapper over [`run_command`].

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
pub mod obs;

pub use args::ParsedArgs;

/// CLI usage text.
pub const USAGE: &str = "\
tornado — Tornado Code graphs for archival storage (HPDC 2006 reproduction)

USAGE:
    tornado <COMMAND> [OPTIONS]

COMMANDS:
    generate     Generate a Tornado graph           --seed N [--data 48] [--screen 3]
                                                    [--family tornado|regular|cascaded|mirror|doubled|shifted]
                                                    [--degree D] [--out FILE]
    catalog      Dump a certified catalog graph     --index 1|2|3 [--out FILE]
    inspect      Show structure and degree stats    --graph FILE
    dot          Export Graphviz DOT                --graph FILE [--out FILE]
    worst-case   Exhaustive worst-case search       --graph FILE | --catalog 1|2|3 [--max-k 4]
    test         Alias for worst-case               (same options)
    monte-carlo  Monte-Carlo failure profile        --graph FILE | --catalog 1|2|3
                                                    [--trials 20000] [--seed N]
    profile      Alias for monte-carlo              (same options)
    scrub        Fail devices, scrub, report health  --graph FILE | --catalog 1|2|3
                                                     [--objects 8] [--level 5] [--repair]
                                                     [--threads 1] [--fail DEV]...
                                                     [--replace DEV]... [--cycles 1]
                                                     [--full | --verify | --incremental]
                                                     (default --verify: hash-check in
                                                     place, decode only on damage)
    validate-metrics  Validate a metrics snapshot    --file FILE
    adjust       Feedback adjustment (§3.3)         --graph FILE [--target 5] [--out FILE]
    reliability  Table 5 reliability comparison     [--graph FILE]... [--afr 0.01] [--trials 20000]
    demo         Archival store walkthrough         [--seed N]
    mindist      Exact minimum blocking distance     --graph FILE [--cap 5]
    incremental  Retrieve-until-decodable overhead   --graph FILE [--trials 2000]
    lifetime     Annual loss with scrub/repair       --graph FILE [--afr 0.01]
                                                     [--scrubs 0] [--trials 100000]
    workload     Synthetic archival workload replay  [--seed N] [--objects 20] [--reads 100]
    serve        TCP archival block service          [--addr 127.0.0.1:7401] [--workers 4]
                                                     [--queue-depth 64] [--deadline-ms 0]
                                                     [--shards 2] [--max-inflight 64]
                                                     [--thread-per-conn] (legacy
                                                     thread-per-connection serving)
                                                     [--catalog 1|2|3 | --graph FILE]
                                                     [--data-dir DIR [--backend file|segment]
                                                     [--no-fsync]] (durable store with
                                                     crash recovery on restart)
                                                     [--port-file FILE]
                                                     [--trace-sample N] [--trace-file FILE]
                                                     [--trace-capacity 4096] [--trace-slow-keep 16]
                                                     [--slow-ms N] [--timeseries-ms 500]
                                                     [--no-health] [--afr 0.029]
                                                     [--horizon-hours 8760]
                                                     [--health-trials 2000] [--health-seed N]
                                                     [--health-max-k 6] [--margin-cap 2]
                                                     [--health-recompute-ms 2000]
                                                     [--slo-degraded 0.05] [--slo-corruption 0.01]
                                                     [--slo-window label:short:long:thresh]...
    put          Store one object on a server        --addr ADDR --name NAME
                                                     --payload-file FILE (prints the id)
    get          Fetch one object from a server      --addr ADDR --id N [--out FILE]
    load         Closed-loop load generator          --addr ADDR [--connections 4]
                                                     [--duration-ms 2000] [--seed N]
                                                     [--put 20 --get 75 --delete 5]
                                                     [--payload-min N --payload-max N]
                                                     [--zipf 0.99] [--prefill 8]
                                                     [--fail DEV]... [--fail-after-ms 300]
                                                     [--metrics FILE] [--shutdown]
                                                     [--trace-sample 256] [--op-limit N]
                                                     [--pipeline N] (N requests in flight
                                                     per connection, matched by corr id)
                                                     [--rate OPS_PER_SEC] (open-loop mode:
                                                     fixed arrival rate, queue-wait counted
                                                     in latency)
    watch        Live windowed rates from a server    --addr ADDR [--interval-ms 1000]
                                                     [--count N]
    health       Durability observatory snapshot      --addr ADDR [--json | --prometheus]
                                                     [--out FILE] [--expect-offline N]
                                                     [--expect-max-margin N] [--expect-alert]
    validate-health  Validate a health document       --file FILE [--expect-offline N]
                                                     [--expect-max-margin N] [--expect-alert]
    trace        Export server spans (Chrome JSON)    --addr ADDR [--out FILE]
    validate-trace  Validate a trace export           --file FILE [--require SPAN]...

OBSERVABILITY (worst-case, monte-carlo, scrub, and their aliases):
    --progress        Throttled progress lines (rate + ETA) on stderr
    --metrics FILE    Write a JSON metrics snapshot on completion
    --log-json        JSON-lines events on stderr instead of human text
    --quiet           Suppress status and progress output

All commands are deterministic in their seeds.
";

/// Dispatches a parsed command line. Returns `Err` with a user-facing
/// message on failure.
pub fn run_command(command: &str, parsed: &ParsedArgs) -> Result<(), String> {
    match command {
        "generate" => commands::generate(parsed),
        "catalog" => commands::catalog(parsed),
        "inspect" => commands::inspect(parsed),
        "dot" => commands::dot(parsed),
        "test" => commands::test(parsed),
        "worst-case" => commands::worst_case(parsed),
        "profile" => commands::profile(parsed),
        "monte-carlo" => commands::monte_carlo(parsed),
        "scrub" => commands::scrub(parsed),
        "validate-metrics" => commands::validate_metrics(parsed),
        "adjust" => commands::adjust(parsed),
        "reliability" => commands::reliability(parsed),
        "demo" => commands::demo(parsed),
        "mindist" => commands::mindist(parsed),
        "incremental" => commands::incremental(parsed),
        "lifetime" => commands::lifetime(parsed),
        "workload" => commands::workload(parsed),
        "serve" => commands::serve(parsed),
        "put" => commands::put(parsed),
        "get" => commands::get(parsed),
        "load" => commands::load(parsed),
        "watch" => commands::watch(parsed),
        "health" => commands::health(parsed),
        "validate-health" => commands::validate_health(parsed),
        "trace" => commands::trace(parsed),
        "validate-trace" => commands::validate_trace(parsed),
        other => Err(format!("unknown command '{other}'")),
    }
}
