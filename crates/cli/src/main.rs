//! `tornado` — command-line interface to the Tornado archival-storage
//! workspace.

use tornado_cli::{run_command, ParsedArgs, USAGE};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help" {
        print!("{USAGE}");
        return;
    }
    let parsed = match ParsedArgs::parse(&argv[1..]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run_command(&argv[0], &parsed) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
