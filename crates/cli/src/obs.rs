//! Shared CLI observability wiring.
//!
//! Every long-running command accepts the same four flags and routes them
//! through a [`CliObs`]:
//!
//! * `--progress` — throttled progress lines (rate + ETA) on stderr;
//! * `--metrics PATH` — write a point-in-time metrics snapshot (JSON) on
//!   completion, and turn decode-kernel recording on;
//! * `--log-json` — structured JSON-lines events on stderr instead of the
//!   default human-readable status lines;
//! * `--quiet` — suppress status and progress entirely (data output on
//!   stdout is unaffected).
//!
//! Status lines and events share one sink, so `--quiet` and `--log-json`
//! behave identically across commands instead of each command hand-rolling
//! `eprintln!`.

use crate::args::ParsedArgs;
use std::sync::Arc;
use std::time::Instant;
use tornado_codec::DecodeMetrics;
use tornado_obs::{EventFormat, EventSink, Json, ProgressConfig, Snapshot};
use tornado_sim::SimObserver;
use tornado_store::StoreObserver;

#[derive(Clone, Copy, PartialEq, Eq)]
enum EventMode {
    Disabled,
    Human,
    Json,
}

/// Per-invocation observability context, parsed from the common flags.
pub struct CliObs {
    progress_on: bool,
    event_mode: EventMode,
    metrics_path: Option<String>,
    started: Instant,
    /// Decode-kernel counter aggregate, filled when `--metrics` is given.
    pub decode_metrics: Arc<DecodeMetrics>,
}

impl CliObs {
    /// Reads `--progress`, `--metrics`, `--log-json`, `--quiet`.
    pub fn from_args(args: &ParsedArgs) -> Self {
        let quiet = args.flag("quiet");
        let event_mode = if quiet {
            EventMode::Disabled
        } else if args.flag("log-json") {
            EventMode::Json
        } else {
            EventMode::Human
        };
        Self {
            progress_on: args.flag("progress") && !quiet,
            event_mode,
            metrics_path: args.get("metrics").map(str::to_string),
            started: Instant::now(),
            decode_metrics: Arc::new(DecodeMetrics::new()),
        }
    }

    /// Whether a metrics snapshot will be written.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics_path.is_some()
    }

    /// Progress factory honouring `--progress`/`--quiet`.
    pub fn progress(&self) -> ProgressConfig {
        if self.progress_on {
            ProgressConfig::stderr()
        } else {
            ProgressConfig::silent()
        }
    }

    /// A fresh event sink honouring `--log-json`/`--quiet`. Sinks write to
    /// stderr and hold no state, so each consumer gets its own.
    pub fn events(&self) -> EventSink {
        match self.event_mode {
            EventMode::Disabled => EventSink::disabled(),
            EventMode::Human => EventSink::stderr(EventFormat::Human),
            EventMode::Json => EventSink::stderr(EventFormat::Json),
        }
    }

    /// Emits one status event (the structured replacement for ad-hoc
    /// `eprintln!` status lines).
    pub fn status(&self, event: &str, fields: &[(&str, Json)]) {
        self.events().emit(event, fields);
    }

    /// Builds a simulator observer: progress + events always, decode-kernel
    /// metrics when `--metrics` was given.
    pub fn sim_observer(&self) -> SimObserver {
        let mut obs = SimObserver::disabled()
            .with_progress(self.progress())
            .with_events(self.events());
        if self.metrics_enabled() {
            obs = obs.with_metrics(self.decode_metrics.clone());
        }
        obs
    }

    /// Builds a store observer wired to the shared event sink.
    pub fn store_observer(&self) -> StoreObserver {
        StoreObserver::disabled().with_events(self.events())
    }

    /// Writes the metrics snapshot if `--metrics` was given. `extra` adds
    /// command-specific context (graph identity, per-level rows, store
    /// gauges) on top of the decode-kernel counters.
    pub fn write_metrics(
        &self,
        command: &str,
        extra: impl FnOnce(&mut Snapshot),
    ) -> Result<(), String> {
        let Some(path) = &self.metrics_path else {
            return Ok(());
        };
        let mut snap = Snapshot::new(command, self.started.elapsed().as_millis() as u64);
        self.decode_metrics.fill_snapshot(&mut snap);
        extra(&mut snap);
        snap.write(path).map_err(|e| format!("{path}: {e}"))?;
        self.status("metrics_written", &[("path", Json::Str(path.clone()))]);
        Ok(())
    }
}
