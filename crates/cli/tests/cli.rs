//! CLI integration tests: drive commands through the library entry point
//! with real files in a temp directory.

use tornado_cli::{run_command, ParsedArgs};

fn args(parts: &[&str]) -> ParsedArgs {
    ParsedArgs::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tornado-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_then_inspect_then_test() {
    let out = temp_path("gen.graphml");
    let out_s = out.to_str().unwrap();
    // Use a small graph so the exhaustive `test` stays debug-affordable.
    run_command(
        "generate",
        &args(&["--seed", "3", "--data", "16", "--screen", "2", "--out", out_s]),
    )
    .expect("generate");
    let xml = std::fs::read_to_string(&out).unwrap();
    assert!(xml.contains("<graphml"));

    run_command("inspect", &args(&["--graph", out_s])).expect("inspect");
    run_command("test", &args(&["--graph", out_s, "--max-k", "2"])).expect("test");
    run_command(
        "profile",
        &args(&["--graph", out_s, "--trials", "300", "--seed", "1"]),
    )
    .expect("profile");
}

#[test]
fn generate_families() {
    for family in ["regular", "cascaded", "mirror", "doubled", "shifted"] {
        let out = temp_path(&format!("{family}.graphml"));
        let out_s = out.to_str().unwrap();
        run_command(
            "generate",
            &args(&[
                "--seed", "5", "--data", "16", "--family", family, "--degree", "3", "--out",
                out_s, "--no-screen",
            ]),
        )
        .unwrap_or_else(|e| panic!("{family}: {e}"));
        assert!(std::fs::read_to_string(&out).unwrap().contains("graphml"));
    }
}

#[test]
fn unknown_family_is_rejected() {
    let err = run_command("generate", &args(&["--family", "fountain"])).unwrap_err();
    assert!(err.contains("fountain"));
}

#[test]
fn unknown_command_is_rejected() {
    let err = run_command("frobnicate", &args(&[])).unwrap_err();
    assert!(err.contains("frobnicate"));
}

#[test]
fn catalog_dumps_parseable_graphml() {
    let out = temp_path("catalog.graphml");
    let out_s = out.to_str().unwrap();
    run_command("catalog", &args(&["--index", "2", "--out", out_s])).expect("catalog");
    let g = tornado_graph::graphml::from_graphml(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(g.num_nodes(), 96);
    assert!(run_command("catalog", &args(&["--index", "9"])).is_err());
}

#[test]
fn dot_export_works() {
    let src = temp_path("dotsrc.graphml");
    let src_s = src.to_str().unwrap();
    run_command(
        "generate",
        &args(&["--seed", "1", "--data", "16", "--no-screen", "--out", src_s]),
    )
    .expect("generate");
    let out = temp_path("graph.dot");
    run_command("dot", &args(&["--graph", src_s, "--out", out.to_str().unwrap()]))
        .expect("dot");
    assert!(std::fs::read_to_string(&out).unwrap().starts_with("digraph"));
}

#[test]
fn adjust_small_graph() {
    let src = temp_path("adj.graphml");
    let src_s = src.to_str().unwrap();
    run_command(
        "generate",
        &args(&["--seed", "7", "--data", "16", "--screen", "2", "--out", src_s]),
    )
    .expect("generate");
    let out = temp_path("adjusted.graphml");
    run_command(
        "adjust",
        &args(&["--graph", src_s, "--target", "3", "--out", out.to_str().unwrap()]),
    )
    .expect("adjust");
    let g = tornado_graph::graphml::from_graphml(&std::fs::read_to_string(&out).unwrap()).unwrap();
    g.validate().unwrap();
}

#[test]
fn missing_required_flag_errors() {
    assert!(run_command("inspect", &args(&[])).is_err());
    assert!(run_command("test", &args(&[])).is_err());
}

#[test]
fn demo_runs() {
    run_command("demo", &args(&["--seed", "2"])).expect("demo");
}

#[test]
fn mindist_on_small_graph() {
    let src = temp_path("md.graphml");
    let src_s = src.to_str().unwrap();
    run_command(
        "generate",
        &args(&["--seed", "4", "--data", "16", "--family", "mirror", "--out", src_s]),
    )
    .expect("generate");
    run_command("mindist", &args(&["--graph", src_s, "--cap", "3"])).expect("mindist");
}

#[test]
fn incremental_and_lifetime_run() {
    let src = temp_path("il.graphml");
    let src_s = src.to_str().unwrap();
    run_command(
        "generate",
        &args(&["--seed", "4", "--data", "16", "--screen", "2", "--out", src_s]),
    )
    .expect("generate");
    run_command("incremental", &args(&["--graph", src_s, "--trials", "200"])).expect("incremental");
    run_command(
        "lifetime",
        &args(&["--graph", src_s, "--afr", "0.02", "--scrubs", "2", "--trials", "5000"]),
    )
    .expect("lifetime");
}

#[test]
fn workload_runs() {
    run_command("workload", &args(&["--seed", "3", "--objects", "4", "--reads", "10"]))
        .expect("workload");
}

#[test]
fn worst_case_writes_a_validating_metrics_snapshot() {
    let src = temp_path("wc-metrics.graphml");
    let src_s = src.to_str().unwrap();
    run_command(
        "generate",
        &args(&["--seed", "3", "--data", "16", "--screen", "2", "--out", src_s]),
    )
    .expect("generate");
    let out = temp_path("wc-metrics.json");
    let out_s = out.to_str().unwrap();
    run_command(
        "worst-case",
        &args(&["--graph", src_s, "--max-k", "2", "--metrics", out_s, "--quiet"]),
    )
    .expect("worst-case");

    let text = std::fs::read_to_string(&out).unwrap();
    let doc = tornado_obs::json::parse(&text).expect("snapshot parses");
    tornado_obs::snapshot::validate(&doc).expect("snapshot validates");
    assert_eq!(
        doc.get("command").and_then(tornado_obs::Json::as_str),
        Some("worst-case")
    );

    // Trial accounting must be exact: one decode per erasure pattern,
    // summed over k = 1..=2 on a 32-node graph.
    let nodes = 32u64;
    let expected = nodes + nodes * (nodes - 1) / 2;
    let trials = doc
        .get("counters")
        .and_then(|c| c.get("decode.trials"))
        .and_then(tornado_obs::Json::as_u64)
        .expect("decode.trials counter");
    assert_eq!(trials, expected, "trials == sum_k C(32,k)");

    // And validate-metrics accepts the same file.
    run_command("validate-metrics", &args(&["--file", out_s])).expect("validate-metrics");
}

#[test]
fn validate_metrics_rejects_garbage() {
    let bad = temp_path("bad-metrics.json");
    let bad_s = bad.to_str().unwrap();
    std::fs::write(&bad, "not json at all").unwrap();
    assert!(run_command("validate-metrics", &args(&["--file", bad_s])).is_err());
    std::fs::write(&bad, r#"{"schema": "other-schema", "command": "x", "elapsed_ms": 1, "counters": {}}"#).unwrap();
    let err = run_command("validate-metrics", &args(&["--file", bad_s])).unwrap_err();
    assert!(err.contains("schema"), "mentions the offending key: {err}");
    assert!(run_command("validate-metrics", &args(&["--file", "/nonexistent/metrics.json"])).is_err());
}

#[test]
fn monte_carlo_with_metrics_counts_trials() {
    let out = temp_path("mc-metrics.json");
    let out_s = out.to_str().unwrap();
    run_command(
        "monte-carlo",
        &args(&[
            "--catalog", "1", "--trials", "50", "--seed", "1", "--metrics", out_s, "--quiet",
        ]),
    )
    .expect("monte-carlo");
    let doc = tornado_obs::json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    tornado_obs::snapshot::validate(&doc).expect("validates");
    let trials = doc
        .get("counters")
        .and_then(|c| c.get("decode.trials"))
        .and_then(tornado_obs::Json::as_u64)
        .unwrap();
    // 96 levels x 50 trials each.
    assert_eq!(trials, 96 * 50);
}

#[test]
fn scrub_reports_health_and_writes_metrics() {
    let out = temp_path("scrub-metrics.json");
    let out_s = out.to_str().unwrap();
    run_command(
        "scrub",
        &args(&[
            "--catalog", "1", "--objects", "3", "--fail", "0", "--fail", "7", "--replace", "0",
            "--replace", "7", "--repair", "--metrics", out_s, "--quiet",
        ]),
    )
    .expect("scrub");
    let doc = tornado_obs::json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    tornado_obs::snapshot::validate(&doc).expect("validates");
    let counters = doc.get("counters").unwrap();
    assert_eq!(
        counters.get("scrub.cycles").and_then(tornado_obs::Json::as_u64),
        Some(1)
    );
    assert!(
        counters
            .get("scrub.blocks_repaired")
            .and_then(tornado_obs::Json::as_u64)
            .unwrap()
            > 0,
        "repair pass rewrote the lost blocks"
    );
    assert!(doc.get("histograms").and_then(|h| h.get("scrub.cycle_us")).is_some());
}

#[test]
fn serve_load_watch_trace_end_to_end() {
    let port_file = temp_path("e2e.port");
    let trace_file = temp_path("e2e-server.trace.json");
    let pf = port_file.to_str().unwrap().to_string();
    let tf = trace_file.to_str().unwrap().to_string();
    let _ = std::fs::remove_file(&port_file);

    // `serve` blocks until SHUTDOWN, so it runs on its own thread;
    // --port-file publishes the kernel-chosen port for the rest of the test.
    let serve_args = args(&[
        "--addr", "127.0.0.1:0", "--workers", "2", "--port-file", &pf, "--trace-sample", "1",
        "--trace-file", &tf, "--timeseries-ms", "20", "--quiet",
    ]);
    let server = std::thread::spawn(move || run_command("serve", &serve_args));

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            break s.trim().to_string();
        }
        assert!(std::time::Instant::now() < deadline, "serve never published its port");
        std::thread::sleep(std::time::Duration::from_millis(10));
    };

    // A deterministic degraded GET: ingest, fail four devices, re-read.
    let mut client = tornado_server::Client::connect(&addr).expect("connect");
    let payload = tornado_server::load::payload_for(0xE2E, 20_000);
    let id = client.put("e2e-object", &payload).expect("put");
    for device in [3, 17, 48, 95] {
        client.fail_device(device).expect("fail device");
    }
    assert_eq!(client.get(id).expect("degraded get"), payload);

    // Seeded load with trace propagation, bounded by op count.
    run_command(
        "load",
        &args(&[
            "--addr", &addr, "--connections", "2", "--duration-ms", "30000", "--op-limit", "30",
            "--seed", "11", "--prefill", "3", "--payload-min", "512", "--payload-max", "4096",
            "--trace-sample", "4", "--quiet",
        ]),
    )
    .expect("load");

    // Live rate view over the server's time-series ring.
    run_command("watch", &args(&["--addr", &addr, "--interval-ms", "30", "--count", "2"]))
        .expect("watch");

    // Client-side export while the server is still running.
    let live_trace = temp_path("e2e-live.trace.json");
    let live_s = live_trace.to_str().unwrap();
    run_command("trace", &args(&["--addr", &addr, "--out", live_s])).expect("trace");
    run_command(
        "validate-trace",
        &args(&[
            "--file", live_s, "--require", "request", "--require", "store.get", "--require",
            "decode.recover",
        ]),
    )
    .expect("live export holds a well-nested degraded-GET span tree");

    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("serve exits cleanly");

    // The shutdown-time export must validate too, and METRICS consumers
    // aside, the file is what Perfetto loads.
    run_command(
        "validate-trace",
        &args(&["--file", &tf, "--require", "request", "--require", "decode.recover"]),
    )
    .expect("shutdown trace file validates");
}

#[test]
fn serve_durable_restart_round_trip() {
    let data_dir = temp_path("durable-serve");
    let _ = std::fs::remove_dir_all(&data_dir);
    let dd = data_dir.to_str().unwrap().to_string();

    let spawn_server = |port_tag: &str| {
        let port_file = temp_path(port_tag);
        let _ = std::fs::remove_file(&port_file);
        let pf = port_file.to_str().unwrap().to_string();
        let dd = dd.clone();
        let handle = std::thread::spawn(move || {
            run_command(
                "serve",
                &args(&[
                    "--addr", "127.0.0.1:0", "--workers", "2", "--port-file", &pf, "--data-dir",
                    &dd, "--backend", "segment", "--no-fsync", "--quiet",
                ]),
            )
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                break s.trim().to_string();
            }
            assert!(std::time::Instant::now() < deadline, "serve never published its port");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        (handle, addr)
    };

    // First incarnation: ingest through the `put` command (fresh store,
    // so the assigned id is deterministically 1).
    let (server, addr) = spawn_server("durable-a.port");
    let payload: Vec<u8> = (0..30_000u32).map(|b| (b.wrapping_mul(2654435761) >> 13) as u8).collect();
    let payload_file = temp_path("durable.payload");
    std::fs::write(&payload_file, &payload).unwrap();
    run_command(
        "put",
        &args(&["--addr", &addr, "--name", "durable-1", "--payload-file",
            payload_file.to_str().unwrap()]),
    )
    .expect("cli put");
    let mut client = tornado_server::Client::connect(&addr).expect("connect");
    let id2 = client.put("durable-2", b"second object").expect("put 2");
    assert_eq!(id2, 2);
    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("serve exits cleanly");

    // Second incarnation over the same --data-dir: recovery rebuilds the
    // catalog and both objects GET byte-for-byte.
    let (server, addr) = spawn_server("durable-b.port");
    let out = temp_path("durable.out");
    run_command(
        "get",
        &args(&["--addr", &addr, "--id", "1", "--out", out.to_str().unwrap()]),
    )
    .expect("cli get after restart");
    assert_eq!(std::fs::read(&out).unwrap(), payload, "byte-for-byte across restart");
    let mut client = tornado_server::Client::connect(&addr).expect("reconnect");
    assert_eq!(client.get(2).expect("get 2"), b"second object");
    // The recovered store keeps allocating fresh ids.
    assert_eq!(client.put("durable-3", b"post-restart").expect("put 3"), 3);
    let metrics = client.metrics().expect("metrics");
    assert!(metrics.contains("backend.journal_appends"), "backend counters in METRICS");
    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("serve exits cleanly");
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn validate_trace_rejects_garbage() {
    let bad = temp_path("bad-trace.json");
    let bad_s = bad.to_str().unwrap();
    std::fs::write(&bad, "not json").unwrap();
    assert!(run_command("validate-trace", &args(&["--file", bad_s])).is_err());
    std::fs::write(&bad, r#"{"traceEvents": [{"ph": "B", "name": "x"}]}"#).unwrap();
    let err = run_command("validate-trace", &args(&["--file", bad_s])).unwrap_err();
    assert!(err.contains("invalid trace"), "{err}");
    std::fs::write(&bad, r#"{"traceEvents": []}"#).unwrap();
    let err = run_command(
        "validate-trace",
        &args(&["--file", bad_s, "--require", "decode.recover"]),
    )
    .unwrap_err();
    assert!(err.contains("decode.recover"), "missing required span is named: {err}");
}

#[test]
fn catalog_and_graph_flags_are_interchangeable() {
    // --catalog on worst-case must match dumping the graph and reading it back.
    run_command("worst-case", &args(&["--catalog", "1", "--max-k", "1", "--quiet"]))
        .expect("worst-case --catalog");
    assert!(run_command("worst-case", &args(&["--catalog", "7", "--quiet"])).is_err());
    assert!(run_command("worst-case", &args(&["--quiet"])).is_err(), "needs a graph source");
}
