//! CLI integration tests: drive commands through the library entry point
//! with real files in a temp directory.

use tornado_cli::{run_command, ParsedArgs};

fn args(parts: &[&str]) -> ParsedArgs {
    ParsedArgs::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tornado-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_then_inspect_then_test() {
    let out = temp_path("gen.graphml");
    let out_s = out.to_str().unwrap();
    // Use a small graph so the exhaustive `test` stays debug-affordable.
    run_command(
        "generate",
        &args(&["--seed", "3", "--data", "16", "--screen", "2", "--out", out_s]),
    )
    .expect("generate");
    let xml = std::fs::read_to_string(&out).unwrap();
    assert!(xml.contains("<graphml"));

    run_command("inspect", &args(&["--graph", out_s])).expect("inspect");
    run_command("test", &args(&["--graph", out_s, "--max-k", "2"])).expect("test");
    run_command(
        "profile",
        &args(&["--graph", out_s, "--trials", "300", "--seed", "1"]),
    )
    .expect("profile");
}

#[test]
fn generate_families() {
    for family in ["regular", "cascaded", "mirror", "doubled", "shifted"] {
        let out = temp_path(&format!("{family}.graphml"));
        let out_s = out.to_str().unwrap();
        run_command(
            "generate",
            &args(&[
                "--seed", "5", "--data", "16", "--family", family, "--degree", "3", "--out",
                out_s, "--no-screen",
            ]),
        )
        .unwrap_or_else(|e| panic!("{family}: {e}"));
        assert!(std::fs::read_to_string(&out).unwrap().contains("graphml"));
    }
}

#[test]
fn unknown_family_is_rejected() {
    let err = run_command("generate", &args(&["--family", "fountain"])).unwrap_err();
    assert!(err.contains("fountain"));
}

#[test]
fn unknown_command_is_rejected() {
    let err = run_command("frobnicate", &args(&[])).unwrap_err();
    assert!(err.contains("frobnicate"));
}

#[test]
fn catalog_dumps_parseable_graphml() {
    let out = temp_path("catalog.graphml");
    let out_s = out.to_str().unwrap();
    run_command("catalog", &args(&["--index", "2", "--out", out_s])).expect("catalog");
    let g = tornado_graph::graphml::from_graphml(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(g.num_nodes(), 96);
    assert!(run_command("catalog", &args(&["--index", "9"])).is_err());
}

#[test]
fn dot_export_works() {
    let src = temp_path("dotsrc.graphml");
    let src_s = src.to_str().unwrap();
    run_command(
        "generate",
        &args(&["--seed", "1", "--data", "16", "--no-screen", "--out", src_s]),
    )
    .expect("generate");
    let out = temp_path("graph.dot");
    run_command("dot", &args(&["--graph", src_s, "--out", out.to_str().unwrap()]))
        .expect("dot");
    assert!(std::fs::read_to_string(&out).unwrap().starts_with("digraph"));
}

#[test]
fn adjust_small_graph() {
    let src = temp_path("adj.graphml");
    let src_s = src.to_str().unwrap();
    run_command(
        "generate",
        &args(&["--seed", "7", "--data", "16", "--screen", "2", "--out", src_s]),
    )
    .expect("generate");
    let out = temp_path("adjusted.graphml");
    run_command(
        "adjust",
        &args(&["--graph", src_s, "--target", "3", "--out", out.to_str().unwrap()]),
    )
    .expect("adjust");
    let g = tornado_graph::graphml::from_graphml(&std::fs::read_to_string(&out).unwrap()).unwrap();
    g.validate().unwrap();
}

#[test]
fn missing_required_flag_errors() {
    assert!(run_command("inspect", &args(&[])).is_err());
    assert!(run_command("test", &args(&[])).is_err());
}

#[test]
fn demo_runs() {
    run_command("demo", &args(&["--seed", "2"])).expect("demo");
}

#[test]
fn mindist_on_small_graph() {
    let src = temp_path("md.graphml");
    let src_s = src.to_str().unwrap();
    run_command(
        "generate",
        &args(&["--seed", "4", "--data", "16", "--family", "mirror", "--out", src_s]),
    )
    .expect("generate");
    run_command("mindist", &args(&["--graph", src_s, "--cap", "3"])).expect("mindist");
}

#[test]
fn incremental_and_lifetime_run() {
    let src = temp_path("il.graphml");
    let src_s = src.to_str().unwrap();
    run_command(
        "generate",
        &args(&["--seed", "4", "--data", "16", "--screen", "2", "--out", src_s]),
    )
    .expect("generate");
    run_command("incremental", &args(&["--graph", src_s, "--trials", "200"])).expect("incremental");
    run_command(
        "lifetime",
        &args(&["--graph", src_s, "--afr", "0.02", "--scrubs", "2", "--trials", "5000"]),
    )
    .expect("lifetime");
}

#[test]
fn workload_runs() {
    run_command("workload", &args(&["--seed", "3", "--objects", "4", "--reads", "10"]))
        .expect("workload");
}
