//! The real data path: byte blocks in, byte blocks out.

use crate::erasure::{ErasureDecoder, RecoveryStep};
use crate::error::CodecError;
use crate::kernels::xor_into;
use crate::metrics::DecodeMetrics;
use crate::pool;
use rayon::prelude::*;
use tornado_graph::{Graph, NodeId};

/// Outcome of a block decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeReport {
    /// Data nodes that could not be recovered (empty on success).
    pub lost_data: Vec<NodeId>,
    /// Nodes recovered by the peeling schedule, in recovery order.
    pub recovered: Vec<NodeId>,
    /// Longest dependency chain in the recovery schedule: 0 when nothing
    /// was recovered, 1 when every lost block was rebuilt directly from
    /// surviving blocks, deeper when recovered blocks fed later steps —
    /// the serial-latency component of a recovery's repair cost.
    pub recovery_depth: u64,
}

impl DecodeReport {
    /// Whether every data block is present after decoding.
    pub fn complete(&self) -> bool {
        self.lost_data.is_empty()
    }
}

/// XOR block codec bound to a graph.
///
/// See the crate-level docs for the encode/decode semantics. All blocks in a
/// stripe must have equal length; [`EncodedStripe`] provides the
/// padding/framing to store arbitrary byte payloads.
pub struct Codec<'g> {
    graph: &'g Graph,
}

impl<'g> Codec<'g> {
    /// Creates a codec for `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        Self { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Encodes `num_data` equal-length data blocks into `num_nodes` stored
    /// blocks (the data blocks followed by the computed check blocks).
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodecError> {
        self.encode_owned(data.to_vec())
    }

    /// Like [`Codec::encode`], but takes ownership of the data blocks so
    /// they become the stored blocks without a per-block clone. Check-block
    /// accumulators come from the calling thread's [`pool::BlockPool`].
    pub fn encode_owned(&self, data: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CodecError> {
        let k = self.graph.num_data();
        if data.len() != k {
            return Err(CodecError::WrongBlockCount {
                got: data.len(),
                expected: k,
            });
        }
        let block_len = data.first().map(|b| b.len()).unwrap_or(0);
        for (i, b) in data.iter().enumerate() {
            if b.len() != block_len {
                return Err(CodecError::UnequalBlockLengths {
                    index: i,
                    expected: block_len,
                    got: b.len(),
                });
            }
        }
        let mut blocks = data;
        blocks.reserve(self.graph.num_nodes() - k);
        // Forward sweep: every left neighbour has a smaller id, so it is
        // already materialised when its check is computed.
        for check in self.graph.check_ids() {
            let mut acc = pool::with_thread_pool(|p| p.take_zeroed(block_len));
            for &n in self.graph.check_neighbors(check) {
                xor_into(&mut acc, &blocks[n as usize]);
            }
            blocks.push(acc);
        }
        Ok(blocks)
    }

    /// Encodes many stripes, fanning the per-stripe work out across worker
    /// threads (each with its own [`pool::BlockPool`]). Output order matches
    /// input order and every stripe's bytes are identical to a serial
    /// [`Codec::encode_owned`] — parallelism never changes the coding.
    pub fn encode_stripes(
        &self,
        stripes: Vec<Vec<Vec<u8>>>,
    ) -> Result<Vec<Vec<Vec<u8>>>, CodecError> {
        stripes
            .into_par_iter()
            .map(|stripe| self.encode_owned(stripe))
            .collect::<Vec<_>>()
            .into_iter()
            .collect()
    }

    /// Decodes a stripe in place: `stored[i]` is `Some(block)` if node `i`'s
    /// block is available, `None` if erased. Recoverable blocks (data *and*
    /// check) are filled in; the report lists what was recovered and what
    /// stayed lost.
    pub fn decode(&self, stored: &mut [Option<Vec<u8>>]) -> Result<DecodeReport, CodecError> {
        self.decode_inner(stored, None)
    }

    /// Like [`Codec::decode`], but drains the peeling kernel's
    /// instrumentation cells into `metrics` when done. Each call uses its
    /// own decoder, so concurrent callers (rayon scrub workers) record
    /// independently and the sharded aggregate is order-independent.
    pub fn decode_recorded(
        &self,
        stored: &mut [Option<Vec<u8>>],
        metrics: &DecodeMetrics,
    ) -> Result<DecodeReport, CodecError> {
        self.decode_inner(stored, Some(metrics))
    }

    fn decode_inner(
        &self,
        stored: &mut [Option<Vec<u8>>],
        metrics: Option<&DecodeMetrics>,
    ) -> Result<DecodeReport, CodecError> {
        let n = self.graph.num_nodes();
        if stored.len() != n {
            return Err(CodecError::WrongStripeWidth {
                got: stored.len(),
                expected: n,
            });
        }
        let block_len = match stored.iter().flatten().next() {
            Some(b) => b.len(),
            None => return Err(CodecError::EmptyStripe),
        };
        for (i, b) in stored.iter().enumerate() {
            if let Some(b) = b {
                if b.len() != block_len {
                    return Err(CodecError::UnequalBlockLengths {
                        index: i,
                        expected: block_len,
                        got: b.len(),
                    });
                }
            }
        }

        let missing: Vec<usize> = (0..n).filter(|&i| stored[i].is_none()).collect();
        let mut dec = ErasureDecoder::new(self.graph);
        if metrics.is_some() {
            dec.set_recording(true);
        }
        let detail = dec.decode_detailed(&missing);
        if let Some(m) = metrics {
            m.absorb(&dec.take_cells());
        }

        let mut recovered = Vec::with_capacity(detail.schedule.len());
        // Depth of each node's value in the recovery dependency chain:
        // blocks that survived sit at depth 0, each recovered block is one
        // deeper than its deepest input.
        let mut depth = vec![0u64; n];
        let mut recovery_depth = 0u64;
        for step in &detail.schedule {
            match *step {
                RecoveryStep::Peel { node, via } => {
                    // node = via ⊕ (other left neighbours of via)
                    let via_block = stored[via as usize]
                        .as_deref()
                        .expect("schedule guarantees via is present");
                    let mut acc = pool::with_thread_pool(|p| p.take_copy(via_block));
                    let mut d = depth[via as usize];
                    for &nbr in self.graph.check_neighbors(via) {
                        if nbr != node {
                            let b = stored[nbr as usize]
                                .as_ref()
                                .expect("schedule guarantees the other neighbours are present");
                            xor_into(&mut acc, b);
                            d = d.max(depth[nbr as usize]);
                        }
                    }
                    stored[node as usize] = Some(acc);
                    depth[node as usize] = d + 1;
                    recovery_depth = recovery_depth.max(d + 1);
                    recovered.push(node);
                }
                RecoveryStep::Reencode { node } => {
                    let mut acc = pool::with_thread_pool(|p| p.take_zeroed(block_len));
                    let mut d = 0u64;
                    for &nbr in self.graph.check_neighbors(node) {
                        let b = stored[nbr as usize]
                            .as_ref()
                            .expect("schedule guarantees the neighbours are present");
                        xor_into(&mut acc, b);
                        d = d.max(depth[nbr as usize]);
                    }
                    stored[node as usize] = Some(acc);
                    depth[node as usize] = d + 1;
                    recovery_depth = recovery_depth.max(d + 1);
                    recovered.push(node);
                }
            }
        }
        Ok(DecodeReport {
            lost_data: detail.lost_data,
            recovered,
            recovery_depth,
        })
    }

    /// Verifies that every check block equals the XOR of its left
    /// neighbours; returns the ids of inconsistent check nodes. Used by the
    /// store's scrubber to detect silent corruption.
    pub fn verify(&self, blocks: &[Vec<u8>]) -> Result<Vec<NodeId>, CodecError> {
        let n = self.graph.num_nodes();
        if blocks.len() != n {
            return Err(CodecError::WrongStripeWidth {
                got: blocks.len(),
                expected: n,
            });
        }
        let block_len = blocks.first().map(|b| b.len()).unwrap_or(0);
        let mut bad = Vec::new();
        let mut acc = pool::with_thread_pool(|p| p.take_zeroed(block_len));
        for check in self.graph.check_ids() {
            acc.fill(0);
            for &nbr in self.graph.check_neighbors(check) {
                xor_into(&mut acc, &blocks[nbr as usize]);
            }
            if acc[..] != blocks[check as usize][..] {
                bad.push(check);
            }
        }
        pool::with_thread_pool(|p| p.recycle(acc));
        Ok(bad)
    }
}

/// A self-framing encoded stripe: arbitrary payload bytes split into data
/// blocks (with a length header and zero padding), then encoded.
///
/// ```
/// use tornado_graph::GraphBuilder;
/// use tornado_codec::{Codec, EncodedStripe};
///
/// let mut b = GraphBuilder::new(4);
/// b.begin_level("c1");
/// b.add_check(&[0, 1]);
/// b.add_check(&[2, 3]);
/// let g = b.build().unwrap();
/// let codec = Codec::new(&g);
///
/// let payload = b"hello tornado archival storage".to_vec();
/// let stripe = EncodedStripe::from_object(&codec, &payload).unwrap();
/// let mut stored: Vec<Option<Vec<u8>>> = stripe.blocks().iter().cloned().map(Some).collect();
/// stored[0] = None; // lose a device
/// let out = EncodedStripe::recover_object(&codec, &mut stored).unwrap().unwrap();
/// assert_eq!(out, payload);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodedStripe {
    blocks: Vec<Vec<u8>>,
    block_len: usize,
}

/// Length-header size prepended to the payload before splitting.
const LEN_HEADER: usize = 8;

impl EncodedStripe {
    /// Encodes `payload` into a stripe for `codec`'s graph. The framing
    /// scratch and data blocks come from the calling thread's
    /// [`pool::BlockPool`], so a warm worker encodes without block mallocs.
    pub fn from_object(codec: &Codec<'_>, payload: &[u8]) -> Result<Self, CodecError> {
        let k = codec.graph().num_data();
        let framed_len = payload.len() + LEN_HEADER;
        let block_len = framed_len.div_ceil(k).max(1);
        let (framed, data) = pool::with_thread_pool(|p| {
            // take_zeroed gives zero padding past the payload for free.
            let mut framed = p.take_zeroed(block_len * k);
            framed[..LEN_HEADER].copy_from_slice(&(payload.len() as u64).to_le_bytes());
            framed[LEN_HEADER..LEN_HEADER + payload.len()].copy_from_slice(payload);
            let data: Vec<Vec<u8>> = framed.chunks(block_len).map(|c| p.take_copy(c)).collect();
            (framed, data)
        });
        let blocks = codec.encode_owned(data)?;
        pool::with_thread_pool(|p| p.recycle(framed));
        Ok(Self { blocks, block_len })
    }

    /// The stored blocks, one per graph node.
    pub fn blocks(&self) -> &[Vec<u8>] {
        &self.blocks
    }

    /// Consumes the stripe and hands the stored blocks over — the move that
    /// lets a store place encoded blocks on devices without cloning them.
    pub fn into_blocks(self) -> Vec<Vec<u8>> {
        self.blocks
    }

    /// Per-block length in bytes.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Decodes a (possibly damaged) stored stripe and reassembles the
    /// payload. Returns `Ok(None)` if reconstruction failed.
    pub fn recover_object(
        codec: &Codec<'_>,
        stored: &mut [Option<Vec<u8>>],
    ) -> Result<Option<Vec<u8>>, CodecError> {
        let report = codec.decode(stored)?;
        if !report.complete() {
            return Ok(None);
        }
        let k = codec.graph().num_data();
        let mut framed = Vec::new();
        for block in stored.iter().take(k) {
            framed.extend_from_slice(block.as_ref().expect("decode reported complete"));
        }
        if framed.len() < LEN_HEADER {
            return Ok(None);
        }
        let len = u64::from_le_bytes(framed[..LEN_HEADER].try_into().expect("8 bytes")) as usize;
        if LEN_HEADER + len > framed.len() {
            return Ok(None);
        }
        Ok(Some(framed[LEN_HEADER..LEN_HEADER + len].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_graph::GraphBuilder;

    fn cascade() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.begin_level("c1");
        b.add_check(&[0, 1]);
        b.add_check(&[2, 3]);
        b.begin_level("c2");
        b.add_check(&[4, 5]);
        b.build().unwrap()
    }

    fn sample_data(len: usize) -> Vec<Vec<u8>> {
        (0..4u8).map(|i| vec![i.wrapping_mul(37).wrapping_add(1); len]).collect()
    }

    #[test]
    fn encode_produces_xor_checks() {
        let g = cascade();
        let c = Codec::new(&g);
        let data = sample_data(16);
        let blocks = c.encode(&data).unwrap();
        assert_eq!(blocks.len(), 7);
        for i in 0..16 {
            assert_eq!(blocks[4][i], data[0][i] ^ data[1][i]);
            assert_eq!(blocks[5][i], data[2][i] ^ data[3][i]);
            assert_eq!(blocks[6][i], blocks[4][i] ^ blocks[5][i]);
        }
        assert!(c.verify(&blocks).unwrap().is_empty());
    }

    #[test]
    fn encode_rejects_bad_shapes() {
        let g = cascade();
        let c = Codec::new(&g);
        assert!(matches!(
            c.encode(&sample_data(8)[..3]),
            Err(CodecError::WrongBlockCount { got: 3, expected: 4 })
        ));
        let mut uneven = sample_data(8);
        uneven[2] = vec![0; 9];
        assert!(matches!(
            c.encode(&uneven),
            Err(CodecError::UnequalBlockLengths { index: 2, .. })
        ));
    }

    #[test]
    fn decode_recovers_bytes_exactly() {
        let g = cascade();
        let c = Codec::new(&g);
        let data = sample_data(32);
        let blocks = c.encode(&data).unwrap();
        // Lose data 0 and check 4: requires re-encode of 4 via deeper level.
        let mut stored: Vec<Option<Vec<u8>>> = blocks.iter().cloned().map(Some).collect();
        stored[0] = None;
        stored[4] = None;
        let report = c.decode(&mut stored).unwrap();
        assert!(report.complete());
        assert_eq!(report.recovered, vec![4, 0]);
        assert_eq!(stored[0].as_deref().unwrap(), &data[0][..]);
        assert_eq!(stored[4].as_deref().unwrap(), &blocks[4][..]);
    }

    #[test]
    fn decode_reports_unrecoverable_data() {
        let g = cascade();
        let c = Codec::new(&g);
        let blocks = c.encode(&sample_data(8)).unwrap();
        let mut stored: Vec<Option<Vec<u8>>> = blocks.into_iter().map(Some).collect();
        stored[0] = None;
        stored[1] = None; // closed pair under check 4
        let report = c.decode(&mut stored).unwrap();
        assert!(!report.complete());
        assert_eq!(report.lost_data, vec![0, 1]);
        assert!(stored[0].is_none());
        // Data 2, 3 untouched; nothing needed recovery besides them.
        assert!(stored[2].is_some());
    }

    #[test]
    fn decode_rejects_bad_shapes() {
        let g = cascade();
        let c = Codec::new(&g);
        let mut short: Vec<Option<Vec<u8>>> = vec![Some(vec![0u8; 4]); 6];
        assert!(matches!(
            c.decode(&mut short),
            Err(CodecError::WrongStripeWidth { got: 6, expected: 7 })
        ));
        let mut empty: Vec<Option<Vec<u8>>> = vec![None; 7];
        assert!(matches!(c.decode(&mut empty), Err(CodecError::EmptyStripe)));
        let mut uneven: Vec<Option<Vec<u8>>> = vec![Some(vec![0u8; 4]); 7];
        uneven[3] = Some(vec![0u8; 5]);
        assert!(matches!(
            c.decode(&mut uneven),
            Err(CodecError::UnequalBlockLengths { index: 3, .. })
        ));
    }

    #[test]
    fn verify_flags_corruption() {
        let g = cascade();
        let c = Codec::new(&g);
        let mut blocks = c.encode(&sample_data(8)).unwrap();
        blocks[5][0] ^= 0xff;
        let bad = c.verify(&blocks).unwrap();
        // Check 5 is wrong, and check 6 (which XORs 4 and 5 — computed from
        // the *stored* 5) no longer matches either.
        assert_eq!(bad, vec![5, 6]);
    }

    #[test]
    fn stripe_framing_roundtrip_various_sizes() {
        let g = cascade();
        let c = Codec::new(&g);
        for size in [0usize, 1, 7, 8, 9, 31, 32, 33, 1000] {
            let payload: Vec<u8> = (0..size).map(|i| (i * 31 % 251) as u8).collect();
            let stripe = EncodedStripe::from_object(&c, &payload).unwrap();
            let mut stored: Vec<Option<Vec<u8>>> =
                stripe.blocks().iter().cloned().map(Some).collect();
            let out = EncodedStripe::recover_object(&c, &mut stored).unwrap().unwrap();
            assert_eq!(out, payload, "size {size}");
        }
    }

    #[test]
    fn stripe_survives_tolerable_erasures() {
        let g = cascade();
        let c = Codec::new(&g);
        let payload = b"the quick brown fox jumps over the lazy dog".to_vec();
        let stripe = EncodedStripe::from_object(&c, &payload).unwrap();
        for lose in [vec![0usize], vec![2, 5], vec![0, 4], vec![6]] {
            let mut stored: Vec<Option<Vec<u8>>> =
                stripe.blocks().iter().cloned().map(Some).collect();
            for &l in &lose {
                stored[l] = None;
            }
            let out = EncodedStripe::recover_object(&c, &mut stored).unwrap();
            assert_eq!(out.unwrap(), payload, "losing {lose:?}");
        }
    }

    #[test]
    fn stripe_reports_unrecoverable_as_none() {
        let g = cascade();
        let c = Codec::new(&g);
        let stripe = EncodedStripe::from_object(&c, b"payload").unwrap();
        let mut stored: Vec<Option<Vec<u8>>> =
            stripe.blocks().iter().cloned().map(Some).collect();
        stored[0] = None;
        stored[1] = None;
        assert_eq!(EncodedStripe::recover_object(&c, &mut stored).unwrap(), None);
    }

    #[test]
    fn encode_owned_matches_encode() {
        let g = cascade();
        let c = Codec::new(&g);
        let data = sample_data(16);
        let by_ref = c.encode(&data).unwrap();
        let by_move = c.encode_owned(data).unwrap();
        assert_eq!(by_ref, by_move);
    }

    #[test]
    fn encode_stripes_is_bit_identical_to_serial() {
        let g = cascade();
        let c = Codec::new(&g);
        let stripes: Vec<Vec<Vec<u8>>> = (0..9u8)
            .map(|s| (0..4u8).map(|i| vec![s.wrapping_mul(31) ^ i; 24]).collect())
            .collect();
        let serial: Vec<_> = stripes.iter().map(|st| c.encode(st).unwrap()).collect();
        let parallel = c.encode_stripes(stripes).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn encode_stripes_surfaces_shape_errors() {
        let g = cascade();
        let c = Codec::new(&g);
        let stripes = vec![sample_data(8), sample_data(8)[..3].to_vec()];
        assert!(c.encode_stripes(stripes).is_err());
    }

    #[test]
    fn into_blocks_hands_over_the_stored_blocks() {
        let g = cascade();
        let c = Codec::new(&g);
        let stripe = EncodedStripe::from_object(&c, b"move me").unwrap();
        let expected = stripe.blocks().to_vec();
        assert_eq!(stripe.into_blocks(), expected);
    }

    #[test]
    fn decode_recorded_drains_kernel_cells() {
        use crate::metrics::{cells, DecodeMetrics};
        let g = cascade();
        let c = Codec::new(&g);
        let blocks = c.encode(&sample_data(32)).unwrap();
        let mut stored: Vec<Option<Vec<u8>>> = blocks.into_iter().map(Some).collect();
        stored[0] = None;
        let m = DecodeMetrics::new();
        let report = c.decode_recorded(&mut stored, &m).unwrap();
        assert!(report.complete());
        assert_eq!(m.get(cells::TRIALS), 1);
        assert!(m.get(cells::RECOVERIES) >= 1);
    }

    #[test]
    fn zero_length_blocks_are_legal() {
        let g = cascade();
        let c = Codec::new(&g);
        let data: Vec<Vec<u8>> = vec![vec![]; 4];
        let blocks = c.encode(&data).unwrap();
        assert!(blocks.iter().all(|b| b.is_empty()));
    }
}
