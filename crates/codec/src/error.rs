//! Codec errors.

use std::fmt;

/// Errors from block encode/decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// `encode` was given the wrong number of data blocks.
    WrongBlockCount {
        /// Blocks supplied.
        got: usize,
        /// Data nodes in the graph.
        expected: usize,
    },
    /// Data blocks have differing lengths.
    UnequalBlockLengths {
        /// Index of the first block whose length differs from block 0.
        index: usize,
        /// Length of block 0.
        expected: usize,
        /// Length of the offending block.
        got: usize,
    },
    /// `decode` was given a stored array of the wrong width.
    WrongStripeWidth {
        /// Slots supplied.
        got: usize,
        /// Total nodes in the graph.
        expected: usize,
    },
    /// No block is present at all — nothing to infer lengths from.
    EmptyStripe,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::WrongBlockCount { got, expected } => {
                write!(f, "expected {expected} data blocks, got {got}")
            }
            CodecError::UnequalBlockLengths { index, expected, got } => write!(
                f,
                "block {index} has length {got}, but block 0 has length {expected}"
            ),
            CodecError::WrongStripeWidth { got, expected } => {
                write!(f, "stripe has {got} slots, graph needs {expected}")
            }
            CodecError::EmptyStripe => write!(f, "stripe contains no blocks at all"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_counts() {
        let e = CodecError::WrongBlockCount { got: 3, expected: 48 };
        assert!(e.to_string().contains('3') && e.to_string().contains("48"));
        let e = CodecError::WrongStripeWidth { got: 95, expected: 96 };
        assert!(e.to_string().contains("95"));
    }
}
