//! GF(2⁸) arithmetic for the Reed–Solomon comparator.
//!
//! The field is GF(2)\[x\] / (x⁸ + x⁴ + x³ + x² + 1) (the 0x11D polynomial
//! used by most storage RS implementations). Multiplication and inversion
//! go through log/antilog tables built once at startup.

/// The AES-adjacent primitive polynomial 0x11D (x⁸+x⁴+x³+x²+1).
const POLY: u16 = 0x11D;

/// Log/antilog tables for GF(256) under generator 2.
pub struct Gf256 {
    log: [u8; 256],
    exp: [u8; 512],
}

impl Gf256 {
    /// Builds the tables (255 multiplications; do it once and share).
    pub fn new() -> Self {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        for (i, slot) in exp.iter_mut().enumerate().take(255) {
            *slot = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Self { log, exp }
    }

    /// Field addition (= subtraction = XOR).
    #[inline]
    pub fn add(a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    #[inline]
    pub fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "zero has no inverse");
        self.exp[255 - self.log[a as usize] as usize]
    }

    /// Field division `a / b`.
    #[inline]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        if a == 0 {
            0
        } else {
            self.mul(a, self.inv(b))
        }
    }

    /// `base^power` by log-space multiplication.
    #[inline]
    pub fn pow(&self, base: u8, power: usize) -> u8 {
        if base == 0 {
            return if power == 0 { 1 } else { 0 };
        }
        let l = self.log[base as usize] as usize * (power % 255);
        self.exp[l % 255]
    }

    /// Multiplies `src` by scalar `c` and XORs into `dst` (the RS encode
    /// inner loop).
    ///
    /// Trivial coefficients are peeled off before table dispatch: `c == 0`
    /// skips entirely, `c == 1` is a plain word-wide XOR, and everything
    /// else runs the nibble-table kernel ([`crate::kernels::mul_acc`]).
    #[inline]
    pub fn mul_acc(&self, dst: &mut [u8], src: &[u8], c: u8) {
        crate::kernels::mul_acc(self, dst, src, c);
    }
}

impl Default for Gf256 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_agrees_with_schoolbook() {
        // Carry-less schoolbook multiply mod POLY.
        fn slow_mul(mut a: u16, mut b: u16) -> u8 {
            let mut acc: u16 = 0;
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= POLY;
                }
                b >>= 1;
            }
            acc as u8
        }
        let f = Gf256::new();
        for a in 0..=255u16 {
            for b in (0..=255u16).step_by(7) {
                assert_eq!(f.mul(a as u8, b as u8), slow_mul(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn field_axioms_spot_checks() {
        let f = Gf256::new();
        for a in 1..=255u8 {
            assert_eq!(f.mul(a, f.inv(a)), 1, "a = {a}");
            assert_eq!(f.mul(a, 1), a);
            assert_eq!(f.mul(a, 0), 0);
            assert_eq!(f.div(a, a), 1);
        }
        // Distributivity samples.
        for &(a, b, c) in &[(3u8, 7u8, 200u8), (91, 4, 17), (255, 254, 253)] {
            assert_eq!(
                f.mul(a, Gf256::add(b, c)),
                Gf256::add(f.mul(a, b), f.mul(a, c))
            );
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let f = Gf256::new();
        for base in [1u8, 2, 3, 29, 255] {
            let mut acc = 1u8;
            for p in 0..40 {
                assert_eq!(f.pow(base, p), acc, "base {base} pow {p}");
                acc = f.mul(acc, base);
            }
        }
        assert_eq!(f.pow(0, 0), 1);
        assert_eq!(f.pow(0, 5), 0);
    }

    #[test]
    fn mul_acc_accumulates() {
        let f = Gf256::new();
        let src = [1u8, 2, 3, 255];
        let mut dst = [9u8, 9, 9, 9];
        f.mul_acc(&mut dst, &src, 0);
        assert_eq!(dst, [9, 9, 9, 9], "c = 0 is a no-op");
        f.mul_acc(&mut dst, &src, 1);
        assert_eq!(dst, [8, 11, 10, 246], "c = 1 is XOR");
        let mut dst2 = [0u8; 4];
        f.mul_acc(&mut dst2, &src, 7);
        for i in 0..4 {
            assert_eq!(dst2[i], f.mul(src[i], 7));
        }
    }
}
