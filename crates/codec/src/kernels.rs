//! Word-wide data-plane kernels: the XOR and GF(256) inner loops every
//! byte of every stripe passes through.
//!
//! The paper's case for Tornado Codes is that the data path is "a sequence
//! of XOR operations" — cheap enough that coding throughput tracks the
//! hardware, not the arithmetic. This module makes that true in practice:
//!
//! * [`xor_into`] — `dst ^= src` processed a `u64` word at a time, with an
//!   aligned head/body/tail split so the body runs over whole words that
//!   the compiler auto-vectorises. No `unsafe`: word loads go through
//!   `u64::from_ne_bytes` on 8-byte chunks, which compiles to single
//!   (possibly unaligned) loads on every target this workspace cares
//!   about.
//! * [`MulTable`] / [`mul_acc`] — `dst ^= c · src` over GF(2⁸). The word
//!   body is a bit-decomposition SWAR multiply: eight field elements ride
//!   in one `u64`, and `c·b = ⊕ᵢ bitᵢ(b)·(c·xⁱ)` turns the field multiply
//!   into eight independent shift/mask/multiply/XOR terms over precomputed
//!   basis products — no table loads and no serial doubling chain in the
//!   loop, so the terms pipeline across execution units. Odd tail bytes
//!   and single-byte multiplies go through two 16-entry nibble tables per
//!   coefficient (`c·b = lo[b & 0xF] ⊕ hi[b >> 4]`), where the
//!   log/antilog path would chase two dependent loads through 768 bytes
//!   of tables per byte.
//! * [`scalar`] — the pre-existing byte-serial loops, kept verbatim as the
//!   parity oracle for the property suite and as the benchmark baseline.
//!
//! Dispatch honours [`set_force_scalar`], a process-wide switch the A/B
//! benchmarks and parity tests use to route the whole data plane (encode,
//! decode, scrub) through the byte-serial oracle without code changes.
//!
//! Volume counters: every dispatch bumps the process-wide
//! `kernel.bytes_xored` / `kernel.bytes_muled` totals (sharded relaxed
//! atomics, one `add` per *call*, not per byte) — surfaced by the server's
//! METRICS op so load snapshots show data-plane volume.

use crate::gf256::Gf256;
use std::sync::atomic::{AtomicBool, Ordering};
use tornado_obs::Counter;

/// Kernel word width in bytes.
const WORD: usize = 8;

/// Process-wide data-plane volume counters (see [`metrics`]).
pub struct KernelMetrics {
    /// Bytes processed by [`xor_into`] (either path), cumulative.
    pub bytes_xored: Counter,
    /// Bytes processed by [`mul_acc`] / [`MulTable::mul_acc`] with a
    /// non-trivial coefficient (either path), cumulative.
    pub bytes_muled: Counter,
}

static METRICS: KernelMetrics = KernelMetrics {
    bytes_xored: Counter::new(),
    bytes_muled: Counter::new(),
};

/// The process-wide kernel volume counters.
pub fn metrics() -> &'static KernelMetrics {
    &METRICS
}

/// When set, every kernel dispatch takes the byte-serial [`scalar`] path.
/// One relaxed load per call; used by the A/B benchmarks and the parity
/// suite to drive the *whole* data plane through the oracle.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Routes all kernel dispatches through the byte-serial oracle (`true`)
/// or the word-wide kernels (`false`, the default).
pub fn set_force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Whether kernel dispatches are currently forced onto the scalar path.
pub fn force_scalar() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed)
}

/// XORs `src` into `dst` a word at a time.
///
/// # Panics
/// Panics if the lengths differ.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into requires equal lengths");
    METRICS.bytes_xored.add(dst.len() as u64);
    if force_scalar() {
        scalar::xor_into(dst, src);
    } else {
        xor_into_words(dst, src);
    }
}

/// The word-wide XOR body: scalar head up to `dst`'s word boundary, a
/// `u64` body the compiler is free to widen further, scalar tail.
fn xor_into_words(dst: &mut [u8], src: &[u8]) {
    let head = dst.as_ptr().align_offset(WORD).min(dst.len());
    let (dst_head, dst_rest) = dst.split_at_mut(head);
    let (src_head, src_rest) = src.split_at(head);
    for (d, s) in dst_head.iter_mut().zip(src_head) {
        *d ^= s;
    }
    // Body: dst chunks are word-aligned; src may not be, but
    // `from_ne_bytes` on a byte chunk is a plain (unaligned-capable) load.
    let mut src_words = src_rest.chunks_exact(WORD);
    for (d, s) in dst_rest.chunks_exact_mut(WORD).zip(&mut src_words) {
        let w = u64::from_ne_bytes(d[..WORD].try_into().expect("word chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("word chunk"));
        d.copy_from_slice(&w.to_ne_bytes());
    }
    let tail_start = dst_rest.len() - dst_rest.len() % WORD;
    for (d, s) in dst_rest[tail_start..]
        .iter_mut()
        .zip(&src_rest[tail_start..])
    {
        *d ^= s;
    }
}

/// Per-coefficient nibble multiplication tables: `c·b` for any byte `b` is
/// `lo[b & 0xF] ⊕ hi[b >> 4]`, by distributivity of the field multiply
/// over the XOR decomposition `b = (b & 0xF) ⊕ (b & 0xF0)`.
#[derive(Clone, Copy, Debug)]
pub struct MulTable {
    /// The coefficient the tables encode.
    c: u8,
    /// `lo[n] = c · n` for the low nibble.
    lo: [u8; 16],
    /// `hi[n] = c · (n << 4)` for the high nibble.
    hi: [u8; 16],
    /// `bits[i] = c · xⁱ` (the product of `c` with each basis element)
    /// broadcast to every byte lane, for the SWAR body:
    /// `c·b = ⊕ᵢ bitᵢ(b) · (c·xⁱ)`.
    bits: [u64; 8],
}

impl MulTable {
    /// Builds the table set for coefficient `c` (40 field multiplies;
    /// amortised over the block the tables are applied to).
    pub fn new(field: &Gf256, c: u8) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for n in 0..16u8 {
            lo[n as usize] = field.mul(c, n);
            hi[n as usize] = field.mul(c, n << 4);
        }
        let mut bits = [0u64; 8];
        for (i, b) in bits.iter_mut().enumerate() {
            *b = field.mul(c, 1 << i) as u64 * LANE_LSB;
        }
        Self { c, lo, hi, bits }
    }

    /// The coefficient this table multiplies by.
    pub fn coefficient(&self) -> u8 {
        self.c
    }

    /// Multiplies one byte through the tables.
    #[inline]
    pub fn mul(&self, b: u8) -> u8 {
        self.lo[(b & 0x0F) as usize] ^ self.hi[(b >> 4) as usize]
    }

    /// `dst ^= c · src`, eight bytes per step.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn mul_acc(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "mul_acc requires equal lengths");
        METRICS.bytes_muled.add(dst.len() as u64);
        if force_scalar() {
            scalar::mul_table_acc(self, dst, src);
        } else {
            self.mul_acc_words(dst, src);
        }
    }

    /// The word-wide body: eight field elements per `u64`, multiplied by
    /// `c` with the bit-decomposition SWAR in [`Self::mul8`], XORed into
    /// `dst` with a single store per word. Tail bytes go through the
    /// nibble tables.
    fn mul_acc_words(&self, dst: &mut [u8], src: &[u8]) {
        let mut src_words = src.chunks_exact(WORD);
        for (d, s) in dst.chunks_exact_mut(WORD).zip(&mut src_words) {
            let sw = u64::from_ne_bytes(s.try_into().expect("word chunk"));
            let w = u64::from_ne_bytes(d[..WORD].try_into().expect("word chunk")) ^ self.mul8(sw);
            d.copy_from_slice(&w.to_ne_bytes());
        }
        let tail_start = dst.len() - dst.len() % WORD;
        for (d, &s) in dst[tail_start..].iter_mut().zip(&src[tail_start..]) {
            *d ^= self.mul(s);
        }
    }

    /// Multiplies all eight GF(2⁸) lanes of `w` by the coefficient via bit
    /// decomposition: `c·b = ⊕ᵢ bitᵢ(b)·(c·xⁱ)` by distributivity. Each
    /// term isolates bit `i` of every lane (a 0-or-1 byte per lane),
    /// stretches it to a 0x00/0xFF lane mask with `(m << 8) - m` (which is
    /// exactly `m · 255` — each lane's product stays inside the lane, and
    /// the subtraction's only borrow beyond lane 7 falls off the top of
    /// the word), and ANDs the mask with the pre-broadcast basis product
    /// `c·xⁱ`. Eight independent shift/and/sub/and/XOR terms — no loads,
    /// no serial chain, no integer multiply — every op has a packed SIMD
    /// equivalent, so the unrolled word loop auto-vectorises.
    #[inline]
    fn mul8(&self, w: u64) -> u64 {
        let mut acc = 0u64;
        for (i, &k) in self.bits.iter().enumerate() {
            let bits = (w >> i) & LANE_LSB;
            let mask = (bits << 8).wrapping_sub(bits);
            acc ^= mask & k;
        }
        acc
    }
}

/// The low bit of each byte lane, for the SWAR bit extraction.
const LANE_LSB: u64 = 0x0101_0101_0101_0101;

/// `dst ^= c · src` with the trivial coefficients peeled off before table
/// dispatch: `c == 0` is a no-op, `c == 1` is a plain [`xor_into`], and
/// everything else builds a [`MulTable`] and runs the nibble kernel.
///
/// Callers applying the same coefficient to many blocks should build the
/// [`MulTable`] once and call [`MulTable::mul_acc`] directly.
///
/// # Panics
/// Panics if the lengths differ.
pub fn mul_acc(field: &Gf256, dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "mul_acc requires equal lengths");
    match c {
        0 => {}
        1 => xor_into(dst, src),
        _ => MulTable::new(field, c).mul_acc(dst, src),
    }
}

/// Byte-serial reference kernels: the loops the data plane ran before the
/// word-wide rewrite, kept bit-for-bit as the parity oracle and the
/// benchmark baseline.
///
/// The loop index is threaded through [`std::hint::black_box`] so the
/// optimiser can neither vectorise nor unroll these — they measure (and
/// model) genuine one-byte-at-a-time execution, which is the cost model
/// the word-wide kernels are benchmarked against.
pub mod scalar {
    use super::MulTable;
    use crate::gf256::Gf256;
    use std::hint::black_box;

    /// Byte-serial `dst ^= src`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn xor_into(dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "xor_into requires equal lengths");
        let mut i = 0usize;
        while i < dst.len() {
            dst[i] ^= src[i];
            i += black_box(1);
        }
    }

    /// Byte-serial `dst ^= c · src` through the log/antilog tables — the
    /// original `Gf256::mul_acc` inner loop.
    ///
    /// # Panics
    /// Panics if the lengths differ, or if `c == 0` (callers peel the
    /// trivial coefficients before dispatch).
    pub fn mul_acc(field: &Gf256, dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len(), "mul_acc requires equal lengths");
        assert_ne!(c, 0, "c == 0 is peeled off before dispatch");
        let mut i = 0usize;
        while i < dst.len() {
            dst[i] ^= field.mul(c, src[i]);
            i += black_box(1);
        }
    }

    /// Byte-serial application of a prebuilt [`MulTable`] (same tables,
    /// no word assembly) — isolates the word-wide layout's contribution
    /// from the table layout's.
    pub(super) fn mul_table_acc(table: &MulTable, dst: &mut [u8], src: &[u8]) {
        let mut i = 0usize;
        while i < dst.len() {
            dst[i] ^= table.mul(src[i]);
            i += black_box(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, salt: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
            .collect()
    }

    #[test]
    fn xor_matches_scalar_across_lengths_and_offsets() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 256, 257] {
            for offset in 0..4usize {
                let src_full = pattern(len + offset, 3);
                let mut word = pattern(len + offset, 7);
                let mut byte = word.clone();
                xor_into(&mut word[offset..], &src_full[offset..]);
                scalar::xor_into(&mut byte[offset..], &src_full[offset..]);
                assert_eq!(word, byte, "len {len} offset {offset}");
            }
        }
    }

    #[test]
    fn mul_table_agrees_with_field_multiply() {
        let f = Gf256::new();
        for c in 0..=255u8 {
            let t = MulTable::new(&f, c);
            assert_eq!(t.coefficient(), c);
            for b in 0..=255u8 {
                assert_eq!(t.mul(b), f.mul(c, b), "{c} * {b}");
            }
        }
    }

    #[test]
    fn mul_acc_matches_scalar_across_lengths() {
        let f = Gf256::new();
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33, 256, 257] {
            for c in [2u8, 3, 29, 0x53, 255] {
                let src = pattern(len, 5);
                let mut word = pattern(len, 9);
                let mut byte = word.clone();
                mul_acc(&f, &mut word, &src, c);
                scalar::mul_acc(&f, &mut byte, &src, c);
                assert_eq!(word, byte, "len {len} c {c}");
            }
        }
    }

    #[test]
    fn mul_acc_peels_trivial_coefficients() {
        let f = Gf256::new();
        let src = pattern(40, 1);
        let mut dst = pattern(40, 2);
        let before = dst.clone();
        mul_acc(&f, &mut dst, &src, 0);
        assert_eq!(dst, before, "c = 0 is a no-op");
        mul_acc(&f, &mut dst, &src, 1);
        let expect: Vec<u8> = before.iter().zip(&src).map(|(d, s)| d ^ s).collect();
        assert_eq!(dst, expect, "c = 1 is plain XOR");
    }

    #[test]
    fn force_scalar_switch_routes_both_paths_to_the_same_bytes() {
        let f = Gf256::new();
        let src = pattern(100, 11);
        let mut fast = pattern(100, 13);
        let mut slow = fast.clone();
        set_force_scalar(true);
        xor_into(&mut slow, &src);
        mul_acc(&f, &mut slow, &src, 77);
        set_force_scalar(false);
        xor_into(&mut fast, &src);
        mul_acc(&f, &mut fast, &src, 77);
        assert_eq!(fast, slow);
    }

    #[test]
    fn volume_counters_advance() {
        let before_xor = metrics().bytes_xored.get();
        let before_mul = metrics().bytes_muled.get();
        let f = Gf256::new();
        let src = pattern(64, 1);
        let mut dst = pattern(64, 2);
        xor_into(&mut dst, &src);
        mul_acc(&f, &mut dst, &src, 9);
        assert!(metrics().bytes_xored.get() >= before_xor + 64);
        assert!(metrics().bytes_muled.get() >= before_mul + 64);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn unequal_lengths_panic() {
        xor_into(&mut [0u8; 3], &[0u8; 4]);
    }
}
