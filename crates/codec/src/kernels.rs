//! Word-wide data-plane kernels: the XOR and GF(256) inner loops every
//! byte of every stripe passes through.
//!
//! The paper's case for Tornado Codes is that the data path is "a sequence
//! of XOR operations" — cheap enough that coding throughput tracks the
//! hardware, not the arithmetic. This module makes that true in practice:
//!
//! * [`xor_into`] — `dst ^= src` processed a `u64` word at a time, with an
//!   aligned head/body/tail split so the body runs over whole words that
//!   the compiler auto-vectorises. No `unsafe`: word loads go through
//!   `u64::from_ne_bytes` on 8-byte chunks, which compiles to single
//!   (possibly unaligned) loads on every target this workspace cares
//!   about.
//! * [`MulTable`] / [`mul_acc`] — `dst ^= c · src` over GF(2⁸). The word
//!   body is a bit-decomposition SWAR multiply: eight field elements ride
//!   in one `u64`, and `c·b = ⊕ᵢ bitᵢ(b)·(c·xⁱ)` turns the field multiply
//!   into eight independent shift/mask/multiply/XOR terms over precomputed
//!   basis products — no table loads and no serial doubling chain in the
//!   loop, so the terms pipeline across execution units. Odd tail bytes
//!   and single-byte multiplies go through two 16-entry nibble tables per
//!   coefficient (`c·b = lo[b & 0xF] ⊕ hi[b >> 4]`), where the
//!   log/antilog path would chase two dependent loads through 768 bytes
//!   of tables per byte.
//! * [`scalar`] — the pre-existing byte-serial loops, kept verbatim as the
//!   parity oracle for the property suite and as the benchmark baseline.
//!
//! Dispatch honours [`set_force_scalar`], a process-wide switch the A/B
//! benchmarks and parity tests use to route the whole data plane (encode,
//! decode, scrub) through the byte-serial oracle without code changes.
//!
//! Volume counters: every dispatch bumps the process-wide
//! `kernel.bytes_xored` / `kernel.bytes_muled` totals (sharded relaxed
//! atomics, one `add` per *call*, not per byte) — surfaced by the server's
//! METRICS op so load snapshots show data-plane volume.

use crate::gf256::Gf256;
use std::sync::atomic::{AtomicBool, Ordering};
use tornado_obs::Counter;

/// Kernel word width in bytes.
const WORD: usize = 8;

/// Process-wide data-plane volume counters (see [`metrics`]).
pub struct KernelMetrics {
    /// Bytes processed by [`xor_into`] (either path), cumulative.
    pub bytes_xored: Counter,
    /// Bytes processed by [`mul_acc`] / [`MulTable::mul_acc`] with a
    /// non-trivial coefficient (either path), cumulative.
    pub bytes_muled: Counter,
    /// Bytes processed by [`checksum`] (either path), cumulative — the
    /// scrub verify tier's volume signal.
    pub bytes_hashed: Counter,
}

static METRICS: KernelMetrics = KernelMetrics {
    bytes_xored: Counter::new(),
    bytes_muled: Counter::new(),
    bytes_hashed: Counter::new(),
};

/// The process-wide kernel volume counters.
pub fn metrics() -> &'static KernelMetrics {
    &METRICS
}

/// When set, every kernel dispatch takes the byte-serial [`scalar`] path.
/// One relaxed load per call; used by the A/B benchmarks and the parity
/// suite to drive the *whole* data plane through the oracle.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Routes all kernel dispatches through the byte-serial oracle (`true`)
/// or the word-wide kernels (`false`, the default).
pub fn set_force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Whether kernel dispatches are currently forced onto the scalar path.
pub fn force_scalar() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed)
}

/// XORs `src` into `dst` a word at a time.
///
/// # Panics
/// Panics if the lengths differ.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into requires equal lengths");
    METRICS.bytes_xored.add(dst.len() as u64);
    if force_scalar() {
        scalar::xor_into(dst, src);
    } else {
        xor_into_words(dst, src);
    }
}

/// The word-wide XOR body: scalar head up to `dst`'s word boundary, a
/// `u64` body the compiler is free to widen further, scalar tail.
fn xor_into_words(dst: &mut [u8], src: &[u8]) {
    let head = dst.as_ptr().align_offset(WORD).min(dst.len());
    let (dst_head, dst_rest) = dst.split_at_mut(head);
    let (src_head, src_rest) = src.split_at(head);
    for (d, s) in dst_head.iter_mut().zip(src_head) {
        *d ^= s;
    }
    // Body: dst chunks are word-aligned; src may not be, but
    // `from_ne_bytes` on a byte chunk is a plain (unaligned-capable) load.
    let mut src_words = src_rest.chunks_exact(WORD);
    for (d, s) in dst_rest.chunks_exact_mut(WORD).zip(&mut src_words) {
        let w = u64::from_ne_bytes(d[..WORD].try_into().expect("word chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("word chunk"));
        d.copy_from_slice(&w.to_ne_bytes());
    }
    let tail_start = dst_rest.len() - dst_rest.len() % WORD;
    for (d, s) in dst_rest[tail_start..]
        .iter_mut()
        .zip(&src_rest[tail_start..])
    {
        *d ^= s;
    }
}

/// FNV-1a offset basis (per-lane states are this perturbed by lane index).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// 8-lane word-striped FNV-1a block checksum.
///
/// Classic FNV-1a is a single multiply chain — every byte's
/// `(h ^ b) · p` step depends on the previous one, so it runs at the
/// multiplier's *latency* (~1 byte per 3 cycles) no matter how wide the
/// machine is. This checksum instead consumes the input as little-endian
/// `u64` words (the final partial word zero-padded), word `t` feeding
/// lane `t mod 8` of eight independent FNV-1a chains, then folds the
/// lanes (and the byte length, which disambiguates the zero padding)
/// through one more FNV chain. Each lane sees a multiply only every
/// eighth word, so the chains pipeline at the multiplier's *throughput* —
/// one multiply per eight bytes instead of one per byte — and the word
/// path digests a block near memory speed while remaining a pure
/// function of the bytes.
///
/// The word-wide path and the byte-serial [`scalar::checksum`] oracle
/// compute the *same* function (pinned by the parity suite); dispatch
/// honours [`set_force_scalar`] like the other kernels.
pub fn checksum(data: &[u8]) -> u64 {
    METRICS.bytes_hashed.add(data.len() as u64);
    if force_scalar() {
        scalar::checksum(data)
    } else {
        checksum_words(data)
    }
}

/// Per-lane initial states: the FNV offset basis perturbed by the lane
/// index, so a word moved between lanes changes the digest.
fn lane_init() -> [u64; 8] {
    let mut lanes = [0u64; 8];
    for (j, l) in lanes.iter_mut().enumerate() {
        *l = FNV_OFFSET ^ (j as u64).wrapping_mul(FNV_PRIME);
    }
    lanes
}

/// One lane step: absorb word `w` into lane `l`. XOR then multiply, like
/// FNV-1a; both operations are injective in `w`, so any change to a word
/// changes its lane's final state.
#[inline(always)]
fn lane_step(l: u64, w: u64) -> u64 {
    (l ^ w).wrapping_mul(FNV_PRIME)
}

/// Folds the eight lane states and the input length into one digest via a
/// final FNV-1a chain (shared by both dispatch paths; O(1), so it adds
/// nothing to the per-byte cost either side is measuring). The
/// `h ^= h >> 32` mix after each step is an invertible xorshift, so a
/// change in any single lane always survives into the digest.
fn fold_lanes(lanes: [u64; 8], len: usize) -> u64 {
    let mut h = FNV_OFFSET ^ len as u64;
    for l in lanes {
        h = (h ^ l).wrapping_mul(FNV_PRIME);
        h ^= h >> 32;
    }
    h
}

/// Zero-padded little-endian word from a partial (1–7 byte) tail.
fn tail_word(tail: &[u8]) -> u64 {
    let mut w = 0u64;
    for (i, &b) in tail.iter().enumerate() {
        w |= (b as u64) << (i * 8);
    }
    w
}

/// The word-wide checksum body: 64-byte groups update all eight lanes
/// with statically-indexed independent multiplies; leftover whole words
/// continue round-robin, and a partial tail becomes one zero-padded word.
fn checksum_words(data: &[u8]) -> u64 {
    let mut lanes = lane_init();
    let mut groups = data.chunks_exact(8 * WORD);
    for g in &mut groups {
        for (j, l) in lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(g[j * WORD..(j + 1) * WORD].try_into().unwrap());
            *l = lane_step(*l, w);
        }
    }
    let mut words = groups.remainder().chunks_exact(WORD);
    let mut j = 0usize;
    for chunk in &mut words {
        lanes[j] = lane_step(lanes[j], u64::from_le_bytes(chunk.try_into().unwrap()));
        j += 1;
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        lanes[j] = lane_step(lanes[j], tail_word(tail));
    }
    fold_lanes(lanes, data.len())
}

/// Per-coefficient nibble multiplication tables: `c·b` for any byte `b` is
/// `lo[b & 0xF] ⊕ hi[b >> 4]`, by distributivity of the field multiply
/// over the XOR decomposition `b = (b & 0xF) ⊕ (b & 0xF0)`.
#[derive(Clone, Copy, Debug)]
pub struct MulTable {
    /// The coefficient the tables encode.
    c: u8,
    /// `lo[n] = c · n` for the low nibble.
    lo: [u8; 16],
    /// `hi[n] = c · (n << 4)` for the high nibble.
    hi: [u8; 16],
    /// `bits[i] = c · xⁱ` (the product of `c` with each basis element)
    /// broadcast to every byte lane, for the SWAR body:
    /// `c·b = ⊕ᵢ bitᵢ(b) · (c·xⁱ)`.
    bits: [u64; 8],
}

impl MulTable {
    /// Builds the table set for coefficient `c` (40 field multiplies;
    /// amortised over the block the tables are applied to).
    pub fn new(field: &Gf256, c: u8) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for n in 0..16u8 {
            lo[n as usize] = field.mul(c, n);
            hi[n as usize] = field.mul(c, n << 4);
        }
        let mut bits = [0u64; 8];
        for (i, b) in bits.iter_mut().enumerate() {
            *b = field.mul(c, 1 << i) as u64 * LANE_LSB;
        }
        Self { c, lo, hi, bits }
    }

    /// The coefficient this table multiplies by.
    pub fn coefficient(&self) -> u8 {
        self.c
    }

    /// Multiplies one byte through the tables.
    #[inline]
    pub fn mul(&self, b: u8) -> u8 {
        self.lo[(b & 0x0F) as usize] ^ self.hi[(b >> 4) as usize]
    }

    /// `dst ^= c · src`, eight bytes per step.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn mul_acc(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "mul_acc requires equal lengths");
        METRICS.bytes_muled.add(dst.len() as u64);
        if force_scalar() {
            scalar::mul_table_acc(self, dst, src);
        } else {
            self.mul_acc_words(dst, src);
        }
    }

    /// The word-wide body: eight field elements per `u64`, multiplied by
    /// `c` with the bit-decomposition SWAR in [`Self::mul8`], XORed into
    /// `dst` with a single store per word. Tail bytes go through the
    /// nibble tables.
    fn mul_acc_words(&self, dst: &mut [u8], src: &[u8]) {
        let mut src_words = src.chunks_exact(WORD);
        for (d, s) in dst.chunks_exact_mut(WORD).zip(&mut src_words) {
            let sw = u64::from_ne_bytes(s.try_into().expect("word chunk"));
            let w = u64::from_ne_bytes(d[..WORD].try_into().expect("word chunk")) ^ self.mul8(sw);
            d.copy_from_slice(&w.to_ne_bytes());
        }
        let tail_start = dst.len() - dst.len() % WORD;
        for (d, &s) in dst[tail_start..].iter_mut().zip(&src[tail_start..]) {
            *d ^= self.mul(s);
        }
    }

    /// Multiplies all eight GF(2⁸) lanes of `w` by the coefficient via bit
    /// decomposition: `c·b = ⊕ᵢ bitᵢ(b)·(c·xⁱ)` by distributivity. Each
    /// term isolates bit `i` of every lane (a 0-or-1 byte per lane),
    /// stretches it to a 0x00/0xFF lane mask with `(m << 8) - m` (which is
    /// exactly `m · 255` — each lane's product stays inside the lane, and
    /// the subtraction's only borrow beyond lane 7 falls off the top of
    /// the word), and ANDs the mask with the pre-broadcast basis product
    /// `c·xⁱ`. Eight independent shift/and/sub/and/XOR terms — no loads,
    /// no serial chain, no integer multiply — every op has a packed SIMD
    /// equivalent, so the unrolled word loop auto-vectorises.
    #[inline]
    fn mul8(&self, w: u64) -> u64 {
        let mut acc = 0u64;
        for (i, &k) in self.bits.iter().enumerate() {
            let bits = (w >> i) & LANE_LSB;
            let mask = (bits << 8).wrapping_sub(bits);
            acc ^= mask & k;
        }
        acc
    }
}

/// The low bit of each byte lane, for the SWAR bit extraction.
const LANE_LSB: u64 = 0x0101_0101_0101_0101;

/// `dst ^= c · src` with the trivial coefficients peeled off before table
/// dispatch: `c == 0` is a no-op, `c == 1` is a plain [`xor_into`], and
/// everything else builds a [`MulTable`] and runs the nibble kernel.
///
/// Callers applying the same coefficient to many blocks should build the
/// [`MulTable`] once and call [`MulTable::mul_acc`] directly.
///
/// # Panics
/// Panics if the lengths differ.
pub fn mul_acc(field: &Gf256, dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "mul_acc requires equal lengths");
    match c {
        0 => {}
        1 => xor_into(dst, src),
        _ => MulTable::new(field, c).mul_acc(dst, src),
    }
}

/// Byte-serial reference kernels: the loops the data plane ran before the
/// word-wide rewrite, kept bit-for-bit as the parity oracle and the
/// benchmark baseline.
///
/// The loop index is threaded through [`std::hint::black_box`] so the
/// optimiser can neither vectorise nor unroll these — they measure (and
/// model) genuine one-byte-at-a-time execution, which is the cost model
/// the word-wide kernels are benchmarked against.
pub mod scalar {
    use super::MulTable;
    use crate::gf256::Gf256;
    use std::hint::black_box;

    /// Byte-serial `dst ^= src`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn xor_into(dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "xor_into requires equal lengths");
        let mut i = 0usize;
        while i < dst.len() {
            dst[i] ^= src[i];
            i += black_box(1);
        }
    }

    /// Byte-serial `dst ^= c · src` through the log/antilog tables — the
    /// original `Gf256::mul_acc` inner loop.
    ///
    /// # Panics
    /// Panics if the lengths differ, or if `c == 0` (callers peel the
    /// trivial coefficients before dispatch).
    pub fn mul_acc(field: &Gf256, dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len(), "mul_acc requires equal lengths");
        assert_ne!(c, 0, "c == 0 is peeled off before dispatch");
        let mut i = 0usize;
        while i < dst.len() {
            dst[i] ^= field.mul(c, src[i]);
            i += black_box(1);
        }
    }

    /// Byte-serial application of a prebuilt [`MulTable`] (same tables,
    /// no word assembly) — isolates the word-wide layout's contribution
    /// from the table layout's.
    pub(super) fn mul_table_acc(table: &MulTable, dst: &mut [u8], src: &[u8]) {
        let mut i = 0usize;
        while i < dst.len() {
            dst[i] ^= table.mul(src[i]);
            i += black_box(1);
        }
    }

    /// Byte-serial 8-lane word-striped FNV-1a — the same function as
    /// [`super::checksum`], assembling each little-endian word one byte
    /// per step and stepping the owning lane at every word boundary. This
    /// is both the parity oracle and the byte-serial baseline standing in
    /// for the pre-kernel `block_checksum` loop: the `black_box`-pinned
    /// per-byte trip keeps it retiring ~1 byte per iteration, the cost
    /// profile a single serial FNV chain also has.
    pub fn checksum(data: &[u8]) -> u64 {
        let mut lanes = super::lane_init();
        let mut word = 0u64;
        let mut i = 0usize;
        while i < data.len() {
            word |= (data[i] as u64) << ((i % 8) * 8);
            if i % 8 == 7 {
                let j = (i / 8) % 8;
                lanes[j] = super::lane_step(lanes[j], word);
                word = 0;
            }
            i += black_box(1);
        }
        if !data.len().is_multiple_of(8) {
            let j = (data.len() / 8) % 8;
            lanes[j] = super::lane_step(lanes[j], word);
        }
        super::fold_lanes(lanes, data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, salt: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
            .collect()
    }

    #[test]
    fn xor_matches_scalar_across_lengths_and_offsets() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 256, 257] {
            for offset in 0..4usize {
                let src_full = pattern(len + offset, 3);
                let mut word = pattern(len + offset, 7);
                let mut byte = word.clone();
                xor_into(&mut word[offset..], &src_full[offset..]);
                scalar::xor_into(&mut byte[offset..], &src_full[offset..]);
                assert_eq!(word, byte, "len {len} offset {offset}");
            }
        }
    }

    #[test]
    fn mul_table_agrees_with_field_multiply() {
        let f = Gf256::new();
        for c in 0..=255u8 {
            let t = MulTable::new(&f, c);
            assert_eq!(t.coefficient(), c);
            for b in 0..=255u8 {
                assert_eq!(t.mul(b), f.mul(c, b), "{c} * {b}");
            }
        }
    }

    #[test]
    fn mul_acc_matches_scalar_across_lengths() {
        let f = Gf256::new();
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33, 256, 257] {
            for c in [2u8, 3, 29, 0x53, 255] {
                let src = pattern(len, 5);
                let mut word = pattern(len, 9);
                let mut byte = word.clone();
                mul_acc(&f, &mut word, &src, c);
                scalar::mul_acc(&f, &mut byte, &src, c);
                assert_eq!(word, byte, "len {len} c {c}");
            }
        }
    }

    #[test]
    fn mul_acc_peels_trivial_coefficients() {
        let f = Gf256::new();
        let src = pattern(40, 1);
        let mut dst = pattern(40, 2);
        let before = dst.clone();
        mul_acc(&f, &mut dst, &src, 0);
        assert_eq!(dst, before, "c = 0 is a no-op");
        mul_acc(&f, &mut dst, &src, 1);
        let expect: Vec<u8> = before.iter().zip(&src).map(|(d, s)| d ^ s).collect();
        assert_eq!(dst, expect, "c = 1 is plain XOR");
    }

    #[test]
    fn force_scalar_switch_routes_both_paths_to_the_same_bytes() {
        let f = Gf256::new();
        let src = pattern(100, 11);
        let mut fast = pattern(100, 13);
        let mut slow = fast.clone();
        set_force_scalar(true);
        xor_into(&mut slow, &src);
        mul_acc(&f, &mut slow, &src, 77);
        set_force_scalar(false);
        xor_into(&mut fast, &src);
        mul_acc(&f, &mut fast, &src, 77);
        assert_eq!(fast, slow);
    }

    #[test]
    fn volume_counters_advance() {
        let before_xor = metrics().bytes_xored.get();
        let before_mul = metrics().bytes_muled.get();
        let before_hash = metrics().bytes_hashed.get();
        let f = Gf256::new();
        let src = pattern(64, 1);
        let mut dst = pattern(64, 2);
        xor_into(&mut dst, &src);
        mul_acc(&f, &mut dst, &src, 9);
        checksum(&dst);
        assert!(metrics().bytes_xored.get() >= before_xor + 64);
        assert!(metrics().bytes_muled.get() >= before_mul + 64);
        assert!(metrics().bytes_hashed.get() >= before_hash + 64);
    }

    #[test]
    fn checksum_matches_scalar_across_lengths_and_offsets() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 256, 257] {
            for offset in 0..4usize {
                let data = pattern(len + offset, 17);
                assert_eq!(
                    checksum_words(&data[offset..]),
                    scalar::checksum(&data[offset..]),
                    "len {len} offset {offset}"
                );
            }
        }
    }

    #[test]
    fn checksum_detects_single_byte_changes_and_length() {
        let data = pattern(257, 23);
        let base = checksum(&data);
        for i in [0usize, 1, 7, 8, 128, 255, 256] {
            let mut t = data.clone();
            t[i] ^= 0x40;
            assert_ne!(checksum(&t), base, "flip at {i} must change the digest");
        }
        assert_ne!(checksum(&data[..256]), base, "length is part of the digest");
        assert_ne!(checksum(&[]), checksum(&[0]), "a single zero byte is visible");
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn unequal_lengths_panic() {
        xor_into(&mut [0u8; 3], &[0u8; 4]);
    }
}
