//! Decode-kernel instrumentation: recorder cell layout and the shared
//! merge target.
//!
//! The kernel counts into plain-u64 [`tornado_obs::Recorder`] cells (no
//! atomics in the hot loop; recording off by default costs one predicted
//! branch per site). The [`cells`] module fixes the cell indices; a
//! [`DecodeMetrics`] is the sharded cross-thread aggregate those cells are
//! drained into at batch boundaries — rayon workers each own a decoder,
//! and because summation commutes the merged totals are identical no
//! matter which worker processed which rank range.

use tornado_obs::Counter;

/// Recorder cell indices for [`crate::ErasureDecoder`].
pub mod cells {
    /// Decode trials: every `decode`, `decode_detailed`, or `decode_tail`
    /// verdict (prefix fixpoints are counted separately).
    pub const TRIALS: usize = 0;
    /// Trials whose reconstruction failed.
    pub const FAILURES: usize = 1;
    /// Sparse state resets (`clear_state` calls).
    pub const RESETS: usize = 2;
    /// `begin_pattern` full-fixpoint prefix decodes.
    pub const PREFIX_BEGINS: usize = 3;
    /// Tails that took the certificate-disjoint residual fast path.
    pub const PREFIX_REUSE_HITS: usize = 4;
    /// Tails that collided with the prefix certificate (full re-decode).
    pub const PREFIX_COLLISIONS: usize = 5;
    /// Tails answered in O(1) by failure monotonicity of a failed prefix.
    pub const MONOTONE_SHORTCUTS: usize = 6;
    /// Check ids pushed onto the peeling worklist.
    pub const WORKLIST_PUSHES: usize = 7;
    /// Worklist entries examined (popped).
    pub const WORKLIST_POPS: usize = 8;
    /// Nodes recovered (peeled or re-encoded).
    pub const RECOVERIES: usize = 9;
    /// Number of cells.
    pub const COUNT: usize = 10;
}

/// Snapshot names for each cell, index-aligned with [`cells`].
pub const CELL_NAMES: [&str; cells::COUNT] = [
    "decode.trials",
    "decode.failures",
    "decode.resets",
    "decode.prefix_begins",
    "decode.prefix_reuse_hits",
    "decode.prefix_collisions",
    "decode.monotone_shortcuts",
    "decode.worklist_pushes",
    "decode.worklist_pops",
    "decode.recoveries",
];

/// The decoder's recorder type.
pub type DecodeRecorder = tornado_obs::Recorder<{ cells::COUNT }>;

/// Cross-thread aggregate of decode-kernel counters, one sharded
/// [`Counter`] per recorder cell. Usable in `static`s.
pub struct DecodeMetrics {
    counters: [Counter; cells::COUNT],
}

impl DecodeMetrics {
    /// A zeroed metrics block.
    pub const fn new() -> Self {
        // `Counter::new` is const but `Counter` is not `Copy`; a const
        // item makes the array-repeat legal, and each repeat instantiates
        // a fresh counter (never shared state).
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: Counter = Counter::new();
        Self {
            counters: [ZERO; cells::COUNT],
        }
    }

    /// Adds one drained recorder cell array into the aggregate.
    pub fn absorb(&self, drained: &[u64; cells::COUNT]) {
        for (counter, &v) in self.counters.iter().zip(drained.iter()) {
            counter.add(v);
        }
    }

    /// Current value of one cell's aggregate.
    pub fn get(&self, cell: usize) -> u64 {
        self.counters[cell].get()
    }

    /// `(snapshot name, current value)` for every cell.
    pub fn items(&self) -> [(&'static str, u64); cells::COUNT] {
        std::array::from_fn(|i| (CELL_NAMES[i], self.counters[i].get()))
    }

    /// Writes every cell into a snapshot's counter section.
    pub fn fill_snapshot(&self, snap: &mut tornado_obs::Snapshot) {
        for (name, value) in self.items() {
            snap.counter_value(name, value);
        }
    }
}

impl Default for DecodeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for DecodeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("DecodeMetrics");
        for (name, value) in self.items() {
            d.field(name, &value);
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_per_cell() {
        let m = DecodeMetrics::new();
        let mut cells_a = [0u64; cells::COUNT];
        cells_a[cells::TRIALS] = 10;
        cells_a[cells::FAILURES] = 2;
        let mut cells_b = [0u64; cells::COUNT];
        cells_b[cells::TRIALS] = 5;
        m.absorb(&cells_a);
        m.absorb(&cells_b);
        assert_eq!(m.get(cells::TRIALS), 15);
        assert_eq!(m.get(cells::FAILURES), 2);
        assert_eq!(m.get(cells::RECOVERIES), 0);
    }

    #[test]
    fn items_are_name_aligned() {
        let m = DecodeMetrics::new();
        let mut drained = [0u64; cells::COUNT];
        drained[cells::PREFIX_REUSE_HITS] = 7;
        m.absorb(&drained);
        let items = m.items();
        assert_eq!(items[cells::PREFIX_REUSE_HITS], ("decode.prefix_reuse_hits", 7));
        assert_eq!(items[cells::TRIALS], ("decode.trials", 0));
    }
}
