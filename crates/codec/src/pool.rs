//! Scratch-buffer arena for block-sized `Vec<u8>`s.
//!
//! Every layer of the data plane used to allocate a fresh `Vec<u8>` per
//! block it touched: encode's check accumulators, decode's recovery
//! buffers, the store's device reads, the scrubber's per-stripe scans.
//! A [`BlockPool`] turns those into buffer reuse: [`BlockPool::take_zeroed`]
//! / [`BlockPool::take_copy`] hand out a recycled buffer when one is free
//! (a *hit* — at most a memset, no allocator call once the buffer's
//! capacity suffices) and fall back to a fresh allocation otherwise (a
//! *miss*); [`BlockPool::recycle`] returns buffers once their contents are
//! dead.
//!
//! Ownership rules:
//!
//! * Pools are single-owner and `&mut` — no locks. Cross-thread reuse goes
//!   through [`with_thread_pool`], which gives each OS thread (server
//!   engine workers, rayon scrub workers) its own pool, so the serving
//!   path never contends on the arena.
//! * Buffers that escape to a caller (a decoded payload, blocks moved
//!   into a device) simply leave the pool's custody — nothing tracks
//!   them. Recycling is an optimisation, never an obligation.
//! * Hit/miss totals aggregate process-wide into [`metrics`] (`pool.hit`
//!   / `pool.miss`), surfaced by the server's METRICS op.

use std::cell::RefCell;
use tornado_obs::Counter;

/// Process-wide pool traffic counters (see [`metrics`]).
pub struct PoolMetrics {
    /// Takes served from a recycled buffer.
    pub hits: Counter,
    /// Takes that had to allocate.
    pub misses: Counter,
}

static METRICS: PoolMetrics = PoolMetrics {
    hits: Counter::new(),
    misses: Counter::new(),
};

/// The process-wide pool hit/miss counters.
pub fn metrics() -> &'static PoolMetrics {
    &METRICS
}

/// A single-owner free list of block buffers.
#[derive(Debug)]
pub struct BlockPool {
    free: Vec<Vec<u8>>,
    max_retained: usize,
}

impl BlockPool {
    /// Default cap on retained buffers — generous for one 96-node stripe
    /// plus scratch, small enough that an idle worker pins a few MiB at
    /// most.
    pub const DEFAULT_RETAINED: usize = 256;

    /// An empty pool with the default retention cap.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_RETAINED)
    }

    /// An empty pool retaining at most `max_retained` free buffers;
    /// recycles beyond the cap are dropped (freed) instead.
    pub fn with_capacity(max_retained: usize) -> Self {
        Self {
            free: Vec::new(),
            max_retained,
        }
    }

    /// Number of buffers currently available for reuse.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// A zero-filled buffer of exactly `len` bytes.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                METRICS.hits.inc();
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => {
                METRICS.misses.inc();
                vec![0u8; len]
            }
        }
    }

    /// A buffer holding a copy of `src`.
    pub fn take_copy(&mut self, src: &[u8]) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                METRICS.hits.inc();
                buf.clear();
                buf.extend_from_slice(src);
                buf
            }
            None => {
                METRICS.misses.inc();
                src.to_vec()
            }
        }
    }

    /// Returns a dead buffer to the free list (dropped if the pool is at
    /// its retention cap or the buffer never allocated).
    pub fn recycle(&mut self, buf: Vec<u8>) {
        if buf.capacity() > 0 && self.free.len() < self.max_retained {
            self.free.push(buf);
        }
    }

    /// Recycles every `Some` block of a stripe scan in one sweep.
    pub fn recycle_stripe(&mut self, stripe: &mut [Option<Vec<u8>>]) {
        for slot in stripe.iter_mut() {
            if let Some(buf) = slot.take() {
                self.recycle(buf);
            }
        }
    }
}

impl Default for BlockPool {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static THREAD_POOL: RefCell<BlockPool> = RefCell::new(BlockPool::new());
}

/// Runs `f` with this thread's own [`BlockPool`]. Engine workers and rayon
/// scrub workers are plain OS threads, so each automatically owns one warm
/// pool across the requests/stripes it processes.
pub fn with_thread_pool<R>(f: impl FnOnce(&mut BlockPool) -> R) -> R {
    THREAD_POOL.with(|p| f(&mut p.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_reuses_capacity_and_zeroes() {
        let mut pool = BlockPool::new();
        let mut buf = pool.take_zeroed(64);
        buf.iter_mut().for_each(|b| *b = 0xAA);
        let ptr = buf.as_ptr() as usize;
        let cap = buf.capacity();
        pool.recycle(buf);
        assert_eq!(pool.available(), 1);
        let again = pool.take_zeroed(32);
        assert_eq!(again.len(), 32);
        assert!(again.iter().all(|&b| b == 0), "recycled buffer is zeroed");
        assert_eq!(again.capacity(), cap, "capacity survives recycling");
        assert_eq!(again.as_ptr() as usize, ptr, "same allocation reused");
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn take_copy_round_trips_content() {
        let mut pool = BlockPool::new();
        pool.recycle(vec![0xFFu8; 128]);
        let got = pool.take_copy(b"hello pool");
        assert_eq!(got, b"hello pool");
    }

    #[test]
    fn retention_cap_drops_excess() {
        let mut pool = BlockPool::with_capacity(2);
        for _ in 0..5 {
            pool.recycle(vec![0u8; 8]);
        }
        assert_eq!(pool.available(), 2);
        // Zero-capacity buffers are not worth retaining.
        pool.recycle(Vec::new());
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn recycle_stripe_sweeps_all_blocks() {
        let mut pool = BlockPool::new();
        let mut stripe = vec![Some(vec![1u8; 16]), None, Some(vec![2u8; 16])];
        pool.recycle_stripe(&mut stripe);
        assert_eq!(pool.available(), 2);
        assert!(stripe.iter().all(Option::is_none));
    }

    #[test]
    fn hit_miss_counters_advance() {
        let hits0 = metrics().hits.get();
        let misses0 = metrics().misses.get();
        let mut pool = BlockPool::new();
        let buf = pool.take_zeroed(8); // miss
        pool.recycle(buf);
        let _ = pool.take_zeroed(8); // hit
        assert!(metrics().hits.get() > hits0);
        assert!(metrics().misses.get() > misses0);
    }

    #[test]
    fn thread_pool_is_warm_within_a_thread() {
        let first = with_thread_pool(|p| {
            let buf = p.take_zeroed(32);
            let ptr = buf.as_ptr() as usize;
            p.recycle(buf);
            ptr
        });
        let second = with_thread_pool(|p| {
            let buf = p.take_zeroed(32);
            buf.as_ptr() as usize
        });
        assert_eq!(first, second, "same thread reuses the same buffer");
    }
}
