//! Systematic Reed–Solomon erasure coding over GF(2⁸) — the baseline the
//! Tornado literature measures against.
//!
//! The paper's §2.1 rests on two published comparisons: Typhoon "found that
//! Tornado Codes encode and decode files in substantially less time than
//! Reed-Solomon codes", and Plank compared realized LDPC codes against
//! Reed–Solomon. This module provides that baseline so the claim is
//! measurable in this workspace (see the `rs_comparison` bench): a
//! systematic `(n, k)` code built from a Vandermonde-derived generator
//! matrix, encoding by dense matrix multiply (O(k) field multiplies per
//! parity byte) and decoding by Gaussian elimination over the surviving
//! rows — MDS, so *any* `k` of `n` blocks reconstruct, at quadratic cost
//! where the Tornado peeler is linear.

use crate::error::CodecError;
use crate::gf256::Gf256;

/// A systematic Reed–Solomon erasure code with `k` data and `n − k` parity
/// blocks (`n ≤ 255`).
pub struct ReedSolomon {
    k: usize,
    n: usize,
    field: Gf256,
    /// Parity rows of the generator matrix: `(n − k) × k`.
    parity_rows: Vec<Vec<u8>>,
}

/// Inverts a square GF(256) matrix by Gauss–Jordan elimination.
///
/// # Panics
/// Panics if the matrix is singular (cannot happen for the Vandermonde
/// blocks this module feeds it).
fn invert(field: &Gf256, m: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let k = m.len();
    let mut a: Vec<Vec<u8>> = m.to_vec();
    let mut inv: Vec<Vec<u8>> = (0..k)
        .map(|r| (0..k).map(|c| u8::from(r == c)).collect())
        .collect();
    for col in 0..k {
        let pivot = (col..k)
            .find(|&r| a[r][col] != 0)
            .expect("matrix is singular");
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let scale = field.inv(a[col][col]);
        for c in 0..k {
            a[col][c] = field.mul(a[col][c], scale);
            inv[col][c] = field.mul(inv[col][c], scale);
        }
        let arow = a[col].clone();
        let irow = inv[col].clone();
        for r in 0..k {
            if r != col && a[r][col] != 0 {
                let factor = a[r][col];
                for c in 0..k {
                    a[r][c] = Gf256::add(a[r][c], field.mul(factor, arow[c]));
                    inv[r][c] = Gf256::add(inv[r][c], field.mul(factor, irow[c]));
                }
            }
        }
    }
    inv
}

impl ReedSolomon {
    /// Creates an `(n, k)` code (e.g. `n = 96`, `k = 48` to mirror the
    /// Tornado configuration).
    ///
    /// # Panics
    /// Panics unless `0 < k < n ≤ 255`.
    pub fn new(k: usize, n: usize) -> Self {
        assert!(k > 0 && k < n && n <= 255, "need 0 < k < n <= 255");
        let field = Gf256::new();
        // Standard systematic MDS construction: build the (n × k)
        // Vandermonde V over n distinct evaluation points, then
        // right-multiply by the inverse of its top k×k block:
        // G = V · V_top⁻¹. The top of G becomes the identity, and because
        // every k×k minor of V is non-singular (distinct points) and
        // right-multiplication by an invertible matrix preserves that,
        // any k rows of G remain independent — the MDS property.
        let v: Vec<Vec<u8>> = (0..n)
            .map(|r| (0..k).map(|c| field.pow((r + 1) as u8, c)).collect())
            .collect();
        let top_inv = invert(&field, &v[..k]);
        let parity_rows: Vec<Vec<u8>> = (k..n)
            .map(|r| {
                (0..k)
                    .map(|c| {
                        let mut acc = 0u8;
                        for (j, &coef) in v[r].iter().enumerate() {
                            acc = Gf256::add(acc, field.mul(coef, top_inv[j][c]));
                        }
                        acc
                    })
                    .collect()
            })
            .collect();
        Self { k, n, field, parity_rows }
    }

    /// Number of data blocks.
    pub fn data_blocks(&self) -> usize {
        self.k
    }

    /// Total stored blocks.
    pub fn total_blocks(&self) -> usize {
        self.n
    }

    /// Encodes `k` equal-length data blocks into `n` stored blocks (data
    /// first — the code is systematic).
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodecError> {
        if data.len() != self.k {
            return Err(CodecError::WrongBlockCount {
                got: data.len(),
                expected: self.k,
            });
        }
        let block_len = data.first().map(|b| b.len()).unwrap_or(0);
        for (i, b) in data.iter().enumerate() {
            if b.len() != block_len {
                return Err(CodecError::UnequalBlockLengths {
                    index: i,
                    expected: block_len,
                    got: b.len(),
                });
            }
        }
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(self.n);
        out.extend(data.iter().cloned());
        for row in &self.parity_rows {
            let mut acc = crate::pool::with_thread_pool(|p| p.take_zeroed(block_len));
            for (c, &coef) in row.iter().enumerate() {
                self.field.mul_acc(&mut acc, &data[c], coef);
            }
            out.push(acc);
        }
        Ok(out)
    }

    /// Row of the effective generator matrix for stored block `i`: identity
    /// rows for data blocks, parity rows after.
    fn generator_row(&self, i: usize) -> Vec<u8> {
        if i < self.k {
            let mut row = vec![0u8; self.k];
            row[i] = 1;
            row
        } else {
            self.parity_rows[i - self.k].clone()
        }
    }

    /// Decodes a stripe in place: any `k` present blocks reconstruct all
    /// data (and the report lists recovered data indices). Returns
    /// `lost_data` non-empty only when fewer than `k` blocks survive.
    pub fn decode(&self, stored: &mut [Option<Vec<u8>>]) -> Result<crate::DecodeReport, CodecError> {
        if stored.len() != self.n {
            return Err(CodecError::WrongStripeWidth {
                got: stored.len(),
                expected: self.n,
            });
        }
        let block_len = match stored.iter().flatten().next() {
            Some(b) => b.len(),
            None => return Err(CodecError::EmptyStripe),
        };
        for (i, b) in stored.iter().enumerate() {
            if let Some(b) = b {
                if b.len() != block_len {
                    return Err(CodecError::UnequalBlockLengths {
                        index: i,
                        expected: block_len,
                        got: b.len(),
                    });
                }
            }
        }
        let missing_data: Vec<u32> = (0..self.k as u32)
            .filter(|&i| stored[i as usize].is_none())
            .collect();
        if missing_data.is_empty() {
            return Ok(crate::DecodeReport {
                lost_data: vec![],
                recovered: vec![],
                recovery_depth: 0,
            });
        }
        let present: Vec<usize> = (0..self.n).filter(|&i| stored[i].is_some()).collect();
        if present.len() < self.k {
            return Ok(crate::DecodeReport {
                lost_data: missing_data,
                recovered: vec![],
                recovery_depth: 0,
            });
        }
        // Solve A · data = observed for the first k present blocks.
        let rows: Vec<usize> = present[..self.k].to_vec();
        let mut a: Vec<Vec<u8>> = rows.iter().map(|&r| self.generator_row(r)).collect();
        let mut b: Vec<Vec<u8>> = crate::pool::with_thread_pool(|p| {
            rows.iter()
                .map(|&r| p.take_copy(stored[r].as_deref().expect("present")))
                .collect()
        });
        // Gauss–Jordan elimination (any k rows of an MDS generator are
        // independent, so pivots always exist).
        for col in 0..self.k {
            let pivot = (col..self.k)
                .find(|&r| a[r][col] != 0)
                .expect("MDS submatrix is invertible");
            a.swap(col, pivot);
            b.swap(col, pivot);
            let inv = self.field.inv(a[col][col]);
            for cell in a[col].iter_mut() {
                *cell = self.field.mul(*cell, inv);
            }
            for byte in b[col].iter_mut() {
                *byte = self.field.mul(*byte, inv);
            }
            let acol = a[col].clone();
            let bcol = crate::pool::with_thread_pool(|p| p.take_copy(&b[col]));
            for r in 0..self.k {
                if r != col && a[r][col] != 0 {
                    let factor = a[r][col];
                    for c in 0..self.k {
                        a[r][c] = Gf256::add(a[r][c], self.field.mul(factor, acol[c]));
                    }
                    self.field.mul_acc(&mut b[r], &bcol, factor);
                }
            }
            crate::pool::with_thread_pool(|p| p.recycle(bcol));
        }
        // b now holds the data blocks in order; fill the gaps and recycle
        // the solved rows whose slots were already present.
        let mut recovered = Vec::new();
        for (i, block) in b.into_iter().enumerate() {
            if stored[i].is_none() {
                stored[i] = Some(block);
                recovered.push(i as u32);
            } else {
                crate::pool::with_thread_pool(|p| p.recycle(block));
            }
        }
        // MDS solve: every recovered block comes straight from surviving
        // blocks, so the dependency chain is flat.
        let recovery_depth = u64::from(!recovered.is_empty());
        Ok(crate::DecodeReport {
            lost_data: vec![],
            recovered,
            recovery_depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| ((i * 131 + j * 17) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(4, 8);
        let data = sample_data(4, 16);
        let blocks = rs.encode(&data).unwrap();
        assert_eq!(blocks.len(), 8);
        assert_eq!(&blocks[..4], &data[..]);
    }

    #[test]
    fn any_k_of_n_reconstructs() {
        // MDS property, exhaustively for a small code: every 4-of-8 subset.
        let rs = ReedSolomon::new(4, 8);
        let data = sample_data(4, 8);
        let blocks = rs.encode(&data).unwrap();
        let mut it = tornado_bitset::CombinationIter::new(8, 4);
        while let Some(keep) = it.next_slice() {
            let mut stored: Vec<Option<Vec<u8>>> = vec![None; 8];
            for &i in keep {
                stored[i] = Some(blocks[i].clone());
            }
            let report = rs.decode(&mut stored).unwrap();
            assert!(report.lost_data.is_empty(), "keep {keep:?}");
            for i in 0..4 {
                assert_eq!(stored[i].as_deref().unwrap(), &data[i][..], "keep {keep:?}");
            }
        }
    }

    #[test]
    fn fewer_than_k_blocks_is_reported_lost() {
        let rs = ReedSolomon::new(4, 8);
        let blocks = rs.encode(&sample_data(4, 8)).unwrap();
        let mut stored: Vec<Option<Vec<u8>>> = vec![None; 8];
        stored[2] = Some(blocks[2].clone());
        stored[5] = Some(blocks[5].clone());
        stored[7] = Some(blocks[7].clone());
        let report = rs.decode(&mut stored).unwrap();
        assert_eq!(report.lost_data, vec![0, 1, 3]);
    }

    #[test]
    fn paper_scale_roundtrip() {
        let rs = ReedSolomon::new(48, 96);
        let data = sample_data(48, 64);
        let blocks = rs.encode(&data).unwrap();
        // Lose 48 blocks — exactly the information-theoretic limit.
        let mut stored: Vec<Option<Vec<u8>>> = blocks.iter().cloned().map(Some).collect();
        for i in 0..48 {
            stored[(i * 2) % 96] = None; // all even positions
        }
        let report = rs.decode(&mut stored).unwrap();
        assert!(report.lost_data.is_empty());
        for i in 0..48 {
            assert_eq!(stored[i].as_deref().unwrap(), &data[i][..]);
        }
    }

    #[test]
    fn shape_errors() {
        let rs = ReedSolomon::new(4, 8);
        assert!(matches!(
            rs.encode(&sample_data(3, 8)),
            Err(CodecError::WrongBlockCount { .. })
        ));
        let mut uneven = sample_data(4, 8);
        uneven[1] = vec![0; 7];
        assert!(matches!(
            rs.encode(&uneven),
            Err(CodecError::UnequalBlockLengths { .. })
        ));
        let mut short: Vec<Option<Vec<u8>>> = vec![Some(vec![0; 4]); 7];
        assert!(matches!(
            rs.decode(&mut short),
            Err(CodecError::WrongStripeWidth { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "0 < k < n")]
    fn rejects_degenerate_parameters() {
        ReedSolomon::new(8, 8);
    }

    #[test]
    fn no_losses_is_a_fast_noop() {
        let rs = ReedSolomon::new(4, 8);
        let blocks = rs.encode(&sample_data(4, 8)).unwrap();
        let mut stored: Vec<Option<Vec<u8>>> = blocks.into_iter().map(Some).collect();
        let report = rs.decode(&mut stored).unwrap();
        assert!(report.recovered.is_empty());
    }
}
