//! The dense reference peeling kernel.
//!
//! This is the original O(n + checks)-reset decoder: per-trial it refills
//! the full availability and missing-count arrays and scans *every* check
//! to seed the worklist. It is retained verbatim for two reasons:
//!
//! * **Parity oracle** — the property suite in `tests/kernel_parity.rs`
//!   asserts the sparse epoch-stamped kernel ([`crate::ErasureDecoder`])
//!   reaches exactly the same fixpoint (success flag, lost sets) on random
//!   graphs × random erasure patterns.
//! * **Benchmark baseline** — the `decode_trial` criterion bench and the
//!   `BENCH_decode_trial.json` emitter report sparse-vs-dense throughput,
//!   tracking the speedup from PR 1 onward.
//!
//! Do not optimise this module; its value is being the simple, obviously
//! correct formulation of the peeling fixpoint.

use crate::erasure::{DecodeDetail, RecoveryStep};
use tornado_graph::{Graph, NodeId};

/// Reference peeling decoder with dense per-trial reset.
///
/// Semantically identical to [`crate::ErasureDecoder`]; kept as the simple
/// formulation (see module docs). The recovery schedules of the two kernels
/// may order independent steps differently — both are valid schedules and
/// both reach the same fixpoint.
pub struct DenseDecoder<'g> {
    graph: &'g Graph,
    /// Availability per node.
    available: Vec<bool>,
    /// Missing-left-neighbour count per check (indexed by check ordinal).
    missing_count: Vec<u16>,
    /// Worklist of check ids to (re)examine.
    stack: Vec<NodeId>,
    /// Number of data nodes still missing.
    missing_data: usize,
}

impl<'g> DenseDecoder<'g> {
    /// Creates a decoder bound to `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        Self {
            graph,
            available: vec![true; graph.num_nodes()],
            missing_count: vec![0; graph.num_checks()],
            stack: Vec::with_capacity(graph.num_checks()),
            missing_data: 0,
        }
    }

    /// The graph this decoder runs over.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    fn reset(&mut self, missing: &[usize]) {
        self.available.fill(true);
        self.missing_count.fill(0);
        self.stack.clear();
        self.missing_data = 0;
        let num_data = self.graph.num_data();
        for &m in missing {
            debug_assert!(m < self.graph.num_nodes(), "missing index out of range");
            if !std::mem::replace(&mut self.available[m], false) {
                continue; // duplicate in the pattern
            }
            if m < num_data {
                self.missing_data += 1;
            }
            for &c in self.graph.checks_of(m as NodeId) {
                self.missing_count[(c as usize) - num_data] += 1;
            }
        }
        // Dense seeding: scan every check for initial actionability.
        for c in self.graph.check_ids() {
            if self.actionable(c) {
                self.stack.push(c);
            }
        }
    }

    /// Whether check `c` can make progress right now.
    fn actionable(&self, c: NodeId) -> bool {
        let cnt = self.missing_count[c as usize - self.graph.num_data()];
        let avail = self.available[c as usize];
        (avail && cnt == 1) || (!avail && cnt == 0)
    }

    /// Marks `node` available and propagates to the checks that use it.
    fn make_available(&mut self, node: NodeId) {
        debug_assert!(!self.available[node as usize]);
        self.available[node as usize] = true;
        if self.graph.is_data(node) {
            self.missing_data -= 1;
        }
        for &c in self.graph.checks_of(node) {
            let slot = c as usize - self.graph.num_data();
            self.missing_count[slot] -= 1;
            if self.actionable(c) {
                self.stack.push(c);
            }
        }
        // A check that just became available may immediately peel.
        if self.graph.is_check(node) && self.actionable(node) {
            self.stack.push(node);
        }
    }

    /// Runs peeling to fixpoint (or until all data is recovered when
    /// `early_exit` is set). Returns whether all data nodes are available.
    fn run(&mut self, early_exit: bool, mut schedule: Option<&mut Vec<RecoveryStep>>) -> bool {
        let num_data = self.graph.num_data();
        while let Some(c) = self.stack.pop() {
            if early_exit && self.missing_data == 0 {
                return true;
            }
            let slot = c as usize - num_data;
            let cnt = self.missing_count[slot];
            if self.available[c as usize] {
                if cnt == 1 {
                    let missing = self
                        .graph
                        .check_neighbors(c)
                        .iter()
                        .copied()
                        .find(|&n| !self.available[n as usize])
                        .expect("missing_count said one neighbour is missing");
                    if let Some(s) = schedule.as_deref_mut() {
                        s.push(RecoveryStep::Peel { node: missing, via: c });
                    }
                    self.make_available(missing);
                }
            } else if cnt == 0 {
                if let Some(s) = schedule.as_deref_mut() {
                    s.push(RecoveryStep::Reencode { node: c });
                }
                self.make_available(c);
            }
        }
        self.missing_data == 0
    }

    /// Decodes one erasure pattern; returns whether reconstruction succeeds.
    pub fn decode(&mut self, missing: &[usize]) -> bool {
        self.reset(missing);
        if self.missing_data == 0 {
            return true;
        }
        self.run(true, None)
    }

    /// Decodes and reports which nodes stayed lost plus the recovery
    /// schedule (runs to full fixpoint; no early exit).
    pub fn decode_detailed(&mut self, missing: &[usize]) -> DecodeDetail {
        self.reset(missing);
        let mut schedule = Vec::new();
        let success = self.run(false, Some(&mut schedule));
        let lost_nodes: Vec<NodeId> = (0..self.graph.num_nodes() as NodeId)
            .filter(|&n| !self.available[n as usize])
            .collect();
        let lost_data: Vec<NodeId> = lost_nodes
            .iter()
            .copied()
            .filter(|&n| self.graph.is_data(n))
            .collect();
        DecodeDetail {
            success,
            lost_data,
            lost_nodes,
            schedule,
        }
    }

    /// Availability of `node` after the last decode call.
    pub fn is_available(&self, node: NodeId) -> bool {
        self.available[node as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_graph::GraphBuilder;

    #[test]
    fn dense_kernel_still_decodes() {
        // data 0..4; checks: 4 = 0^1, 5 = 2^3, 6 = 4^5.
        let mut b = GraphBuilder::new(4);
        b.begin_level("c1");
        b.add_check(&[0, 1]);
        b.add_check(&[2, 3]);
        b.begin_level("c2");
        b.add_check(&[4, 5]);
        let g = b.build().unwrap();
        let mut d = DenseDecoder::new(&g);
        assert!(d.decode(&[0]));
        assert!(d.decode(&[0, 4]));
        assert!(!d.decode(&[0, 1]));
        assert!(d.decode(&[4, 5, 6]));
        let detail = d.decode_detailed(&[0, 1]);
        assert!(!detail.success);
        assert_eq!(detail.lost_data, vec![0, 1]);
    }
}
