//! Word-wide / byte-serial data-plane parity properties.
//!
//! The word-wide kernels ([`tornado_codec::kernels`]) must produce exactly
//! the bytes of the byte-serial `scalar` oracle on every length (including
//! empty, sub-word, and odd tails), every slice offset (the word body
//! aligns to `dst`, so misaligned slices exercise the head/tail splits),
//! and every coefficient (including the peeled `c == 0` / `c == 1`
//! cases). On top of the kernel-level properties, a full encode → erase →
//! decode round trip is run through both dispatch paths at block sizes
//! from one byte to 64 KiB and must be bit-identical.

use proptest::prelude::*;
use tornado_codec::gf256::Gf256;
use tornado_codec::{kernels, Codec};
use tornado_gen::mirror::generate_mirror;

/// Deterministic pseudo-random bytes, xorshift-style like the other
/// property suites in this workspace.
fn bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as u8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn xor_matches_scalar(len in 0usize..257, offset in 0usize..8, seed in any::<u64>()) {
        let src = bytes(len + offset, seed);
        let mut word = bytes(len + offset, seed ^ 0x9E37_79B9);
        let mut byte = word.clone();
        kernels::xor_into(&mut word[offset..], &src[offset..]);
        kernels::scalar::xor_into(&mut byte[offset..], &src[offset..]);
        prop_assert_eq!(word, byte);
    }

    #[test]
    fn mul_acc_matches_scalar(
        len in 0usize..257,
        offset in 0usize..8,
        c in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let f = Gf256::new();
        let src = bytes(len + offset, seed);
        let mut word = bytes(len + offset, seed ^ 0x517C_C1B7);
        let mut byte = word.clone();
        kernels::mul_acc(&f, &mut word[offset..], &src[offset..], c);
        if c != 0 {
            kernels::scalar::mul_acc(&f, &mut byte[offset..], &src[offset..], c);
        }
        prop_assert_eq!(word, byte, "c = {}", c);
    }

    #[test]
    fn mul_table_matches_field_on_random_bytes(
        c in any::<u8>(),
        b in any::<u8>(),
    ) {
        let f = Gf256::new();
        let t = kernels::MulTable::new(&f, c);
        prop_assert_eq!(t.mul(b), f.mul(c, b));
    }

    #[test]
    fn checksum_matches_scalar(len in 0usize..257, offset in 0usize..8, seed in any::<u64>()) {
        let buf = bytes(len + offset, seed);
        prop_assert_eq!(
            kernels::checksum(&buf[offset..]),
            kernels::scalar::checksum(&buf[offset..]),
        );
    }

    #[test]
    fn checksum_is_sensitive_to_any_single_byte(
        len in 1usize..257,
        seed in any::<u64>(),
        pos_seed in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let mut buf = bytes(len, seed);
        let clean = kernels::checksum(&buf);
        let pos = (pos_seed % len as u64) as usize;
        buf[pos] ^= mask;
        prop_assert_ne!(kernels::checksum(&buf), clean, "flip at {} of {}", pos, len);
    }

    #[test]
    fn checksum_distinguishes_truncation(len in 1usize..257, seed in any::<u64>()) {
        // A digest that ignored length would accept a block truncated at a
        // zero tail; the length fold must catch it.
        let mut buf = bytes(len, seed);
        *buf.last_mut().unwrap() = 0;
        prop_assert_ne!(
            kernels::checksum(&buf),
            kernels::checksum(&buf[..len - 1]),
        );
    }
}

/// Encode → erase → decode, bit-identical through both dispatch paths.
///
/// All `force_scalar` toggling lives in this one test: the switch is
/// process-wide, and the kernel-level properties above compare outputs
/// (identical on either path), so they stay valid regardless of which
/// path a concurrent toggle routes them through.
#[test]
fn round_trip_is_bit_identical_across_dispatch() {
    let graph = generate_mirror(12).expect("mirror graph");
    let codec = Codec::new(&graph);
    let k = graph.num_data();
    for block_len in [1usize, 7, 4096, 65536] {
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| bytes(block_len, (block_len as u64) << 8 | i as u64))
            .collect();

        kernels::set_force_scalar(true);
        let scalar_blocks = codec.encode(&data).expect("scalar encode");
        let scalar_sums: Vec<u64> =
            scalar_blocks.iter().map(|b| kernels::checksum(b)).collect();
        kernels::set_force_scalar(false);
        let word_blocks = codec.encode(&data).expect("word encode");
        let word_sums: Vec<u64> = word_blocks.iter().map(|b| kernels::checksum(b)).collect();
        assert_eq!(scalar_blocks, word_blocks, "encode at block {block_len}");
        assert_eq!(scalar_sums, word_sums, "checksum dispatch at block {block_len}");

        for force in [true, false] {
            kernels::set_force_scalar(force);
            let mut stored: Vec<Option<Vec<u8>>> =
                word_blocks.iter().cloned().map(Some).collect();
            stored[0] = None;
            stored[k - 1] = None;
            let report = codec.decode(&mut stored).expect("decode");
            assert!(report.complete(), "force {force} block {block_len}");
            for (i, b) in stored.iter().enumerate() {
                assert_eq!(
                    b.as_deref(),
                    Some(&word_blocks[i][..]),
                    "node {i} force {force} block {block_len}"
                );
            }
        }
        kernels::set_force_scalar(false);
    }
}
