//! Sparse-kernel / dense-reference parity properties.
//!
//! The epoch-stamped sparse-reset decoder (`ErasureDecoder`) must reach
//! exactly the same peeling fixpoint as the retained dense formulation
//! (`reference::DenseDecoder`) on every graph × erasure pattern: same
//! success verdict, same lost-node sets, and a *valid* recovery schedule
//! (schedules may order independent steps differently, so they are checked
//! by replay, not by equality).

use proptest::prelude::*;
use std::collections::BTreeSet;
use tornado_codec::reference::DenseDecoder;
use tornado_codec::{DecodeDetail, ErasureDecoder, RecoveryStep};
use tornado_gen::cascaded::generate_fixed_degree;
use tornado_gen::mirror::generate_mirror;
use tornado_gen::regular::generate_regular;
use tornado_gen::TornadoParams;
use tornado_graph::Graph;

/// Builds one of the generator families from flattened parameters.
/// Families whose random matching can fail for a given seed are skipped
/// via `None` (the caller `prop_assume`s them away).
fn build_graph(kind: usize, size: usize, degree: u32, seed: u64) -> Option<Graph> {
    match kind {
        // Mirrored pairs: 8..=128 nodes.
        0 => generate_mirror(size.clamp(4, 64)).ok(),
        // Single-stage biregular: 12..=128 nodes.
        1 => generate_regular(size.clamp(6, 64), degree.clamp(2, 4), seed).ok(),
        // Cascaded fixed-degree: 16..=128 nodes, multi-level.
        _ => {
            let params = TornadoParams {
                num_data: size.clamp(8, 64),
                max_degree_d: 8,
                min_final_level: 4,
            };
            generate_fixed_degree(params, degree.clamp(2, 3), seed).ok()
        }
    }
}

/// Derives a pseudo-random erasure pattern (possibly with duplicates —
/// the decoders must tolerate them) from a seed, xorshift-style like the
/// other property suites in this workspace.
fn derive_pattern(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut s = seed | 1;
    (0..k)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % n as u64) as usize
        })
        .collect()
}

/// Replays `detail.schedule` from the initial erasure state, asserting
/// every step's precondition, and checks the fixpoint matches the reported
/// lost sets.
fn validate_schedule(g: &Graph, pattern: &[usize], detail: &DecodeDetail) {
    let mut missing: BTreeSet<usize> = pattern.iter().copied().collect();
    for step in &detail.schedule {
        match *step {
            RecoveryStep::Peel { node, via } => {
                assert!(g.is_check(via), "peel via a non-check node {via}");
                assert!(
                    !missing.contains(&(via as usize)),
                    "peel via missing check {via}"
                );
                assert!(
                    missing.remove(&(node as usize)),
                    "peeled node {node} was not missing"
                );
                for &nbr in g.check_neighbors(via) {
                    assert!(
                        !missing.contains(&(nbr as usize)),
                        "check {via} peeled {node} while neighbour {nbr} was also missing"
                    );
                }
            }
            RecoveryStep::Reencode { node } => {
                assert!(g.is_check(node), "re-encoded a non-check node {node}");
                for &nbr in g.check_neighbors(node) {
                    assert!(
                        !missing.contains(&(nbr as usize)),
                        "re-encoded check {node} while input {nbr} was missing"
                    );
                }
                assert!(
                    missing.remove(&(node as usize)),
                    "re-encoded node {node} was not missing"
                );
            }
        }
    }
    let lost: Vec<u32> = missing.iter().map(|&n| n as u32).collect();
    assert_eq!(lost, detail.lost_nodes, "replayed fixpoint disagrees");
}

/// Guards the `prop_assume(g.is_some())` filters above: if a generator
/// family started failing wholesale, the properties would silently pass on
/// an empty sample.
#[test]
fn every_generator_family_mostly_builds() {
    for kind in 0..3usize {
        let mut ok = 0;
        let mut total = 0;
        for size in [4usize, 16, 33, 48, 64] {
            for degree in 2u32..=4 {
                for seed in 0..4u64 {
                    total += 1;
                    if build_graph(kind, size, degree, seed).is_some() {
                        ok += 1;
                    }
                }
            }
        }
        assert!(
            ok * 2 >= total,
            "generator family {kind} built only {ok}/{total} graphs"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The sparse kernel and the dense reference agree on success, lost
    /// sets, and availability, and both schedules replay cleanly.
    #[test]
    fn sparse_and_dense_reach_the_same_fixpoint(
        kind in 0usize..3,
        size in 4usize..=64,
        degree in 2u32..=4,
        graph_seed in any::<u64>(),
        k in 0usize..=10,
        pattern_seed in any::<u64>(),
    ) {
        let g = build_graph(kind, size, degree, graph_seed);
        prop_assume!(g.is_some());
        let g = g.unwrap();
        let pattern = derive_pattern(g.num_nodes(), k, pattern_seed);

        let mut sparse = ErasureDecoder::new(&g);
        let mut dense = DenseDecoder::new(&g);

        prop_assert_eq!(sparse.decode(&pattern), dense.decode(&pattern));

        let s = sparse.decode_detailed(&pattern);
        let d = dense.decode_detailed(&pattern);
        prop_assert_eq!(s.success, d.success);
        prop_assert_eq!(&s.lost_data, &d.lost_data);
        prop_assert_eq!(&s.lost_nodes, &d.lost_nodes);
        validate_schedule(&g, &pattern, &s);
        validate_schedule(&g, &pattern, &d);
        for node in 0..g.num_nodes() as u32 {
            prop_assert_eq!(sparse.is_available(node), dense.is_available(node));
        }
    }

    /// The prefix-reuse path (begin_pattern + repeated decode_tail) gives
    /// the same verdicts as one-shot dense decodes, and the rewind leaks no
    /// state between tails.
    #[test]
    fn prefix_reuse_matches_dense_across_many_tails(
        kind in 0usize..3,
        size in 4usize..=48,
        degree in 2u32..=4,
        graph_seed in any::<u64>(),
        prefix_k in 0usize..=5,
        pattern_seed in any::<u64>(),
    ) {
        let g = build_graph(kind, size, degree, graph_seed);
        prop_assume!(g.is_some());
        let g = g.unwrap();
        let n = g.num_nodes();
        let prefix = derive_pattern(n, prefix_k, pattern_seed);

        let mut sparse = ErasureDecoder::new(&g);
        let mut dense = DenseDecoder::new(&g);
        sparse.begin_pattern(&prefix);
        // Sweep every 1-element tail, then a few 2-element tails; a rewind
        // bug in one trial shows up as a wrong verdict in a later one.
        for t in 0..n {
            let mut full = prefix.clone();
            full.push(t);
            prop_assert_eq!(
                sparse.decode_tail(&[t]),
                dense.decode(&full),
                "prefix {:?} tail [{}]", &prefix, t
            );
        }
        for t in 0..n.min(16) {
            let tail = [t, (t + 7) % n];
            let mut full = prefix.clone();
            full.extend_from_slice(&tail);
            prop_assert_eq!(
                sparse.decode_tail(&tail),
                dense.decode(&full),
                "prefix {:?} tail {:?}", &prefix, &tail
            );
        }
    }

    /// decode_batch agrees with per-pattern dense decodes and reports each
    /// failing pattern exactly once, in order.
    #[test]
    fn decode_batch_matches_dense(
        kind in 0usize..3,
        size in 4usize..=48,
        degree in 2u32..=4,
        graph_seed in any::<u64>(),
        k in 1usize..=6,
        pattern_seed in any::<u64>(),
    ) {
        let g = build_graph(kind, size, degree, graph_seed);
        prop_assume!(g.is_some());
        let g = g.unwrap();
        let n = g.num_nodes();
        let patterns: Vec<Vec<usize>> = (0..32u64)
            .map(|i| {
                let mut p = derive_pattern(n, k, pattern_seed ^ i);
                // Sorted patterns exercise the shared-prefix fast path.
                p.sort_unstable();
                p
            })
            .collect();

        let mut dense = DenseDecoder::new(&g);
        let expected_failures: Vec<Vec<usize>> = patterns
            .iter()
            .filter(|p| !dense.decode(p))
            .cloned()
            .collect();

        let mut sparse = ErasureDecoder::new(&g);
        let mut reported: Vec<Vec<usize>> = Vec::new();
        let stats = sparse.decode_batch(patterns.iter().map(|p| p.as_slice()), |p| {
            reported.push(p.to_vec());
        });
        prop_assert_eq!(stats.trials, patterns.len() as u64);
        prop_assert_eq!(stats.failures, expected_failures.len() as u64);
        prop_assert_eq!(reported, expected_failures);
    }
}
