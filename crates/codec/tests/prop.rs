//! Property-based tests for the codecs.

use proptest::prelude::*;
use tornado_codec::ReedSolomon;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MDS property: any k surviving blocks of an (n, k) Reed–Solomon
    /// stripe reconstruct the data exactly.
    #[test]
    fn rs_any_k_survivors_reconstruct(
        k in 1usize..8,
        extra in 1usize..8,
        block_len in 1usize..32,
        seed in any::<u64>(),
    ) {
        let n = k + extra;
        let rs = ReedSolomon::new(k, n);
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..block_len).map(|j| (i * 89 + j * 3 + seed as usize) as u8).collect())
            .collect();
        let blocks = rs.encode(&data).expect("encode");

        // Pick a pseudo-random k-subset of survivors from the seed.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = seed | 1;
        for i in (1..n).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let survivors = &order[..k];
        let mut stored: Vec<Option<Vec<u8>>> = vec![None; n];
        for &i in survivors {
            stored[i] = Some(blocks[i].clone());
        }
        let report = rs.decode(&mut stored).expect("decode");
        prop_assert!(report.lost_data.is_empty(), "survivors {survivors:?}");
        for i in 0..k {
            prop_assert_eq!(stored[i].as_deref().unwrap(), &data[i][..]);
        }
    }

    /// Below k survivors, decode reports exactly the missing data blocks
    /// and never fabricates content.
    #[test]
    fn rs_below_threshold_reports_losses(k in 2usize..6, extra in 1usize..5, seed in any::<u64>()) {
        let n = k + extra;
        let rs = ReedSolomon::new(k, n);
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; 8]).collect();
        let blocks = rs.encode(&data).expect("encode");
        // Keep exactly k − 1 blocks.
        let keep = (seed as usize) % n;
        let mut stored: Vec<Option<Vec<u8>>> = vec![None; n];
        let mut kept = 0;
        for i in 0..n {
            if kept < k - 1 && (i + keep).is_multiple_of(2) {
                stored[i] = Some(blocks[i].clone());
                kept += 1;
            }
        }
        if stored.iter().all(|b| b.is_none()) {
            stored[0] = Some(blocks[0].clone());
        }
        let report = rs.decode(&mut stored).expect("decode");
        for d in 0..k as u32 {
            let present = stored[d as usize].is_some();
            prop_assert_eq!(
                report.lost_data.contains(&d),
                !present,
                "block {} presence mismatch", d
            );
        }
    }
}
