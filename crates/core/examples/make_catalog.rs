//! Regenerates the embedded graph catalog (`crates/core/assets/`).
//!
//! Runs the full §3 pipeline over successive seeds, keeps the first three
//! 96-node graphs certified to survive any four losses, measures their
//! k = 5 failure counts, and writes the GraphML assets plus a provenance
//! summary. Run in release:
//!
//! ```text
//! cargo run --release -p tornado-core --example make_catalog
//! ```

use tornado_core::pipeline::{build_profiled_graph, PipelineConfig};
use tornado_sim::worst_case::search_level;

fn main() {
    let mut kept = 0usize;
    let mut seed = 1u64;
    let mut provenance = String::new();
    while kept < 3 {
        let cfg = PipelineConfig {
            seed,
            ..PipelineConfig::default()
        };
        let profiled = match build_profiled_graph(&cfg) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("seed {seed}: generation failed: {e}");
                seed += 1;
                continue;
            }
        };
        if !profiled.achieved_target(cfg.adjust.target_first_failure) {
            eprintln!(
                "seed {seed}: stalled at first failure {:?}",
                profiled.first_failure
            );
            seed += 1;
            continue;
        }
        // Characterise the first failing level (the paper reports e.g. "14
        // losses out of 61,124,064" at k = 5).
        let l5 = search_level(&profiled.graph, 5, 64);
        kept += 1;
        let path = format!("crates/core/assets/tornado_graph_{kept}.graphml");
        std::fs::write(&path, tornado_graph::graphml::to_graphml(&profiled.graph)).unwrap();
        let line = format!(
            "graph {kept}: seed {seed}, attempts {}, adjustments {}, fingerprint {:#018x}, k5 failures {}/{}\n",
            profiled.generation_attempts,
            profiled.adjustment_steps.len(),
            profiled.graph.fingerprint(),
            l5.failures,
            l5.cases,
        );
        print!("{line}");
        provenance.push_str(&line);
        seed += 1;
    }
    std::fs::write("crates/core/assets/PROVENANCE.txt", provenance).unwrap();
}
