//! High-level Tornado Code pipeline — the paper's end-to-end procedure for
//! producing storage-grade graphs.
//!
//! The paper's conclusion is operational: "A storage system using Tornado
//! Codes where data loss must be avoided should use precompiled graphs and
//! not random graphs, or perform basic worst-case fault detection on new
//! graphs before use." This crate provides both halves:
//!
//! * [`pipeline`] — generate → structural screen → worst-case test →
//!   feedback adjustment → verify: the §3 procedure as one call, producing
//!   a [`pipeline::ProfiledGraph`] with its certification attached;
//! * [`catalog`] — precompiled 96-node graphs ("Tornado Graph 1–3" in the
//!   paper's numbering) produced by that pipeline, embedded as GraphML and
//!   pinned by fingerprint, each certified to survive any four device
//!   failures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod pipeline;

pub use catalog::{tornado_graph_1, tornado_graph_2, tornado_graph_3};
pub use pipeline::{build_profiled_graph, PipelineConfig, ProfiledGraph};
