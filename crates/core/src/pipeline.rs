//! The generate → screen → test → adjust → verify pipeline (paper §3).

use tornado_analysis::{adjust_graph, AdjustConfig, AdjustmentStep};
use tornado_gen::{GenError, TornadoGenerator, TornadoParams};
use tornado_graph::Graph;
use tornado_sim::{worst_case_search, WorstCaseConfig};

/// Configuration of the full pipeline.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Tornado generation parameters.
    pub params: TornadoParams,
    /// Structural screen: reject graphs with stopping sets of this size or
    /// smaller among the data nodes (the paper screens the "two- and
    /// three-node overlapping sets").
    pub screen_size: usize,
    /// Generation attempts before giving up on the screen.
    pub screen_attempts: usize,
    /// Adjustment loop configuration (target first failure etc.).
    pub adjust: AdjustConfig,
    /// Master seed; the whole pipeline is deterministic in it.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            params: TornadoParams::paper_96(),
            screen_size: 3,
            screen_attempts: 256,
            adjust: AdjustConfig::default(),
            seed: 1,
        }
    }
}

/// A graph that came out of the pipeline, with its certification.
#[derive(Clone, Debug)]
pub struct ProfiledGraph {
    /// The final graph.
    pub graph: Graph,
    /// Seed the pipeline ran with.
    pub seed: u64,
    /// Generation attempts consumed by the structural screen.
    pub generation_attempts: usize,
    /// Rewirings applied by the adjustment loop.
    pub adjustment_steps: Vec<AdjustmentStep>,
    /// Verified worst-case level: the graph survives every loss of up to
    /// this many nodes (`target_first_failure − 1` when the pipeline
    /// achieved its goal).
    pub verified_loss_tolerance: usize,
    /// Failure count at the first failing level, and that level, from the
    /// final verification sweep (`None` if no failure was found within the
    /// searched range).
    pub first_failure: Option<(usize, u64)>,
}

impl ProfiledGraph {
    /// Whether the pipeline reached its adjustment target.
    pub fn achieved_target(&self, target_first_failure: usize) -> bool {
        self.verified_loss_tolerance >= target_first_failure - 1
    }
}

/// Runs the full §3 pipeline. The returned graph is certified by an
/// exhaustive search up to `adjust.target_first_failure` (the verification
/// sweep re-runs even the levels the adjustment loop already cleared).
pub fn build_profiled_graph(cfg: &PipelineConfig) -> Result<ProfiledGraph, GenError> {
    let generator = TornadoGenerator::new(cfg.params);
    let (raw, attempts) =
        generator.generate_screened(cfg.seed, cfg.screen_attempts, cfg.screen_size)?;

    let outcome = adjust_graph(&raw, &cfg.adjust);

    // Final verification sweep, one level past the target to report the
    // first real failure level when possible.
    let report = worst_case_search(
        &outcome.graph,
        &WorstCaseConfig {
            max_k: cfg.adjust.target_first_failure - 1,
            collect_cap: 16,
            stop_at_first_failure: true,
        },
    );
    let first_failure = report
        .levels
        .iter()
        .find(|l| l.failures > 0)
        .map(|l| (l.k, l.failures));
    let verified = match first_failure {
        Some((k, _)) => k - 1,
        None => cfg.adjust.target_first_failure - 1,
    };
    Ok(ProfiledGraph {
        graph: outcome.graph,
        seed: cfg.seed,
        generation_attempts: attempts,
        adjustment_steps: outcome.steps,
        verified_loss_tolerance: verified,
        first_failure,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug builds keep the pipeline affordable with 32-node graphs
    /// (C(32, 3) = 4960 per sweep level).
    fn small_cfg(seed: u64) -> PipelineConfig {
        PipelineConfig {
            params: TornadoParams {
                num_data: 16,
                ..TornadoParams::default()
            },
            screen_size: 2,
            screen_attempts: 256,
            adjust: AdjustConfig {
                target_first_failure: 3,
                max_iterations: 16,
                collect_cap: 128,
                candidate_budget: 128,
            },
            seed,
        }
    }

    #[test]
    fn pipeline_produces_certified_graph() {
        let profiled = build_profiled_graph(&small_cfg(7)).unwrap();
        assert_eq!(profiled.graph.num_nodes(), 32);
        assert!(profiled.generation_attempts >= 1);
        // The certification is self-consistent with a fresh search.
        let recheck = worst_case_search(
            &profiled.graph,
            &WorstCaseConfig {
                max_k: profiled.verified_loss_tolerance,
                collect_cap: 4,
                stop_at_first_failure: true,
            },
        );
        assert_eq!(recheck.first_failure(), None);
        profiled.graph.validate().unwrap();
    }

    #[test]
    fn pipeline_is_deterministic_in_seed() {
        let a = build_profiled_graph(&small_cfg(9)).unwrap();
        let b = build_profiled_graph(&small_cfg(9)).unwrap();
        assert_eq!(a.graph.fingerprint(), b.graph.fingerprint());
        assert_eq!(a.adjustment_steps, b.adjustment_steps);
    }

    #[test]
    fn achieved_target_reflects_verification() {
        let cfg = small_cfg(11);
        let profiled = build_profiled_graph(&cfg).unwrap();
        let achieved = profiled.achieved_target(cfg.adjust.target_first_failure);
        match profiled.first_failure {
            None => assert!(achieved),
            Some((k, n)) => {
                assert!(!achieved || k >= cfg.adjust.target_first_failure);
                assert!(n > 0);
            }
        }
    }
}
