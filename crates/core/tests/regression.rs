//! Fixed-seed regression pins for the worst-case search.
//!
//! The sparse-reset kernel rewrite made `search_level` deterministic across
//! runs and thread counts; these tests pin its exact outputs — counts *and*
//! the lexicographically smallest collected failure sets — so any future
//! change to the kernel, the seeding lemma, or the capped collection shows
//! up as a diff here rather than as silent drift.

use tornado_core::tornado_graph_1;
use tornado_gen::regular::generate_regular;
use tornado_sim::worst_case::search_level;

#[test]
fn catalog_graph_1_is_clean_through_k3() {
    // Certified first failure at 5; the cheap levels must stay spotless.
    let g = tornado_graph_1();
    for (k, cases) in [(1usize, 96u128), (2, 4560), (3, 142_880)] {
        let level = search_level(&g, k, 8);
        assert_eq!(level.cases, cases, "k={k}");
        assert_eq!(level.failures, 0, "k={k}");
        assert!(level.failure_sets.is_empty(), "k={k}");
        assert!(!level.truncated, "k={k}");
    }
}

#[test]
fn seeded_regular_graph_failure_counts_are_pinned() {
    // generate_regular(12, 3, 7) is fully determined by the seed; its
    // failure surface was measured once and must never drift.
    let g = generate_regular(12, 3, 7).unwrap();

    for k in 2..=3usize {
        let level = search_level(&g, k, 8);
        assert_eq!(level.failures, 0, "k={k}");
    }

    let l4 = search_level(&g, 4, 3);
    assert_eq!(l4.failures, 20);
    assert!(l4.truncated);
    assert_eq!(
        l4.failure_sets,
        vec![
            vec![0, 15, 19, 21],
            vec![1, 2, 13, 15],
            vec![1, 12, 13, 20],
        ],
        "lex-smallest collected sets under the cap"
    );

    let l5 = search_level(&g, 5, 3);
    assert_eq!(l5.failures, 405);
    assert!(l5.truncated);
    assert_eq!(
        l5.failure_sets,
        vec![
            vec![0, 1, 2, 13, 15],
            vec![0, 1, 12, 13, 20],
            vec![0, 1, 15, 19, 21],
        ],
    );
}
