//! Altered Tornado distributions (paper §4.3, Fig. 5 / Table 3).
//!
//! The paper tests "several alterations of Tornado Code graphs. For
//! example, these adjustments doubled the degree distribution or shifted
//! the degree distribution +1 edge. Altering Tornado Code graphs by
//! increasing the connectivity generally increased the first failure but
//! with the penalty of an earlier average failure point."

use crate::error::GenError;
use crate::tornado::{DistTransform, TornadoGenerator, TornadoParams};
use tornado_graph::Graph;

/// Generates a Tornado graph whose per-stage left distribution has every
/// degree doubled.
pub fn generate_doubled(params: TornadoParams, seed: u64) -> Result<Graph, GenError> {
    TornadoGenerator::with_transform(params, DistTransform::Doubled).generate(seed)
}

/// Generates a Tornado graph whose per-stage left distribution has every
/// degree shifted by +1.
pub fn generate_shifted(params: TornadoParams, seed: u64) -> Result<Graph, GenError> {
    TornadoGenerator::with_transform(params, DistTransform::Shifted).generate(seed)
}

/// Screened variants (discard graphs with small stopping sets), matching
/// how the unaltered graphs are produced.
pub fn generate_doubled_screened(
    params: TornadoParams,
    seed: u64,
    max_attempts: usize,
) -> Result<Graph, GenError> {
    TornadoGenerator::with_transform(params, DistTransform::Doubled)
        .generate_screened(seed, max_attempts, 3)
        .map(|(g, _)| g)
}

/// See [`generate_doubled_screened`].
pub fn generate_shifted_screened(
    params: TornadoParams,
    seed: u64,
    max_attempts: usize,
) -> Result<Graph, GenError> {
    TornadoGenerator::with_transform(params, DistTransform::Shifted)
        .generate_screened(seed, max_attempts, 3)
        .map(|(g, _)| g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_graph::DegreeStats;

    #[test]
    fn doubled_has_higher_connectivity() {
        let p = TornadoParams::paper_96();
        let base = TornadoGenerator::new(p).generate(11).unwrap();
        let doubled = generate_doubled(p, 11).unwrap();
        let base_deg = DegreeStats::of(&base).mean_degree_per_node;
        let doubled_deg = DegreeStats::of(&doubled).mean_degree_per_node;
        assert!(
            doubled_deg > base_deg * 1.3,
            "doubled {doubled_deg} vs base {base_deg}"
        );
        assert_eq!(doubled.num_nodes(), 96);
    }

    #[test]
    fn shifted_increases_degree_by_about_one() {
        let p = TornadoParams::paper_96();
        let base = TornadoGenerator::new(p).generate(11).unwrap();
        let shifted = generate_shifted(p, 11).unwrap();
        let d_base = DegreeStats::of(&base).mean_degree_per_node;
        let d_shift = DegreeStats::of(&shifted).mean_degree_per_node;
        assert!(d_shift > d_base + 0.3, "shift {d_shift} vs base {d_base}");
        assert!(
            d_shift < d_base + 3.5,
            "shift {d_shift} should add roughly one edge per left node (2 per 2E/N), got base {d_base}"
        );
    }

    #[test]
    fn altered_graphs_are_valid_and_rate_half() {
        let p = TornadoParams::paper_96();
        for g in [generate_doubled(p, 5).unwrap(), generate_shifted(p, 5).unwrap()] {
            g.validate().unwrap();
            assert_eq!(g.num_data(), 48);
            assert_eq!(g.num_checks(), 48);
        }
    }

    #[test]
    fn screened_variants_produce_clean_graphs() {
        let p = TornadoParams::paper_96();
        let g = generate_doubled_screened(p, 21, 64).unwrap();
        assert!(crate::defects::screen(&g, 3).is_ok());
        let g = generate_shifted_screened(p, 21, 64).unwrap();
        assert!(crate::defects::screen(&g, 3).is_ok());
    }
}
