//! Fixed-degree cascaded random graphs (paper §4.3, Fig. 6 / Table 4).
//!
//! "These graphs have the same number of stages as Tornado Codes and use a
//! random edge distribution, but instead of the varying Tornado Code degree
//! distribution the degree was fixed." The fixed quantity is the *left*
//! (node) degree — the paper compares "a regular graph with degree 3" to
//! the best Tornado graph's average degree of 3.6, which is its mean left
//! degree. Every left node of every stage feeds exactly `degree` checks;
//! check in-degrees follow from the stage shape (`2 × degree` in a halving
//! stage) with the slack spread evenly.

use crate::error::GenError;
use crate::matching::{fit_right_degrees, match_stage};
use crate::tornado::TornadoParams;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tornado_graph::{Graph, GraphBuilder, NodeId};

/// Generates a cascaded graph in which every left node of every stage has
/// exactly `degree` edges (capped by the stage width), using the same
/// cascade shape (including the shared-left final stages) as the Tornado
/// generator.
pub fn generate_fixed_degree(
    params: TornadoParams,
    degree: u32,
    seed: u64,
) -> Result<Graph, GenError> {
    if degree < 2 {
        return Err(GenError::BadParameters {
            detail: format!("fixed degree {degree} < 2 cannot protect anything"),
        });
    }
    let shape = params.shape()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(params.num_data);
    let mut left_ids: Vec<NodeId> = (0..params.num_data as NodeId).collect();

    for (li, &size) in shape.halving.iter().enumerate() {
        builder.begin_level(&format!("check-{}", li + 1));
        let stage = fixed_stage(left_ids.len(), size, degree, &mut rng)?;
        let mut new_ids = Vec::with_capacity(size);
        for local in stage {
            let nbrs: Vec<NodeId> = local.iter().map(|&l| left_ids[l as usize]).collect();
            new_ids.push(builder.add_check(&nbrs));
        }
        left_ids = new_ids;
    }
    for tag in ["final-a", "final-b"] {
        builder.begin_level(tag);
        let stage = fixed_stage(left_ids.len(), shape.final_stage, degree, &mut rng)?;
        for local in stage {
            let nbrs: Vec<NodeId> = local.iter().map(|&l| left_ids[l as usize]).collect();
            builder.add_check(&nbrs);
        }
    }
    Ok(builder.build()?)
}

/// Retries seeds until the generated graph passes the structural defect
/// screen (no stopping set of size ≤ `screen_size`) — random fixed-degree
/// wiring occasionally produces closed pairs just like Tornado wiring does.
pub fn generate_fixed_degree_screened(
    params: TornadoParams,
    degree: u32,
    seed: u64,
    max_attempts: usize,
    screen_size: usize,
) -> Result<Graph, GenError> {
    let mut last_err = None;
    for attempt in 0..max_attempts {
        let mut s = seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s ^= s >> 31;
        match generate_fixed_degree(params, degree, s) {
            Ok(g) => {
                if crate::defects::screen(&g, screen_size).is_ok() {
                    return Ok(g);
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or(GenError::ScreenExhausted {
        attempts: max_attempts,
    }))
}

/// Builds one stage with every left node of degree exactly
/// `min(degree, n_right)` and check degrees as even as the slot budget
/// allows.
fn fixed_stage(
    n_left: usize,
    n_right: usize,
    degree: u32,
    rng: &mut StdRng,
) -> Result<Vec<Vec<u32>>, GenError> {
    let d = degree.min(n_right as u32);
    let left_degrees = vec![d; n_left];
    let total_slots = d as usize * n_left;
    let base = (total_slots / n_right) as u32;
    let mut right_degrees = vec![base.max(1); n_right];
    right_degrees.shuffle(rng);
    fit_right_degrees(&mut right_degrees, total_slots, n_left)?;
    match_stage(&left_degrees, &right_degrees, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_graph::stats::level_shape;
    use tornado_graph::DegreeStats;

    #[test]
    fn fixed_left_degree_structure() {
        for d in [3u32, 4, 6] {
            let g = generate_fixed_degree(TornadoParams::paper_96(), d, 9).unwrap();
            assert_eq!(g.num_nodes(), 96);
            assert_eq!(level_shape(&g), vec![48, 24, 12, 6, 6]);
            // Every node that acts as a left node of a halving stage feeds
            // exactly d checks; the shared-left level (the 12-node level)
            // feeds both final stages, so its nodes carry 2d edges (capped
            // at the final width of 6 per stage).
            for v in g.data_ids() {
                assert_eq!(g.checks_of(v).len(), d as usize, "data {v}, d = {d}");
            }
            let first_level = &g.levels()[1]; // the 24-node level
            for c in first_level.nodes() {
                assert_eq!(g.checks_of(c).len(), d as usize, "check {c}, d = {d}");
            }
            let shared = &g.levels()[2]; // the 12-node level feeds two stages
            let per_stage = d.min(6) as usize;
            for c in shared.nodes() {
                assert_eq!(g.checks_of(c).len(), 2 * per_stage, "shared {c}, d = {d}");
            }
        }
    }

    #[test]
    fn edges_scale_with_left_degree() {
        // Halving stages contribute d·(48 + 24) edges, the two final stages
        // d·12 each (capped at width 6).
        for d in [3u32, 4] {
            let g = generate_fixed_degree(TornadoParams::paper_96(), d, 13).unwrap();
            let expected = d as usize * (48 + 24) + 2 * d.min(6) as usize * 12;
            assert_eq!(g.num_edges(), expected, "d = {d}");
        }
    }

    #[test]
    fn every_data_node_is_protected() {
        for d in [3u32, 4, 6] {
            let g = generate_fixed_degree(TornadoParams::paper_96(), d, 13).unwrap();
            assert_eq!(DegreeStats::of(&g).unprotected_data_nodes, 0, "d = {d}");
        }
    }

    #[test]
    fn degree_six_saturates_the_final_stage() {
        // With d = 6 over the 12-node shared level, each final stage is the
        // complete bipartite graph: every check uses all 12 left nodes.
        let g = generate_fixed_degree(TornadoParams::paper_96(), 6, 5).unwrap();
        for level in &g.levels()[3..] {
            for c in level.nodes() {
                assert_eq!(g.check_neighbors(c).len(), 12);
            }
        }
    }

    #[test]
    fn rejects_degree_below_two() {
        assert!(generate_fixed_degree(TornadoParams::paper_96(), 1, 1).is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_fixed_degree(TornadoParams::paper_96(), 4, 5).unwrap();
        let b = generate_fixed_degree(TornadoParams::paper_96(), 4, 5).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn screened_variant_passes_the_screen() {
        let g = generate_fixed_degree_screened(TornadoParams::paper_96(), 3, 1, 128, 3).unwrap();
        assert!(crate::defects::screen(&g, 3).is_ok());
    }

    #[test]
    fn mean_left_degree_tracks_parameter() {
        // Edges per node ≈ d (every node is a left node of exactly one
        // stage, except the shared level which doubles — slight excess).
        let g = generate_fixed_degree(TornadoParams::paper_96(), 3, 2).unwrap();
        let per_node = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!((2.9..3.6).contains(&per_node), "got {per_node}");
    }
}
