//! Structural defect detection (paper §3.2).
//!
//! The paper's first graphs contained "obvious defects": small sets of left
//! nodes relying on a *closed set* of right nodes, e.g. two data nodes whose
//! redundancy lives in exactly the same two checks — lose both and no amount
//! of surviving blocks helps. In coding-theory terms these are small
//! *stopping sets* over the data nodes: a set `S` such that every check node
//! adjacent to `S` has at least two neighbours in `S`. A data node can only
//! ever be recovered by a check with exactly one missing neighbour, so
//! losing a stopping set of data nodes is unrecoverable no matter what else
//! survives.
//!
//! [`screen`] is the generation-time filter: graphs with a stopping set of
//! size ≤ `max_size` among their data nodes are discarded (§3.3's "graphs
//! that fail are discarded").

use tornado_graph::{Graph, NodeId};

/// Finds all stopping sets of size 2..=`max_size` among the *data nodes* of
/// `graph`, returned as sorted node-id vectors (sorted lexicographically).
///
/// A set `S` qualifies when every check adjacent to any member has ≥ 2
/// members among its left neighbours. Pairs reduce to "identical check
/// sets"; larger sets are enumerated combinatorially — intended for the
/// small sizes (≤ 4) the screen uses.
pub fn find_stopping_sets(graph: &Graph, max_size: usize) -> Vec<Vec<NodeId>> {
    let mut found = Vec::new();
    if max_size < 2 {
        return found;
    }
    let data: Vec<NodeId> = graph.data_ids().collect();

    // Size 2: identical check sets.
    for (i, &u) in data.iter().enumerate() {
        for &v in &data[i + 1..] {
            if graph.checks_of(u) == graph.checks_of(v) && !graph.checks_of(u).is_empty() {
                found.push(vec![u, v]);
            }
        }
    }
    if max_size < 3 {
        return found;
    }

    // General small sizes: combinatorial scan with the closure test. For
    // the sizes used by the screen (3–4 over ≤ 48 data nodes) this is fast.
    for size in 3..=max_size.min(data.len()) {
        let mut it = tornado_bitset::CombinationIter::new(data.len(), size);
        while let Some(combo) = it.next_slice() {
            let set: Vec<NodeId> = combo.iter().map(|&i| data[i]).collect();
            if is_stopping_set(graph, &set) && !contains_smaller(&found, &set) {
                found.push(set);
            }
        }
    }
    found
}

/// Whether `set` (data nodes) is a stopping set: every adjacent check has at
/// least two neighbours inside `set`.
pub fn is_stopping_set(graph: &Graph, set: &[NodeId]) -> bool {
    debug_assert!(set.iter().all(|&n| graph.is_data(n)));
    for &v in set {
        for &c in graph.checks_of(v) {
            let inside = graph
                .check_neighbors(c)
                .iter()
                .filter(|n| set.contains(n))
                .count();
            if inside < 2 {
                return false;
            }
        }
        // A member with no checks at all is trivially closed (it is an
        // unrecoverable node on its own), so it does not disqualify the set.
    }
    true
}

fn contains_smaller(found: &[Vec<NodeId>], candidate: &[NodeId]) -> bool {
    found
        .iter()
        .any(|s| s.len() < candidate.len() && s.iter().all(|x| candidate.contains(x)))
}

/// Generation-time screen: `Ok(())` if `graph` has no stopping set of size
/// ≤ `max_size` among its data nodes and no unprotected data node,
/// otherwise `Err` with the offending sets.
pub fn screen(graph: &Graph, max_size: usize) -> Result<(), Vec<Vec<NodeId>>> {
    let mut bad: Vec<Vec<NodeId>> = graph
        .data_ids()
        .filter(|&d| graph.checks_of(d).is_empty())
        .map(|d| vec![d])
        .collect();
    bad.extend(find_stopping_sets(graph, max_size));
    if bad.is_empty() {
        Ok(())
    } else {
        Err(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_graph::GraphBuilder;

    /// The paper's §3.2 example: two left nodes whose *entire* redundancy
    /// lives in the same two right nodes ("17 [48, 57] / 22 [48, 57]").
    /// Node 2 gets an extra mirror check so the pair {2, 3} stays open.
    fn overlapping_pair() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.begin_level("c");
        b.add_check(&[0, 1]); // check 4
        b.add_check(&[0, 1]); // check 5 — nodes 0 and 1 share exactly {4, 5}
        b.add_check(&[2, 3]);
        b.add_check(&[2]);
        b.build().unwrap()
    }

    #[test]
    fn detects_two_node_overlap() {
        let g = overlapping_pair();
        let sets = find_stopping_sets(&g, 2);
        assert_eq!(sets, vec![vec![0, 1]]);
        assert!(screen(&g, 2).is_err());
    }

    #[test]
    fn three_node_closed_set() {
        // Checks {0,1}, {1,2}, {0,2}: the triangle {0,1,2} is closed, no
        // pair is.
        let mut b = GraphBuilder::new(3);
        b.begin_level("c");
        b.add_check(&[0, 1]);
        b.add_check(&[1, 2]);
        b.add_check(&[0, 2]);
        let g = b.build().unwrap();
        assert!(find_stopping_sets(&g, 2).is_empty());
        let sets = find_stopping_sets(&g, 3);
        assert_eq!(sets, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn supersets_of_found_defects_are_suppressed() {
        // {0,1} is closed (their checks are {3, 4, 5}, all containing both);
        // {0,1,2} would also qualify but is a redundant superset.
        let mut b = GraphBuilder::new(3);
        b.begin_level("c");
        b.add_check(&[0, 1]);
        b.add_check(&[0, 1]);
        b.add_check(&[0, 1, 2]);
        let g = b.build().unwrap();
        let sets = find_stopping_sets(&g, 3);
        assert!(sets.contains(&vec![0, 1]), "sets: {sets:?}");
        assert!(!sets.contains(&vec![0, 1, 2]), "superset suppressed: {sets:?}");
    }

    #[test]
    fn clean_graph_passes() {
        // 4 data nodes, checks forming a tree-ish pattern with no small
        // closed set.
        let mut b = GraphBuilder::new(4);
        b.begin_level("c");
        b.add_check(&[0, 1]);
        b.add_check(&[1, 2]);
        b.add_check(&[2, 3]);
        b.add_check(&[3, 0]);
        b.add_check(&[0, 2]);
        b.add_check(&[1, 3]);
        let g = b.build().unwrap();
        assert!(find_stopping_sets(&g, 3).is_empty());
        assert!(screen(&g, 3).is_ok());
    }

    #[test]
    fn unprotected_data_node_fails_screen() {
        let mut b = GraphBuilder::new(3);
        b.begin_level("c");
        b.add_check(&[0, 1]); // data 2 unprotected
        b.add_check([0, 1, 2].get(0..2).unwrap()); // still not covering 2
        let g = b.build().unwrap();
        let err = screen(&g, 2).unwrap_err();
        assert!(err.contains(&vec![2]));
    }

    #[test]
    fn stopping_set_loss_is_actually_fatal() {
        // Cross-check the structural predicate against the real decoder.
        let g = overlapping_pair();
        let mut dec = tornado_codec::ErasureDecoder::new(&g);
        assert!(!dec.decode(&[0, 1]), "stopping set loss must fail decode");
        assert!(dec.decode(&[0]), "single member recovers");
    }

    #[test]
    fn size_guard_short_circuits() {
        let g = overlapping_pair();
        assert!(find_stopping_sets(&g, 1).is_empty());
        assert!(find_stopping_sets(&g, 0).is_empty());
    }
}
