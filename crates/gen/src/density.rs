//! Density evolution — the asymptotic analysis behind Tornado Codes.
//!
//! Luby's original work characterises edge-degree distribution pairs
//! `(λ, ρ)` by their *erasure threshold*: the largest loss fraction δ such
//! that, as graphs grow, peeling decodes with high probability. The
//! fixed-point recursion on an infinite tree is
//!
//! ```text
//! x_{t+1} = δ · λ(1 − ρ(1 − x_t)),     x_0 = δ
//! ```
//!
//! where `λ, ρ` are the edge-perspective generating polynomials
//! (`λ(x) = Σ λ_d x^(d−1)`). Decoding succeeds iff `x_t → 0`.
//!
//! Plank's critique — which motivates the whole paper — is that this
//! "collective and asymptotic" guarantee says little about 96-node graphs.
//! Having both analyses in one workspace makes that gap measurable: compare
//! [`erasure_threshold`] against the Monte-Carlo transition points of the
//! finite graphs in `tornado-sim`.

use crate::distribution::EdgeDegreeDistribution;

/// Edge-perspective polynomial coefficients: `coeffs[i]` is the fraction of
/// edges attached to degree-`i+1` nodes (so `poly(x) = Σ coeffs[i]·x^i`).
#[derive(Clone, Debug, PartialEq)]
pub struct EdgePolynomial {
    coeffs: Vec<f64>,
}

impl EdgePolynomial {
    /// Normalises an [`EdgeDegreeDistribution`] into edge-perspective form.
    pub fn from_distribution(dist: &EdgeDegreeDistribution) -> Self {
        let total: f64 = dist.weights().iter().map(|&(_, w)| w).sum();
        let max_degree = dist
            .weights()
            .iter()
            .map(|&(d, _)| d)
            .max()
            .expect("distribution is non-empty") as usize;
        let mut coeffs = vec![0.0; max_degree];
        for &(d, w) in dist.weights() {
            coeffs[(d - 1) as usize] += w / total;
        }
        Self { coeffs }
    }

    /// Evaluates the polynomial at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // Horner, highest degree first.
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Mean node degree implied by the edge perspective:
    /// `1 / Σ (coeffs[i] / (i+1))`.
    pub fn mean_node_degree(&self) -> f64 {
        let inv: f64 = self
            .coeffs
            .iter()
            .enumerate()
            .map(|(i, &c)| c / (i + 1) as f64)
            .sum();
        1.0 / inv
    }
}

/// Whether the recursion converges to zero at loss fraction `delta`.
pub fn decodes_at(lambda: &EdgePolynomial, rho: &EdgePolynomial, delta: f64) -> bool {
    let mut x = delta;
    for _ in 0..10_000 {
        let next = delta * lambda.eval(1.0 - rho.eval(1.0 - x));
        if next < 1e-9 {
            return true;
        }
        // Stalled: the recursion is monotone non-increasing from x₀ = δ, so
        // negligible progress means a fixed point above zero.
        if x - next < 1e-12 {
            return false;
        }
        x = next;
    }
    false
}

/// The erasure threshold of the pair `(λ, ρ)` by bisection, within `tol`.
pub fn erasure_threshold(lambda: &EdgePolynomial, rho: &EdgePolynomial, tol: f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if decodes_at(lambda, rho, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Convenience: the threshold of a Tornado stage with heavy-tail left
/// distribution `D` and the matching truncated-Poisson right distribution
/// at the edge-balanced mean for a rate-1/2 stage.
pub fn tornado_stage_threshold(max_degree_d: u32, tol: f64) -> f64 {
    let left = EdgeDegreeDistribution::heavy_tail(max_degree_d);
    // A halving stage has twice as many left nodes as checks, so the mean
    // check degree is twice the mean left degree.
    let mean_left = left.mean_node_degree();
    let right = EdgeDegreeDistribution::poisson(2.0 * mean_left, 4 * max_degree_d + 8);
    erasure_threshold(
        &EdgePolynomial::from_distribution(&left),
        &EdgePolynomial::from_distribution(&right),
        tol,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(coeffs: &[f64]) -> EdgePolynomial {
        EdgePolynomial { coeffs: coeffs.to_vec() }
    }

    #[test]
    fn polynomial_evaluation() {
        // λ(x) = 0.5 + 0.5x²
        let p = poly(&[0.5, 0.0, 0.5]);
        assert!((p.eval(0.0) - 0.5).abs() < 1e-15);
        assert!((p.eval(1.0) - 1.0).abs() < 1e-15);
        assert!((p.eval(0.5) - 0.625).abs() < 1e-15);
    }

    #[test]
    fn from_distribution_normalises() {
        let dist = EdgeDegreeDistribution::new(vec![(2, 2.0), (3, 2.0)]).unwrap();
        let p = EdgePolynomial::from_distribution(&dist);
        assert!((p.eval(1.0) - 1.0).abs() < 1e-12, "coefficients sum to 1");
        // Edge fractions 0.5/0.5 at degrees 2, 3 → mean node degree
        // 1 / (0.5/2 + 0.5/3) = 2.4.
        assert!((p.mean_node_degree() - 2.4).abs() < 1e-12);
    }

    #[test]
    fn regular_3_6_pair_threshold_is_known() {
        // The classic (3,6)-regular LDPC pair: λ(x) = x², ρ(x) = x⁵ has
        // erasure threshold ≈ 0.4294 (standard density-evolution result).
        let lambda = poly(&[0.0, 0.0, 1.0]);
        let rho = poly(&[0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        let t = erasure_threshold(&lambda, &rho, 1e-6);
        assert!((t - 0.4294).abs() < 2e-3, "threshold {t}");
    }

    #[test]
    fn thresholds_are_monotone_in_robustness() {
        // Weakening the right side (higher check degrees) lowers the
        // threshold for a fixed left side.
        let lambda = poly(&[0.0, 1.0]); // λ(x) = x (all left degree 2)
        let rho_light = poly(&[0.0, 0.0, 0.0, 1.0]); // checks degree 4
        let rho_heavy = poly(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0]); // degree 8
        let t_light = erasure_threshold(&lambda, &rho_light, 1e-6);
        let t_heavy = erasure_threshold(&lambda, &rho_heavy, 1e-6);
        assert!(t_light > t_heavy, "{t_light} vs {t_heavy}");
    }

    #[test]
    fn decodes_at_extremes() {
        let lambda = poly(&[0.0, 0.0, 1.0]);
        let rho = poly(&[0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        assert!(decodes_at(&lambda, &rho, 0.01), "tiny loss always decodes");
        assert!(!decodes_at(&lambda, &rho, 0.99), "near-total loss never does");
    }

    #[test]
    fn tornado_stage_threshold_is_plausible() {
        // Heavy-tail/Poisson pairs approach capacity (0.5 for rate 1/2) as
        // D grows; at the paper's D = 16 the stage threshold should already
        // be in the 0.35–0.5 band, and above the D = 4 threshold.
        let t4 = tornado_stage_threshold(4, 1e-5);
        let t16 = tornado_stage_threshold(16, 1e-5);
        assert!(t16 > 0.33 && t16 < 0.52, "t16 = {t16}");
        assert!(t16 > t4 - 0.02, "t4 = {t4}, t16 = {t16}");
    }

    #[test]
    fn finite_graph_transition_tracks_the_asymptotic_threshold_loosely() {
        // Plank's point, quantified: the 96-node Monte-Carlo 50% transition
        // sits well below the asymptotic threshold. (The threshold says
        // nothing about worst cases either — that is the paper's whole
        // argument for explicit testing.)
        let t = tornado_stage_threshold(16, 1e-4);
        // From Table 6: ~61 of 96 nodes needed ⇒ transition at losing
        // ~35/96 ≈ 0.36 of all nodes.
        let finite = 35.0 / 96.0;
        assert!(finite <= t + 0.1, "finite {finite} vs asymptotic {t}");
    }
}
