//! Edge-degree distributions and the §3.1 multiplier solver.
//!
//! Luby's construction is specified in terms of *degrees of edges*: the
//! fraction of graph edges incident to nodes of each degree. For a degree-`d`
//! node, `d` edges "have degree `d`", so a distribution weight `w_d` over
//! edges corresponds to `w_d / d` worth of nodes. On the paper's small
//! levels (tens of nodes) naive rounding of `w_d / d` misses the required
//! node count, so a constant multiplier `m` is solved for such that
//! `Σ_d round(m · w_d / d)` equals the target exactly.

use crate::error::GenError;
use tornado_numerics::solve::{solve_integer_target, Bracket, SolveError};

/// A distribution over edge degrees: `weights[j] = (degree, weight)` with
/// positive weights (not necessarily normalised).
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeDegreeDistribution {
    weights: Vec<(u32, f64)>,
}

impl EdgeDegreeDistribution {
    /// Builds a distribution from `(degree, weight)` pairs; weights must be
    /// positive and degrees unique and ≥ 1.
    pub fn new(weights: Vec<(u32, f64)>) -> Result<Self, GenError> {
        if weights.is_empty() {
            return Err(GenError::BadParameters {
                detail: "empty degree distribution".into(),
            });
        }
        let mut seen = std::collections::BTreeSet::new();
        for &(d, w) in &weights {
            if d == 0 {
                return Err(GenError::BadParameters {
                    detail: "degree 0 in distribution".into(),
                });
            }
            if !w.is_finite() || w <= 0.0 {
                return Err(GenError::BadParameters {
                    detail: format!("non-positive weight {w} for degree {d}"),
                });
            }
            if !seen.insert(d) {
                return Err(GenError::BadParameters {
                    detail: format!("duplicate degree {d}"),
                });
            }
        }
        Ok(Self { weights })
    }

    /// Luby's heavy-tail edge-degree distribution with maximum node degree
    /// `D + 1`: weight `1 / ((i − 1) · H(D))` for node degrees
    /// `i = 2, …, D + 1`, where `H(D)` is the `D`-th harmonic number.
    pub fn heavy_tail(max_degree_d: u32) -> Self {
        assert!(max_degree_d >= 1, "heavy tail needs D >= 1");
        let h: f64 = (1..=max_degree_d).map(|i| 1.0 / i as f64).sum();
        let weights = (2..=max_degree_d + 1)
            .map(|i| (i, 1.0 / ((i - 1) as f64 * h)))
            .collect();
        Self { weights }
    }

    /// Truncated Poisson edge-degree distribution with parameter `a` over
    /// node degrees `1..=max_degree`: weight ∝ `a^(i−1) / (i−1)!` (the
    /// right-side distribution of Luby's construction).
    pub fn poisson(a: f64, max_degree: u32) -> Self {
        assert!(a > 0.0 && max_degree >= 1);
        let mut weights = Vec::with_capacity(max_degree as usize);
        let mut term = 1.0f64; // a^0 / 0!
        for i in 1..=max_degree {
            weights.push((i, term));
            term *= a / i as f64;
        }
        Self { weights }
    }

    /// The `(degree, weight)` pairs, ascending by degree.
    pub fn weights(&self) -> &[(u32, f64)] {
        &self.weights
    }

    /// Returns a new distribution with every degree doubled (the paper's
    /// "distribution doubled" alteration, §4.3).
    pub fn doubled(&self) -> Self {
        Self {
            weights: self.weights.iter().map(|&(d, w)| (d * 2, w)).collect(),
        }
    }

    /// Returns a new distribution with every degree shifted by +1 (the
    /// paper's "distribution shifted" alteration, §4.3).
    pub fn shifted(&self) -> Self {
        Self {
            weights: self.weights.iter().map(|&(d, w)| (d + 1, w)).collect(),
        }
    }

    /// Node counts per degree for multiplier `m`:
    /// `count_d = round(m · w_d / d)`.
    pub fn node_counts(&self, m: f64) -> Vec<(u32, usize)> {
        self.weights
            .iter()
            .map(|&(d, w)| (d, (m * w / d as f64).round().max(0.0) as usize))
            .collect()
    }

    fn total_nodes(&self, m: f64) -> i64 {
        self.node_counts(m).iter().map(|&(_, c)| c as i64).sum()
    }

    /// Solves for a multiplier yielding exactly `target` nodes, then returns
    /// the per-degree node counts (§3.1's numeric solver).
    ///
    /// If rounding makes the exact target unreachable, the nearest
    /// achievable count is *repaired* by adjusting the count of the smallest
    /// degree — the paper's intermediate processing step guarantees the
    /// required number of nodes one way or another.
    pub fn solve_node_counts(&self, target: usize) -> Result<Vec<(u32, usize)>, GenError> {
        assert!(target > 0, "target must be positive");
        // Bracket: m = 0 gives 0 nodes; scale up until we overshoot.
        let mut hi = 1.0f64;
        while self.total_nodes(hi) < target as i64 {
            hi *= 2.0;
            if hi > 1e18 {
                return Err(GenError::DistributionUnsolvable {
                    target,
                    closest: self.total_nodes(1e18),
                });
            }
        }
        match solve_integer_target(
            |m| self.total_nodes(m),
            Bracket::new(0.0, hi),
            target as i64,
            256,
        ) {
            Ok(m) => Ok(self.node_counts(m)),
            Err(SolveError::TargetUnreachable { at, .. }) => {
                // Repair: take the nearest undershoot and add the shortfall
                // to the smallest degree (affects fault tolerance least).
                let mut counts = self.node_counts(at);
                let have: i64 = counts.iter().map(|&(_, c)| c as i64).sum();
                let deficit = target as i64 - have;
                if deficit >= 0 {
                    counts[0].1 += deficit as usize;
                } else {
                    let mut to_remove = (-deficit) as usize;
                    for slot in counts.iter_mut() {
                        let take = to_remove.min(slot.1);
                        slot.1 -= take;
                        to_remove -= take;
                        if to_remove == 0 {
                            break;
                        }
                    }
                    if to_remove > 0 {
                        return Err(GenError::DistributionUnsolvable {
                            target,
                            closest: have,
                        });
                    }
                }
                Ok(counts)
            }
            Err(_) => Err(GenError::DistributionUnsolvable {
                target,
                closest: self.total_nodes(hi),
            }),
        }
    }

    /// Expands solved node counts into a degree sequence (one entry per
    /// node, ascending by degree). Total length equals the solved target.
    pub fn degree_sequence(&self, target: usize) -> Result<Vec<u32>, GenError> {
        let counts = self.solve_node_counts(target)?;
        let mut seq = Vec::with_capacity(target);
        for (d, c) in counts {
            seq.extend(std::iter::repeat_n(d, c));
        }
        debug_assert_eq!(seq.len(), target);
        Ok(seq)
    }

    /// Average node degree implied by the distribution:
    /// `Σ w_d / Σ (w_d / d)` (edges per node).
    pub fn mean_node_degree(&self) -> f64 {
        let edges: f64 = self.weights.iter().map(|&(_, w)| w).sum();
        let nodes: f64 = self.weights.iter().map(|&(d, w)| w / d as f64).sum();
        edges / nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_tail_weights_sum_to_one() {
        for d in 1..20 {
            let dist = EdgeDegreeDistribution::heavy_tail(d);
            let total: f64 = dist.weights().iter().map(|&(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-12, "D = {d}: sum {total}");
            assert_eq!(dist.weights().first().unwrap().0, 2);
            assert_eq!(dist.weights().last().unwrap().0, d + 1);
        }
    }

    #[test]
    fn poisson_weights_follow_ratio() {
        let a = 2.5;
        let dist = EdgeDegreeDistribution::poisson(a, 6);
        let w = dist.weights();
        for i in 1..w.len() {
            let ratio = w[i].1 / w[i - 1].1;
            assert!((ratio - a / i as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn constructor_rejects_bad_input() {
        assert!(EdgeDegreeDistribution::new(vec![]).is_err());
        assert!(EdgeDegreeDistribution::new(vec![(0, 1.0)]).is_err());
        assert!(EdgeDegreeDistribution::new(vec![(2, -1.0)]).is_err());
        assert!(EdgeDegreeDistribution::new(vec![(2, 1.0), (2, 1.0)]).is_err());
    }

    #[test]
    fn solver_hits_exact_targets() {
        let dist = EdgeDegreeDistribution::heavy_tail(8);
        for target in [4usize, 12, 24, 48, 96, 100] {
            let counts = dist.solve_node_counts(target).unwrap();
            let total: usize = counts.iter().map(|&(_, c)| c).sum();
            assert_eq!(total, target, "target {target}: counts {counts:?}");
        }
    }

    #[test]
    fn solver_handles_single_degree_distribution() {
        // Degenerate case: all edges degree 3 — the count function jumps in
        // steps of 1, every target reachable.
        let dist = EdgeDegreeDistribution::new(vec![(3, 1.0)]).unwrap();
        let counts = dist.solve_node_counts(7).unwrap();
        assert_eq!(counts, vec![(3, 7)]);
    }

    #[test]
    fn degree_sequence_length_and_order() {
        let dist = EdgeDegreeDistribution::heavy_tail(6);
        let seq = dist.degree_sequence(24).unwrap();
        assert_eq!(seq.len(), 24);
        assert!(seq.windows(2).all(|w| w[0] <= w[1]));
        assert!(seq.iter().all(|&d| (2..=7).contains(&d)));
        // Heavy tail: low degrees dominate.
        let deg2 = seq.iter().filter(|&&d| d == 2).count();
        assert!(deg2 > seq.len() / 3, "degree-2 share too small: {deg2}");
    }

    #[test]
    fn doubled_and_shifted_transform_degrees() {
        let dist = EdgeDegreeDistribution::new(vec![(2, 0.6), (3, 0.4)]).unwrap();
        assert_eq!(
            dist.doubled().weights(),
            &[(4, 0.6), (6, 0.4)],
            "doubling multiplies degrees"
        );
        assert_eq!(dist.shifted().weights(), &[(3, 0.6), (4, 0.4)]);
    }

    #[test]
    fn mean_degree_of_heavy_tail_is_moderate() {
        // The paper reports ~3.6 average degree for its Tornado graphs;
        // heavy-tail distributions with small D should land in that range.
        let dist = EdgeDegreeDistribution::heavy_tail(8);
        let mean = dist.mean_node_degree();
        assert!((2.0..6.0).contains(&mean), "mean {mean}");
    }
}
