//! Generation errors.

use std::fmt;
use tornado_graph::GraphError;

/// Errors from graph generation.
#[derive(Debug, Clone, PartialEq)]
pub enum GenError {
    /// The degree-distribution solver could not hit the requested node
    /// count within its bracket.
    DistributionUnsolvable {
        /// Requested number of nodes.
        target: usize,
        /// Closest achievable node count.
        closest: i64,
    },
    /// The edge matcher could not eliminate duplicate edges within its
    /// repair budget (the stage is too dense for its size).
    MatchingFailed {
        /// Left-side size of the offending stage.
        left: usize,
        /// Right-side size of the offending stage.
        right: usize,
    },
    /// Parameters are structurally impossible (e.g. zero data nodes, a
    /// degree larger than the opposite side).
    BadParameters {
        /// Explanation.
        detail: String,
    },
    /// Every random attempt failed the structural defect screen.
    ScreenExhausted {
        /// Number of attempts made.
        attempts: usize,
    },
    /// The assembled graph failed validation (generator bug surfaced).
    Graph(GraphError),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::DistributionUnsolvable { target, closest } => write!(
                f,
                "no distribution multiplier yields {target} nodes (closest: {closest})"
            ),
            GenError::MatchingFailed { left, right } => write!(
                f,
                "could not build a simple bipartite matching for stage {left}x{right}"
            ),
            GenError::BadParameters { detail } => write!(f, "bad parameters: {detail}"),
            GenError::ScreenExhausted { attempts } => write!(
                f,
                "all {attempts} generation attempts failed the structural defect screen"
            ),
            GenError::Graph(e) => write!(f, "generated graph invalid: {e}"),
        }
    }
}

impl std::error::Error for GenError {}

impl From<GraphError> for GenError {
    fn from(e: GraphError) -> Self {
        GenError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GenError::DistributionUnsolvable { target: 24, closest: 23 };
        assert!(e.to_string().contains("24") && e.to_string().contains("23"));
        let e = GenError::ScreenExhausted { attempts: 64 };
        assert!(e.to_string().contains("64"));
    }
}
