//! Graph generators for Tornado Codes and the paper's comparator families.
//!
//! §3.1 of the paper builds Tornado graphs from Luby's edge-degree
//! distributions with two practical amendments for small graphs:
//!
//! 1. a *numeric solver* finds a constant multiplier for the edge-degree
//!    distribution so that it produces the exact number of nodes required
//!    (naive rounding yields, e.g., "5 edges of degree 6" — meaningless);
//! 2. the Typhoon treatment of the final cascade levels: the last two check
//!    stages share the same set of left nodes, each computed independently
//!    over the full left set.
//!
//! §3.2–3.3 add *structural defect detection*: randomly generated graphs
//! occasionally contain small closed sets of left nodes whose loss is
//! unrecoverable no matter how many other blocks survive. Graphs failing
//! the screen are discarded and regenerated.
//!
//! Families provided (paper §4):
//!
//! * [`tornado`] — cascaded Tornado graphs (heavy-tail left / Poisson right);
//! * [`altered`] — Tornado variants with the distribution doubled or
//!   shifted +1 (§4.3, Fig. 5 / Table 3);
//! * [`cascaded`] — fixed-degree cascaded random graphs (§4.3, Fig. 6 /
//!   Table 4);
//! * [`regular`] — biregular single-stage graphs of degree 4 / 11;
//! * [`mirror`] — mirrored systems expressed as graphs (for the Eq. 1
//!   simulator validation and the RAID 10 comparison);
//! * [`defects`] — small-stopping-set detection, the generation-time screen;
//! * [`density`] — density evolution (asymptotic erasure thresholds), the
//!   theory whose finite-size gap motivates the paper's empirical method.
//!
//! All generators are deterministic in their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod altered;
pub mod cascaded;
pub mod defects;
pub mod density;
pub mod distribution;
pub mod error;
pub mod matching;
pub mod mirror;
pub mod regular;
pub mod tornado;

pub use defects::{find_stopping_sets, screen};
pub use distribution::EdgeDegreeDistribution;
pub use error::GenError;
pub use tornado::{TornadoGenerator, TornadoParams};
