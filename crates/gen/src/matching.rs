//! Configuration-model bipartite matching with duplicate-edge repair.
//!
//! Each stage of a cascade is built by pairing *edge slots*: a left node of
//! degree `d` contributes `d` slots, a right (check) node of degree `e`
//! consumes `e` slots. A random permutation pairs them; a check node that
//! draws the same left node twice would XOR it with itself, so duplicates
//! are repaired by swapping slots between check nodes (and the stage is
//! rejected if a simple graph cannot be reached within budget — the caller
//! then retries with a different seed, the paper's "discard and regenerate"
//! strategy).

use crate::error::GenError;
use rand::seq::SliceRandom;
use rand::Rng;

/// Adjusts `right_degrees` (in place) so its sum equals `target_slots`,
/// spreading increments/decrements round-robin and keeping every degree
/// ≥ 1 and ≤ `left_size` (a check cannot use more distinct left nodes than
/// exist).
pub fn fit_right_degrees(
    right_degrees: &mut [u32],
    target_slots: usize,
    left_size: usize,
) -> Result<(), GenError> {
    if right_degrees.is_empty() {
        return Err(GenError::BadParameters {
            detail: "stage with no check nodes".into(),
        });
    }
    let max_d = left_size as u32;
    let capacity = right_degrees.len() as u64 * max_d as u64;
    if (target_slots as u64) > capacity || target_slots < right_degrees.len() {
        return Err(GenError::BadParameters {
            detail: format!(
                "cannot fit {target_slots} edge slots into {} checks over {left_size} left nodes",
                right_degrees.len()
            ),
        });
    }
    for d in right_degrees.iter_mut() {
        *d = (*d).clamp(1, max_d);
    }
    let mut current: i64 = right_degrees.iter().map(|&d| d as i64).sum();
    let mut i = 0usize;
    while current != target_slots as i64 {
        let idx = i % right_degrees.len();
        if current < target_slots as i64 {
            if right_degrees[idx] < max_d {
                right_degrees[idx] += 1;
                current += 1;
            }
        } else if right_degrees[idx] > 1 {
            right_degrees[idx] -= 1;
            current -= 1;
        }
        i += 1;
    }
    Ok(())
}

/// Pairs left edge slots with check nodes, returning for each check node its
/// list of distinct left indices (stage-local).
///
/// `left_degrees[l]` is the number of checks left node `l` feeds;
/// `right_degrees[r]` is the in-degree of check `r`. The two slot totals
/// must match (see [`fit_right_degrees`]).
pub fn match_stage<R: Rng>(
    left_degrees: &[u32],
    right_degrees: &[u32],
    rng: &mut R,
) -> Result<Vec<Vec<u32>>, GenError> {
    let total_left: usize = left_degrees.iter().map(|&d| d as usize).sum();
    let total_right: usize = right_degrees.iter().map(|&d| d as usize).sum();
    if total_left != total_right {
        return Err(GenError::BadParameters {
            detail: format!("slot mismatch: left {total_left} vs right {total_right}"),
        });
    }
    for (r, &d) in right_degrees.iter().enumerate() {
        if d as usize > left_degrees.len() {
            return Err(GenError::BadParameters {
                detail: format!("check {r} degree {d} exceeds left size {}", left_degrees.len()),
            });
        }
    }

    // Flat slot array: left node index repeated by its degree.
    let mut slots: Vec<u32> = Vec::with_capacity(total_left);
    for (l, &d) in left_degrees.iter().enumerate() {
        slots.extend(std::iter::repeat_n(l as u32, d as usize));
    }
    slots.shuffle(rng);

    // Check boundaries into the slot array.
    let mut bounds = Vec::with_capacity(right_degrees.len() + 1);
    bounds.push(0usize);
    for &d in right_degrees {
        bounds.push(bounds.last().unwrap() + d as usize);
    }
    let check_of_slot = |s: usize, bounds: &[usize]| -> usize {
        match bounds.binary_search(&s) {
            Ok(i) => i,                 // s is a start boundary → check i
            Err(i) => i - 1,
        }
    };

    // Repair duplicates by swapping a duplicate slot with a random slot of
    // a different check, accepting only swaps that do not introduce new
    // duplicates.
    let has_dup = |check: usize, slots: &[u32], bounds: &[usize]| -> Option<usize> {
        let span = &slots[bounds[check]..bounds[check + 1]];
        for (i, &v) in span.iter().enumerate() {
            if span[..i].contains(&v) {
                return Some(bounds[check] + i);
            }
        }
        None
    };

    let budget = 64 * total_left.max(16);
    let mut attempts = 0usize;
    let mut repaired = true;
    'repair: loop {
        // Find the first duplicate anywhere.
        let mut dup_at: Option<(usize, usize)> = None;
        for c in 0..right_degrees.len() {
            if let Some(pos) = has_dup(c, &slots, &bounds) {
                dup_at = Some((c, pos));
                break;
            }
        }
        let Some((c, pos)) = dup_at else {
            break 'repair;
        };
        // Try random swap partners.
        loop {
            attempts += 1;
            if attempts > budget {
                // Dense stages (e.g. the "doubled" alteration) can defeat
                // random repair; fall back to deterministic realization.
                repaired = false;
                break 'repair;
            }
            let other = rng.gen_range(0..slots.len());
            let oc = check_of_slot(other, &bounds);
            if oc == c {
                continue;
            }
            let (a, b) = (slots[pos], slots[other]);
            if a == b {
                continue;
            }
            // Would `b` duplicate within c, or `a` within oc?
            let span_c = &slots[bounds[c]..bounds[c + 1]];
            let span_o = &slots[bounds[oc]..bounds[oc + 1]];
            if span_c.contains(&b) || span_o.contains(&a) {
                continue;
            }
            slots.swap(pos, other);
            continue 'repair;
        }
    }

    if !repaired {
        return greedy_realize(left_degrees, right_degrees, rng).ok_or(GenError::MatchingFailed {
            left: left_degrees.len(),
            right: right_degrees.len(),
        });
    }

    let mut result = Vec::with_capacity(right_degrees.len());
    for c in 0..right_degrees.len() {
        let mut nbrs = slots[bounds[c]..bounds[c + 1]].to_vec();
        nbrs.sort_unstable();
        debug_assert!(nbrs.windows(2).all(|w| w[0] != w[1]));
        result.push(nbrs);
    }
    Ok(result)
}

/// Bipartite Havel–Hakimi realization: assigns each check (largest degree
/// first) to the left nodes with the most remaining slots, breaking ties
/// randomly. Succeeds whenever the degree pair is realizable as a simple
/// bipartite graph; returns `None` otherwise.
fn greedy_realize<R: Rng>(
    left_degrees: &[u32],
    right_degrees: &[u32],
    rng: &mut R,
) -> Option<Vec<Vec<u32>>> {
    let mut remaining: Vec<(u32, u32)> = left_degrees
        .iter()
        .enumerate()
        .map(|(i, &d)| (d, i as u32))
        .collect();
    let mut order: Vec<usize> = (0..right_degrees.len()).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(right_degrees[c]));

    let mut result = vec![Vec::new(); right_degrees.len()];
    for &c in &order {
        let need = right_degrees[c] as usize;
        // Random shuffle then stable sort by remaining degree: ties land in
        // random order, keeping the family random while staying feasible.
        remaining.shuffle(rng);
        remaining.sort_by_key(|&(d, _)| std::cmp::Reverse(d));
        if remaining.len() < need || remaining[need - 1].0 == 0 {
            return None;
        }
        let mut nbrs = Vec::with_capacity(need);
        for slot in remaining.iter_mut().take(need) {
            nbrs.push(slot.1);
            slot.0 -= 1;
        }
        nbrs.sort_unstable();
        result[c] = nbrs;
    }
    if remaining.iter().any(|&(d, _)| d != 0) {
        return None;
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fit_adjusts_sum_upward_and_downward() {
        let mut d = vec![2u32, 2, 2];
        fit_right_degrees(&mut d, 9, 10).unwrap();
        assert_eq!(d.iter().sum::<u32>(), 9);
        let mut d = vec![4u32, 4, 4];
        fit_right_degrees(&mut d, 5, 10).unwrap();
        assert_eq!(d.iter().sum::<u32>(), 5);
        assert!(d.iter().all(|&x| x >= 1));
    }

    #[test]
    fn fit_respects_left_size_cap() {
        let mut d = vec![1u32, 1];
        fit_right_degrees(&mut d, 6, 3).unwrap();
        assert_eq!(d.iter().sum::<u32>(), 6);
        assert!(d.iter().all(|&x| x <= 3));
    }

    #[test]
    fn fit_rejects_impossible_targets() {
        let mut d = vec![1u32, 1];
        assert!(fit_right_degrees(&mut d, 100, 3).is_err(), "beyond capacity");
        let mut d = vec![1u32, 1];
        assert!(fit_right_degrees(&mut d, 1, 3).is_err(), "below one per check");
        let mut empty: Vec<u32> = vec![];
        assert!(fit_right_degrees(&mut empty, 0, 3).is_err());
    }

    #[test]
    fn matching_respects_degrees_and_simplicity() {
        let mut rng = StdRng::seed_from_u64(7);
        let left = vec![2u32; 12]; // 24 slots
        let mut right = vec![4u32; 6];
        fit_right_degrees(&mut right, 24, 12).unwrap();
        let m = match_stage(&left, &right, &mut rng).unwrap();
        assert_eq!(m.len(), 6);
        // Right degrees respected, all edges simple.
        for (r, nbrs) in m.iter().enumerate() {
            assert_eq!(nbrs.len() as u32, right[r]);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        }
        // Left degrees respected.
        let mut left_count = vec![0u32; 12];
        for nbrs in &m {
            for &l in nbrs {
                left_count[l as usize] += 1;
            }
        }
        assert_eq!(left_count, left);
    }

    #[test]
    fn matching_is_deterministic_in_seed() {
        let left = vec![3u32; 8];
        let right = vec![4u32; 6];
        let a = match_stage(&left, &right, &mut StdRng::seed_from_u64(42)).unwrap();
        let b = match_stage(&left, &right, &mut StdRng::seed_from_u64(42)).unwrap();
        let c = match_stage(&left, &right, &mut StdRng::seed_from_u64(43)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds give different matchings (overwhelmingly)");
    }

    #[test]
    fn matching_rejects_slot_mismatch() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(match_stage(&[2, 2], &[3], &mut rng).is_err());
    }

    #[test]
    fn matching_rejects_oversized_check() {
        let mut rng = StdRng::seed_from_u64(1);
        // Check wants 3 distinct lefts but only 2 exist.
        assert!(match_stage(&[2, 1], &[3], &mut rng).is_err());
    }

    #[test]
    fn dense_stage_still_resolves() {
        // Near-complete bipartite stage: heavy duplicate pressure.
        let mut rng = StdRng::seed_from_u64(3);
        let left = vec![3u32; 4]; // 12 slots
        let right = vec![3u32; 4];
        let m = match_stage(&left, &right, &mut rng).unwrap();
        for nbrs in &m {
            assert_eq!(nbrs.len(), 3);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn full_bipartite_edge_case() {
        // Every check uses every left node: only one simple graph exists.
        let mut rng = StdRng::seed_from_u64(9);
        let left = vec![2u32; 3]; // 6 slots
        let right = vec![3u32, 3];
        let m = match_stage(&left, &right, &mut rng).unwrap();
        assert_eq!(m, vec![vec![0, 1, 2], vec![0, 1, 2]]);
    }
}
