//! Mirrored systems expressed as graphs.
//!
//! The paper validates its simulator by building "a 96-node mirrored system
//! using our graph generation tool" and checking the sampled failure
//! fractions against the closed-form Eq. 1. A mirror is the degenerate
//! LDPC graph where every check node copies exactly one data node.

use crate::error::GenError;
use tornado_graph::{Graph, GraphBuilder};

/// A mirrored array: `num_data` data nodes, each with one single-neighbour
/// check (its mirror copy). Total `2 × num_data` nodes — the paper's
/// RAID 10 comparator at the same 50 % overhead as the Tornado graphs.
pub fn generate_mirror(num_data: usize) -> Result<Graph, GenError> {
    if num_data == 0 {
        return Err(GenError::BadParameters {
            detail: "no data nodes".into(),
        });
    }
    let mut b = GraphBuilder::new(num_data);
    b.begin_level("mirror");
    for v in 0..num_data as u32 {
        b.add_check(&[v]);
    }
    Ok(b.build()?)
}

/// An `m`-way replicated array: each data node copied `m − 1` times
/// (`m = 2` is [`generate_mirror`]). Used for the federation baseline that
/// stores four copies of every block (§5.3, Table 7).
pub fn generate_replicated(num_data: usize, copies: usize) -> Result<Graph, GenError> {
    if copies < 2 {
        return Err(GenError::BadParameters {
            detail: format!("{copies} copies is not replication"),
        });
    }
    if num_data == 0 {
        return Err(GenError::BadParameters {
            detail: "no data nodes".into(),
        });
    }
    let mut b = GraphBuilder::new(num_data);
    for c in 1..copies {
        b.begin_level(&format!("copy-{c}"));
        for v in 0..num_data as u32 {
            b.add_check(&[v]);
        }
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_codec::ErasureDecoder;

    #[test]
    fn mirror_shape() {
        let g = generate_mirror(48).unwrap();
        assert_eq!(g.num_nodes(), 96);
        assert_eq!(g.num_checks(), 48);
        for (i, c) in g.check_ids().enumerate() {
            assert_eq!(g.check_neighbors(c), &[i as u32]);
        }
    }

    #[test]
    fn mirror_fails_exactly_on_complete_pairs() {
        let g = generate_mirror(4).unwrap();
        let mut dec = ErasureDecoder::new(&g);
        assert!(dec.decode(&[0, 5, 2, 7])); // no complete pair (pairs are i, i+4)
        assert!(!dec.decode(&[0, 4])); // pair 0 complete
        assert!(dec.decode(&[0, 1, 2, 3]), "all data lost but all mirrors present");
        assert!(dec.decode(&[4, 5, 6, 7]));
    }

    #[test]
    fn replicated_tolerates_all_but_one_copy() {
        let g = generate_replicated(2, 4).unwrap();
        assert_eq!(g.num_nodes(), 8);
        let mut dec = ErasureDecoder::new(&g);
        // Node 0's copies are 2, 4, 6 — lose data + two copies, keep one.
        assert!(dec.decode(&[0, 2, 4]));
        assert!(!dec.decode(&[0, 2, 4, 6]), "all four copies gone");
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(generate_mirror(0).is_err());
        assert!(generate_replicated(4, 1).is_err());
        assert!(generate_replicated(0, 3).is_err());
    }
}
