//! Biregular single-stage graphs (paper §4.3, Fig. 5 / Table 3).
//!
//! "Regular single-stage graphs, such as those of degree 4 and 11,
//! performed poorly." One bipartite level: `k` data nodes, `k` check nodes,
//! every node of degree `d`.

use crate::error::GenError;
use crate::matching::match_stage;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tornado_graph::{Graph, GraphBuilder};

/// Generates a single-stage biregular graph: `num_data` data nodes,
/// `num_data` checks, every node with degree `degree`.
pub fn generate_regular(num_data: usize, degree: u32, seed: u64) -> Result<Graph, GenError> {
    if num_data == 0 {
        return Err(GenError::BadParameters {
            detail: "no data nodes".into(),
        });
    }
    if degree as usize > num_data {
        return Err(GenError::BadParameters {
            detail: format!("degree {degree} exceeds side size {num_data}"),
        });
    }
    if degree < 2 {
        return Err(GenError::BadParameters {
            detail: format!("degree {degree} < 2 cannot protect anything"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let left_degrees = vec![degree; num_data];
    let right_degrees = vec![degree; num_data];
    let stage = match_stage(&left_degrees, &right_degrees, &mut rng)?;
    let mut b = GraphBuilder::new(num_data);
    b.begin_level("regular");
    for nbrs in stage {
        b.add_check(&nbrs);
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_graph::DegreeStats;

    #[test]
    fn degree_4_and_11_shapes() {
        for d in [4u32, 11] {
            let g = generate_regular(48, d, 3).unwrap();
            assert_eq!(g.num_data(), 48);
            assert_eq!(g.num_checks(), 48);
            assert_eq!(g.num_edges(), 48 * d as usize);
            for c in g.check_ids() {
                assert_eq!(g.check_neighbors(c).len(), d as usize);
            }
            for v in g.data_ids() {
                assert_eq!(g.checks_of(v).len(), d as usize, "data {v} degree");
            }
            assert_eq!(DegreeStats::of(&g).unprotected_data_nodes, 0);
        }
    }

    #[test]
    fn rejects_impossible_parameters() {
        assert!(generate_regular(0, 4, 1).is_err());
        assert!(generate_regular(10, 11, 1).is_err());
        assert!(generate_regular(10, 1, 1).is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_regular(48, 4, 9).unwrap();
        let b = generate_regular(48, 4, 9).unwrap();
        let c = generate_regular(48, 4, 10).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn single_losses_recover() {
        let g = generate_regular(48, 4, 3).unwrap();
        let mut dec = tornado_codec::ErasureDecoder::new(&g);
        for v in 0..96 {
            assert!(dec.decode(&[v]));
        }
    }
}
