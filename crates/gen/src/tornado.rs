//! The Tornado Code graph generator (paper §3.1).
//!
//! Cascade shape: check levels halve (`k/2, k/4, …`) until the next level
//! would drop to `min_final_level` or below; the last halving level then
//! acts as the shared left set for *two independent* final check stages of
//! half its size (the Typhoon treatment — "the last two stages of the graph
//! share the same set of left nodes"). The level sizes telescope so that
//! total checks always equal `num_data`: the code is rate 1/2, the same
//! 50 % capacity overhead as RAID 10.
//!
//! Per stage, left node degrees follow Luby's heavy-tail edge-degree
//! distribution and check degrees a truncated Poisson, both rescaled by the
//! §3.1 numeric solver to produce exact node counts, then paired by a
//! configuration-model matching with duplicate repair.

use crate::distribution::EdgeDegreeDistribution;
use crate::error::GenError;
use crate::matching::{fit_right_degrees, match_stage};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tornado_graph::{Graph, GraphBuilder, NodeId};

/// Parameters for Tornado graph generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TornadoParams {
    /// Number of data nodes `k`; total graph size is `2k`.
    pub num_data: usize,
    /// Heavy-tail parameter `D`: left node degrees range over `2..=D+1`
    /// (capped per stage so a node never needs more checks than exist).
    /// `D = 16` yields the ≈ 3.6 average degree the paper reports.
    pub max_degree_d: u32,
    /// Stop halving when the next level would be `<=` this size; the last
    /// halving level then feeds the two shared-left final stages.
    pub min_final_level: usize,
}

impl Default for TornadoParams {
    fn default() -> Self {
        Self {
            num_data: 48,
            max_degree_d: 16,
            min_final_level: 8,
        }
    }
}

impl TornadoParams {
    /// The paper's 96-node configuration (48 data + 48 check nodes).
    pub fn paper_96() -> Self {
        Self::default()
    }

    /// Computes the cascade shape: the halving check-level sizes followed by
    /// the two final stage sizes. The sum always equals `num_data`.
    pub fn shape(&self) -> Result<CascadeShape, GenError> {
        let k = self.num_data;
        if k < 4 {
            return Err(GenError::BadParameters {
                detail: format!("num_data = {k} too small (need >= 4)"),
            });
        }
        let mut halving = Vec::new();
        let mut cur = k;
        loop {
            if !cur.is_multiple_of(2) {
                return Err(GenError::BadParameters {
                    detail: format!("level size {cur} is odd; num_data must halve cleanly"),
                });
            }
            let next = cur / 2;
            if next < self.min_final_level.max(2) {
                break;
            }
            halving.push(next);
            cur = next;
        }
        let s = *halving.last().unwrap_or(&k);
        if s % 2 != 0 || s < 2 {
            return Err(GenError::BadParameters {
                detail: format!("final shared-left level size {s} must be even and >= 2"),
            });
        }
        Ok(CascadeShape {
            halving,
            final_stage: s / 2,
        })
    }
}

/// The level structure of a Tornado cascade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CascadeShape {
    /// Sizes of the halving check levels (`k/2, k/4, …`).
    pub halving: Vec<usize>,
    /// Size of each of the two final stages (half the last halving level).
    pub final_stage: usize,
}

impl CascadeShape {
    /// Total number of check nodes (always `num_data` for this cascade).
    pub fn total_checks(&self) -> usize {
        self.halving.iter().sum::<usize>() + 2 * self.final_stage
    }
}

/// Generates Tornado Code graphs.
#[derive(Clone, Debug)]
pub struct TornadoGenerator {
    params: TornadoParams,
    /// Distribution transform applied per stage (identity for standard
    /// Tornado; see [`crate::altered`]).
    transform: DistTransform,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DistTransform {
    Identity,
    Doubled,
    Shifted,
}

impl TornadoGenerator {
    /// Standard Tornado generator.
    pub fn new(params: TornadoParams) -> Self {
        Self {
            params,
            transform: DistTransform::Identity,
        }
    }

    pub(crate) fn with_transform(params: TornadoParams, transform: DistTransform) -> Self {
        Self { params, transform }
    }

    /// The parameters in use.
    pub fn params(&self) -> &TornadoParams {
        &self.params
    }

    fn left_distribution(&self, n_left: usize, n_right: usize) -> EdgeDegreeDistribution {
        // A left node cannot feed more distinct checks than the stage has.
        let cap = (n_right.saturating_sub(1)).max(1) as u32;
        let d = self.params.max_degree_d.min(cap).max(1);
        let base = EdgeDegreeDistribution::heavy_tail(d);
        let _ = n_left;
        match self.transform {
            DistTransform::Identity => base,
            DistTransform::Doubled => base.doubled(),
            DistTransform::Shifted => base.shifted(),
        }
    }

    /// Builds one bipartite stage: returns, per check, its stage-local left
    /// indices.
    fn build_stage(
        &self,
        n_left: usize,
        n_right: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Vec<u32>>, GenError> {
        let left_dist = self.left_distribution(n_left, n_right);
        let mut left_degrees = left_dist.degree_sequence(n_left)?;
        // Cap any degree that exceeds the number of checks (transforms like
        // "doubled" can push degrees past the stage width).
        for d in left_degrees.iter_mut() {
            *d = (*d).min(n_right as u32);
        }
        left_degrees.shuffle(rng);
        let total_slots: usize = left_degrees.iter().map(|&d| d as usize).sum();

        let mean_right = total_slots as f64 / n_right as f64;
        let right_dist = EdgeDegreeDistribution::poisson(mean_right.max(0.5), n_left as u32);
        let mut right_degrees = right_dist.degree_sequence(n_right)?;
        right_degrees.shuffle(rng);
        fit_right_degrees(&mut right_degrees, total_slots, n_left)?;
        match_stage(&left_degrees, &right_degrees, rng)
    }

    /// Generates one graph from `seed` (no defect screening).
    pub fn generate(&self, seed: u64) -> Result<Graph, GenError> {
        let shape = self.params.shape()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = GraphBuilder::new(self.params.num_data);

        // Left node ids of the stage being built.
        let mut left_ids: Vec<NodeId> = (0..self.params.num_data as NodeId).collect();
        for (li, &size) in shape.halving.iter().enumerate() {
            builder.begin_level(&format!("check-{}", li + 1));
            let stage = self.build_stage(left_ids.len(), size, &mut rng)?;
            let mut new_ids = Vec::with_capacity(size);
            for local in stage {
                let nbrs: Vec<NodeId> = local.iter().map(|&l| left_ids[l as usize]).collect();
                new_ids.push(builder.add_check(&nbrs));
            }
            left_ids = new_ids;
        }

        // Two final stages sharing the last halving level as left set.
        for tag in ["final-a", "final-b"] {
            builder.begin_level(tag);
            let stage = self.build_stage(left_ids.len(), shape.final_stage, &mut rng)?;
            for local in stage {
                let nbrs: Vec<NodeId> = local.iter().map(|&l| left_ids[l as usize]).collect();
                builder.add_check(&nbrs);
            }
        }
        Ok(builder.build()?)
    }

    /// Generates graphs from successive derived seeds until one passes the
    /// structural defect screen (no stopping set of size ≤ `screen_size`
    /// among the data nodes). Returns the graph and the number of attempts
    /// used. This is the paper's "graphs that fail are discarded" loop.
    pub fn generate_screened(
        &self,
        seed: u64,
        max_attempts: usize,
        screen_size: usize,
    ) -> Result<(Graph, usize), GenError> {
        let mut last_err = None;
        for attempt in 0..max_attempts {
            // SplitMix-style finalizer over (seed, attempt) so distinct
            // pairs give unrelated generation streams.
            let mut s = seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            s ^= s >> 31;
            match self.generate(s) {
                Ok(graph) => {
                    if crate::defects::screen(&graph, screen_size).is_ok() {
                        return Ok((graph, attempt + 1));
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(GenError::ScreenExhausted {
            attempts: max_attempts,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_graph::stats::{cascade_depth, level_shape, parity_fraction};
    use tornado_graph::DegreeStats;

    #[test]
    fn shape_for_paper_96() {
        let shape = TornadoParams::paper_96().shape().unwrap();
        assert_eq!(shape.halving, vec![24, 12]);
        assert_eq!(shape.final_stage, 6);
        assert_eq!(shape.total_checks(), 48);
    }

    #[test]
    fn shape_for_32_node_graph() {
        // §3.1: "The resulting graph constructor was able to produce Tornado
        // Code graphs as small as 32 total nodes" — final stages of 4.
        let p = TornadoParams {
            num_data: 16,
            ..TornadoParams::default()
        };
        let shape = p.shape().unwrap();
        assert_eq!(shape.halving, vec![8]);
        assert_eq!(shape.final_stage, 4);
        assert_eq!(shape.total_checks(), 16);
    }

    #[test]
    fn shape_rejects_bad_sizes() {
        let p = TornadoParams {
            num_data: 3,
            ..TornadoParams::default()
        };
        assert!(p.shape().is_err());
        let p = TornadoParams {
            num_data: 50, // 50 → 25 odd
            min_final_level: 4,
            ..TornadoParams::default()
        };
        assert!(p.shape().is_err());
    }

    #[test]
    fn generated_graph_has_paper_structure() {
        let g = TornadoGenerator::new(TornadoParams::paper_96())
            .generate(1)
            .unwrap();
        assert_eq!(g.num_data(), 48);
        assert_eq!(g.num_nodes(), 96);
        assert_eq!(level_shape(&g), vec![48, 24, 12, 6, 6]);
        assert_eq!(cascade_depth(&g), 4);
        assert!((parity_fraction(&g) - 0.5).abs() < 1e-12, "rate 1/2");
        g.validate().unwrap();
    }

    #[test]
    fn final_stages_share_the_same_left_set() {
        let g = TornadoGenerator::new(TornadoParams::paper_96())
            .generate(2)
            .unwrap();
        let levels = g.levels();
        let shared_left = levels[2].nodes(); // the 12-node level
        for final_level in &levels[3..] {
            for c in final_level.nodes() {
                for &n in g.check_neighbors(c) {
                    assert!(
                        shared_left.contains(&n),
                        "final-stage check {c} uses {n} outside the shared left set"
                    );
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let gen = TornadoGenerator::new(TornadoParams::paper_96());
        let a = gen.generate(77).unwrap();
        let b = gen.generate(77).unwrap();
        let c = gen.generate(78).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn average_degree_is_near_paper_value() {
        // Paper §3.3: "the average degree of our graphs was 3.6". The
        // comparable quantity is edges per node (every node acts as a left
        // node of exactly one stage, and Σ left-set sizes = num_nodes), i.e.
        // the mean heavy-tail left degree.
        let gen = TornadoGenerator::new(TornadoParams::paper_96());
        let mut total = 0.0;
        for seed in 0..5 {
            let g = gen.generate(seed).unwrap();
            total += g.num_edges() as f64 / g.num_nodes() as f64;
        }
        let mean = total / 5.0;
        assert!(
            (2.5..4.5).contains(&mean),
            "edges per node {mean} far from the paper's 3.6"
        );
    }

    #[test]
    fn every_data_node_is_protected() {
        let gen = TornadoGenerator::new(TornadoParams::paper_96());
        for seed in 0..10 {
            let g = gen.generate(seed).unwrap();
            let stats = DegreeStats::of(&g);
            assert_eq!(
                stats.unprotected_data_nodes, 0,
                "seed {seed} left a data node uncovered"
            );
        }
    }

    #[test]
    fn screened_generation_passes_the_screen() {
        let gen = TornadoGenerator::new(TornadoParams::paper_96());
        let (g, attempts) = gen.generate_screened(1234, 64, 3).unwrap();
        assert!(attempts >= 1);
        assert!(crate::defects::screen(&g, 3).is_ok());
    }

    #[test]
    fn small_graph_generation_works() {
        let p = TornadoParams {
            num_data: 16,
            ..TornadoParams::default()
        };
        let g = TornadoGenerator::new(p).generate(5).unwrap();
        assert_eq!(g.num_nodes(), 32);
        assert_eq!(level_shape(&g), vec![16, 8, 4, 4]);
    }

    #[test]
    fn single_data_loss_always_recovers() {
        // Basic sanity for real Tornado graphs: any single loss is fine.
        let g = TornadoGenerator::new(TornadoParams::paper_96())
            .generate(3)
            .unwrap();
        let mut dec = tornado_codec::ErasureDecoder::new(&g);
        for v in 0..96 {
            assert!(dec.decode(&[v]), "single loss of node {v} failed");
        }
    }
}
