//! Mutable graph accumulation and validation.

use crate::error::GraphError;
use crate::model::{Graph, Level, LevelKind, NodeId};

/// Accumulates a cascaded LDPC graph level by level, then validates and
/// freezes it into a [`Graph`].
///
/// Generators call [`GraphBuilder::begin_level`] / [`GraphBuilder::add_check`]
/// in cascade order; the §3.3 adjustment procedure edits an existing graph
/// through [`GraphBuilder::replace_neighbor`].
///
/// ```
/// use tornado_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);          // data nodes 0..4
/// b.begin_level("check-1");
/// b.add_check(&[0, 1]);                      // node 4 = XOR(0, 1)
/// b.add_check(&[1, 2, 3]);                   // node 5 = XOR(1, 2, 3)
/// let g = b.build().unwrap();
/// assert_eq!(g.num_nodes(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_data: u32,
    /// Left-neighbour list per check node, in id order.
    checks: Vec<Vec<NodeId>>,
    /// (label, number of checks) per check level, in cascade order.
    level_sizes: Vec<(String, usize)>,
    /// Index into `level_sizes` currently being filled.
    open: bool,
}

impl GraphBuilder {
    /// Starts a graph with `num_data` data nodes (ids `0..num_data`).
    pub fn new(num_data: usize) -> Self {
        Self {
            num_data: num_data as u32,
            checks: Vec::new(),
            level_sizes: Vec::new(),
            open: false,
        }
    }

    /// Recreates a builder from a frozen graph (for adjustment).
    pub fn from_graph(graph: &Graph) -> Self {
        let mut b = Self::new(graph.num_data());
        for level in &graph.levels()[1..] {
            b.begin_level(&level.label);
            for check in level.nodes() {
                b.add_check(graph.check_neighbors(check));
            }
        }
        b
    }

    /// Number of data nodes.
    pub fn num_data(&self) -> usize {
        self.num_data as usize
    }

    /// Total nodes allocated so far (data + checks).
    pub fn num_nodes(&self) -> usize {
        self.num_data as usize + self.checks.len()
    }

    /// Opens a new check level. Subsequent [`GraphBuilder::add_check`] calls
    /// append to it until the next `begin_level`.
    pub fn begin_level(&mut self, label: &str) {
        self.level_sizes.push((label.to_string(), 0));
        self.open = true;
    }

    /// Appends a check node whose value is the XOR of `left_neighbors`
    /// (global node ids, which must already exist). Returns the new node's
    /// global id.
    ///
    /// # Panics
    /// Panics if no level is open.
    pub fn add_check(&mut self, left_neighbors: &[NodeId]) -> NodeId {
        assert!(self.open, "call begin_level before add_check");
        let id = self.num_data + self.checks.len() as u32;
        let mut nbrs = left_neighbors.to_vec();
        nbrs.sort_unstable();
        self.checks.push(nbrs);
        self.level_sizes
            .last_mut()
            .expect("a level is open")
            .1 += 1;
        id
    }

    /// The current left-neighbour list of check node `check`.
    ///
    /// # Panics
    /// Panics if `check` is not a check node id allocated by this builder.
    pub fn neighbors_of(&self, check: NodeId) -> &[NodeId] {
        &self.checks[(check - self.num_data) as usize]
    }

    /// Removes `node` from check `check`'s left neighbours. Returns `true`
    /// if the edge existed. Refuses (returns `false`) to remove the last
    /// neighbour — a check must XOR something.
    pub fn remove_neighbor(&mut self, check: NodeId, node: NodeId) -> bool {
        let list = &mut self.checks[(check - self.num_data) as usize];
        if list.len() <= 1 {
            return false;
        }
        match list.iter().position(|&n| n == node) {
            Some(pos) => {
                list.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Adds `node` to check `check`'s left neighbours. Returns `true` if the
    /// edge was new; `false` if it already existed.
    pub fn add_neighbor(&mut self, check: NodeId, node: NodeId) -> bool {
        let list = &mut self.checks[(check - self.num_data) as usize];
        if list.contains(&node) {
            return false;
        }
        list.push(node);
        list.sort_unstable();
        true
    }

    /// Moves the edge `left — from_check` to `left — to_check` (the §3.3
    /// rewiring step as a single operation). Returns `false` and leaves the
    /// builder untouched if the move is impossible (edge absent, target edge
    /// already present, or `from_check` would be left empty).
    pub fn move_edge(&mut self, left: NodeId, from_check: NodeId, to_check: NodeId) -> bool {
        let to_list = &self.checks[(to_check - self.num_data) as usize];
        if to_list.contains(&left) {
            return false;
        }
        if !self.remove_neighbor(from_check, left) {
            return false;
        }
        let added = self.add_neighbor(to_check, left);
        debug_assert!(added, "membership was pre-checked");
        true
    }

    /// Replaces neighbour `old` of check node `check` with `new`
    /// (a §3.3 rewiring variant). Returns `true` if the replacement was
    /// made; `false` if `old` was not a neighbour or `new` already is.
    pub fn replace_neighbor(&mut self, check: NodeId, old: NodeId, new: NodeId) -> bool {
        let list = &mut self.checks[(check - self.num_data) as usize];
        if list.contains(&new) {
            return false;
        }
        match list.iter().position(|&n| n == old) {
            Some(pos) => {
                list[pos] = new;
                list.sort_unstable();
                true
            }
            None => false,
        }
    }

    /// Validates and freezes into an immutable [`Graph`].
    pub fn build(self) -> Result<Graph, GraphError> {
        if self.num_data == 0 {
            return Err(GraphError::NoDataNodes);
        }
        let num_nodes = self.num_data + self.checks.len() as u32;

        // Per-check validation.
        for (i, nbrs) in self.checks.iter().enumerate() {
            let check = self.num_data + i as u32;
            if nbrs.is_empty() {
                return Err(GraphError::EmptyCheck { check });
            }
            for w in nbrs.windows(2) {
                if w[0] == w[1] {
                    return Err(GraphError::DuplicateNeighbor { check, neighbor: w[0] });
                }
            }
            for &n in nbrs {
                if n >= num_nodes {
                    return Err(GraphError::NodeOutOfRange { id: n, num_nodes });
                }
                if n >= check {
                    return Err(GraphError::ForwardEdge { check, neighbor: n });
                }
            }
        }

        // Assemble levels: data first, then check levels in declared order.
        let mut levels = Vec::with_capacity(1 + self.level_sizes.len());
        levels.push(Level {
            kind: LevelKind::Data,
            start: 0,
            end: self.num_data,
            label: "data".to_string(),
        });
        let mut cursor = self.num_data;
        for (label, size) in &self.level_sizes {
            if *size == 0 {
                return Err(GraphError::BadLevelPartition {
                    detail: format!("check level '{label}' is empty"),
                });
            }
            levels.push(Level {
                kind: LevelKind::Check,
                start: cursor,
                end: cursor + *size as u32,
                label: label.clone(),
            });
            cursor += *size as u32;
        }

        // Forward CSR.
        let mut check_offsets = Vec::with_capacity(self.checks.len() + 1);
        let mut check_edges = Vec::new();
        check_offsets.push(0u32);
        for nbrs in &self.checks {
            check_edges.extend_from_slice(nbrs);
            check_offsets.push(check_edges.len() as u32);
        }

        // Reverse CSR (counting sort by neighbour id).
        let mut counts = vec![0u32; num_nodes as usize + 1];
        for &n in &check_edges {
            counts[n as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let node_offsets = counts.clone();
        let mut node_checks = vec![0u32; check_edges.len()];
        let mut fill = counts;
        for (i, nbrs) in self.checks.iter().enumerate() {
            let check = self.num_data + i as u32;
            for &n in nbrs {
                node_checks[fill[n as usize] as usize] = check;
                fill[n as usize] += 1;
            }
        }

        let graph = Graph {
            num_data: self.num_data,
            num_nodes,
            levels,
            check_offsets,
            check_edges,
            node_offsets,
            node_checks,
        };
        graph.validate()?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_validates_empty_check() {
        let mut b = GraphBuilder::new(2);
        b.begin_level("c");
        b.add_check(&[]);
        assert_eq!(b.build().unwrap_err(), GraphError::EmptyCheck { check: 2 });
    }

    #[test]
    fn build_validates_duplicate_neighbor() {
        let mut b = GraphBuilder::new(2);
        b.begin_level("c");
        b.add_check(&[0, 0]);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::DuplicateNeighbor { check: 2, neighbor: 0 }
        );
    }

    #[test]
    fn build_validates_forward_edge() {
        let mut b = GraphBuilder::new(2);
        b.begin_level("c");
        b.add_check(&[0, 1]); // id 2
        b.add_check(&[3]); // id 3 referencing itself
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::ForwardEdge { check: 3, neighbor: 3 }
        );
    }

    #[test]
    fn build_validates_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.begin_level("c");
        b.add_check(&[7]);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::NodeOutOfRange { id: 7, num_nodes: 3 }
        );
    }

    #[test]
    fn build_rejects_no_data() {
        assert_eq!(GraphBuilder::new(0).build().unwrap_err(), GraphError::NoDataNodes);
    }

    #[test]
    fn build_rejects_empty_level() {
        let mut b = GraphBuilder::new(2);
        b.begin_level("empty");
        b.begin_level("real");
        b.add_check(&[0]);
        assert!(matches!(b.build().unwrap_err(), GraphError::BadLevelPartition { .. }));
    }

    #[test]
    fn neighbors_are_sorted_regardless_of_input_order() {
        let mut b = GraphBuilder::new(4);
        b.begin_level("c");
        let id = b.add_check(&[3, 0, 2]);
        assert_eq!(b.neighbors_of(id), &[0, 2, 3]);
        let g = b.build().unwrap();
        assert_eq!(g.check_neighbors(id), &[0, 2, 3]);
    }

    #[test]
    fn replace_neighbor_rewires() {
        let mut b = GraphBuilder::new(4);
        b.begin_level("c");
        let id = b.add_check(&[0, 1]);
        assert!(b.replace_neighbor(id, 1, 3));
        assert_eq!(b.neighbors_of(id), &[0, 3]);
        assert!(!b.replace_neighbor(id, 1, 2), "1 is no longer a neighbour");
        assert!(!b.replace_neighbor(id, 0, 3), "3 already present");
        let g = b.build().unwrap();
        assert_eq!(g.check_neighbors(id), &[0, 3]);
    }

    #[test]
    fn remove_and_add_neighbor() {
        let mut b = GraphBuilder::new(4);
        b.begin_level("c");
        let c0 = b.add_check(&[0, 1]);
        let c1 = b.add_check(&[2]);
        assert!(b.remove_neighbor(c0, 1));
        assert!(!b.remove_neighbor(c0, 0), "refuses to empty a check");
        assert!(b.add_neighbor(c0, 3));
        assert!(!b.add_neighbor(c0, 3), "no duplicate edges");
        assert_eq!(b.neighbors_of(c0), &[0, 3]);
        assert!(!b.remove_neighbor(c1, 0), "absent edge");
    }

    #[test]
    fn move_edge_is_atomic() {
        let mut b = GraphBuilder::new(4);
        b.begin_level("c");
        let c0 = b.add_check(&[0, 1]);
        let c1 = b.add_check(&[1, 2]);
        assert!(b.move_edge(0, c0, c1));
        assert_eq!(b.neighbors_of(c0), &[1]);
        assert_eq!(b.neighbors_of(c1), &[0, 1, 2]);
        // Impossible moves leave everything untouched.
        assert!(!b.move_edge(1, c0, c1), "target already has 1");
        assert_eq!(b.neighbors_of(c0), &[1]);
        assert!(!b.move_edge(3, c0, c1), "edge 3–c0 absent");
        assert!(!b.move_edge(1, c0, c0), "would empty c0 / self move");
    }

    #[test]
    fn reverse_adjacency_is_consistent() {
        let mut b = GraphBuilder::new(3);
        b.begin_level("c1");
        b.add_check(&[0, 1]); // 3
        b.add_check(&[1, 2]); // 4
        b.begin_level("c2");
        b.add_check(&[3, 4]); // 5
        let g = b.build().unwrap();
        assert_eq!(g.checks_of(1), &[3, 4]);
        assert_eq!(g.checks_of(3), &[5]);
        assert_eq!(g.checks_of(5), &[] as &[u32]);
        // Every forward edge appears exactly once in reverse.
        let mut forward = 0;
        for c in g.check_ids() {
            forward += g.check_neighbors(c).len();
        }
        let mut reverse = 0;
        for v in 0..g.num_nodes() as u32 {
            reverse += g.checks_of(v).len();
        }
        assert_eq!(forward, reverse);
    }

    #[test]
    fn multi_level_labels_preserved() {
        let mut b = GraphBuilder::new(2);
        b.begin_level("alpha");
        b.add_check(&[0]);
        b.begin_level("beta");
        b.add_check(&[1, 2]);
        let g = b.build().unwrap();
        let labels: Vec<&str> = g.levels().iter().map(|l| l.label.as_str()).collect();
        assert_eq!(labels, vec!["data", "alpha", "beta"]);
    }
}
