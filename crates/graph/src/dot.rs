//! Graphviz DOT export.
//!
//! Renders cascades in the style of the paper's Figs. 1–2: one rank per
//! level, data nodes as boxes, check nodes as circles. The testing suite in
//! the paper "can render failed graphs highlighting unrecoverable nodes";
//! [`to_dot_highlighted`] reproduces that by colouring a node set.

use crate::model::{Graph, LevelKind, NodeId};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders `graph` as DOT.
pub fn to_dot(graph: &Graph) -> String {
    to_dot_highlighted(graph, &[])
}

/// Renders `graph` as DOT with the nodes in `highlight` filled red —
/// typically the unrecoverable nodes of a failed reconstruction.
pub fn to_dot_highlighted(graph: &Graph, highlight: &[NodeId]) -> String {
    let marked: BTreeSet<NodeId> = highlight.iter().copied().collect();
    let mut s = String::new();
    s.push_str("digraph tornado {\n  rankdir=LR;\n  node [fontsize=10];\n");
    for (i, level) in graph.levels().iter().enumerate() {
        let _ = writeln!(s, "  subgraph cluster_{i} {{");
        let _ = writeln!(s, "    label=\"{}\";", level.label);
        let shape = match level.kind {
            LevelKind::Data => "box",
            LevelKind::Check => "circle",
        };
        for id in level.nodes() {
            let style = if marked.contains(&id) {
                ", style=filled, fillcolor=\"#d62728\", fontcolor=white"
            } else {
                ""
            };
            let _ = writeln!(s, "    n{id} [shape={shape}{style}];");
        }
        s.push_str("  }\n");
    }
    for check in graph.check_ids() {
        for &left in graph.check_neighbors(check) {
            let _ = writeln!(s, "  n{left} -> n{check};");
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new(2);
        b.begin_level("c1");
        b.add_check(&[0, 1]);
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_clusters_and_edges() {
        let dot = to_dot(&sample());
        assert!(dot.starts_with("digraph tornado {"));
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("n0 [shape=box];"));
        assert!(dot.contains("n2 [shape=circle];"));
        assert!(dot.contains("n0 -> n2;"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn highlighting_marks_only_requested_nodes() {
        let dot = to_dot_highlighted(&sample(), &[1]);
        assert!(dot.contains("n1 [shape=box, style=filled"));
        assert!(dot.contains("n0 [shape=box];"));
    }
}
