//! Graph construction and I/O errors.

use std::fmt;

/// Errors raised while building, validating, or parsing a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph must contain at least one data node.
    NoDataNodes,
    /// A check node was declared with no left neighbours.
    EmptyCheck {
        /// Global id of the offending check node.
        check: u32,
    },
    /// A check node references a neighbour with an id not strictly smaller
    /// than its own (the cascade must be a DAG in id order).
    ForwardEdge {
        /// Global id of the check node.
        check: u32,
        /// The offending neighbour id.
        neighbor: u32,
    },
    /// A check node lists the same left neighbour twice (an XOR of a block
    /// with itself contributes nothing and signals a generator bug).
    DuplicateNeighbor {
        /// Global id of the check node.
        check: u32,
        /// The duplicated neighbour id.
        neighbor: u32,
    },
    /// Levels do not partition the node id space contiguously.
    BadLevelPartition {
        /// Description of the inconsistency.
        detail: String,
    },
    /// GraphML input could not be parsed.
    Parse {
        /// Line number (1-based) where parsing failed, if known.
        line: usize,
        /// Description of the problem.
        detail: String,
    },
    /// A node id is outside the declared node range.
    NodeOutOfRange {
        /// The offending id.
        id: u32,
        /// Number of nodes declared.
        num_nodes: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NoDataNodes => write!(f, "graph has no data nodes"),
            GraphError::EmptyCheck { check } => {
                write!(f, "check node {check} has no left neighbours")
            }
            GraphError::ForwardEdge { check, neighbor } => write!(
                f,
                "check node {check} references neighbour {neighbor} with a non-smaller id"
            ),
            GraphError::DuplicateNeighbor { check, neighbor } => write!(
                f,
                "check node {check} lists neighbour {neighbor} more than once"
            ),
            GraphError::BadLevelPartition { detail } => {
                write!(f, "levels do not partition the node space: {detail}")
            }
            GraphError::Parse { line, detail } => {
                write!(f, "GraphML parse error at line {line}: {detail}")
            }
            GraphError::NodeOutOfRange { id, num_nodes } => {
                write!(f, "node id {id} out of range (graph has {num_nodes} nodes)")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_identify_nodes() {
        let e = GraphError::EmptyCheck { check: 50 };
        assert!(e.to_string().contains("50"));
        let e = GraphError::ForwardEdge { check: 10, neighbor: 11 };
        assert!(e.to_string().contains("10") && e.to_string().contains("11"));
        let e = GraphError::Parse { line: 7, detail: "bad tag".into() };
        assert!(e.to_string().contains("line 7"));
    }
}
