//! GraphML serialisation.
//!
//! The paper's testing system "stores graphs in the standardized GraphML
//! format to simplify graph visualization and editing" (§3). This module
//! writes and reads the subset of GraphML the workspace needs: node elements
//! carrying `kind` and `level` attributes, and directed edges from each left
//! neighbour to the check node that XORs it in.
//!
//! The parser is a small hand-rolled tokenizer for well-formed GraphML of
//! the shape this module emits (plus whitespace/attribute-order variations).
//! It is not a general XML parser, by design — no external dependencies.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::model::{Graph, LevelKind};
use std::fmt::Write as _;

/// Serialises `graph` to a GraphML string.
///
/// ```
/// use tornado_graph::{GraphBuilder, graphml};
/// let mut b = GraphBuilder::new(2);
/// b.begin_level("c1");
/// b.add_check(&[0, 1]);
/// let g = b.build().unwrap();
/// let xml = graphml::to_graphml(&g);
/// let back = graphml::from_graphml(&xml).unwrap();
/// assert_eq!(g, back);
/// ```
pub fn to_graphml(graph: &Graph) -> String {
    let mut s = String::with_capacity(graph.num_nodes() * 96 + graph.num_edges() * 48);
    s.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    s.push_str("<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n");
    s.push_str("  <key id=\"kind\" for=\"node\" attr.name=\"kind\" attr.type=\"string\"/>\n");
    s.push_str("  <key id=\"level\" for=\"node\" attr.name=\"level\" attr.type=\"string\"/>\n");
    s.push_str("  <graph id=\"tornado\" edgedefault=\"directed\">\n");
    for level in graph.levels() {
        let kind = match level.kind {
            LevelKind::Data => "data",
            LevelKind::Check => "check",
        };
        for id in level.nodes() {
            let _ = writeln!(
                s,
                "    <node id=\"n{id}\"><data key=\"kind\">{kind}</data><data key=\"level\">{}</data></node>",
                escape(&level.label)
            );
        }
    }
    let mut edge_id = 0usize;
    for check in graph.check_ids() {
        for &left in graph.check_neighbors(check) {
            let _ = writeln!(
                s,
                "    <edge id=\"e{edge_id}\" source=\"n{left}\" target=\"n{check}\"/>"
            );
            edge_id += 1;
        }
    }
    s.push_str("  </graph>\n</graphml>\n");
    s
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(text: &str) -> String {
    text.replace("&quot;", "\"")
        .replace("&gt;", ">")
        .replace("&lt;", "<")
        .replace("&amp;", "&")
}

/// One parsed XML tag event.
#[derive(Debug, PartialEq)]
enum Event<'a> {
    /// `<name attr=".." ..>` — `self_closing` if it ends with `/>`.
    Open {
        name: &'a str,
        attrs: Vec<(&'a str, String)>,
        self_closing: bool,
    },
    /// `</name>`
    Close(&'a str),
    /// Text between tags (trimmed; empty text skipped).
    Text(String),
}

/// Minimal XML tokenizer for the GraphML subset.
struct Tokenizer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0, line: 1 }
    }

    fn err(&self, detail: impl Into<String>) -> GraphError {
        GraphError::Parse {
            line: self.line,
            detail: detail.into(),
        }
    }

    fn bump_lines(&mut self, s: &str) {
        self.line += s.bytes().filter(|&b| b == b'\n').count();
    }

    fn next_event(&mut self) -> Result<Option<Event<'a>>, GraphError> {
        loop {
            let rest = &self.src[self.pos..];
            if rest.is_empty() {
                return Ok(None);
            }
            if let Some(lt) = rest.find('<') {
                if lt > 0 {
                    let text = &rest[..lt];
                    self.bump_lines(text);
                    self.pos += lt;
                    let trimmed = text.trim();
                    if !trimmed.is_empty() {
                        return Ok(Some(Event::Text(unescape(trimmed))));
                    }
                    continue;
                }
                // rest starts with '<'
                let gt = rest.find('>').ok_or_else(|| self.err("unterminated tag"))?;
                let tag = &rest[1..gt];
                self.bump_lines(&rest[..=gt]);
                self.pos += gt + 1;
                if tag.starts_with('?') || tag.starts_with('!') {
                    continue; // declaration or comment
                }
                if let Some(name) = tag.strip_prefix('/') {
                    return Ok(Some(Event::Close(name.trim())));
                }
                let self_closing = tag.ends_with('/');
                let body = tag.strip_suffix('/').unwrap_or(tag);
                let mut parts = body.splitn(2, char::is_whitespace);
                let name = parts.next().unwrap_or("");
                let attrs = match parts.next() {
                    Some(attr_src) => parse_attrs(attr_src).map_err(|d| self.err(d))?,
                    None => Vec::new(),
                };
                return Ok(Some(Event::Open {
                    name,
                    attrs,
                    self_closing,
                }));
            } else {
                let trimmed = rest.trim();
                self.pos = self.src.len();
                if trimmed.is_empty() {
                    return Ok(None);
                }
                return Err(self.err("trailing text outside tags"));
            }
        }
    }
}

fn parse_attrs(src: &str) -> Result<Vec<(&str, String)>, String> {
    let mut attrs = Vec::new();
    let mut rest = src.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("attribute without '=': {rest}"))?;
        let name = rest[..eq].trim();
        let after = rest[eq + 1..].trim_start();
        let quote = after
            .chars()
            .next()
            .filter(|&c| c == '"' || c == '\'')
            .ok_or_else(|| format!("attribute value not quoted: {after}"))?;
        let end = after[1..]
            .find(quote)
            .ok_or_else(|| format!("unterminated attribute value: {after}"))?;
        attrs.push((name, unescape(&after[1..1 + end])));
        rest = after[end + 2..].trim_start();
    }
    Ok(attrs)
}

fn node_index(id: &str, line: usize) -> Result<u32, GraphError> {
    id.strip_prefix('n')
        .and_then(|s| s.parse::<u32>().ok())
        .ok_or_else(|| GraphError::Parse {
            line,
            detail: format!("node id '{id}' is not of the form n<index>"),
        })
}

/// Parses a graph from GraphML produced by [`to_graphml`] (attribute order
/// and whitespace may vary).
pub fn from_graphml(src: &str) -> Result<Graph, GraphError> {
    struct NodeRec {
        kind: Option<String>,
        level: Option<String>,
    }
    let mut nodes: Vec<(u32, NodeRec)> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();

    let mut tok = Tokenizer::new(src);
    // Current <node> being filled and the active <data key=..> inside it.
    let mut current_node: Option<usize> = None;
    let mut current_key: Option<String> = None;

    while let Some(ev) = tok.next_event()? {
        match ev {
            Event::Open { name: "node", attrs, self_closing } => {
                let id = attrs
                    .iter()
                    .find(|(k, _)| *k == "id")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| tok.err("<node> without id"))?;
                let idx = node_index(&id, tok.line)?;
                nodes.push((idx, NodeRec { kind: None, level: None }));
                if !self_closing {
                    current_node = Some(nodes.len() - 1);
                }
            }
            Event::Close("node") => current_node = None,
            Event::Open { name: "data", attrs, self_closing }
                if current_node.is_some() && !self_closing => {
                    current_key = attrs
                        .iter()
                        .find(|(k, _)| *k == "key")
                        .map(|(_, v)| v.clone());
                }
            Event::Close("data") => current_key = None,
            Event::Text(text) => {
                if let (Some(ni), Some(key)) = (current_node, current_key.as_deref()) {
                    match key {
                        "kind" => nodes[ni].1.kind = Some(text),
                        "level" => nodes[ni].1.level = Some(text),
                        _ => {}
                    }
                }
            }
            Event::Open { name: "edge", attrs, .. } => {
                let get = |k: &str| {
                    attrs
                        .iter()
                        .find(|(a, _)| *a == k)
                        .map(|(_, v)| v.clone())
                        .ok_or_else(|| GraphError::Parse {
                            line: tok.line,
                            detail: format!("<edge> without {k}"),
                        })
                };
                let source = node_index(&get("source")?, tok.line)?;
                let target = node_index(&get("target")?, tok.line)?;
                edges.push((source, target));
            }
            _ => {}
        }
    }

    if nodes.is_empty() {
        return Err(GraphError::Parse {
            line: tok.line,
            detail: "no nodes found".into(),
        });
    }
    nodes.sort_by_key(|&(id, _)| id);
    for (expect, &(id, _)) in nodes.iter().enumerate() {
        if id != expect as u32 {
            return Err(GraphError::Parse {
                line: 0,
                detail: format!("node ids not contiguous: expected n{expect}, found n{id}"),
            });
        }
    }

    // Group contiguous runs of (kind, level) into levels.
    let num_data = nodes
        .iter()
        .take_while(|(_, rec)| rec.kind.as_deref() == Some("data"))
        .count();
    if num_data == 0 {
        return Err(GraphError::Parse {
            line: 0,
            detail: "no data nodes (kind=\"data\") at the start of the id space".into(),
        });
    }

    // Left-neighbour list per check node.
    let num_nodes = nodes.len();
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); num_nodes - num_data];
    for (source, target) in edges {
        if (target as usize) < num_data || target as usize >= num_nodes {
            return Err(GraphError::Parse {
                line: 0,
                detail: format!("edge targets non-check node n{target}"),
            });
        }
        neighbors[target as usize - num_data].push(source);
    }

    let mut builder = GraphBuilder::new(num_data);
    let mut current_label: Option<&str> = None;
    for (idx, (_, rec)) in nodes.iter().enumerate().skip(num_data) {
        if rec.kind.as_deref() != Some("check") {
            return Err(GraphError::Parse {
                line: 0,
                detail: format!("node n{idx} after the data level must have kind=\"check\""),
            });
        }
        let label = rec.level.as_deref().unwrap_or("check");
        if current_label != Some(label) {
            builder.begin_level(label);
            current_label = Some(label);
        }
        builder.add_check(&neighbors[idx - num_data]);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.begin_level("check-1");
        b.add_check(&[0, 1]);
        b.add_check(&[1, 2, 3]);
        b.begin_level("check-2");
        b.add_check(&[4, 5]);
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample();
        let xml = to_graphml(&g);
        let back = from_graphml(&xml).unwrap();
        assert_eq!(g, back);
        assert_eq!(g.fingerprint(), back.fingerprint());
    }

    #[test]
    fn output_contains_expected_elements() {
        let xml = to_graphml(&sample());
        assert!(xml.contains("<graphml"));
        assert!(xml.contains("<node id=\"n0\">"));
        assert!(xml.contains("<edge id=\"e0\" source=\"n0\" target=\"n4\"/>"));
        assert!(xml.contains("check-2"));
        assert!(xml.ends_with("</graphml>\n"));
    }

    #[test]
    fn parser_tolerates_reordered_attributes_and_whitespace() {
        let xml = r#"<?xml version="1.0"?>
<graphml>
  <graph edgedefault="directed" id="g">
    <node id="n0"> <data key="kind">data</data><data key="level">data</data> </node>
    <node id="n1"><data key="level">data</data><data key="kind">data</data></node>
    <node id="n2"><data key="kind">check</data><data key="level">c</data></node>
    <edge target="n2" source="n0" id="e0"/>
    <edge source="n1" target="n2" id="e1"/>
  </graph>
</graphml>"#;
        let g = from_graphml(xml).unwrap();
        assert_eq!(g.num_data(), 2);
        assert_eq!(g.check_neighbors(2), &[0, 1]);
    }

    #[test]
    fn parser_rejects_gap_in_ids() {
        let xml = r#"<graphml><graph>
<node id="n0"><data key="kind">data</data></node>
<node id="n2"><data key="kind">check</data></node>
<edge source="n0" target="n2"/>
</graph></graphml>"#;
        assert!(matches!(from_graphml(xml), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn parser_rejects_edge_into_data_node() {
        let xml = r#"<graphml><graph>
<node id="n0"><data key="kind">data</data></node>
<node id="n1"><data key="kind">data</data></node>
<node id="n2"><data key="kind">check</data></node>
<edge source="n0" target="n1"/>
<edge source="n0" target="n2"/>
</graph></graphml>"#;
        assert!(matches!(from_graphml(xml), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn parser_rejects_unterminated_tag() {
        assert!(matches!(
            from_graphml("<graphml><node id=\"n0\""),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn parser_reports_empty_input() {
        assert!(matches!(from_graphml(""), Err(GraphError::Parse { .. })));
        assert!(matches!(from_graphml("   \n  "), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn escaping_roundtrip_in_level_labels() {
        let mut b = GraphBuilder::new(1);
        b.begin_level("a<b>&\"c\"");
        b.add_check(&[0]);
        let g = b.build().unwrap();
        let back = from_graphml(&to_graphml(&g)).unwrap();
        assert_eq!(back.levels()[1].label, "a<b>&\"c\"");
    }

    #[test]
    fn large_graph_roundtrip() {
        // A wider cascade to exercise the writer/parser beyond toys.
        let mut b = GraphBuilder::new(48);
        b.begin_level("c1");
        for i in 0..24u32 {
            b.add_check(&[2 * i, 2 * i + 1]);
        }
        b.begin_level("c2");
        for i in 0..12u32 {
            b.add_check(&[48 + 2 * i, 48 + 2 * i + 1]);
        }
        let g = b.build().unwrap();
        let back = from_graphml(&to_graphml(&g)).unwrap();
        assert_eq!(g, back);
    }
}
