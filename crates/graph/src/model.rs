//! The frozen graph representation.

use crate::error::GraphError;

/// Global node identifier. Data nodes are `0..num_data`; check nodes follow
/// in level order.
pub type NodeId = u32;

/// What a level's nodes hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LevelKind {
    /// Original data blocks.
    Data,
    /// XOR parity of left neighbours.
    Check,
}

/// A contiguous range of node ids forming one level of the cascade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Level {
    /// Data or check level.
    pub kind: LevelKind,
    /// First node id in the level (inclusive).
    pub start: NodeId,
    /// One past the last node id in the level.
    pub end: NodeId,
    /// Human-readable label, e.g. `"data"`, `"check-1"`, `"final-a"`.
    pub label: String,
}

impl Level {
    /// Number of nodes in the level.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the level contains no nodes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `node` belongs to this level.
    pub fn contains(&self, node: NodeId) -> bool {
        (self.start..self.end).contains(&node)
    }

    /// Iterator over the node ids in the level.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        self.start..self.end
    }
}

/// A validated, immutable cascaded LDPC graph with CSR adjacency in both
/// directions.
///
/// Obtained from [`crate::GraphBuilder::build`] or by parsing GraphML. The
/// decoder-facing accessors ([`Graph::check_neighbors`],
/// [`Graph::checks_of`]) return slices into flat arrays and never allocate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    pub(crate) num_data: u32,
    pub(crate) num_nodes: u32,
    pub(crate) levels: Vec<Level>,
    /// CSR over check nodes: `check_edges[check_offsets[c]..check_offsets[c+1]]`
    /// are the left neighbours of check `num_data + c`.
    pub(crate) check_offsets: Vec<u32>,
    pub(crate) check_edges: Vec<u32>,
    /// Reverse CSR: `node_checks[node_offsets[v]..node_offsets[v+1]]` are the
    /// *global ids* of the check nodes that XOR node `v` in.
    pub(crate) node_offsets: Vec<u32>,
    pub(crate) node_checks: Vec<u32>,
}

impl Graph {
    /// Number of data nodes (`k`).
    #[inline]
    pub fn num_data(&self) -> usize {
        self.num_data as usize
    }

    /// Number of check nodes.
    #[inline]
    pub fn num_checks(&self) -> usize {
        (self.num_nodes - self.num_data) as usize
    }

    /// Total number of nodes (`n = data + checks`).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Total number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.check_edges.len()
    }

    /// Whether `node` is a data node.
    #[inline]
    pub fn is_data(&self, node: NodeId) -> bool {
        node < self.num_data
    }

    /// Whether `node` is a check node.
    #[inline]
    pub fn is_check(&self, node: NodeId) -> bool {
        node >= self.num_data && node < self.num_nodes
    }

    /// The cascade levels, in id order (data level first).
    #[inline]
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// The level containing `node`.
    pub fn level_of(&self, node: NodeId) -> &Level {
        self.levels
            .iter()
            .find(|l| l.contains(node))
            .expect("every node belongs to a level")
    }

    /// Left neighbours of a check node (global ids, ascending).
    ///
    /// # Panics
    /// Panics if `check` is not a check node.
    #[inline]
    pub fn check_neighbors(&self, check: NodeId) -> &[u32] {
        debug_assert!(self.is_check(check), "{check} is not a check node");
        let c = (check - self.num_data) as usize;
        let (a, b) = (self.check_offsets[c] as usize, self.check_offsets[c + 1] as usize);
        &self.check_edges[a..b]
    }

    /// The check nodes (global ids, ascending) that include `node` as a left
    /// neighbour.
    #[inline]
    pub fn checks_of(&self, node: NodeId) -> &[u32] {
        let v = node as usize;
        let (a, b) = (self.node_offsets[v] as usize, self.node_offsets[v + 1] as usize);
        &self.node_checks[a..b]
    }

    /// Iterator over all check node ids.
    #[inline]
    pub fn check_ids(&self) -> std::ops::Range<NodeId> {
        self.num_data..self.num_nodes
    }

    /// Iterator over all data node ids.
    #[inline]
    pub fn data_ids(&self) -> std::ops::Range<NodeId> {
        0..self.num_data
    }

    /// Degree of a node counting both directions: for a data node, the
    /// number of checks using it; for a check node, its left neighbours plus
    /// the deeper checks using it.
    pub fn degree(&self, node: NodeId) -> usize {
        let up = self.checks_of(node).len();
        if self.is_check(node) {
            up + self.check_neighbors(node).len()
        } else {
            up
        }
    }

    /// Rebuilds a [`crate::GraphBuilder`] with this graph's structure, for
    /// mutation (used by the §3.3 adjustment procedure).
    pub fn to_builder(&self) -> crate::GraphBuilder {
        crate::GraphBuilder::from_graph(self)
    }

    /// A stable 64-bit structural fingerprint (FNV-1a over the canonical
    /// adjacency), used to detect accidental graph mutation and to name
    /// generated graphs reproducibly.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |x: u32| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.num_data);
        eat(self.num_nodes);
        for &o in &self.check_offsets {
            eat(o);
        }
        for &e in &self.check_edges {
            eat(e);
        }
        h
    }

    /// Validates internal consistency; returns the graph's structural
    /// invariant violations if any. Primarily used by property tests and
    /// after GraphML round-trips.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.num_data == 0 {
            return Err(GraphError::NoDataNodes);
        }
        for check in self.check_ids() {
            let nbrs = self.check_neighbors(check);
            if nbrs.is_empty() {
                return Err(GraphError::EmptyCheck { check });
            }
            for w in nbrs.windows(2) {
                if w[0] == w[1] {
                    return Err(GraphError::DuplicateNeighbor { check, neighbor: w[0] });
                }
            }
            for &n in nbrs {
                if n >= check {
                    return Err(GraphError::ForwardEdge { check, neighbor: n });
                }
            }
        }
        // Levels partition 0..num_nodes contiguously, data level first.
        let mut cursor = 0u32;
        for (i, level) in self.levels.iter().enumerate() {
            if level.start != cursor {
                return Err(GraphError::BadLevelPartition {
                    detail: format!("level {i} starts at {} expected {cursor}", level.start),
                });
            }
            if level.is_empty() {
                return Err(GraphError::BadLevelPartition {
                    detail: format!("level {i} is empty"),
                });
            }
            if (level.kind == LevelKind::Data) != (i == 0) {
                return Err(GraphError::BadLevelPartition {
                    detail: format!("level {i} kind mismatch (only level 0 may be data)"),
                });
            }
            cursor = level.end;
        }
        if cursor != self.num_nodes {
            return Err(GraphError::BadLevelPartition {
                detail: format!("levels end at {cursor}, graph has {} nodes", self.num_nodes),
            });
        }
        if self.levels.first().map(|l| l.end) != Some(self.num_data) {
            return Err(GraphError::BadLevelPartition {
                detail: "data level does not span 0..num_data".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// A tiny valid cascade: 4 data nodes, one level of 2 checks.
    fn tiny() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.begin_level("check-1");
        b.add_check(&[0, 1]);
        b.add_check(&[2, 3]);
        b.build().unwrap()
    }

    #[test]
    fn accessors_report_shape() {
        let g = tiny();
        assert_eq!(g.num_data(), 4);
        assert_eq!(g.num_checks(), 2);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_data(3));
        assert!(!g.is_data(4));
        assert!(g.is_check(4));
        assert!(!g.is_check(6));
    }

    #[test]
    fn adjacency_both_directions() {
        let g = tiny();
        assert_eq!(g.check_neighbors(4), &[0, 1]);
        assert_eq!(g.check_neighbors(5), &[2, 3]);
        assert_eq!(g.checks_of(0), &[4]);
        assert_eq!(g.checks_of(2), &[5]);
        assert_eq!(g.checks_of(4), &[] as &[u32], "no deeper level uses check 4");
    }

    #[test]
    fn levels_partition() {
        let g = tiny();
        assert_eq!(g.levels().len(), 2);
        assert_eq!(g.levels()[0].kind, LevelKind::Data);
        assert_eq!(g.levels()[0].nodes(), 0..4);
        assert_eq!(g.levels()[1].nodes(), 4..6);
        assert_eq!(g.level_of(5).label, "check-1");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn degree_counts_both_directions() {
        // Two cascade levels so a check node has both in- and out-edges.
        let mut b = GraphBuilder::new(2);
        b.begin_level("c1");
        b.add_check(&[0, 1]); // node 2
        b.begin_level("c2");
        b.add_check(&[0, 2]); // node 3 uses data 0 and check 2
        let g = b.build().unwrap();
        assert_eq!(g.degree(0), 2, "data 0 feeds checks 2 and 3");
        assert_eq!(g.degree(2), 3, "check 2: two left neighbours + used by check 3");
        assert_eq!(g.degree(3), 2);
    }

    #[test]
    fn fingerprint_distinguishes_structure() {
        let g1 = tiny();
        let mut b = GraphBuilder::new(4);
        b.begin_level("check-1");
        b.add_check(&[0, 2]);
        b.add_check(&[1, 3]);
        let g2 = b.build().unwrap();
        assert_ne!(g1.fingerprint(), g2.fingerprint());
        assert_eq!(g1.fingerprint(), tiny().fingerprint(), "deterministic");
    }

    #[test]
    fn to_builder_roundtrip_preserves_structure() {
        let g = tiny();
        let rebuilt = g.to_builder().build().unwrap();
        assert_eq!(g, rebuilt);
    }
}
