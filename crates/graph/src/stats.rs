//! Degree statistics.
//!
//! The paper characterises graphs by degree: the best Tornado graphs average
//! 3.6 edges per node, the fixed-degree cascades use 3/4/6, and §4.3 argues
//! the fault-tolerance trade-off is driven by connectivity. These helpers
//! compute the distributions those comparisons rely on.

use crate::model::{Graph, LevelKind};

/// Summary of a graph's degree structure.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Edges divided by total nodes (the paper's "average degree").
    pub mean_degree_per_node: f64,
    /// Edges divided by data nodes.
    pub mean_left_degree: f64,
    /// Edges divided by check nodes.
    pub mean_right_degree: f64,
    /// Histogram of check in-degrees: `check_degree_histogram[d]` = number of
    /// check nodes with `d` left neighbours.
    pub check_degree_histogram: Vec<usize>,
    /// Histogram of node out-degrees (how many checks use each node).
    pub out_degree_histogram: Vec<usize>,
    /// Minimum / maximum check in-degree.
    pub check_degree_range: (usize, usize),
    /// Number of nodes no check ever uses (degree-0 on the left side). Data
    /// nodes in this state are unprotected — any such node is a structural
    /// defect.
    pub unprotected_data_nodes: usize,
}

impl DegreeStats {
    /// Computes statistics for `graph`.
    pub fn of(graph: &Graph) -> Self {
        let edges = graph.num_edges() as f64;
        let mut check_hist: Vec<usize> = Vec::new();
        let (mut dmin, mut dmax) = (usize::MAX, 0usize);
        for c in graph.check_ids() {
            let d = graph.check_neighbors(c).len();
            if d >= check_hist.len() {
                check_hist.resize(d + 1, 0);
            }
            check_hist[d] += 1;
            dmin = dmin.min(d);
            dmax = dmax.max(d);
        }
        if graph.num_checks() == 0 {
            dmin = 0;
        }
        let mut out_hist: Vec<usize> = Vec::new();
        let mut unprotected = 0usize;
        for v in 0..graph.num_nodes() as u32 {
            let d = graph.checks_of(v).len();
            if d >= out_hist.len() {
                out_hist.resize(d + 1, 0);
            }
            out_hist[d] += 1;
            if d == 0 && graph.is_data(v) {
                unprotected += 1;
            }
        }
        Self {
            mean_degree_per_node: 2.0 * edges / graph.num_nodes() as f64,
            mean_left_degree: edges / graph.num_data() as f64,
            mean_right_degree: edges / graph.num_checks().max(1) as f64,
            check_degree_histogram: check_hist,
            out_degree_histogram: out_hist,
            check_degree_range: (dmin, dmax),
            unprotected_data_nodes: unprotected,
        }
    }
}

/// Per-level sizes, useful for printing cascade shapes like `48-24-12-12`.
pub fn level_shape(graph: &Graph) -> Vec<usize> {
    graph.levels().iter().map(|l| l.len()).collect()
}

/// The fraction of nodes that are check (parity) nodes — the storage
/// overhead of the code (0.5 for the paper's rate-1/2 graphs).
pub fn parity_fraction(graph: &Graph) -> f64 {
    graph.num_checks() as f64 / graph.num_nodes() as f64
}

/// Number of check levels (cascade depth, excluding the data level).
pub fn cascade_depth(graph: &Graph) -> usize {
    graph
        .levels()
        .iter()
        .filter(|l| l.kind == LevelKind::Check)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> Graph {
        // 4 data; checks: {0,1}, {1,2,3}, then a deeper check {4,5}.
        let mut b = GraphBuilder::new(4);
        b.begin_level("c1");
        b.add_check(&[0, 1]);
        b.add_check(&[1, 2, 3]);
        b.begin_level("c2");
        b.add_check(&[4, 5]);
        b.build().unwrap()
    }

    #[test]
    fn mean_degrees() {
        let g = sample();
        let s = DegreeStats::of(&g);
        assert_eq!(g.num_edges(), 7);
        assert!((s.mean_degree_per_node - 2.0 * 7.0 / 7.0).abs() < 1e-12);
        assert!((s.mean_left_degree - 7.0 / 4.0).abs() < 1e-12);
        assert!((s.mean_right_degree - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn check_histogram_counts_in_degrees() {
        let s = DegreeStats::of(&sample());
        // Degrees: 2, 3, 2.
        assert_eq!(s.check_degree_histogram[2], 2);
        assert_eq!(s.check_degree_histogram[3], 1);
        assert_eq!(s.check_degree_range, (2, 3));
    }

    #[test]
    fn out_histogram_and_unprotected() {
        let s = DegreeStats::of(&sample());
        // Out-degrees: node0:1, node1:2, node2:1, node3:1, node4:1, node5:1, node6:0.
        assert_eq!(s.out_degree_histogram[0], 1, "only the last check is unused");
        assert_eq!(s.out_degree_histogram[1], 5);
        assert_eq!(s.out_degree_histogram[2], 1);
        assert_eq!(s.unprotected_data_nodes, 0);
    }

    #[test]
    fn unprotected_data_detected() {
        let mut b = GraphBuilder::new(3);
        b.begin_level("c");
        b.add_check(&[0, 1]); // data node 2 unused
        let g = b.build().unwrap();
        assert_eq!(DegreeStats::of(&g).unprotected_data_nodes, 1);
    }

    #[test]
    fn shape_helpers() {
        let g = sample();
        assert_eq!(level_shape(&g), vec![4, 2, 1]);
        assert!((parity_fraction(&g) - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(cascade_depth(&g), 2);
    }
}
