//! Property-based tests for the graph model and its serialisations.

use proptest::prelude::*;
use tornado_graph::{dot, graphml, Graph, GraphBuilder};

/// Random small cascade described as per-level neighbour picks.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..12,
        proptest::collection::vec(any::<u64>(), 1..12),
    )
        .prop_map(|(num_data, picks)| {
            let mut b = GraphBuilder::new(num_data);
            b.begin_level("l0");
            for (i, seed) in picks.iter().enumerate() {
                let total = num_data as u32 + i as u32;
                if i > 0 && seed % 5 == 0 {
                    b.begin_level(&format!("l{i}"));
                }
                // 1–3 distinct neighbours among existing nodes.
                let mut s = *seed | 1;
                let want = 1 + (s % 3) as usize;
                let mut nbrs = Vec::new();
                while nbrs.len() < want.min(total as usize) {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let cand = (s % total as u64) as u32;
                    if !nbrs.contains(&cand) {
                        nbrs.push(cand);
                    }
                }
                b.add_check(&nbrs);
            }
            b.build().expect("constructed graphs are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Validation accepts everything the builder accepts.
    #[test]
    fn built_graphs_validate(g in arb_graph()) {
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.num_nodes(), g.num_data() + g.num_checks());
    }

    /// Forward and reverse adjacency describe the same edge set.
    #[test]
    fn adjacency_is_an_involution(g in arb_graph()) {
        for c in g.check_ids() {
            for &n in g.check_neighbors(c) {
                prop_assert!(g.checks_of(n).contains(&c), "edge {n}->{c} missing in reverse");
            }
        }
        for v in 0..g.num_nodes() as u32 {
            for &c in g.checks_of(v) {
                prop_assert!(g.check_neighbors(c).contains(&v));
            }
        }
        let forward: usize = g.check_ids().map(|c| g.check_neighbors(c).len()).sum();
        prop_assert_eq!(forward, g.num_edges());
    }

    /// Levels partition the id space and level_of is consistent.
    #[test]
    fn levels_partition_ids(g in arb_graph()) {
        let mut covered = 0u32;
        for level in g.levels() {
            prop_assert_eq!(level.start, covered);
            covered = level.end;
            for id in level.nodes() {
                prop_assert_eq!(g.level_of(id).label.clone(), level.label.clone());
            }
        }
        prop_assert_eq!(covered as usize, g.num_nodes());
    }

    /// GraphML round-trips arbitrary graphs; fingerprints are stable.
    #[test]
    fn graphml_roundtrip(g in arb_graph()) {
        let back = graphml::from_graphml(&graphml::to_graphml(&g)).expect("parse");
        prop_assert_eq!(&back, &g);
        prop_assert_eq!(back.fingerprint(), g.fingerprint());
    }

    /// Rebuilding through a builder is the identity.
    #[test]
    fn builder_roundtrip(g in arb_graph()) {
        prop_assert_eq!(g.to_builder().build().expect("rebuild"), g);
    }

    /// DOT output mentions every node and edge exactly once.
    #[test]
    fn dot_covers_everything(g in arb_graph()) {
        let rendered = dot::to_dot(&g);
        for v in 0..g.num_nodes() {
            prop_assert!(rendered.contains(&format!("n{v} [")), "node {v} missing");
        }
        let edge_lines = rendered.lines().filter(|l| l.contains("->")).count();
        prop_assert_eq!(edge_lines, g.num_edges());
    }
}
