//! Exact and log-space binomial coefficients.

/// Exact binomial coefficient `C(n, k)` in `u128`.
///
/// Multiplicative formula with interleaved division; every intermediate
/// value is an exact integer. Sufficient for all counts used by the 96- and
/// 192-device analyses (`C(96, 48) ≈ 6.4 × 10²⁷` fits comfortably).
///
/// # Panics
/// Panics when an intermediate product overflows `u128`; the peak
/// intermediate is about `C(n, n/2) · n/2`, so `n ≤ 126` is always safe.
/// Use [`ln_binomial`]/[`binomial_f64`] beyond that.
///
/// ```
/// use tornado_numerics::binomial_u128;
/// assert_eq!(binomial_u128(96, 2), 4560);
/// assert_eq!(binomial_u128(96, 48), 6_435_067_013_866_298_908_421_603_100);
/// ```
pub fn binomial_u128(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc
            .checked_mul((n - i) as u128)
            .expect("binomial coefficient overflows u128");
        acc /= (i + 1) as u128;
    }
    acc
}

/// Natural log of `n!` via a Lanczos-free exact/Stirling hybrid.
///
/// Values for `n < 256` come from a precomputed table built by exact
/// accumulation of `ln(i)`; larger `n` use the Stirling series with enough
/// terms for full `f64` accuracy in this range.
pub fn ln_factorial(n: u64) -> f64 {
    // Exact accumulation is both simple and accurate for moderate n; the
    // graphs analysed here never exceed a few hundred nodes.
    if n < 2 {
        return 0.0;
    }
    if n <= 4096 {
        let mut acc = 0.0f64;
        let mut c = 0.0f64; // Neumaier compensation
        for i in 2..=n {
            let x = (i as f64).ln();
            let t = acc + x;
            c += if acc.abs() >= x.abs() { (acc - t) + x } else { (x - t) + acc };
            acc = t;
        }
        acc + c
    } else {
        // Stirling's series: ln n! ≈ n ln n − n + ½ ln(2πn) + 1/(12n) − …
        let nf = n as f64;
        nf * nf.ln() - nf + 0.5 * (2.0 * std::f64::consts::PI * nf).ln() + 1.0 / (12.0 * nf)
            - 1.0 / (360.0 * nf.powi(3))
    }
}

/// Natural log of `C(n, k)`; `-inf` when `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Binomial coefficient as `f64` (exact for results below 2⁵³, ln-space
/// beyond that).
pub fn binomial_f64(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    // Within the exact function's safe domain the u128 → f64 conversion
    // rounds correctly, so exact integer arithmetic is preferable. Larger
    // arguments use the log-space form.
    if n <= 126 {
        binomial_u128(n, k) as f64
    } else {
        ln_binomial(n, k).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_cases() {
        assert_eq!(binomial_u128(0, 0), 1);
        assert_eq!(binomial_u128(1, 0), 1);
        assert_eq!(binomial_u128(1, 1), 1);
        assert_eq!(binomial_u128(10, 3), 120);
        assert_eq!(binomial_u128(52, 5), 2_598_960);
        assert_eq!(binomial_u128(3, 9), 0);
    }

    #[test]
    fn exact_pascal_rule_holds() {
        for n in 1..60u64 {
            for k in 1..n {
                assert_eq!(
                    binomial_u128(n, k),
                    binomial_u128(n - 1, k - 1) + binomial_u128(n - 1, k)
                );
            }
        }
    }

    #[test]
    fn exact_row_sums_are_powers_of_two() {
        for n in 0..=96u64 {
            let sum: u128 = (0..=n).map(|k| binomial_u128(n, k)).sum();
            assert_eq!(sum, 1u128 << n, "row {n}");
        }
    }

    #[test]
    fn ln_factorial_matches_direct_products() {
        let mut exact = 1.0f64;
        for n in 1..=170u64 {
            exact *= n as f64;
            let rel = (ln_factorial(n) - exact.ln()).abs() / exact.ln().max(1.0);
            assert!(rel < 1e-12, "n = {n}: rel err {rel}");
        }
    }

    #[test]
    fn ln_factorial_stirling_branch_is_continuous() {
        // Compare the table/accumulation branch against Stirling just past
        // the crossover.
        let a = ln_factorial(4096);
        let nf = 4097f64;
        let stirling = nf * nf.ln() - nf
            + 0.5 * (2.0 * std::f64::consts::PI * nf).ln()
            + 1.0 / (12.0 * nf);
        let b = ln_factorial(4097);
        assert!((b - stirling).abs() < 1e-8);
        assert!(b > a);
    }

    #[test]
    fn ln_binomial_agrees_with_exact() {
        for &(n, k) in &[(96u64, 4u64), (96, 48), (126, 10), (64, 32)] {
            let exact = binomial_u128(n, k) as f64;
            let rel = (ln_binomial(n, k).exp() - exact).abs() / exact;
            assert!(rel < 1e-10, "C({n},{k}) rel err {rel}");
        }
        assert_eq!(ln_binomial(5, 6), f64::NEG_INFINITY);
    }

    #[test]
    fn f64_binomial_is_exact_where_it_can_be() {
        assert_eq!(binomial_f64(96, 4), 3_321_960.0);
        assert_eq!(binomial_f64(10, 11), 0.0);
        let big = binomial_f64(96, 48);
        let exact = binomial_u128(96, 48) as f64;
        assert!((big - exact).abs() / exact < 1e-14);
    }
}
