//! The device-failure probability model (paper §5.1, Eqs. 2–3).
//!
//! The paper assumes independent device failures with a fixed annual failure
//! rate `p` and no repair. The number of failed devices is then binomial
//! (Eq. 2), and composing it with the *measured* conditional failure profile
//! `P(fail | k devices lost)` by total probability (Eq. 3) yields the system
//! failure probability reported in Table 5.

use crate::binomial::ln_binomial;
use crate::sum::NeumaierSum;

/// Probability that exactly `k` of `n` devices fail, each independently with
/// probability `p` (paper Eq. 2).
///
/// Computed in log space so extreme tails (e.g. `k = 48`, `p = 0.01`) do not
/// underflow prematurely.
///
/// ```
/// use tornado_numerics::binomial_pmf;
/// let p3 = binomial_pmf(96, 3, 0.01);
/// assert!((p3 - 0.056).abs() < 2e-3); // paper §5.1 quotes ≈ 0.056 for "exactly 3"
/// ```
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    // ln(1 - p) via ln_1p(-p) keeps full accuracy at the small p typical of
    // annual failure rates.
    let ln = ln_binomial(n, k) + (k as f64) * p.ln() + ((n - k) as f64) * (-p).ln_1p();
    ln.exp()
}

/// A binomial failure-count model over `n` devices with per-device failure
/// probability `p` in the modelled period.
#[derive(Clone, Copy, Debug)]
pub struct BinomialFailureModel {
    /// Number of devices.
    pub n: u64,
    /// Per-device failure probability (e.g. annual failure rate 0.01).
    pub p: f64,
}

impl BinomialFailureModel {
    /// Creates the model. `p` must be in `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        Self { n, p }
    }

    /// `P(exactly k devices fail)` — paper Eq. 2.
    pub fn pmf(&self, k: u64) -> f64 {
        binomial_pmf(self.n, k, self.p)
    }

    /// `P(at least k devices fail)`.
    pub fn sf(&self, k: u64) -> f64 {
        let mut s = NeumaierSum::new();
        for j in k..=self.n {
            s.add(self.pmf(j));
        }
        s.value()
    }

    /// Composes the model with a conditional failure profile
    /// `P(fail | k devices lost)` given as `profile[k]` (paper Eq. 3).
    ///
    /// `profile` must have `n + 1` entries (`k = 0..=n`); each entry must be
    /// a probability.
    pub fn compose(&self, profile: &[f64]) -> f64 {
        compose_failure_probability(self.n, self.p, profile)
    }
}

/// Total-probability composition (paper Eq. 3):
/// `P(fail) = Σₖ P(fail | k lost) · P(k lost)`.
///
/// # Panics
/// Panics if `profile.len() != n + 1` or any entry is outside `[0, 1]`.
pub fn compose_failure_probability(n: u64, p: f64, profile: &[f64]) -> f64 {
    assert_eq!(
        profile.len() as u64,
        n + 1,
        "conditional profile must cover k = 0..=n"
    );
    let mut s = NeumaierSum::new();
    for (k, &cond) in profile.iter().enumerate() {
        assert!(
            (0.0..=1.0).contains(&cond),
            "profile[{k}] = {cond} is not a probability"
        );
        if cond > 0.0 {
            s.add(cond * binomial_pmf(n, k as u64, p));
        }
    }
    s.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for &p in &[0.0, 0.01, 0.3, 0.99, 1.0] {
            let m = BinomialFailureModel::new(96, p);
            let total: f64 = (0..=96).map(|k| m.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-12, "p = {p}: total {total}");
        }
    }

    #[test]
    fn pmf_degenerate_endpoints() {
        let never = BinomialFailureModel::new(10, 0.0);
        assert_eq!(never.pmf(0), 1.0);
        assert_eq!(never.pmf(1), 0.0);
        let always = BinomialFailureModel::new(10, 1.0);
        assert_eq!(always.pmf(10), 1.0);
        assert_eq!(always.pmf(9), 0.0);
    }

    #[test]
    fn pmf_matches_direct_formula_small_n() {
        // n = 4, p = 0.25: exact values are easy by hand.
        let m = BinomialFailureModel::new(4, 0.25);
        let q: f64 = 0.75;
        assert!((m.pmf(0) - q.powi(4)).abs() < 1e-15);
        assert!((m.pmf(1) - 4.0 * 0.25 * q.powi(3)).abs() < 1e-15);
        assert!((m.pmf(4) - 0.25f64.powi(4)).abs() < 1e-15);
    }

    #[test]
    fn paper_quoted_values() {
        // §5.1: "P(exactly 3 disks fail) = 0.056" and
        //        "P(exactly 5 disks fail) = 0.0024" for n = 96, p = 0.01.
        let m = BinomialFailureModel::new(96, 0.01);
        assert!((m.pmf(3) - 0.056).abs() < 2e-3, "pmf(3) = {}", m.pmf(3));
        assert!((m.pmf(5) - 0.0024).abs() < 3e-4, "pmf(5) = {}", m.pmf(5));
    }

    #[test]
    fn striping_composition_matches_closed_form() {
        // A striped system fails whenever any device fails:
        // P(fail) = 1 − (1 − p)ⁿ. Paper Table 5 reports 0.61895 for n = 96.
        let n = 96u64;
        let p = 0.01;
        let mut profile = vec![1.0; (n + 1) as usize];
        profile[0] = 0.0;
        let composed = compose_failure_probability(n, p, &profile);
        let closed = 1.0 - (1.0f64 - p).powi(n as i32);
        assert!((composed - closed).abs() < 1e-12);
        assert!((composed - 0.61895).abs() < 5e-5, "composed = {composed}");
    }

    #[test]
    fn individual_disk_convention() {
        // "Individual disk" in Table 5 is just p itself: the probability a
        // given disk's data is lost. Sanity-check our model can express the
        // single-device case.
        let m = BinomialFailureModel::new(1, 0.01);
        assert!((m.compose(&[0.0, 1.0]) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn survival_function_is_monotone() {
        let m = BinomialFailureModel::new(96, 0.01);
        let mut prev = 1.0 + 1e-12;
        for k in 0..=96 {
            let sf = m.sf(k);
            assert!(sf <= prev + 1e-12, "sf not monotone at k = {k}");
            prev = sf;
        }
        assert!((m.sf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn compose_rejects_short_profile() {
        compose_failure_probability(4, 0.1, &[0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn compose_rejects_invalid_probability() {
        compose_failure_probability(1, 0.1, &[0.0, 1.5]);
    }
}
