//! Numeric support for fault-tolerance analysis.
//!
//! The reliability model of the paper composes *exact* combinatorial counts
//! (how many erasure patterns avoid completing a mirrored pair / RAID group)
//! with *floating-point* probability models (binomial device-failure rates,
//! Eq. 2–3). This crate provides both halves plus the root-finding used by
//! the Tornado edge-distribution rescaler (§3.1):
//!
//! * [`binomial`] — exact coefficients in `u128` and numerically stable
//!   `ln`-space versions for large arguments;
//! * [`dist`] — the binomial failure-count distribution (paper Eq. 2) and
//!   the total-probability composition (paper Eq. 3);
//! * [`sum`] — compensated (Neumaier) summation so that summing 97 terms
//!   spanning 30 orders of magnitude stays accurate;
//! * [`solve`] — bracketing bisection and integer-target search used to find
//!   the constant edge-distribution multiplier that yields an exact node
//!   count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod dist;
pub mod solve;
pub mod sum;

pub use binomial::{binomial_f64, binomial_u128, ln_binomial, ln_factorial};
pub use dist::{binomial_pmf, compose_failure_probability, BinomialFailureModel};
pub use solve::{bisect, solve_integer_target, Bracket, SolveError};
pub use sum::NeumaierSum;
