//! Root finding for the edge-distribution rescaler.
//!
//! §3.1 of the paper: when a Luby edge-degree distribution is applied to a
//! small level (tens of nodes), naive rounding produces the wrong number of
//! nodes — "5 edges of degree 6" is meaningless. The paper's fix is "a
//! numeric solver to find a constant multiplier for the edge distribution
//! that produced the correct number of nodes". The node count as a function
//! of that multiplier is a monotone step function of a real parameter, so we
//! provide (a) classic bisection on continuous functions and (b) an integer
//! -target search over monotone step functions that returns *some* parameter
//! hitting the target exactly, or the nearest achievable value.

/// Error from a solver.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The supplied bracket does not enclose a sign change.
    NoSignChange {
        /// f(lo)
        f_lo: f64,
        /// f(hi)
        f_hi: f64,
    },
    /// The iteration limit was reached before the tolerance was met.
    IterationLimit,
    /// No parameter in the bracket achieves the requested integer target;
    /// carries the closest achieved value and the parameter that achieved it.
    TargetUnreachable {
        /// Closest integer value achieved within the bracket.
        closest: i64,
        /// Parameter at which `closest` was achieved.
        at: f64,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NoSignChange { f_lo, f_hi } => {
                write!(f, "bracket does not enclose a root: f(lo) = {f_lo}, f(hi) = {f_hi}")
            }
            SolveError::IterationLimit => write!(f, "iteration limit reached"),
            SolveError::TargetUnreachable { closest, at } => {
                write!(f, "integer target unreachable; closest {closest} at {at}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// A bracketing interval `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bracket {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Bracket {
    /// Creates a bracket; endpoints are reordered if needed.
    pub fn new(a: f64, b: f64) -> Self {
        if a <= b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }
}

/// Bisection on a continuous function with a sign change over `bracket`.
///
/// Returns an `x` with `|f(x)| ≤` machine-level interval width or after the
/// interval shrinks below `xtol`.
///
/// ```
/// use tornado_numerics::{bisect, Bracket};
/// let root = bisect(|x| x * x - 2.0, Bracket::new(0.0, 2.0), 1e-12, 200).unwrap();
/// assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    bracket: Bracket,
    xtol: f64,
    max_iter: usize,
) -> Result<f64, SolveError> {
    let (mut lo, mut hi) = (bracket.lo, bracket.hi);
    let (f_lo, f_hi) = (f(lo), f(hi));
    if f_lo == 0.0 {
        return Ok(lo);
    }
    if f_hi == 0.0 {
        return Ok(hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(SolveError::NoSignChange { f_lo, f_hi });
    }
    let lo_sign = f_lo.signum();
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        if hi - lo < xtol {
            return Ok(mid);
        }
        let f_mid = f(mid);
        if f_mid == 0.0 {
            return Ok(mid);
        }
        if f_mid.signum() == lo_sign {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Err(SolveError::IterationLimit)
}

/// Finds a parameter `x ∈ [bracket.lo, bracket.hi]` at which the monotone
/// non-decreasing step function `g` equals `target`.
///
/// This is the §3.1 solver: `g(multiplier)` is "number of nodes produced by
/// the rescaled edge distribution", a step function that only jumps at
/// finitely many points. Binary search homes in on the step containing the
/// target; if the function jumps over `target` (no multiplier yields it
/// exactly), the closest achievable value is reported via
/// [`SolveError::TargetUnreachable`].
pub fn solve_integer_target<G: FnMut(f64) -> i64>(
    mut g: G,
    bracket: Bracket,
    target: i64,
    max_iter: usize,
) -> Result<f64, SolveError> {
    let (mut lo, mut hi) = (bracket.lo, bracket.hi);
    let g_lo = g(lo);
    let g_hi = g(hi);
    if g_lo == target {
        return Ok(lo);
    }
    if g_hi == target {
        return Ok(hi);
    }
    if target < g_lo {
        return Err(SolveError::TargetUnreachable { closest: g_lo, at: lo });
    }
    if target > g_hi {
        return Err(SolveError::TargetUnreachable { closest: g_hi, at: hi });
    }
    // Invariant: g(lo) < target < g(hi).
    let mut best = (g_lo, lo);
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        if !(lo < mid && mid < hi) {
            // Interval exhausted at f64 resolution: the step jumps over the
            // target.
            let (g_best, at) = best;
            let g_hi_now = g(hi);
            let closest = if (g_best - target).abs() <= (g_hi_now - target).abs() {
                g_best
            } else {
                return Err(SolveError::TargetUnreachable { closest: g_hi_now, at: hi });
            };
            return Err(SolveError::TargetUnreachable { closest, at });
        }
        let v = g(mid);
        match v.cmp(&target) {
            std::cmp::Ordering::Equal => return Ok(mid),
            std::cmp::Ordering::Less => {
                best = (v, mid);
                lo = mid;
            }
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    Err(SolveError::IterationLimit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, Bracket::new(0.0, 2.0), 1e-13, 200).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_accepts_reversed_bracket() {
        let r = bisect(|x| x - 1.0, Bracket::new(5.0, -5.0), 1e-12, 200).unwrap();
        assert!((r - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bisect_endpoint_root() {
        assert_eq!(bisect(|x| x, Bracket::new(0.0, 1.0), 1e-12, 10).unwrap(), 0.0);
    }

    #[test]
    fn bisect_rejects_no_sign_change() {
        let err = bisect(|x| x * x + 1.0, Bracket::new(-1.0, 1.0), 1e-12, 50).unwrap_err();
        assert!(matches!(err, SolveError::NoSignChange { .. }));
    }

    #[test]
    fn integer_target_on_floor_function() {
        // g(x) = floor(3x): hit target 7 somewhere in [0, 10].
        let x = solve_integer_target(|x| (3.0 * x).floor() as i64, Bracket::new(0.0, 10.0), 7, 200)
            .unwrap();
        assert_eq!((3.0 * x).floor() as i64, 7);
    }

    #[test]
    fn integer_target_at_endpoints() {
        let g = |x: f64| x.floor() as i64;
        assert_eq!(solve_integer_target(g, Bracket::new(2.0, 9.0), 2, 100).unwrap(), 2.0);
        assert_eq!(solve_integer_target(g, Bracket::new(2.0, 9.0), 9, 100).unwrap(), 9.0);
    }

    #[test]
    fn integer_target_unreachable_below_and_above() {
        let g = |x: f64| x.floor() as i64;
        let e = solve_integer_target(g, Bracket::new(5.0, 9.0), 1, 100).unwrap_err();
        assert!(matches!(e, SolveError::TargetUnreachable { closest: 5, .. }));
        let e = solve_integer_target(g, Bracket::new(5.0, 9.0), 42, 100).unwrap_err();
        assert!(matches!(e, SolveError::TargetUnreachable { closest: 9, .. }));
    }

    #[test]
    fn integer_target_jumped_over() {
        // g jumps from 0 straight to 10 at x = 1: target 5 is unreachable.
        let g = |x: f64| if x < 1.0 { 0 } else { 10 };
        let e = solve_integer_target(g, Bracket::new(0.0, 2.0), 5, 500).unwrap_err();
        match e {
            SolveError::TargetUnreachable { closest, .. } => assert!(closest == 0 || closest == 10),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = SolveError::TargetUnreachable { closest: 3, at: 0.5 };
        assert!(e.to_string().contains("closest 3"));
    }
}
