//! Compensated floating-point summation.

/// Neumaier's improved Kahan–Babuška summation.
///
/// The reliability composition (paper Eq. 3) adds 97 products that span more
/// than thirty orders of magnitude — the `k = 5` term dominates by design
/// while the tail terms are around 10⁻⁴⁰. Compensated summation keeps the
/// result accurate to the last ulp regardless of ordering.
///
/// ```
/// use tornado_numerics::NeumaierSum;
/// let mut s = NeumaierSum::new();
/// s.add(1.0);
/// s.add(1e100);
/// s.add(1.0);
/// s.add(-1e100);
/// assert_eq!(s.value(), 2.0); // naive summation yields 0.0
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// A sum starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl FromIterator<f64> for NeumaierSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

/// Sums an iterator of `f64` with Neumaier compensation.
pub fn compensated_sum<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
    iter.into_iter().collect::<NeumaierSum>().value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(NeumaierSum::new().value(), 0.0);
    }

    #[test]
    fn plain_sums_match_naive_for_benign_input() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(compensated_sum(xs.iter().copied()), 5050.0);
    }

    #[test]
    fn survives_catastrophic_cancellation() {
        assert_eq!(compensated_sum([1.0, 1e100, 1.0, -1e100]), 2.0);
    }

    #[test]
    fn accumulates_tiny_terms_against_a_dominant_one() {
        // 1 + 2^-53 added 2^12 times: naive summation drops every tiny term.
        let mut s = NeumaierSum::new();
        s.add(1.0);
        let tiny = (2.0f64).powi(-53);
        for _ in 0..4096 {
            s.add(tiny);
        }
        let expected = 1.0 + 4096.0 * tiny;
        assert_eq!(s.value(), expected);
    }

    #[test]
    fn from_iterator_collects() {
        let s: NeumaierSum = [0.1, 0.2, 0.3].into_iter().collect();
        assert!((s.value() - 0.6).abs() < 1e-15);
    }
}
