//! Property-based tests for the numeric layer.

use proptest::prelude::*;
use tornado_numerics::{
    binomial_pmf, binomial_u128, bisect, compose_failure_probability, ln_binomial, Bracket,
    NeumaierSum,
};

proptest! {
    #[test]
    fn binomial_symmetry_and_bounds(n in 0u64..120, k in 0u64..120) {
        let c = binomial_u128(n, k);
        if k > n {
            prop_assert_eq!(c, 0);
        } else {
            prop_assert_eq!(c, binomial_u128(n, n - k));
            prop_assert!(c >= 1);
        }
    }

    #[test]
    fn binomial_pascal(n in 1u64..90, k in 1u64..90) {
        prop_assume!(k < n);
        prop_assert_eq!(
            binomial_u128(n, k),
            binomial_u128(n - 1, k - 1) + binomial_u128(n - 1, k)
        );
    }

    #[test]
    fn ln_binomial_tracks_exact(n in 1u64..126, k in 0u64..126) {
        prop_assume!(k <= n);
        let exact = binomial_u128(n, k) as f64;
        let ln = ln_binomial(n, k);
        prop_assert!((ln.exp() - exact).abs() / exact < 1e-9);
    }

    #[test]
    fn pmf_is_a_distribution(n in 1u64..100, p in 0.0f64..1.0) {
        let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
        for k in 0..=n {
            let v = binomial_pmf(n, k, p);
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn composition_is_bounded_and_monotone(
        n in 1usize..40,
        p in 0.001f64..0.2,
        cut in 1usize..40,
    ) {
        prop_assume!(cut <= n);
        // Step profile failing from k = cut.
        let profile: Vec<f64> = (0..=n).map(|k| if k >= cut { 1.0 } else { 0.0 }).collect();
        let v = compose_failure_probability(n as u64, p, &profile);
        prop_assert!((0.0..=1.0).contains(&v));
        // Failing earlier can only be worse.
        if cut > 1 {
            let earlier: Vec<f64> =
                (0..=n).map(|k| if k >= cut - 1 { 1.0 } else { 0.0 }).collect();
            let ve = compose_failure_probability(n as u64, p, &earlier);
            prop_assert!(ve >= v - 1e-15);
        }
    }

    #[test]
    fn neumaier_matches_exact_integer_sums(xs in proptest::collection::vec(-1000i64..1000, 0..200)) {
        let mut s = NeumaierSum::new();
        for &x in &xs {
            s.add(x as f64);
        }
        let exact: i64 = xs.iter().sum();
        prop_assert_eq!(s.value(), exact as f64);
    }

    #[test]
    fn bisect_finds_roots_of_shifted_cubics(shift in -8.0f64..8.0) {
        // f(x) = x³ − shift has the unique real root cbrt(shift).
        let root = bisect(|x| x * x * x - shift, Bracket::new(-3.0, 3.0), 1e-12, 300).unwrap();
        prop_assert!((root - shift.cbrt()).abs() < 1e-9);
    }
}
