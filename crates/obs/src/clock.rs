//! Clock abstraction so time-dependent behaviour (progress throttling,
//! event timestamps) is testable with a mock.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// Monotonic nanosecond source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) epoch.
    fn now_nanos(&self) -> u64;
}

/// Wall-clock implementation: nanoseconds since the clock's creation.
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// Hand-cranked clock for deterministic tests.
#[derive(Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock stuck at zero until advanced.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances by `nanos`.
    pub fn advance_nanos(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Relaxed);
    }

    /// Advances by whole milliseconds.
    pub fn advance_millis(&self, millis: u64) {
        self.advance_nanos(millis * 1_000_000);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Relaxed)
    }
}

/// The default shared clock.
pub fn monotonic() -> Arc<dyn Clock> {
    Arc::new(MonotonicClock::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_only_by_hand() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance_millis(5);
        assert_eq!(c.now_nanos(), 5_000_000);
    }

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }
}
