//! Sharded relaxed-atomic counters and gauges.
//!
//! Hot paths (the decode kernels) never touch these directly — they count
//! into plain-u64 [`crate::Recorder`] cells and flush batches here — but
//! medium-frequency paths (per-range progress, per-batch merges, scrub
//! passes) hit them from many rayon workers at once. Each counter spreads
//! its value over cache-line-padded shards indexed by a per-thread slot, so
//! concurrent adds do not bounce one line between cores; `get` folds the
//! shards. All operations are `Relaxed`: these are statistics, not
//! synchronisation, and the final fold happens after the parallel section
//! joins (rayon's pool join provides the happens-before edge).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

/// Shards per counter. Enough to keep a typical core count from colliding;
/// threads beyond this wrap around and share.
const SHARDS: usize = 16;

/// One cache line per shard so adjacent shards never false-share.
#[repr(align(64))]
struct Shard(AtomicU64);

impl Shard {
    // Deliberately a const: it seeds the `[Shard; SHARDS]` array repeat,
    // where each use instantiates a fresh atomic (never shared state).
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: Shard = Shard(AtomicU64::new(0));
}

/// Monotone increment-only counter, sharded across threads.
pub struct Counter {
    shards: [Shard; SHARDS],
}

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Stable per-thread shard index: threads are numbered at first use.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Relaxed) % SHARDS;
}

impl Counter {
    /// A zeroed counter (usable in `static`s).
    pub const fn new() -> Self {
        Self {
            shards: [Shard::ZERO; SHARDS],
        }
    }

    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            THREAD_SLOT.with(|&s| self.shards[s].0.fetch_add(n, Relaxed));
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Folds the shards into the current total.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Relaxed)).sum()
    }

    /// Resets every shard to zero and returns the folded pre-reset total.
    /// Not atomic with respect to concurrent `add`s — call between
    /// parallel sections.
    pub fn take(&self) -> u64 {
        self.shards.iter().map(|s| s.0.swap(0, Relaxed)).sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// Last-write-wins integer gauge (signed: margins can go below zero).
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v as u64, Relaxed);
    }

    /// Reads the gauge.
    pub fn get(&self) -> i64 {
        self.value.load(Relaxed) as i64
    }

    /// Adjusts the gauge by `delta` (negative to decrement) — for
    /// point-in-time occupancy counts maintained by inc/dec pairs.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta as u64, Relaxed);
    }

    /// Raises the gauge to `v` if larger (monotone high-water mark).
    pub fn raise(&self, v: i64) {
        let mut cur = self.value.load(Relaxed);
        while (cur as i64) < v {
            match self
                .value
                .compare_exchange_weak(cur, v as u64, Relaxed, Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// Last-write-wins floating-point gauge (failure fractions, rates).
pub struct FloatGauge {
    bits: AtomicU64,
}

impl FloatGauge {
    /// A gauge reading 0.0.
    pub const fn new() -> Self {
        Self {
            bits: AtomicU64::new(0),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Relaxed);
    }

    /// Reads the gauge.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }
}

impl Default for FloatGauge {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FloatGauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("FloatGauge").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_takes() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.take(), 42);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_and_raise() {
        let g = Gauge::new();
        g.set(-5);
        assert_eq!(g.get(), -5);
        g.raise(3);
        assert_eq!(g.get(), 3);
        g.raise(-10);
        assert_eq!(g.get(), 3, "raise never lowers");
    }

    #[test]
    fn float_gauge_round_trips() {
        let g = FloatGauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1.0 / 7.0);
        assert_eq!(g.get(), 1.0 / 7.0);
    }

    #[test]
    fn concurrent_adds_from_std_threads_sum_exactly() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
