//! Structured event stream: JSON-lines, human-readable, or off.
//!
//! One sink serves every command verbosity mode consistently:
//! `--log-json` → one JSON object per line (machine-tailable),
//! default → `event key=value …` lines for humans,
//! `--quiet` → nothing. Events go to stderr by default so stdout stays a
//! clean data channel (reports, GraphML, CSV), matching the existing CLI
//! convention.

use crate::clock::{Clock, MonotonicClock};
use crate::json::Json;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Rendering style for emitted events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventFormat {
    /// One compact JSON object per line: `{"ts_ms": 12, "event": "…", …}`.
    Json,
    /// `event key=value key=value` lines.
    Human,
}

enum Target {
    Stderr,
    File(Mutex<std::io::BufWriter<std::fs::File>>),
    Memory(Arc<Mutex<Vec<String>>>),
}

/// A structured event sink. Cheap to share by reference; disabled sinks
/// cost one branch per emit.
pub struct EventSink {
    target: Option<Target>,
    format: EventFormat,
    clock: Arc<dyn Clock>,
}

impl EventSink {
    /// A sink that drops everything.
    pub fn disabled() -> Self {
        Self {
            target: None,
            format: EventFormat::Human,
            clock: Arc::new(MonotonicClock::new()),
        }
    }

    /// Events to stderr in the given format.
    pub fn stderr(format: EventFormat) -> Self {
        Self {
            target: Some(Target::Stderr),
            format,
            clock: Arc::new(MonotonicClock::new()),
        }
    }

    /// JSON-lines events appended to a file.
    pub fn file(path: &str) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self {
            target: Some(Target::File(Mutex::new(std::io::BufWriter::new(f)))),
            format: EventFormat::Json,
            clock: Arc::new(MonotonicClock::new()),
        })
    }

    /// Collects rendered lines in memory (tests).
    pub fn memory(format: EventFormat) -> (Self, Arc<Mutex<Vec<String>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (
            Self {
                target: Some(Target::Memory(buf.clone())),
                format,
                clock: Arc::new(MonotonicClock::new()),
            },
            buf,
        )
    }

    /// Replaces the timestamp source (tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Whether emits go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.target.is_some()
    }

    /// Emits one event with ordered fields.
    pub fn emit(&self, event: &str, fields: &[(&str, Json)]) {
        let Some(target) = &self.target else {
            return;
        };
        let line = match self.format {
            EventFormat::Json => {
                let mut obj: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 2);
                obj.push((
                    "ts_ms".into(),
                    Json::U64(self.clock.now_nanos() / 1_000_000),
                ));
                obj.push(("event".into(), Json::Str(event.into())));
                obj.extend(fields.iter().map(|(k, v)| ((*k).into(), v.clone())));
                Json::Obj(obj).to_line()
            }
            EventFormat::Human => {
                let mut line = String::from(event);
                for (k, v) in fields {
                    line.push(' ');
                    line.push_str(k);
                    line.push('=');
                    match v {
                        Json::Str(s) => line.push_str(s),
                        other => line.push_str(&other.to_line()),
                    }
                }
                line
            }
        };
        match target {
            Target::Stderr => {
                let _ = writeln!(std::io::stderr().lock(), "{line}");
            }
            Target::File(w) => {
                // Buffered: high-rate emitters (slow-request events under
                // load) pay one syscall per BufWriter fill, not per line.
                // Durability comes from flush() / the Drop impl.
                let mut w = w.lock().unwrap();
                let _ = writeln!(w, "{line}");
            }
            Target::Memory(buf) => buf.lock().unwrap().push(line),
        }
    }

    /// Forces buffered events to their destination (file targets only;
    /// stderr and memory targets are unbuffered).
    pub fn flush(&self) {
        if let Some(Target::File(w)) = &self.target {
            let _ = w.lock().unwrap().flush();
        }
    }
}

impl Drop for EventSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::json::parse;

    #[test]
    fn json_lines_parse_and_carry_fields() {
        let clock = Arc::new(ManualClock::new());
        clock.advance_millis(1234);
        let (sink, buf) = EventSink::memory(EventFormat::Json);
        let sink = sink.with_clock(clock);
        sink.emit(
            "worst_case_level",
            &[("k", Json::U64(4)), ("failures", Json::U64(0))],
        );
        let lines = buf.lock().unwrap();
        let v = parse(&lines[0]).unwrap();
        assert_eq!(v.get("ts_ms").unwrap().as_u64(), Some(1234));
        assert_eq!(v.get("event").unwrap().as_str(), Some("worst_case_level"));
        assert_eq!(v.get("k").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn human_format_is_key_value_text() {
        let (sink, buf) = EventSink::memory(EventFormat::Human);
        sink.emit(
            "graph_generated",
            &[
                ("family", Json::Str("tornado".into())),
                ("nodes", Json::U64(96)),
            ],
        );
        assert_eq!(
            buf.lock().unwrap()[0],
            "graph_generated family=tornado nodes=96"
        );
    }

    #[test]
    fn disabled_sink_is_a_no_op() {
        let sink = EventSink::disabled();
        assert!(!sink.is_enabled());
        sink.emit("anything", &[("k", Json::U64(1))]); // must not panic
    }

    #[test]
    fn file_sink_appends_json_lines() {
        let path = std::env::temp_dir().join(format!("obs-events-{}.jsonl", std::process::id()));
        let path_s = path.to_str().unwrap();
        {
            let sink = EventSink::file(path_s).unwrap();
            sink.emit("a", &[]);
            sink.emit("b", &[("n", Json::U64(2))]);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(parse(lines[1]).unwrap().get("n").unwrap().as_u64(), Some(2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn no_events_lost_when_sink_dropped_at_shutdown() {
        let path = std::env::temp_dir().join(format!(
            "obs-events-dropflush-{}.jsonl",
            std::process::id()
        ));
        let path_s = path.to_str().unwrap();
        // Fewer bytes than the BufWriter default buffer, so nothing
        // reaches the file until the Drop-flush — the property under test.
        {
            let sink = EventSink::file(path_s).unwrap();
            for i in 0..100u64 {
                sink.emit("shutdown_burst", &[("seq", Json::U64(i))]);
            }
        } // drop here must flush
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 100, "every buffered event persisted");
        for (i, line) in lines.iter().enumerate() {
            let v = parse(line).unwrap();
            assert_eq!(v.get("seq").unwrap().as_u64(), Some(i as u64));
        }
        let _ = std::fs::remove_file(&path);
    }
}
