//! Prometheus-style text exposition for metrics and health documents.
//!
//! Renders a parsed `tornado-metrics-v1` snapshot (and optionally a
//! `tornado-health-v1` document) into the Prometheus text format —
//! `# TYPE` lines, sanitized names, cumulative `le` histogram buckets —
//! with nothing but the in-repo JSON model. Counters become `_total`-free
//! counters under a `tornado_` prefix, gauges become gauges, and the
//! snapshot's sparse non-cumulative log2 histogram buckets are folded
//! into the cumulative form scrapers expect, `+Inf` included.
//!
//! Arbitrary JSON documents (the health doc, whose schema will grow) are
//! flattened: every numeric leaf becomes a gauge named by its path, so a
//! new field in the document is a new series with no renderer change.

use crate::json::Json;
use std::fmt::Write as _;

/// Renders a `tornado-metrics-v1` document as Prometheus text.
/// Unknown top-level keys are ignored, mirroring the snapshot validator.
pub fn render_metrics(doc: &Json) -> String {
    let mut out = String::new();
    if let Some(Json::Obj(counters)) = doc.get("counters") {
        for (name, v) in counters {
            if let Some(v) = v.as_u64() {
                let m = metric_name("tornado", name);
                let _ = writeln!(out, "# TYPE {m} counter\n{m} {v}");
            }
        }
    }
    if let Some(Json::Obj(gauges)) = doc.get("gauges") {
        for (name, v) in gauges {
            if let Some(v) = v.as_f64() {
                let m = metric_name("tornado", name);
                let _ = writeln!(out, "# TYPE {m} gauge\n{m} {}", fmt_f64(v));
            }
        }
    }
    if let Some(Json::Obj(histograms)) = doc.get("histograms") {
        for (name, h) in histograms {
            render_histogram(&mut out, &metric_name("tornado", name), h);
        }
    }
    if let Some(v) = doc.get("elapsed_ms").and_then(Json::as_u64) {
        let _ = writeln!(out, "# TYPE tornado_elapsed_ms gauge\ntornado_elapsed_ms {v}");
    }
    out
}

/// Renders any JSON document as flattened gauges under `prefix`: numeric
/// leaves only, path segments joined with `_`. Booleans render as 0/1;
/// strings and arrays are skipped (identity, not telemetry).
pub fn render_flat(prefix: &str, doc: &Json) -> String {
    let mut out = String::new();
    flatten(&mut out, prefix, doc);
    out
}

fn flatten(out: &mut String, path: &str, v: &Json) {
    match v {
        Json::Obj(fields) => {
            for (k, v) in fields {
                flatten(out, &metric_name(path, k), v);
            }
        }
        Json::U64(_) | Json::I64(_) | Json::F64(_) => {
            let n = v.as_f64().unwrap();
            let _ = writeln!(out, "# TYPE {path} gauge\n{path} {}", fmt_f64(n));
        }
        Json::Bool(b) => {
            let _ = writeln!(out, "# TYPE {path} gauge\n{path} {}", *b as u8);
        }
        _ => {}
    }
}

/// Folds the snapshot's sparse non-cumulative buckets into cumulative
/// Prometheus buckets. The snapshot guarantees strictly increasing upper
/// bounds and counts summing to `count`, so the fold is a running sum
/// plus the mandatory `+Inf` bucket.
fn render_histogram(out: &mut String, name: &str, h: &Json) {
    let count = match h.get("count").and_then(Json::as_u64) {
        Some(c) => c,
        None => return,
    };
    let sum = h.get("sum").and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    if let Some(buckets) = h.get("buckets").and_then(Json::as_arr) {
        for b in buckets {
            let upper = match b.get("bucket_upper_bound").or_else(|| b.get("le")) {
                Some(v) => v.as_u64().unwrap_or(u64::MAX),
                None => continue,
            };
            cumulative += b.get("count").and_then(Json::as_u64).unwrap_or(0);
            if upper == u64::MAX {
                // The top log2 bucket is already the +Inf bucket.
                continue;
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
        }
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
    let _ = writeln!(out, "{name}_sum {sum}\n{name}_count {count}");
}

/// Joins and sanitizes into a legal Prometheus metric name: every
/// character outside `[a-zA-Z0-9_:]` becomes `_` (dots included), and a
/// leading digit gains a `_` guard.
fn metric_name(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + name.len() + 1);
    out.push_str(prefix);
    if !prefix.is_empty() {
        out.push('_');
    }
    if name.starts_with(|c: char| c.is_ascii_digit()) {
        out.push('_');
    }
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{FloatGauge, Gauge};
    use crate::histogram::Histogram;
    use crate::snapshot::Snapshot;

    #[test]
    fn counters_and_gauges_render_with_type_lines() {
        let mut s = Snapshot::new("test", 0);
        s.counter_value("server.gets", 42);
        let offline = Gauge::default();
        offline.set(3);
        s.gauge("device.offline", &offline);
        let p_loss = FloatGauge::default();
        p_loss.set(0.125);
        s.float_gauge("health.p_loss", &p_loss);
        let text = render_metrics(&s.to_json());
        assert!(text.contains("# TYPE tornado_server_gets counter\ntornado_server_gets 42\n"));
        assert!(text.contains("# TYPE tornado_device_offline gauge\ntornado_device_offline 3\n"));
        assert!(text.contains("tornado_health_p_loss 0.125\n"));
    }

    #[test]
    fn histogram_buckets_become_cumulative_with_inf() {
        let h = Histogram::new();
        for v in [1u64, 1, 2, 100, 5_000] {
            h.record(v);
        }
        let mut s = Snapshot::new("test", 0);
        s.histogram("get.us", &h);
        let text = render_metrics(&s.to_json());
        // Buckets are cumulative and end with +Inf == count.
        assert!(text.contains("# TYPE tornado_get_us histogram"));
        assert!(text.contains("tornado_get_us_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("tornado_get_us_count 5\n"));
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "buckets must be cumulative: {line}");
            last = v;
        }
        assert_eq!(last, 5);
    }

    #[test]
    fn flat_rendering_walks_nested_documents() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("tornado-health-v1".into())),
            (
                "reliability".into(),
                Json::Obj(vec![
                    ("p_loss".into(), Json::F64(1e-5)),
                    ("mttdl_hours".into(), Json::F64(250.5)),
                ]),
            ),
            ("margins".into(), Json::Obj(vec![("min_margin".into(), Json::U64(2))])),
            ("firing".into(), Json::Bool(true)),
        ]);
        let text = render_flat("tornado_health", &doc);
        assert!(text.contains("tornado_health_reliability_p_loss 0.00001\n"));
        assert!(text.contains("tornado_health_reliability_mttdl_hours 250.5\n"));
        assert!(text.contains("# TYPE tornado_health_margins_min_margin gauge"));
        assert!(text.contains("tornado_health_firing 1\n"));
        assert!(!text.contains("schema"), "strings are not series");
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(metric_name("tornado", "scrub.cycle_us"), "tornado_scrub_cycle_us");
        assert_eq!(metric_name("", "9lives"), "_9lives");
        assert_eq!(metric_name("t", "a-b c"), "t_a_b_c");
    }
}
