//! Log2-bucketed histograms with percentile queries.
//!
//! Values land in power-of-two buckets: bucket 0 holds exactly 0, bucket
//! `i ≥ 1` holds `[2^(i-1), 2^i)`. That caps the memory at 65 counters for
//! the full `u64` range and makes `record` a `leading_zeros` plus one
//! relaxed add — cheap enough to time every scrub cycle or span without
//! budget anxiety. The price is resolution: a percentile query returns the
//! inclusive upper bound of the bucket containing the requested rank, i.e.
//! an answer within 2× of the exact order statistic (exact for 0). Exact
//! `min`/`max`/`sum` are tracked alongside to anchor the tails.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of buckets: zero plus one per possible `leading_zeros` result.
pub const BUCKETS: usize = 65;

/// Concurrent log2 histogram.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Bucket index for `v` (0 for 0; `64 - leading_zeros` otherwise).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (what percentile queries report).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Inclusive lower bound of bucket `i`.
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

#[allow(clippy::declare_interior_mutable_const)] // array-init seed, never read
const ZERO: AtomicU64 = AtomicU64::new(0);

impl Histogram {
    /// An empty histogram (usable in `static`s).
    pub const fn new() -> Self {
        Self {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of recorded values (wrapping beyond `u64`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Relaxed))
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Relaxed))
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the upper bound of
    /// the bucket holding the rank-`⌈q·n⌉` value; `None` when empty. The
    /// exact order statistic lies within `[upper/2, upper]` — and the
    /// reported tail values are additionally clamped to the exact
    /// recorded `max`.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Relaxed);
            if seen >= target {
                return Some(bucket_upper_bound(i).min(self.max.load(Relaxed)));
            }
        }
        Some(self.max.load(Relaxed))
    }

    /// Per-bucket counts (index = [`bucket_index`]).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Relaxed))
    }

    /// Adds every count of `other` into `self` (used to fold per-worker
    /// histograms after a parallel section).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = theirs.load(Relaxed);
            if v > 0 {
                mine.fetch_add(v, Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        self.min.fetch_min(other.min.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("p50", &self.percentile(0.5))
            .field("p99", &self.percentile(0.99))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact reference quantile: rank-`⌈q·n⌉` order statistic.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[target - 1]
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..64 {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
            assert_eq!(bucket_upper_bound(i) + 1, bucket_lower_bound(i + 1));
        }
    }

    #[test]
    fn percentiles_bracket_exact_reference_quantiles() {
        // A skewed latency-like distribution exercising many buckets.
        let mut values: Vec<u64> = (0..1000u64).map(|i| (i * i * 37) % 100_000).collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&values, q);
            let approx = h.percentile(q).unwrap();
            assert!(
                approx >= exact,
                "p{q}: reported {approx} below exact {exact}"
            );
            // Upper bound of the exact value's bucket = within 2x (or the
            // clamped max).
            assert!(
                approx <= bucket_upper_bound(bucket_index(exact)),
                "p{q}: reported {approx} beyond exact value's bucket"
            );
        }
    }

    #[test]
    fn p50_and_p99_on_uniform_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Exact p50 = 500 (bucket [256,511] upper 511); p99 = 990.
        assert_eq!(h.percentile(0.5), Some(511));
        assert_eq!(h.percentile(0.99), Some(1000), "clamped to exact max");
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
    }

    #[test]
    fn zeros_are_exact() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        h.record(7);
        assert_eq!(h.percentile(0.5), Some(0));
        assert_eq!(h.percentile(1.0), Some(7));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            combined.record(v * 3);
        }
        for v in 0..300u64 {
            b.record(v * 7 + 1);
            combined.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.sum(), combined.sum());
        assert_eq!(a.bucket_counts(), combined.bucket_counts());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
    }
}
