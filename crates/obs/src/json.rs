//! Hand-rolled JSON value, serializer, and minimal parser.
//!
//! The workspace deliberately has no serde; artefacts like
//! `BENCH_decode_trial.json` are hand-formatted. This module centralises
//! that: a small [`Json`] tree, a pretty writer producing the same
//! two-space style, and a strict recursive-descent parser so round-trip
//! tests and the `validate-metrics` command need no external tooling.
//!
//! Integers are kept exact: values that parse without a fraction or
//! exponent come back as [`Json::U64`]/[`Json::I64`], so a 3 469 496-trial
//! count survives a round trip bit-for-bit.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for counters).
    U64(u64),
    /// A negative integer (gauges like scrub margins can go below zero).
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved by the writer.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (accepts `I64`/`F64`
    /// holding an exact non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline
    /// (the `BENCH_decode_trial.json` house style).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Compact single-line rendering (the JSON-lines event format).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising degradation.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep integral floats readable but distinguishable from integers.
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        // Surrogate pairs are not needed for metric names;
                        // reject rather than silently corrupt.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("\\u{code:04x} is not a scalar value"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid; find the char at this byte offset).
                let rest = &b[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut integral = true;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                integral = false;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if integral {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|e| format!("invalid number '{text}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_exactly() {
        let v = Json::Obj(vec![
            ("trials".into(), Json::U64(3_469_496)),
            ("huge".into(), Json::U64(u64::MAX)),
            ("margin".into(), Json::I64(-3)),
        ]);
        let text = v.to_pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::Obj(vec![
            ("schema".into(), Json::Str("tornado-metrics-v1".into())),
            (
                "levels".into(),
                Json::Arr(vec![
                    Json::Obj(vec![("k".into(), Json::U64(1)), ("ok".into(), Json::Bool(true))]),
                    Json::Obj(vec![]),
                ]),
            ),
            ("empty".into(), Json::Arr(vec![])),
            ("nothing".into(), Json::Null),
        ]);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
        assert_eq!(parse(&v.to_line()).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("a \"quoted\"\npath\\seg\tdone \u{1}".into());
        assert_eq!(parse(&v.to_line()).unwrap(), v);
    }

    #[test]
    fn parses_the_existing_bench_artifact_style() {
        let text = r#"{
  "bench": "decode_trial",
  "cases": [
    {"case": "single_k1", "dense": 74.6, "speedup": 2.75}
  ],
  "target_met": true
}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("decode_trial"));
        let cases = v.get("cases").unwrap().as_arr().unwrap();
        assert_eq!(cases[0].get("dense").unwrap().as_f64(), Some(74.6));
        assert_eq!(v.get("target_met"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "{\"a\":1} x", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn float_gets_fraction_marker() {
        assert_eq!(Json::F64(3.0).to_line(), "3.0");
        assert_eq!(parse("3.0").unwrap(), Json::F64(3.0));
        assert_eq!(parse("3").unwrap(), Json::U64(3));
    }
}
