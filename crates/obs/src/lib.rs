//! `tornado-obs` — zero-dependency observability for the simulation
//! pipeline.
//!
//! The paper's methodology is empirical: hundreds of millions of decode
//! trials per graph (§3's full `C(96, k)` enumeration plus Monte-Carlo
//! sampling). This crate gives every long-running layer eyes without
//! slowing the kernels down:
//!
//! * [`Counter`] / [`Gauge`] / [`FloatGauge`] — sharded relaxed-atomic
//!   aggregates, safe to hammer from every rayon worker;
//! * [`Recorder`] — plain-u64 cells behind an on/off flag, for hot loops
//!   that cannot afford even a relaxed atomic per trial; drained at batch
//!   boundaries into the shared counters (summation commutes, so merged
//!   totals stay deterministic under any scheduling);
//! * [`Histogram`] — log2-bucketed with percentile queries, exact
//!   min/max/sum;
//! * [`SpanTimer`] — scope timing into a histogram;
//! * [`Progress`] — throttled rate + ETA reporting to stderr (or silent),
//!   driven by a mockable [`Clock`];
//! * [`EventSink`] — a JSON-lines (or human-readable) event stream;
//! * [`Snapshot`] — a point-in-time metrics dump through the hand-rolled
//!   [`json`] serializer, with a [`snapshot::validate`] checker for CI;
//! * [`Tracer`] — request-scoped span collection with deterministic
//!   1-in-N sampling and a Chrome trace-event exporter;
//! * [`TimeSeries`] — a bounded ring of periodic counter samples for
//!   windowed rates;
//! * [`SloTracker`] — error budgets with multi-window burn-rate alert
//!   transitions;
//! * [`expo`] — Prometheus-style text exposition of snapshots and health
//!   documents.
//!
//! Everything is built on `std` alone — no external crates — so the
//! workspace keeps building offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod counter;
pub mod events;
pub mod expo;
pub mod histogram;
pub mod json;
pub mod progress;
pub mod recorder;
pub mod slo;
pub mod snapshot;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use counter::{Counter, FloatGauge, Gauge};
pub use events::{EventFormat, EventSink};
pub use histogram::Histogram;
pub use json::Json;
pub use progress::{Progress, ProgressConfig, ProgressTarget};
pub use recorder::Recorder;
pub use slo::{standard_windows, BurnReading, BurnWindow, SloAlert, SloTracker};
pub use snapshot::Snapshot;
pub use span::SpanTimer;
pub use timeseries::{SeriesPoint, TimeSeries};
pub use trace::{SpanRecord, Tracer};
