//! Throttled progress reporting with rate and ETA.
//!
//! A [`Progress`] is shared by every rayon worker of a sweep: workers call
//! [`Progress::add`] with completed-trial batches (a sharded counter add),
//! and at most one render happens per wall-clock interval — claimed by a
//! compare-exchange on the last-render stamp, so a 16-way sweep never
//! stampedes stderr. Rendering goes to stderr (in-place `\r` updates on a
//! terminal, plain throttled lines otherwise), to a memory buffer (tests),
//! or nowhere (`--quiet`).

use crate::clock::{Clock, MonotonicClock};
use crate::counter::Counter;
use std::io::{IsTerminal, Write as _};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where progress renders.
#[derive(Clone)]
pub enum ProgressTarget {
    /// Throttled lines (or in-place updates on a tty) to stderr.
    Stderr,
    /// No output; counting still works.
    Silent,
    /// Collected lines, for tests.
    Memory(Arc<Mutex<Vec<String>>>),
}

/// How to build progress reporters: interval, destination, clock.
#[derive(Clone)]
pub struct ProgressConfig {
    /// Minimum wall-clock time between renders.
    pub interval: Duration,
    /// Render destination.
    pub target: ProgressTarget,
    /// Time source (swap in a [`crate::ManualClock`] for tests).
    pub clock: Arc<dyn Clock>,
}

impl ProgressConfig {
    /// Renders to stderr every 200 ms.
    pub fn stderr() -> Self {
        Self {
            interval: Duration::from_millis(200),
            target: ProgressTarget::Stderr,
            clock: Arc::new(MonotonicClock::new()),
        }
    }

    /// Counts without rendering.
    pub fn silent() -> Self {
        Self {
            target: ProgressTarget::Silent,
            ..Self::stderr()
        }
    }

    /// Collects rendered lines into the returned buffer.
    pub fn memory() -> (Self, Arc<Mutex<Vec<String>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let cfg = Self {
            target: ProgressTarget::Memory(buf.clone()),
            ..Self::stderr()
        };
        (cfg, buf)
    }

    /// Overrides the render interval.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Overrides the clock.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Starts a reporter for a phase of `total` work units (0 = unknown).
    pub fn start(&self, label: impl Into<String>, total: u64) -> Progress {
        let now = self.clock.now_nanos();
        let interval_nanos = self.interval.as_nanos() as u64;
        Progress {
            label: label.into(),
            total,
            done: Counter::new(),
            started_nanos: now,
            // Sentinel: the first `add` renders immediately.
            last_render_nanos: AtomicU64::new(NEVER_RENDERED),
            interval_nanos,
            target: self.target.clone(),
            clock: self.clock.clone(),
        }
    }
}

/// `last_render_nanos` sentinel meaning "never rendered yet".
const NEVER_RENDERED: u64 = u64::MAX;

/// A live progress reporter for one phase.
pub struct Progress {
    label: String,
    total: u64,
    done: Counter,
    started_nanos: u64,
    last_render_nanos: AtomicU64,
    interval_nanos: u64,
    target: ProgressTarget,
    clock: Arc<dyn Clock>,
}

impl Progress {
    /// Records `n` completed units; renders if the interval elapsed.
    pub fn add(&self, n: u64) {
        self.done.add(n);
        if !matches!(self.target, ProgressTarget::Silent) {
            self.maybe_render(false);
        }
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.done.get()
    }

    /// Forces a final render (with a terminating newline on a tty).
    pub fn finish(&self) {
        if !matches!(self.target, ProgressTarget::Silent) {
            self.maybe_render(true);
        }
    }

    fn maybe_render(&self, force: bool) {
        let now = self.clock.now_nanos();
        let last = self.last_render_nanos.load(Relaxed);
        if !force && last != NEVER_RENDERED && now.saturating_sub(last) < self.interval_nanos {
            return;
        }
        // One thread wins the render; losers skip rather than queue.
        if self
            .last_render_nanos
            .compare_exchange(last, now, Relaxed, Relaxed)
            .is_err()
        {
            return;
        }
        let line = self.render_line(now);
        match &self.target {
            ProgressTarget::Silent => {}
            ProgressTarget::Memory(buf) => buf.lock().unwrap().push(line),
            ProgressTarget::Stderr => {
                let stderr = std::io::stderr();
                if stderr.is_terminal() {
                    let mut h = stderr.lock();
                    let _ = write!(h, "\r{line}\x1b[K");
                    if force {
                        let _ = writeln!(h);
                    }
                    let _ = h.flush();
                } else {
                    let _ = writeln!(stderr.lock(), "{line}");
                }
            }
        }
    }

    fn render_line(&self, now: u64) -> String {
        let done = self.done.get();
        let elapsed_s = now.saturating_sub(self.started_nanos) as f64 / 1e9;
        let rate = if elapsed_s > 0.0 {
            done as f64 / elapsed_s
        } else {
            0.0
        };
        let mut line = String::new();
        if self.total > 0 {
            let pct = 100.0 * done as f64 / self.total as f64;
            line.push_str(&format!(
                "{}  {pct:5.1}% ({done}/{})  {}/s",
                self.label,
                self.total,
                human_count(rate)
            ));
            if rate > 0.0 && done < self.total {
                let eta = (self.total - done) as f64 / rate;
                line.push_str(&format!("  eta {}", human_duration(eta)));
            }
        } else {
            line.push_str(&format!(
                "{}  {done}  {}/s",
                self.label,
                human_count(rate)
            ));
        }
        line
    }
}

/// `1234567.0` → `"1.23M"`.
fn human_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Seconds → `"42s"` / `"3m20s"` / `"2h05m"`.
fn human_duration(secs: f64) -> String {
    let s = secs.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else if secs >= 10.0 {
        format!("{s}s")
    } else {
        format!("{secs:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual_setup(interval_ms: u64) -> (Arc<ManualClock>, Progress, Arc<Mutex<Vec<String>>>) {
        let clock = Arc::new(ManualClock::new());
        clock.advance_millis(1); // away from the zero epoch
        let (cfg, buf) = ProgressConfig::memory();
        let cfg = cfg
            .with_interval(Duration::from_millis(interval_ms))
            .with_clock(clock.clone());
        let p = cfg.start("sweep k=4", 1000);
        (clock, p, buf)
    }

    #[test]
    fn emission_is_throttled_to_the_interval() {
        let (clock, p, buf) = manual_setup(100);
        p.add(10); // first add renders immediately
        p.add(10);
        p.add(10);
        assert_eq!(buf.lock().unwrap().len(), 1, "interval not yet elapsed");
        clock.advance_millis(99);
        p.add(10);
        assert_eq!(buf.lock().unwrap().len(), 1, "1ms short of the interval");
        clock.advance_millis(1);
        p.add(10);
        assert_eq!(buf.lock().unwrap().len(), 2);
        clock.advance_millis(250);
        p.add(10);
        assert_eq!(buf.lock().unwrap().len(), 3);
        assert_eq!(p.done(), 60);
    }

    #[test]
    fn finish_forces_a_render() {
        let (_clock, p, buf) = manual_setup(1000);
        p.add(500);
        p.finish();
        let lines = buf.lock().unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("(500/1000)"), "{:?}", lines[1]);
        assert!(lines[1].contains("50.0%"), "{:?}", lines[1]);
    }

    #[test]
    fn rate_and_eta_use_the_mock_clock() {
        let (clock, p, buf) = manual_setup(100);
        clock.advance_millis(1000);
        p.add(500); // 500 units in ~1s → 500/s, 500 left → eta ~1s
        let lines = buf.lock().unwrap();
        let line = lines.last().unwrap();
        assert!(line.contains("500/s"), "{line:?}");
        assert!(line.contains("eta 1.0s"), "{line:?}");
    }

    #[test]
    fn silent_target_counts_without_output() {
        let cfg = ProgressConfig::silent();
        let p = cfg.start("quiet", 10);
        p.add(7);
        p.finish();
        assert_eq!(p.done(), 7);
    }

    #[test]
    fn unknown_total_renders_bare_count() {
        let clock = Arc::new(ManualClock::new());
        clock.advance_millis(1);
        let (cfg, buf) = ProgressConfig::memory();
        let p = cfg.with_clock(clock).start("scan", 0);
        p.add(42);
        let lines = buf.lock().unwrap();
        assert!(lines[0].starts_with("scan  42"), "{:?}", lines[0]);
        assert!(!lines[0].contains('%'));
    }

    #[test]
    fn human_formats() {
        assert_eq!(human_count(12.0), "12");
        assert_eq!(human_count(1_234.0), "1.2k");
        assert_eq!(human_count(1_234_567.0), "1.23M");
        assert_eq!(human_count(2.5e9), "2.50G");
        assert_eq!(human_duration(5.25), "5.2s");
        assert_eq!(human_duration(42.0), "42s");
        assert_eq!(human_duration(200.0), "3m20s");
        assert_eq!(human_duration(7500.0), "2h05m");
    }
}
