//! Plain-u64 counter cells for hot loops.
//!
//! The decode kernel runs in tens of nanoseconds; even a relaxed atomic
//! add per trial would be measurable, and a sharded counter lookup far
//! worse. A [`Recorder`] therefore holds `N` plain (non-atomic) `u64`
//! cells behind one `on` flag: each `inc` is a predictable branch plus an
//! ordinary add when recording, and nothing at all when disabled. The
//! owner periodically drains the cells with [`Recorder::take`] — at batch
//! or rank-range boundaries, outside the hot loop — and merges them into
//! shared sharded [`crate::Counter`]s. Summation commutes, so the merged
//! totals are deterministic no matter which rayon worker processed which
//! batch.

/// Fixed-size set of counter cells behind an on/off switch. Cell indices
/// are assigned by the client (see `tornado_codec::cells`).
#[derive(Clone, Debug)]
pub struct Recorder<const N: usize> {
    on: bool,
    cells: [u64; N],
}

impl<const N: usize> Recorder<N> {
    /// A recorder that ignores every increment.
    pub const fn disabled() -> Self {
        Self {
            on: false,
            cells: [0; N],
        }
    }

    /// A recorder that counts.
    pub const fn enabled() -> Self {
        Self {
            on: true,
            cells: [0; N],
        }
    }

    /// Whether increments are being counted.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Turns recording on or off (cells are kept either way).
    pub fn set_enabled(&mut self, on: bool) {
        self.on = on;
    }

    /// Adds one to `cell` when enabled.
    #[inline(always)]
    pub fn inc(&mut self, cell: usize) {
        if self.on {
            self.cells[cell] += 1;
        }
    }

    /// Adds `n` to `cell` when enabled.
    #[inline(always)]
    pub fn add(&mut self, cell: usize, n: u64) {
        if self.on {
            self.cells[cell] += n;
        }
    }

    /// Current value of `cell`.
    pub fn get(&self, cell: usize) -> u64 {
        self.cells[cell]
    }

    /// All cells.
    pub fn cells(&self) -> &[u64; N] {
        &self.cells
    }

    /// Returns the cells and zeroes them (the merge-out step).
    pub fn take(&mut self) -> [u64; N] {
        std::mem::replace(&mut self.cells, [0; N])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_counts_nothing() {
        let mut r: Recorder<3> = Recorder::disabled();
        r.inc(0);
        r.add(2, 100);
        assert_eq!(r.cells(), &[0, 0, 0]);
        assert!(!r.is_enabled());
    }

    #[test]
    fn enabled_recorder_counts_and_drains() {
        let mut r: Recorder<3> = Recorder::enabled();
        r.inc(0);
        r.inc(0);
        r.add(1, 5);
        assert_eq!(r.get(0), 2);
        assert_eq!(r.take(), [2, 5, 0]);
        assert_eq!(r.cells(), &[0, 0, 0], "take drains");
        r.inc(2);
        assert_eq!(r.get(2), 1, "still enabled after take");
    }

    #[test]
    fn toggling_preserves_cells() {
        let mut r: Recorder<1> = Recorder::enabled();
        r.inc(0);
        r.set_enabled(false);
        r.inc(0);
        assert_eq!(r.get(0), 1);
        r.set_enabled(true);
        r.inc(0);
        assert_eq!(r.get(0), 2);
    }
}
