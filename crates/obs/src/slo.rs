//! SLO error budgets with multi-window burn-rate alerting.
//!
//! A tracker watches one cumulative `(bad, total)` counter pair — degraded
//! reads out of all reads, corrupt stripes out of all stripes scrubbed —
//! against an objective (the allowed bad fraction). The **burn rate** over
//! a window is `(Δbad / Δtotal) / objective`: 1.0 means the error budget
//! is being consumed exactly at the sustainable pace, 14.4 means a
//! 30-day budget would be gone in 50 hours.
//!
//! Alerting follows the multi-window pattern: a pair fires only when
//! *both* its short and long windows exceed the threshold — the long
//! window proves the problem is real, the short window proves it is
//! still happening (so alerts resolve quickly once the burn stops).
//! Firing is edge-triggered: [`SloTracker::evaluate`] reports
//! transitions, not levels, so callers can forward them to an event sink
//! without de-duplicating.
//!
//! Window lengths are plain milliseconds and entirely caller-chosen —
//! production uses [`standard_windows`] (5 m/1 h fast + 30 m/6 h slow),
//! tests and CI smokes shrink them to seconds.

use std::collections::VecDeque;

/// One short/long window pair with its firing threshold.
#[derive(Clone, Debug)]
pub struct BurnWindow {
    /// Name used in alert events and gauges (`"fast"`, `"slow"`).
    pub label: String,
    /// Short window: proves the burn is still happening.
    pub short_ms: u64,
    /// Long window: proves the burn is sustained, not a blip.
    pub long_ms: u64,
    /// Both windows must burn at or above this multiple of the objective.
    pub threshold: f64,
}

/// The classic page-worthy pairs: 14.4× over 5 m/1 h and 6× over
/// 30 m/6 h (budget gone in ~2 days resp. ~5 days if sustained).
pub fn standard_windows() -> Vec<BurnWindow> {
    vec![
        BurnWindow {
            label: "fast".into(),
            short_ms: 5 * 60 * 1000,
            long_ms: 60 * 60 * 1000,
            threshold: 14.4,
        },
        BurnWindow {
            label: "slow".into(),
            short_ms: 30 * 60 * 1000,
            long_ms: 6 * 60 * 60 * 1000,
            threshold: 6.0,
        },
    ]
}

/// An alert transition produced by [`SloTracker::evaluate`].
#[derive(Clone, Debug, PartialEq)]
pub struct SloAlert {
    /// The tracker that transitioned.
    pub slo: String,
    /// The window pair that transitioned.
    pub window: String,
    /// `true` on fire, `false` on resolve.
    pub firing: bool,
    /// Burn rate over the short window at evaluation time.
    pub burn_short: f64,
    /// Burn rate over the long window at evaluation time.
    pub burn_long: f64,
    /// The pair's configured threshold.
    pub threshold: f64,
}

/// Current burn rates for one window pair (for gauges / JSON surfaces).
#[derive(Clone, Debug)]
pub struct BurnReading {
    /// Window pair label.
    pub label: String,
    /// Burn over the short window.
    pub short: f64,
    /// Burn over the long window.
    pub long: f64,
    /// Firing threshold.
    pub threshold: f64,
    /// Whether the pair is currently firing.
    pub firing: bool,
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    t_ms: u64,
    bad: u64,
    total: u64,
}

/// Error-budget tracker over one cumulative bad/total counter pair.
///
/// Keeps its own time-indexed ring (the server's general timeseries ring
/// is sized for a `watch` panel, far too short for a 6-hour window) and
/// prunes it to the longest configured window.
#[derive(Debug)]
pub struct SloTracker {
    name: String,
    objective: f64,
    windows: Vec<BurnWindow>,
    firing: Vec<bool>,
    samples: VecDeque<Sample>,
    alerts_total: u64,
}

impl SloTracker {
    /// Creates a tracker. `objective` is the allowed bad fraction and must
    /// be positive (an objective of zero makes every bad event an infinite
    /// burn, which is a configuration error, not an alert).
    ///
    /// # Panics
    /// Panics if `objective` is not in `(0, 1]` or `windows` is empty.
    pub fn new(name: &str, objective: f64, windows: Vec<BurnWindow>) -> Self {
        assert!(
            objective > 0.0 && objective <= 1.0,
            "objective {objective} must be in (0, 1]"
        );
        assert!(!windows.is_empty(), "at least one burn window");
        let firing = vec![false; windows.len()];
        Self {
            name: name.into(),
            objective,
            windows,
            firing,
            samples: VecDeque::new(),
            alerts_total: 0,
        }
    }

    /// Tracker name (used in events and exposition).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The allowed bad fraction.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Cumulative count of fire transitions since construction.
    pub fn alerts_total(&self) -> u64 {
        self.alerts_total
    }

    /// Records a cumulative observation. Samples must be pushed in
    /// non-decreasing time order; the ring is pruned to the longest
    /// window (plus one sample of slack so a window-spanning delta always
    /// has a baseline point).
    pub fn record(&mut self, t_ms: u64, bad: u64, total: u64) {
        self.samples.push_back(Sample { t_ms, bad, total });
        let horizon = self.windows.iter().map(|w| w.long_ms).max().unwrap_or(0);
        let cutoff = t_ms.saturating_sub(horizon);
        // Keep one sample at or before the cutoff as the delta baseline.
        while self.samples.len() > 2 && self.samples[1].t_ms <= cutoff {
            self.samples.pop_front();
        }
    }

    /// Burn rate over the trailing `window_ms`: delta against the newest
    /// sample at or before the window start (or the oldest retained).
    /// Counter resets clamp to zero; zero traffic burns nothing.
    pub fn burn_rate(&self, now_ms: u64, window_ms: u64) -> f64 {
        let newest = match self.samples.back() {
            Some(s) => *s,
            None => return 0.0,
        };
        let start = now_ms.saturating_sub(window_ms);
        let mut base = *self.samples.front().unwrap();
        for s in &self.samples {
            if s.t_ms <= start {
                base = *s;
            } else {
                break;
            }
        }
        let d_total = newest.total.saturating_sub(base.total);
        if d_total == 0 {
            return 0.0;
        }
        let d_bad = newest.bad.saturating_sub(base.bad);
        (d_bad as f64 / d_total as f64) / self.objective
    }

    /// Current burn readings for every window pair (levels, not edges).
    pub fn readings(&self, now_ms: u64) -> Vec<BurnReading> {
        self.windows
            .iter()
            .zip(&self.firing)
            .map(|(w, &firing)| BurnReading {
                label: w.label.clone(),
                short: self.burn_rate(now_ms, w.short_ms),
                long: self.burn_rate(now_ms, w.long_ms),
                threshold: w.threshold,
                firing,
            })
            .collect()
    }

    /// Re-evaluates every window pair and returns the transitions: an
    /// alert fires when both windows reach the threshold, and resolves
    /// when the *short* window drops back under it (the long window alone
    /// keeps a resolved incident from re-paging for hours).
    pub fn evaluate(&mut self, now_ms: u64) -> Vec<SloAlert> {
        let mut transitions = Vec::new();
        for (i, w) in self.windows.iter().enumerate() {
            let short = self.burn_rate(now_ms, w.short_ms);
            let long = self.burn_rate(now_ms, w.long_ms);
            let was = self.firing[i];
            let now = if was {
                short >= w.threshold
            } else {
                short >= w.threshold && long >= w.threshold
            };
            if now != was {
                self.firing[i] = now;
                if now {
                    self.alerts_total += 1;
                }
                transitions.push(SloAlert {
                    slo: self.name.clone(),
                    window: w.label.clone(),
                    firing: now,
                    burn_short: short,
                    burn_long: long,
                    threshold: w.threshold,
                });
            }
        }
        transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(short_ms: u64, long_ms: u64, threshold: f64) -> SloTracker {
        SloTracker::new(
            "test",
            0.01,
            vec![BurnWindow {
                label: "fast".into(),
                short_ms,
                long_ms,
                threshold,
            }],
        )
    }

    #[test]
    fn quiet_counters_never_fire() {
        let mut t = tracker(1_000, 5_000, 2.0);
        for s in 0..20u64 {
            t.record(s * 500, 0, s * 100);
            assert!(t.evaluate(s * 500).is_empty());
        }
        assert_eq!(t.alerts_total(), 0);
    }

    #[test]
    fn sustained_burn_fires_once_then_resolves() {
        let mut t = tracker(1_000, 5_000, 2.0);
        // 10% bad against a 1% objective: burn 10 on every window.
        let mut fired = 0;
        for s in 0..12u64 {
            t.record(s * 500, s * 10, s * 100);
            for a in t.evaluate(s * 500) {
                assert!(a.firing);
                assert!(a.burn_short >= 2.0 && a.burn_long >= 2.0);
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "edge-triggered: one fire, no repeats");
        assert_eq!(t.alerts_total(), 1);
        // Burn stops: totals grow, bads freeze. Short window clears first
        // and resolves the alert.
        let mut resolved = false;
        for s in 12..30u64 {
            t.record(s * 500, 110, s * 100);
            for a in t.evaluate(s * 500) {
                assert!(!a.firing);
                resolved = true;
            }
        }
        assert!(resolved, "alert must resolve after the burn stops");
        assert_eq!(t.alerts_total(), 1, "resolve is not a new alert");
    }

    #[test]
    fn short_blip_does_not_fire_the_long_window() {
        // Long window needs sustained burn; a single bad batch inside an
        // otherwise clean long window stays under threshold.
        let mut t = tracker(1_000, 20_000, 5.0);
        for s in 0..40u64 {
            // One bad burst at t=10s worth 2% of that batch, clean before
            // and after; long window dilutes it under 5x.
            let bad = if s == 20 { 2 } else { 0 };
            let prev_bad = if s > 20 { 2 } else { 0 };
            t.record(s * 500, prev_bad + bad, s * 100);
            assert!(t.evaluate(s * 500).is_empty(), "tick {s}");
        }
    }

    #[test]
    fn counter_reset_clamps_to_zero() {
        let mut t = tracker(1_000, 5_000, 1.5);
        t.record(0, 50, 100);
        // Device replaced, counters restart from zero.
        t.record(1_000, 0, 10);
        assert_eq!(t.burn_rate(1_000, 5_000), 0.0);
        assert!(t.evaluate(1_000).is_empty());
    }

    #[test]
    fn no_traffic_is_zero_burn() {
        let mut t = tracker(1_000, 5_000, 1.5);
        t.record(0, 0, 0);
        t.record(1_000, 0, 0);
        assert_eq!(t.burn_rate(1_000, 1_000), 0.0);
        assert!(t.evaluate(1_000).is_empty());
    }

    #[test]
    fn ring_prunes_to_longest_window() {
        let mut t = tracker(1_000, 4_000, 2.0);
        for s in 0..1_000u64 {
            t.record(s * 100, 0, s);
        }
        // 4s window at 100ms cadence needs ~41 samples; allow slack but
        // assert it is not retaining the full history.
        assert!(t.samples.len() < 60, "retained {}", t.samples.len());
        // Baseline still spans the full window.
        let oldest = t.samples.front().unwrap().t_ms;
        assert!(oldest <= 1_000 * 100 - 1 - 4_000);
    }

    #[test]
    fn standard_windows_shape() {
        let w = standard_windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].label, "fast");
        assert!(w[0].short_ms < w[0].long_ms);
        assert!(w[1].long_ms == 6 * 60 * 60 * 1000);
        assert!(w[0].threshold > w[1].threshold);
    }

    #[test]
    fn readings_report_levels_and_firing_state() {
        let mut t = tracker(1_000, 2_000, 2.0);
        t.record(0, 0, 0);
        t.record(2_000, 40, 100);
        let _ = t.evaluate(2_000);
        let r = &t.readings(2_000)[0];
        assert_eq!(r.label, "fast");
        assert!(r.firing);
        assert!((r.long - 40.0).abs() < 1e-9, "0.4/0.01 = 40, got {}", r.long);
    }
}
