//! Point-in-time metrics snapshots serialized to JSON.
//!
//! A [`Snapshot`] is an ordered JSON object built from live metrics —
//! counters, gauges, histograms — plus whatever command-specific context
//! the caller adds (graph path, per-`k` level rows). The schema key lets
//! downstream validators (`tornado validate-metrics`, the CI smoke step)
//! reject foreign files cheaply.

use crate::counter::{Counter, FloatGauge, Gauge};
use crate::histogram::Histogram;
use crate::json::Json;

/// Schema identifier written into every snapshot.
pub const SCHEMA: &str = "tornado-metrics-v1";

/// Top-level keys every snapshot carries (what validators check).
pub const REQUIRED_KEYS: [&str; 4] = ["schema", "command", "elapsed_ms", "counters"];

/// Builder for one metrics snapshot.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    fields: Vec<(String, Json)>,
    counters: Vec<(String, Json)>,
    gauges: Vec<(String, Json)>,
    histograms: Vec<(String, Json)>,
}

impl Snapshot {
    /// A snapshot for `command`, stamped with the schema and elapsed time.
    pub fn new(command: &str, elapsed_ms: u64) -> Self {
        Self {
            fields: vec![
                ("schema".into(), Json::Str(SCHEMA.into())),
                ("command".into(), Json::Str(command.into())),
                ("elapsed_ms".into(), Json::U64(elapsed_ms)),
            ],
            ..Self::default()
        }
    }

    /// Adds a top-level context field.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        self.fields.push((key.into(), value));
        self
    }

    /// Records a counter's current value.
    pub fn counter(&mut self, name: &str, c: &Counter) -> &mut Self {
        self.counters.push((name.into(), Json::U64(c.get())));
        self
    }

    /// Records a raw counter value (for plain-u64 recorder cells).
    pub fn counter_value(&mut self, name: &str, v: u64) -> &mut Self {
        self.counters.push((name.into(), Json::U64(v)));
        self
    }

    /// Records an integer gauge.
    pub fn gauge(&mut self, name: &str, g: &Gauge) -> &mut Self {
        self.gauges.push((name.into(), Json::I64(g.get())));
        self
    }

    /// Records a raw integer gauge value (for values derived at snapshot
    /// time rather than held in a `Gauge` cell).
    pub fn gauge_value(&mut self, name: &str, v: i64) -> &mut Self {
        self.gauges.push((name.into(), Json::I64(v)));
        self
    }

    /// Records a floating-point gauge.
    pub fn float_gauge(&mut self, name: &str, g: &FloatGauge) -> &mut Self {
        self.gauges.push((name.into(), Json::F64(g.get())));
        self
    }

    /// Records a histogram as count/sum/min/max/mean/percentiles plus the
    /// sparse non-zero buckets.
    pub fn histogram(&mut self, name: &str, h: &Histogram) -> &mut Self {
        let buckets: Vec<Json> = h
            .bucket_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let upper = crate::histogram::bucket_upper_bound(i);
                Json::Obj(vec![
                    // "le" predates the explicit bound keys; kept so older
                    // tornado-metrics-v1 consumers still find it.
                    ("le".into(), Json::U64(upper)),
                    ("bucket_upper_bound".into(), Json::U64(upper)),
                    (
                        "bucket_lower_bound".into(),
                        Json::U64(crate::histogram::bucket_lower_bound(i)),
                    ),
                    ("count".into(), Json::U64(c)),
                ])
            })
            .collect();
        let mut obj = vec![
            ("count".into(), Json::U64(h.count())),
            ("sum".into(), Json::U64(h.sum())),
            ("mean".into(), Json::F64(h.mean())),
        ];
        if let (Some(min), Some(max)) = (h.min(), h.max()) {
            obj.push(("min".into(), Json::U64(min)));
            obj.push(("max".into(), Json::U64(max)));
            obj.push(("p50".into(), Json::U64(h.percentile(0.5).unwrap())));
            obj.push(("p99".into(), Json::U64(h.percentile(0.99).unwrap())));
        }
        obj.push(("buckets".into(), Json::Arr(buckets)));
        self.histograms.push((name.into(), Json::Obj(obj)));
        self
    }

    /// Assembles the final JSON tree.
    pub fn to_json(&self) -> Json {
        let mut root = self.fields.clone();
        root.push(("counters".into(), Json::Obj(self.counters.clone())));
        if !self.gauges.is_empty() {
            root.push(("gauges".into(), Json::Obj(self.gauges.clone())));
        }
        if !self.histograms.is_empty() {
            root.push(("histograms".into(), Json::Obj(self.histograms.clone())));
        }
        Json::Obj(root)
    }

    /// Pretty-printed snapshot text.
    pub fn to_pretty(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Writes the snapshot to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_pretty())
    }
}

/// Checks that `doc` looks like a snapshot this crate wrote: every
/// [`REQUIRED_KEYS`] entry present, schema matching, counters an object.
/// Returns the offending key on failure.
pub fn validate(doc: &Json) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if doc.get(key).is_none() {
            return Err(format!("missing top-level key '{key}'"));
        }
    }
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("schema '{other}' (expected '{SCHEMA}')")),
        None => return Err("schema is not a string".into()),
    }
    match doc.get("counters") {
        Some(Json::Obj(_)) => {}
        _ => return Err("'counters' is not an object".into()),
    }
    if doc.get("elapsed_ms").and_then(Json::as_u64).is_none() {
        return Err("'elapsed_ms' is not an unsigned integer".into());
    }
    if let Some(hists) = doc.get("histograms") {
        let Json::Obj(hists) = hists else {
            return Err("'histograms' is not an object".into());
        };
        for (name, h) in hists {
            validate_histogram(name, h)?;
        }
    }
    Ok(())
}

/// Structural check for one serialized histogram: a `count`, and buckets
/// (when present) each carrying a count plus a bound that is a genuine
/// log2 bucket edge, strictly increasing, with counts summing to `count`.
/// Buckets written before `bucket_upper_bound` existed (only `le`) still
/// pass — the keys are synonyms.
fn validate_histogram(name: &str, h: &Json) -> Result<(), String> {
    let total = h
        .get("count")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("histogram '{name}': missing u64 'count'"))?;
    let Some(buckets) = h.get("buckets") else {
        return Ok(());
    };
    let buckets = buckets
        .as_arr()
        .ok_or_else(|| format!("histogram '{name}': 'buckets' is not an array"))?;
    let mut prev: Option<u64> = None;
    let mut sum = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        let upper = b
            .get("bucket_upper_bound")
            .or_else(|| b.get("le"))
            .and_then(Json::as_u64)
            .ok_or_else(|| {
                format!("histogram '{name}' bucket {i}: missing 'bucket_upper_bound'/'le'")
            })?;
        // Valid log2 edges are 0, 2^k - 1, or u64::MAX.
        if !(upper == 0 || upper == u64::MAX || (upper.wrapping_add(1)).is_power_of_two()) {
            return Err(format!(
                "histogram '{name}' bucket {i}: bound {upper} is not a log2 bucket edge"
            ));
        }
        if let Some(p) = prev {
            if upper <= p {
                return Err(format!(
                    "histogram '{name}' bucket {i}: bounds not strictly increasing"
                ));
            }
        }
        prev = Some(upper);
        sum = sum.saturating_add(
            b.get("count")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram '{name}' bucket {i}: missing u64 'count'"))?,
        );
    }
    if !buckets.is_empty() && sum != total {
        return Err(format!(
            "histogram '{name}': bucket counts sum to {sum}, expected {total}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn snapshot_round_trips_through_the_serializer() {
        let trials = Counter::new();
        trials.add(3_469_496);
        let margin = Gauge::new();
        margin.set(-2);
        let frac = FloatGauge::new();
        frac.set(0.125);
        let hist = Histogram::new();
        for v in [10u64, 100, 1000] {
            hist.record(v);
        }

        let mut snap = Snapshot::new("worst-case", 4200);
        snap.set("graph", Json::Str("catalog:1".into()))
            .counter("search.trials", &trials)
            .gauge("scrub.margin", &margin)
            .float_gauge("mc.failure_fraction", &frac)
            .histogram("scrub.cycle_us", &hist);

        let text = snap.to_pretty();
        let doc = parse(&text).expect("snapshot must parse");
        assert_eq!(doc, snap.to_json(), "round trip is lossless");
        validate(&doc).expect("snapshot must validate");

        let counters = doc.get("counters").unwrap();
        assert_eq!(
            counters.get("search.trials").unwrap().as_u64(),
            Some(3_469_496)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("scrub.margin"),
            Some(&Json::I64(-2))
        );
        let h = doc.get("histograms").unwrap().get("scrub.cycle_us").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(h.get("max").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn validate_rejects_foreign_documents() {
        assert!(validate(&parse("{}").unwrap()).is_err());
        assert!(validate(&parse(r#"{"schema": "other", "command": "x", "elapsed_ms": 1, "counters": {}}"#).unwrap()).is_err());
        assert!(validate(&parse(r#"{"schema": "tornado-metrics-v1", "command": "x", "elapsed_ms": 1, "counters": 5}"#).unwrap()).is_err());
        validate(&parse(r#"{"schema": "tornado-metrics-v1", "command": "x", "elapsed_ms": 1, "counters": {}}"#).unwrap()).unwrap();
    }

    #[test]
    fn buckets_carry_explicit_log2_bounds() {
        let hist = Histogram::new();
        for v in [0u64, 1, 5, 5, 1_000] {
            hist.record(v);
        }
        let mut snap = Snapshot::new("x", 1);
        snap.histogram("lat_us", &hist);
        let doc = parse(&snap.to_pretty()).unwrap();
        validate(&doc).expect("new-format snapshot validates");
        let buckets = doc
            .get("histograms")
            .unwrap()
            .get("lat_us")
            .unwrap()
            .get("buckets")
            .unwrap()
            .as_arr()
            .unwrap();
        for b in buckets {
            let le = b.get("le").unwrap().as_u64().unwrap();
            let upper = b.get("bucket_upper_bound").unwrap().as_u64().unwrap();
            let lower = b.get("bucket_lower_bound").unwrap().as_u64().unwrap();
            assert_eq!(le, upper, "'le' and explicit bound are synonyms");
            assert!(lower <= upper);
        }
        // 5 recorded twice lands in bucket [4,7]: lower 4, upper 7.
        assert!(buckets.iter().any(|b| {
            b.get("bucket_lower_bound").unwrap().as_u64() == Some(4)
                && b.get("bucket_upper_bound").unwrap().as_u64() == Some(7)
                && b.get("count").unwrap().as_u64() == Some(2)
        }));
    }

    #[test]
    fn validate_accepts_legacy_le_only_buckets() {
        // A pre-bucket_upper_bound snapshot: buckets keyed by 'le' alone.
        let doc = parse(
            r#"{"schema": "tornado-metrics-v1", "command": "x", "elapsed_ms": 1,
                "counters": {},
                "histograms": {"h": {"count": 3, "sum": 9,
                    "buckets": [{"le": 1, "count": 1}, {"le": 7, "count": 2}]}}}"#,
        )
        .unwrap();
        validate(&doc).expect("legacy snapshots must keep validating");
    }

    #[test]
    fn validate_rejects_malformed_histograms() {
        let base = |hist: &str| {
            parse(&format!(
                r#"{{"schema": "tornado-metrics-v1", "command": "x", "elapsed_ms": 1,
                     "counters": {{}}, "histograms": {{"h": {hist}}}}}"#
            ))
            .unwrap()
        };
        // Bound that is not a log2 edge.
        let doc = base(r#"{"count": 1, "buckets": [{"bucket_upper_bound": 6, "count": 1}]}"#);
        assert!(validate(&doc).unwrap_err().contains("log2"));
        // Non-increasing bounds.
        let doc = base(
            r#"{"count": 2, "buckets": [{"le": 7, "count": 1}, {"le": 3, "count": 1}]}"#,
        );
        assert!(validate(&doc).unwrap_err().contains("increasing"));
        // Bucket counts disagree with the total.
        let doc = base(r#"{"count": 5, "buckets": [{"le": 1, "count": 1}]}"#);
        assert!(validate(&doc).unwrap_err().contains("sum"));
        // Missing count entirely.
        let doc = base(r#"{"sum": 1}"#);
        assert!(validate(&doc).unwrap_err().contains("count"));
    }

    #[test]
    fn empty_sections_are_omitted() {
        let snap = Snapshot::new("scrub", 1);
        let doc = snap.to_json();
        assert!(doc.get("counters").is_some(), "counters always present");
        assert!(doc.get("gauges").is_none());
        assert!(doc.get("histograms").is_none());
    }
}
