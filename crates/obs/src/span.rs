//! Lightweight span timers: measure a scope, record it into a histogram.

use crate::histogram::Histogram;
use std::time::Instant;

/// Times a scope and records the elapsed **microseconds** into a
/// [`Histogram`] on drop. Microseconds in log2 buckets span 1 µs to ~36
/// minutes with ≤ 2× resolution — right for scrub cycles and experiment
/// phases.
///
/// ```
/// use tornado_obs::{Histogram, SpanTimer};
/// let cycles = Histogram::new();
/// {
///     let _span = SpanTimer::new(&cycles);
///     // ... timed work ...
/// }
/// assert_eq!(cycles.count(), 1);
/// ```
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    started: Instant,
}

impl<'a> SpanTimer<'a> {
    /// Starts timing into `hist`.
    pub fn new(hist: &'a Histogram) -> Self {
        Self {
            hist,
            started: Instant::now(),
        }
    }

    /// Microseconds elapsed so far (the value `drop` will record).
    pub fn elapsed_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Stops early and records, consuming the timer.
    pub fn stop(self) -> u64 {
        self.elapsed_micros()
        // drop records
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.hist.record(self.elapsed_micros());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_once() {
        let h = Histogram::new();
        {
            let _a = SpanTimer::new(&h);
            let _b = SpanTimer::new(&h);
        }
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn stop_returns_the_recorded_value_scale() {
        let h = Histogram::new();
        let t = SpanTimer::new(&h);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let us = t.stop();
        assert!(us >= 2_000, "slept 2ms, measured {us}us");
        assert_eq!(h.count(), 1);
        assert!(h.max().unwrap() >= 2_000);
    }
}
