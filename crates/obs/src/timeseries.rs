//! Bounded ring of periodic metric samples → windowed rates.
//!
//! Aggregate counters answer "how many since boot"; operators usually
//! want "how many per second *right now*". A [`TimeSeries`] holds the
//! last N [`SeriesPoint`]s — each a timestamp plus the *cumulative*
//! values of a set of counters — so any consumer can difference adjacent
//! points into windowed rates without the producer keeping per-window
//! state. The ring drops the oldest point past capacity; memory is fixed
//! no matter how long the server runs.

use crate::json::Json;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One periodic sample: cumulative counter values at an instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Sample time, milliseconds since the producer's epoch.
    pub t_ms: u64,
    /// `(name, cumulative value)` pairs, stable order across points.
    pub values: Vec<(String, u64)>,
}

impl SeriesPoint {
    /// Value of `name` in this point, if present.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.values
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }
}

/// A bounded, thread-safe ring of [`SeriesPoint`]s.
pub struct TimeSeries {
    cap: usize,
    inner: Mutex<VecDeque<SeriesPoint>>,
}

impl TimeSeries {
    /// A ring holding at most `capacity` points (minimum 2, so a rate is
    /// always computable once two samples exist).
    pub fn new(capacity: usize) -> Self {
        Self {
            cap: capacity.max(2),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends a sample, evicting the oldest past capacity.
    pub fn push(&self, point: SeriesPoint) {
        let mut ring = self.inner.lock().unwrap();
        if ring.len() >= self.cap {
            ring.pop_front();
        }
        ring.push_back(point);
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether no samples have been taken yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All retained points, oldest first.
    pub fn points(&self) -> Vec<SeriesPoint> {
        self.inner.lock().unwrap().iter().cloned().collect()
    }

    /// Rate of `name` per second over the *last* sampling interval
    /// (difference of the two newest points). `None` until two samples
    /// exist or if the counter is absent.
    pub fn latest_rate(&self, name: &str) -> Option<f64> {
        let ring = self.inner.lock().unwrap();
        let n = ring.len();
        if n < 2 {
            return None;
        }
        rate_between(&ring[n - 2], &ring[n - 1], name)
    }

    /// Rate of `name` per second over the whole retained window (oldest
    /// vs. newest point).
    pub fn window_rate(&self, name: &str) -> Option<f64> {
        let ring = self.inner.lock().unwrap();
        if ring.len() < 2 {
            return None;
        }
        rate_between(&ring[0], &ring[ring.len() - 1], name)
    }

    /// Renders the ring as JSON:
    /// `{"capacity": N, "points": [{"t_ms": …, "values": {…}}, …]}`.
    pub fn to_json(&self) -> Json {
        let points = self
            .points()
            .into_iter()
            .map(|p| {
                Json::Obj(vec![
                    ("t_ms".into(), Json::U64(p.t_ms)),
                    (
                        "values".into(),
                        Json::Obj(
                            p.values
                                .into_iter()
                                .map(|(k, v)| (k, Json::U64(v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("capacity".into(), Json::U64(self.cap as u64)),
            ("points".into(), Json::Arr(points)),
        ])
    }
}

/// Per-second rate of `name` between two cumulative samples. Counter
/// resets (newer < older) clamp to zero rather than going negative.
fn rate_between(older: &SeriesPoint, newer: &SeriesPoint, name: &str) -> Option<f64> {
    let dv = newer.value(name)?.saturating_sub(older.value(name)?);
    let dt_ms = newer.t_ms.saturating_sub(older.t_ms);
    if dt_ms == 0 {
        return None;
    }
    Some(dv as f64 * 1_000.0 / dt_ms as f64)
}

/// Parses the output of [`TimeSeries::to_json`] back into points (the
/// `tornado watch` consumer side). Returns `None` on shape mismatch.
pub fn points_from_json(doc: &Json) -> Option<Vec<SeriesPoint>> {
    let arr = doc.get("points").and_then(Json::as_arr)?;
    let mut out = Vec::with_capacity(arr.len());
    for p in arr {
        let t_ms = p.get("t_ms").and_then(Json::as_u64)?;
        let Some(Json::Obj(vals)) = p.get("values") else {
            return None;
        };
        let mut values = Vec::with_capacity(vals.len());
        for (k, v) in vals {
            values.push((k.clone(), v.as_u64()?));
        }
        out.push(SeriesPoint { t_ms, values });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(t_ms: u64, ops: u64, bytes: u64) -> SeriesPoint {
        SeriesPoint {
            t_ms,
            values: vec![("ops".into(), ops), ("bytes".into(), bytes)],
        }
    }

    #[test]
    fn rates_difference_cumulative_values() {
        let ts = TimeSeries::new(16);
        assert!(ts.latest_rate("ops").is_none(), "no rate from one point");
        ts.push(point(1_000, 100, 5_000));
        ts.push(point(1_500, 200, 6_000));
        ts.push(point(2_000, 450, 6_000));
        // Last interval: +250 ops over 500 ms → 500/s.
        assert_eq!(ts.latest_rate("ops"), Some(500.0));
        // Whole window: +350 ops over 1000 ms → 350/s.
        assert_eq!(ts.window_rate("ops"), Some(350.0));
        assert_eq!(ts.latest_rate("bytes"), Some(0.0));
        assert_eq!(ts.latest_rate("missing"), None);
    }

    #[test]
    fn ring_is_bounded_drop_oldest() {
        let ts = TimeSeries::new(4);
        for i in 0..10u64 {
            ts.push(point(i * 100, i, 0));
        }
        let pts = ts.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].t_ms, 600, "oldest evicted first");
        assert_eq!(pts[3].t_ms, 900);
    }

    #[test]
    fn counter_reset_clamps_to_zero_rate() {
        let ts = TimeSeries::new(4);
        ts.push(point(0, 1_000, 0));
        ts.push(point(1_000, 5, 0)); // reset mid-window
        assert_eq!(ts.latest_rate("ops"), Some(0.0));
    }

    #[test]
    fn window_rate_clamps_counter_reset_after_replacement() {
        // A device replacement restarts its counters from zero: the whole
        // window now ends below where it started. The rate must clamp to
        // 0, not underflow through the u64 subtraction.
        let ts = TimeSeries::new(8);
        ts.push(point(0, 10_000, 9));
        ts.push(point(500, 12_000, 9));
        ts.push(point(1_000, 30, 9)); // replaced: counter restarted
        assert_eq!(ts.window_rate("ops"), Some(0.0));
        assert_eq!(ts.latest_rate("ops"), Some(0.0));
        // Post-reset growth reads normally once the window refills.
        ts.push(point(1_500, 530, 9));
        assert_eq!(ts.latest_rate("ops"), Some(1_000.0));
    }

    #[test]
    fn single_point_series_has_no_rates() {
        let ts = TimeSeries::new(8);
        ts.push(point(42, 7, 7));
        assert_eq!(ts.latest_rate("ops"), None);
        assert_eq!(ts.window_rate("ops"), None);
        assert_eq!(ts.window_rate("missing"), None);
        // Two samples at the same timestamp: dt = 0 stays rate-less
        // rather than dividing by zero.
        ts.push(point(42, 9, 7));
        assert_eq!(ts.latest_rate("ops"), None);
        assert_eq!(ts.window_rate("ops"), None);
    }

    #[test]
    fn json_round_trips_through_parser() {
        let ts = TimeSeries::new(8);
        ts.push(point(100, 1, 2));
        ts.push(point(200, 3, 4));
        let text = ts.to_json().to_pretty();
        let doc = crate::json::parse(&text).unwrap();
        let pts = points_from_json(&doc).unwrap();
        assert_eq!(pts, ts.points());
    }
}
