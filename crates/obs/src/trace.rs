//! Request-scoped distributed tracing.
//!
//! A [`Tracer`] collects [`SpanRecord`]s — named, timed segments of one
//! request, linked parent→child by span id — into a bounded sharded ring
//! buffer. Sampling is deterministic: whether a trace is recorded depends
//! only on its trace id and the configured 1-in-N rate (see [`sampled`]),
//! so client and server agree on the sampled set without negotiation, and
//! the same seeded load run samples the same trace ids on every machine
//! and at every thread count.
//!
//! Bounds are explicit everywhere:
//! * the ring drops the *oldest* spans past capacity and counts every
//!   drop ([`Tracer::dropped`]), so a long-running server keeps the most
//!   recent window;
//! * an always-kept tail of the N slowest *root* spans survives ring
//!   eviction, so the requests an operator actually wants to see — the
//!   p99.9 stragglers — are never the ones that got dropped.
//!
//! [`to_chrome_trace`] exports spans as Chrome trace-event JSON (`ph: "X"`
//! complete events, microsecond timestamps), loadable directly in
//! Perfetto or `chrome://tracing`; [`validate_chrome_trace`] is the
//! CI-side checker (well-formed events, well-nested span trees).

use crate::clock::{Clock, MonotonicClock};
use crate::json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Ring shards — enough that concurrent request threads rarely contend on
/// one mutex; spans are folded back together at export time.
const SHARDS: usize = 8;

/// SplitMix64 finalizer: a cheap, high-quality bit mixer. Sampling keys on
/// the *mixed* trace id so sequential ids still sample uniformly.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic 1-in-`every` sampling decision for `trace_id`.
///
/// `every == 0` disables sampling entirely; `every == 1` samples
/// everything. The decision is a pure function of the trace id, so any
/// party that knows the rate can reproduce the sampled set exactly.
#[inline]
pub fn sampled(trace_id: u64, every: u64) -> bool {
    match every {
        0 => false,
        1 => true,
        n => mix64(trace_id).is_multiple_of(n),
    }
}

/// One finished span: a named, timed segment of a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id, unique within the tracer.
    pub span_id: u64,
    /// Parent span id; `None` marks a root span.
    pub parent_id: Option<u64>,
    /// Static span name (e.g. `"queue.wait"`, `"decode.recover"`).
    pub name: &'static str,
    /// Start, microseconds since the tracer's epoch.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Key=value annotations carried into the export's `args`.
    pub fields: Vec<(&'static str, Json)>,
}

impl SpanRecord {
    /// End timestamp (`start_us + dur_us`, saturating).
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }

    /// Clamps this span into `[parent_start, parent_end]` so fabricated
    /// child spans (built from independently-measured durations) always
    /// nest exactly inside their parent.
    pub fn clamped_into(mut self, parent_start_us: u64, parent_end_us: u64) -> Self {
        self.start_us = self.start_us.clamp(parent_start_us, parent_end_us);
        let end = self.end_us().min(parent_end_us);
        self.dur_us = end - self.start_us;
        self
    }
}

struct RingShard {
    spans: VecDeque<SpanRecord>,
    dropped: u64,
}

static NEXT_TRACE_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Stable per-thread shard index (threads numbered at first use).
    static TRACE_SLOT: usize = NEXT_TRACE_SLOT.fetch_add(1, Relaxed) % SHARDS;
}

/// A cheap, thread-friendly span collector with deterministic sampling.
pub struct Tracer {
    sample_every: u64,
    clock: Arc<dyn Clock>,
    next_span: AtomicU64,
    shards: Vec<Mutex<RingShard>>,
    shard_cap: usize,
    slow: Mutex<Vec<SpanRecord>>,
    slow_keep: usize,
    recorded: AtomicU64,
}

impl Tracer {
    /// A tracer that samples nothing and records nothing.
    pub fn disabled() -> Self {
        Self::new(0, 0, 0)
    }

    /// A tracer sampling 1 in `sample_every` traces (0 = off, 1 = all),
    /// retaining at most `capacity` spans in the ring plus the `slow_keep`
    /// slowest root spans.
    pub fn new(sample_every: u64, capacity: usize, slow_keep: usize) -> Self {
        let shard_cap = if sample_every == 0 {
            0
        } else {
            capacity.div_ceil(SHARDS).max(1)
        };
        Self {
            sample_every,
            clock: Arc::new(MonotonicClock::new()),
            next_span: AtomicU64::new(1),
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(RingShard {
                        spans: VecDeque::new(),
                        dropped: 0,
                    })
                })
                .collect(),
            shard_cap,
            slow: Mutex::new(Vec::new()),
            slow_keep,
            recorded: AtomicU64::new(0),
        }
    }

    /// Replaces the timestamp source (tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Whether this tracer can ever record a span.
    pub fn is_enabled(&self) -> bool {
        self.sample_every != 0
    }

    /// The configured 1-in-N rate (0 = disabled).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Deterministic sampling decision for `trace_id` at this tracer's
    /// rate (see the free function [`sampled`]).
    pub fn sampled(&self, trace_id: u64) -> bool {
        sampled(trace_id, self.sample_every)
    }

    /// Microseconds since this tracer's epoch (span timestamp base).
    pub fn now_us(&self) -> u64 {
        self.clock.now_nanos() / 1_000
    }

    /// Allocates a fresh span id.
    pub fn next_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Relaxed)
    }

    /// Records one finished span into the calling thread's ring shard
    /// (drop-oldest past capacity) and, for root spans, into the
    /// slowest-roots tail.
    pub fn record(&self, span: SpanRecord) {
        if !self.is_enabled() {
            return;
        }
        self.recorded.fetch_add(1, Relaxed);
        if span.parent_id.is_none() && self.slow_keep > 0 {
            let mut slow = self.slow.lock().unwrap();
            if slow.len() < self.slow_keep {
                slow.push(span.clone());
            } else if let Some((i, min)) = slow
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.dur_us)
                .map(|(i, s)| (i, s.dur_us))
            {
                if span.dur_us > min {
                    slow[i] = span.clone();
                }
            }
        }
        let shard = TRACE_SLOT.with(|&s| s);
        let mut ring = self.shards[shard].lock().unwrap();
        if ring.spans.len() >= self.shard_cap {
            ring.spans.pop_front();
            ring.dropped += 1;
        }
        ring.spans.push_back(span);
    }

    /// Spans evicted from the ring so far (the bounded-memory signal; the
    /// slowest-roots tail keeps its copies regardless).
    pub fn dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().dropped)
            .sum()
    }

    /// Spans recorded so far (before any eviction).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Relaxed)
    }

    /// The always-kept tail of the slowest root spans, slowest first.
    pub fn slowest_roots(&self) -> Vec<SpanRecord> {
        let mut v = self.slow.lock().unwrap().clone();
        v.sort_by_key(|s| std::cmp::Reverse(s.dur_us));
        v
    }

    /// Every retained span — ring contents plus the slowest-roots tail,
    /// deduplicated by span id and sorted by (trace, start) for stable
    /// export.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().unwrap().spans.iter().cloned());
        }
        out.extend(self.slow.lock().unwrap().iter().cloned());
        out.sort_by(|a, b| {
            (a.trace_id, a.start_us, a.span_id).cmp(&(b.trace_id, b.start_us, b.span_id))
        });
        out.dedup_by_key(|s| s.span_id);
        out
    }

    /// All retained spans of one trace, parents before children where
    /// start times allow (same sort as [`Tracer::spans`]).
    pub fn spans_for(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.spans()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("sample_every", &self.sample_every)
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Renders spans as a Chrome trace-event JSON document (`ph: "X"` complete
/// events, timestamps in microseconds) loadable in Perfetto. Each trace is
/// assigned its own `tid` (in first-appearance order of the sorted spans)
/// so its span tree renders as one nested track.
///
/// Spans whose ancestor chain is incomplete are pruned: ring eviction
/// drops oldest-first per shard, so a long run can evict a parent while
/// its child survives. The export keeps only spans that still connect to
/// a retained root, which is what makes its nesting validate-clean; the
/// tracer's dropped counter accounts for the rest.
pub fn to_chrome_trace(spans: &[SpanRecord]) -> Json {
    let present: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let parent_of: std::collections::HashMap<u64, Option<u64>> =
        spans.iter().map(|s| (s.span_id, s.parent_id)).collect();
    let connected = |mut id: u64| -> bool {
        // Parent chains are a few levels deep; the bound only guards
        // against a corrupt cycle.
        for _ in 0..64 {
            match parent_of.get(&id) {
                Some(None) => return true, // reached a root
                Some(Some(p)) if present.contains(p) => id = *p,
                _ => return false,
            }
        }
        false
    };

    let mut tid_of: Vec<(u64, u64)> = Vec::new(); // (trace_id, tid)
    let mut events = Vec::with_capacity(spans.len());
    for s in spans.iter().filter(|s| connected(s.span_id)) {
        let tid = match tid_of.iter().find(|(t, _)| *t == s.trace_id) {
            Some(&(_, tid)) => tid,
            None => {
                let tid = tid_of.len() as u64 + 1;
                tid_of.push((s.trace_id, tid));
                tid
            }
        };
        let mut args = vec![
            (
                "trace_id".to_string(),
                Json::Str(format!("{:#018x}", s.trace_id)),
            ),
            ("span_id".to_string(), Json::U64(s.span_id)),
            (
                "parent_id".to_string(),
                match s.parent_id {
                    Some(p) => Json::U64(p),
                    None => Json::Null,
                },
            ),
        ];
        args.extend(s.fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())));
        events.push(Json::Obj(vec![
            ("name".into(), Json::Str(s.name.into())),
            ("cat".into(), Json::Str("tornado".into())),
            ("ph".into(), Json::Str("X".into())),
            ("pid".into(), Json::U64(1)),
            ("tid".into(), Json::U64(tid)),
            ("ts".into(), Json::U64(s.start_us)),
            ("dur".into(), Json::U64(s.dur_us)),
            ("args".into(), Json::Obj(args)),
        ]));
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Total events.
    pub events: usize,
    /// Distinct trace ids.
    pub traces: usize,
    /// Root events (no parent).
    pub roots: usize,
}

/// Checks that `doc` is a well-formed Chrome trace-event document as this
/// module exports them: a `traceEvents` array of `ph == "X"` events with
/// numeric `ts`/`dur`, span/parent ids in `args`, every parent present in
/// the same trace, and every child nested inside its parent's time window.
/// `require` lists span names that must each appear at least once.
pub fn validate_chrome_trace(doc: &Json, require: &[&str]) -> Result<ChromeTraceStats, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing 'traceEvents' array")?;
    // (trace, span) -> (ts, end); collected first so order doesn't matter.
    let mut windows: Vec<(String, u64, u64, u64)> = Vec::with_capacity(events.len());
    // (trace, name, parent, span, ts, end) per event, pending the nesting check.
    type ParsedEvent<'a> = (String, &'a str, Option<u64>, u64, u64, u64);
    let mut parsed: Vec<ParsedEvent> = Vec::new();
    let mut trace_ids: Vec<String> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing 'name'"))?;
        match ev.get("ph").and_then(Json::as_str) {
            Some("X") => {}
            other => return Err(format!("event {i} ({name}): ph {other:?}, expected \"X\"")),
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric 'ts'"))?;
        let dur = ev
            .get("dur")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric 'dur'"))?;
        let args = ev
            .get("args")
            .ok_or_else(|| format!("event {i} ({name}): missing 'args'"))?;
        let trace = args
            .get("trace_id")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing args.trace_id"))?
            .to_string();
        let span = args
            .get("span_id")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i} ({name}): missing args.span_id"))?;
        let parent = args.get("parent_id").and_then(Json::as_u64);
        if !trace_ids.contains(&trace) {
            trace_ids.push(trace.clone());
        }
        windows.push((trace.clone(), span, ts, ts.saturating_add(dur)));
        parsed.push((trace, name, parent, span, ts, dur));
    }
    let mut roots = 0;
    for (trace, name, parent, _span, ts, dur) in &parsed {
        match parent {
            None => roots += 1,
            Some(p) => {
                let (_, _, pts, pend) = windows
                    .iter()
                    .find(|(t, s, _, _)| t == trace && s == p)
                    .ok_or_else(|| format!("span '{name}' references missing parent {p}"))?;
                if ts < pts || ts.saturating_add(*dur) > *pend {
                    return Err(format!(
                        "span '{name}' [{ts}, {}] escapes parent window [{pts}, {pend}]",
                        ts.saturating_add(*dur)
                    ));
                }
            }
        }
    }
    for want in require {
        if !parsed.iter().any(|(_, name, ..)| name == want) {
            return Err(format!("required span '{want}' not present"));
        }
    }
    Ok(ChromeTraceStats {
        events: parsed.len(),
        traces: trace_ids.len(),
        roots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        start: u64,
        dur: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_id: parent,
            name,
            start_us: start,
            dur_us: dur,
            fields: vec![("k", Json::U64(1))],
        }
    }

    #[test]
    fn sampling_is_deterministic_and_rate_shaped() {
        let ids: Vec<u64> = (0..100_000u64).map(|i| mix64(i ^ 0xDEAD)).collect();
        let hits: Vec<u64> = ids.iter().copied().filter(|&t| sampled(t, 256)).collect();
        let again: Vec<u64> = ids.iter().copied().filter(|&t| sampled(t, 256)).collect();
        assert_eq!(hits, again, "pure function of trace id");
        // 1-in-256 over 100k ids: expect ~390, allow generous slack.
        assert!(
            (150..800).contains(&hits.len()),
            "hit count {} far from expected rate",
            hits.len()
        );
        assert!(ids.iter().all(|&t| !sampled(t, 0)), "0 disables");
        assert!(ids.iter().all(|&t| sampled(t, 1)), "1 samples all");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::new(1, 8, 0);
        for i in 0..100u64 {
            t.record(span(1, i + 1, None, "s", i * 10, 5));
        }
        assert_eq!(t.recorded(), 100);
        let spans = t.spans();
        assert!(spans.len() <= 16, "bounded near capacity, got {}", spans.len());
        assert_eq!(t.dropped() + spans.len() as u64, 100);
        // Survivors are the newest (highest start times).
        let min_start = spans.iter().map(|s| s.start_us).min().unwrap();
        assert!(min_start >= 500, "oldest spans were the ones dropped");
    }

    #[test]
    fn slowest_roots_survive_ring_eviction() {
        let t = Tracer::new(1, 8, 2);
        // One early, very slow root; then a flood of fast spans.
        t.record(span(7, 1, None, "slow", 0, 9_999));
        for i in 0..200u64 {
            t.record(span(8, i + 2, None, "fast", 100 + i, 1));
        }
        let slow = t.slowest_roots();
        assert_eq!(slow[0].dur_us, 9_999, "slowest kept: {slow:?}");
        assert!(
            t.spans().iter().any(|s| s.dur_us == 9_999),
            "export includes the evicted-but-slow root"
        );
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.record(span(1, 1, None, "s", 0, 1));
        assert_eq!(t.recorded(), 0);
        assert!(t.spans().is_empty());
        assert!(!t.sampled(42));
    }

    #[test]
    fn clock_drives_now_us() {
        let clock = Arc::new(ManualClock::new());
        let t = Tracer::new(1, 8, 0).with_clock(clock.clone());
        clock.advance_millis(3);
        assert_eq!(t.now_us(), 3_000);
    }

    #[test]
    fn clamping_forces_nesting() {
        let child = span(1, 2, Some(1), "c", 5, 100).clamped_into(10, 50);
        assert_eq!(child.start_us, 10);
        assert_eq!(child.end_us(), 50);
        let inside = span(1, 3, Some(1), "c", 20, 5).clamped_into(10, 50);
        assert_eq!((inside.start_us, inside.dur_us), (20, 5), "untouched when already nested");
    }

    #[test]
    fn chrome_export_round_trips_and_validates() {
        let spans = vec![
            span(1, 1, None, "request", 100, 900),
            span(1, 2, Some(1), "queue.wait", 110, 40),
            span(1, 3, Some(1), "execute", 160, 800),
            span(1, 4, Some(3), "decode.recover", 200, 300),
            span(2, 5, None, "request", 50, 10),
        ];
        let doc = to_chrome_trace(&spans);
        let text = doc.to_pretty();
        let parsed = crate::json::parse(&text).unwrap();
        let stats = validate_chrome_trace(&parsed, &["request", "decode.recover"]).unwrap();
        assert_eq!(stats.events, 5);
        assert_eq!(stats.traces, 2);
        assert_eq!(stats.roots, 2);
    }

    #[test]
    fn validator_rejects_broken_nesting_and_missing_parent() {
        let escape = vec![
            span(1, 1, None, "request", 100, 50),
            span(1, 2, Some(1), "late", 140, 100),
        ];
        let err = validate_chrome_trace(&to_chrome_trace(&escape), &[]).unwrap_err();
        assert!(err.contains("escapes"), "{err}");

        // The exporter prunes orphans, so a hand-built event is needed to
        // exercise the validator's missing-parent check.
        let orphan_doc = Json::Obj(vec![(
            "traceEvents".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("name".into(), Json::Str("child".into())),
                ("ph".into(), Json::Str("X".into())),
                ("pid".into(), Json::U64(1)),
                ("tid".into(), Json::U64(1)),
                ("ts".into(), Json::U64(0)),
                ("dur".into(), Json::U64(1)),
                (
                    "args".into(),
                    Json::Obj(vec![
                        ("trace_id".into(), Json::Str("0x1".into())),
                        ("span_id".into(), Json::U64(2)),
                        ("parent_id".into(), Json::U64(99)),
                    ]),
                ),
            ])]),
        )]);
        let err = validate_chrome_trace(&orphan_doc, &[]).unwrap_err();
        assert!(err.contains("missing parent"), "{err}");

        let ok = vec![span(1, 1, None, "request", 0, 10)];
        let err = validate_chrome_trace(&to_chrome_trace(&ok), &["decode.recover"]).unwrap_err();
        assert!(err.contains("decode.recover"), "{err}");
    }

    #[test]
    fn export_prunes_spans_whose_ancestors_were_evicted() {
        // Trace 1 lost its "execute" span (id 3) to ring eviction: the
        // grandchild must be pruned with it, the intact siblings kept.
        let spans = vec![
            span(1, 1, None, "request", 100, 900),
            span(1, 2, Some(1), "queue.wait", 110, 40),
            span(1, 4, Some(3), "store.get", 200, 300), // parent 3 evicted
            span(2, 5, None, "request", 50, 10),
        ];
        let doc = to_chrome_trace(&spans);
        let stats = validate_chrome_trace(&doc, &["request", "queue.wait"]).unwrap();
        assert_eq!(stats.events, 3, "orphaned store.get pruned");
        assert_eq!(stats.roots, 2);
        assert!(validate_chrome_trace(&doc, &["store.get"]).is_err());
    }

    #[test]
    fn concurrent_recording_is_safe_and_lossless_in_count() {
        let t = Arc::new(Tracer::new(1, 1 << 16, 4));
        std::thread::scope(|s| {
            for w in 0..8u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        let id = t.next_span_id();
                        t.record(span(w, id, None, "s", i, 1));
                    }
                });
            }
        });
        assert_eq!(t.recorded(), 8_000);
        assert_eq!(t.dropped(), 0, "capacity was sufficient");
        assert_eq!(t.spans().len(), 8_000);
    }
}
