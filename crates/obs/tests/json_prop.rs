//! Property-based round-trip tests for the hand-rolled `obs::json`
//! writer ↔ parser — it now carries trace payloads, so losing a byte in
//! an escape or misparsing a u64 edge value would corrupt exported
//! traces silently.
//!
//! Trees are generated from a seed with a splitmix-style mixer (the
//! vendored proptest has no recursive-strategy combinator), constrained
//! to the representable round-trip domain: finite floats that are either
//! non-integral or below 1e15 (larger integral floats print as digit
//! strings and legitimately reparse as integers), and `I64` only for
//! negative values (non-negative integers canonically parse as `U64`).

use proptest::prelude::*;
use tornado_obs::json::{parse, Json};

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Strings mixing plain text, every escaped control, quotes, backslashes,
/// and multi-byte unicode.
fn gen_string(state: &mut u64) -> String {
    const POOL: &[&str] = &[
        "a", "key", "…", "λ", "\"", "\\", "\n", "\r", "\t", "\u{1}", "\u{1f}", "/", "snow☃",
        " ", "0", "{", "[", "\u{7f}", "é",
    ];
    let len = (mix(state) % 12) as usize;
    (0..len)
        .map(|_| POOL[(mix(state) as usize) % POOL.len()])
        .collect()
}

fn gen_number(state: &mut u64) -> Json {
    match mix(state) % 8 {
        0 => Json::U64(mix(state)), // full u64 range incl. > i64::MAX
        1 => Json::U64(u64::MAX),
        2 => Json::U64(0),
        3 => Json::I64(-((mix(state) % (1 << 62)) as i64) - 1),
        4 => Json::I64(i64::MIN),
        // Non-integral float with an exactly-representable fraction.
        5 => Json::F64((mix(state) % (1 << 50)) as f64 / 256.0 + 0.5),
        // Integral float below the 1e15 digit-string threshold.
        6 => Json::F64((mix(state) % 1_000_000) as f64),
        _ => Json::F64(-((mix(state) % 1_000) as f64) / 8.0),
    }
}

fn gen_json(state: &mut u64, depth: usize) -> Json {
    let scalar_only = depth == 0;
    match mix(state) % if scalar_only { 6 } else { 8 } {
        0 => Json::Null,
        1 => Json::Bool(mix(state).is_multiple_of(2)),
        2 | 3 => gen_number(state),
        4 | 5 => Json::Str(gen_string(state)),
        6 => {
            let n = (mix(state) % 4) as usize;
            Json::Arr((0..n).map(|_| gen_json(state, depth - 1)).collect())
        }
        _ => {
            let n = (mix(state) % 4) as usize;
            Json::Obj(
                (0..n)
                    .map(|_| (gen_string(state), gen_json(state, depth - 1)))
                    .collect(),
            )
        }
    }
}

/// Deeply nested single-spine tree (arrays of objects of arrays …).
fn gen_spine(state: &mut u64, depth: usize) -> Json {
    let mut v = gen_number(state);
    for level in 0..depth {
        v = if level % 2 == 0 {
            Json::Arr(vec![v])
        } else {
            Json::Obj(vec![(gen_string(state), v)])
        };
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Writer → parser is the identity on generated trees, in both the
    /// pretty and the compact (JSON-lines) renderings.
    #[test]
    fn arbitrary_trees_round_trip(seed in any::<u64>(), depth in 0usize..5) {
        let mut state = seed;
        let v = gen_json(&mut state, depth);
        let pretty = parse(&v.to_pretty()).expect("pretty reparse");
        prop_assert_eq!(&pretty, &v, "pretty form");
        let line = parse(&v.to_line()).expect("compact reparse");
        prop_assert_eq!(&line, &v, "compact form");
    }

    /// Deep nesting (well past any realistic trace payload) survives the
    /// recursive-descent parser.
    #[test]
    fn deep_nesting_round_trips(seed in any::<u64>(), depth in 1usize..60) {
        let mut state = seed;
        let v = gen_spine(&mut state, depth);
        prop_assert_eq!(parse(&v.to_line()).unwrap(), v);
    }

    /// Every u64 survives exactly — counters and trace ids depend on it.
    #[test]
    fn u64_values_are_exact(v in any::<u64>()) {
        prop_assert_eq!(parse(&Json::U64(v).to_line()).unwrap(), Json::U64(v));
    }

    /// Strings of arbitrary escape-heavy content survive both renderings.
    #[test]
    fn strings_round_trip(seed in any::<u64>()) {
        let mut state = seed;
        let s = gen_string(&mut state);
        let v = Json::Str(s);
        prop_assert_eq!(parse(&v.to_line()).unwrap(), v.clone());
        prop_assert_eq!(parse(&v.to_pretty()).unwrap(), v);
    }
}

#[test]
fn integer_edge_values_round_trip_exactly() {
    for v in [
        Json::U64(0),
        Json::U64(1),
        Json::U64(i64::MAX as u64),
        Json::U64(i64::MAX as u64 + 1),
        Json::U64(u64::MAX - 1),
        Json::U64(u64::MAX),
        Json::I64(-1),
        Json::I64(i64::MIN),
        Json::I64(i64::MIN + 1),
    ] {
        assert_eq!(parse(&v.to_line()).unwrap(), v, "{v:?}");
        assert_eq!(parse(&v.to_pretty()).unwrap(), v, "{v:?}");
    }
}
