//! Determinism of sharded counters and recorder merges under rayon.
//!
//! The instrumentation contract is that per-worker recorder cells merged
//! into sharded counters give the same totals regardless of thread count
//! or which worker processed which batch — summation commutes, and the
//! shards fold losslessly.

use rayon::prelude::*;
use tornado_obs::{Counter, Histogram, ProgressConfig, Recorder};

#[test]
fn sharded_counter_totals_are_exact_under_rayon() {
    let c = Counter::new();
    (0..10_000u64).into_par_iter().for_each(|i| c.add(i % 7));
    let expected: u64 = (0..10_000u64).map(|i| i % 7).sum();
    assert_eq!(c.get(), expected);
}

#[test]
fn counter_merge_is_deterministic_across_thread_counts() {
    let totals: Vec<u64> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let c = Counter::new();
            pool.install(|| {
                (0..256u64).into_par_iter().for_each(|batch| {
                    // Per-batch recorder, merged out at the batch boundary —
                    // the exact pattern the worst-case search uses.
                    let mut rec: Recorder<2> = Recorder::enabled();
                    for t in 0..100 {
                        rec.inc(0);
                        if (batch + t) % 3 == 0 {
                            rec.inc(1);
                        }
                    }
                    let cells = rec.take();
                    c.add(cells[0] + cells[1]);
                });
            });
            c.get()
        })
        .collect();
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "thread count changed the merged total: {totals:?}"
    );
}

#[test]
fn progress_counting_is_exact_under_contention() {
    let cfg = ProgressConfig::silent();
    let p = cfg.start("contended", 1_000_000);
    (0..1000u64).into_par_iter().for_each(|_| p.add(1000));
    assert_eq!(p.done(), 1_000_000);
}

#[test]
fn histogram_merge_is_order_independent() {
    // Record the same multiset through different per-worker splits; the
    // folded histogram must be identical.
    let values: Vec<u64> = (0..5000u64).map(|i| (i * 2654435761) % 1_000_000).collect();
    let reference = Histogram::new();
    for &v in &values {
        reference.record(v);
    }
    for chunk_size in [7usize, 64, 1024] {
        let folded = Histogram::new();
        let chunks: Vec<&[u64]> = values.chunks(chunk_size).collect();
        chunks.into_par_iter().for_each(|chunk| {
            let local = Histogram::new();
            for &v in chunk {
                local.record(v);
            }
            folded.merge(&local);
        });
        assert_eq!(folded.bucket_counts(), reference.bucket_counts());
        assert_eq!(folded.count(), reference.count());
        assert_eq!(folded.sum(), reference.sum());
        assert_eq!(folded.min(), reference.min());
        assert_eq!(folded.max(), reference.max());
        assert_eq!(folded.percentile(0.5), reference.percentile(0.5));
        assert_eq!(folded.percentile(0.99), reference.percentile(0.99));
    }
}
