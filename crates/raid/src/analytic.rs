//! Exact failure probabilities for grouped parity systems.
//!
//! A RAID system of `g` groups of `s` disks with per-group tolerance `t`
//! (RAID5: `t = 1`, RAID6: `t = 2`, striping: `t = 0`) survives an erasure
//! pattern iff every group lost at most `t` disks. The number of surviving
//! placements of `k` losses is the `k`-th coefficient of
//!
//! ```text
//! ( Σ_{j=0..t} C(s, j) · x^j )^g
//! ```
//!
//! computed exactly by integer convolution, so
//! `P(fail | k) = 1 − allowed(k) / C(gs, k)`.

use crate::layout::GroupLayout;
use tornado_numerics::binomial_u128;
use tornado_sim::FailureProfile;

/// A grouped parity system: layout plus per-group loss tolerance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSystem {
    /// Physical layout.
    pub layout: GroupLayout,
    /// Maximum per-group losses survivable (`0` striping, `1` RAID5,
    /// `2` RAID6).
    pub tolerance: usize,
}

impl GroupSystem {
    /// The paper's RAID5 system: 8 × 12, one parity disk per drawer.
    pub fn raid5_paper() -> Self {
        Self {
            layout: GroupLayout::paper_8x12(),
            tolerance: 1,
        }
    }

    /// The paper's RAID6 system: 8 × 12, two parity disks per drawer.
    pub fn raid6_paper() -> Self {
        Self {
            layout: GroupLayout::paper_8x12(),
            tolerance: 2,
        }
    }

    /// The paper's striped system: no redundancy (one 96-disk group, zero
    /// tolerance — any layout gives the same behaviour).
    pub fn striping_paper() -> Self {
        Self {
            layout: GroupLayout::new(1, 96),
            tolerance: 0,
        }
    }

    /// Data devices presented to the user (total minus parity).
    pub fn data_devices(&self) -> usize {
        self.layout.total_devices() - self.parity_devices()
    }

    /// Parity devices consumed by redundancy.
    pub fn parity_devices(&self) -> usize {
        self.layout.groups() * self.tolerance
    }

    /// Number of `k`-loss placements the system survives.
    pub fn surviving_placements(&self, k: usize) -> u128 {
        allowed_placements(
            self.layout.groups(),
            self.layout.group_size(),
            self.tolerance,
            k,
        )
    }

    /// `P(fail | k devices offline)` — exact.
    pub fn failure_probability(&self, k: usize) -> f64 {
        group_failure_probability(
            self.layout.groups(),
            self.layout.group_size(),
            self.tolerance,
            k,
        )
    }

    /// Whether a specific erasure pattern kills the system.
    pub fn pattern_fails(&self, offline: &[usize]) -> bool {
        self.layout
            .losses_per_group(offline)
            .iter()
            .any(|&c| c > self.tolerance)
    }

    /// The full exact profile (all rows marked exact; counts scaled into
    /// `u64` where the true `C(n, k)` does not fit).
    pub fn profile(&self) -> FailureProfile {
        let n = self.layout.total_devices();
        let mut p = FailureProfile::new(n);
        for k in 1..=n {
            let cases = binomial_u128(n as u64, k as u64);
            let frac = self.failure_probability(k);
            if cases <= u64::MAX as u128 {
                let cases = cases as u64;
                let failures = ((frac * cases as f64).round() as u64).min(cases);
                p.record(k, cases, failures, true);
            } else {
                let scale = 1u64 << 62;
                let failures = ((frac * scale as f64).round() as u64).min(scale);
                p.record(k, scale, failures, true);
            }
        }
        p
    }
}

/// Number of ways to choose `k` of `groups × size` devices with at most
/// `tolerance` per group: coefficient extraction by exact convolution.
pub fn allowed_placements(groups: usize, size: usize, tolerance: usize, k: usize) -> u128 {
    let t = tolerance.min(size);
    // Per-group polynomial coefficients C(size, 0..=t).
    let unit: Vec<u128> = (0..=t).map(|j| binomial_u128(size as u64, j as u64)).collect();
    let mut poly: Vec<u128> = vec![1];
    for _ in 0..groups {
        let mut next = vec![0u128; (poly.len() + t).min(k + 1)];
        for (i, &a) in poly.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in unit.iter().enumerate() {
                if i + j < next.len() {
                    next[i + j] = next[i + j]
                        .checked_add(a.checked_mul(b).expect("placement count overflow"))
                        .expect("placement count overflow");
                }
            }
        }
        poly = next;
    }
    poly.get(k).copied().unwrap_or(0)
}

/// `P(fail | k offline)` for `groups × size` devices tolerating
/// `tolerance` losses per group. Exact.
pub fn group_failure_probability(groups: usize, size: usize, tolerance: usize, k: usize) -> f64 {
    let n = (groups * size) as u64;
    if k == 0 {
        return 0.0;
    }
    if k as u64 > n {
        return 1.0;
    }
    let total = binomial_u128(n, k as u64);
    let ok = allowed_placements(groups, size, tolerance, k);
    debug_assert!(ok <= total);
    1.0 - ok as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_fails_on_any_loss() {
        let s = GroupSystem::striping_paper();
        assert_eq!(s.failure_probability(0), 0.0);
        assert_eq!(s.failure_probability(1), 1.0);
        assert_eq!(s.data_devices(), 96);
        assert_eq!(s.parity_devices(), 0);
    }

    #[test]
    fn raid5_paper_shape() {
        let r = GroupSystem::raid5_paper();
        assert_eq!(r.data_devices(), 88);
        assert_eq!(r.parity_devices(), 8);
        assert_eq!(r.failure_probability(1), 0.0, "one loss per drawer is fine");
        // k = 2: fails iff both losses land in one drawer:
        // 8 × C(12,2) / C(96,2).
        let expected = 8.0 * 66.0 / 4560.0;
        assert!((r.failure_probability(2) - expected).abs() < 1e-15);
    }

    #[test]
    fn raid6_paper_shape() {
        let r = GroupSystem::raid6_paper();
        assert_eq!(r.data_devices(), 80);
        assert_eq!(r.parity_devices(), 16);
        assert_eq!(r.failure_probability(2), 0.0);
        // k = 3: all three in one drawer: 8 × C(12,3) / C(96,3).
        let expected = 8.0 * 220.0 / 142_880.0;
        assert!((r.failure_probability(3) - expected).abs() < 1e-15);
    }

    #[test]
    fn worst_case_loss_counts_match_paper_intro() {
        // §3: "a traditional high performance storage system containing 10
        // RAID5 LUNs […] could support the loss of ten drives as long as
        // exactly one drive fails in each LUN. In the case where 11 disks
        // fail, data loss is guaranteed."
        let sys = GroupSystem {
            layout: GroupLayout::new(10, 5),
            tolerance: 1,
        };
        assert!(sys.failure_probability(10) < 1.0);
        assert_eq!(sys.failure_probability(11), 1.0);
    }

    #[test]
    fn allowed_placements_brute_force_small() {
        // 2 groups of 3, tolerance 1: enumerate all 6-bit masks.
        for k in 0..=6usize {
            let mut ok = 0u32;
            for mask in 0u32..64 {
                if mask.count_ones() as usize != k {
                    continue;
                }
                let g0 = (mask & 0b000111).count_ones();
                let g1 = (mask & 0b111000).count_ones();
                if g0 <= 1 && g1 <= 1 {
                    ok += 1;
                }
            }
            assert_eq!(
                allowed_placements(2, 3, 1, k),
                ok as u128,
                "k = {k}"
            );
        }
    }

    #[test]
    fn tolerance_at_least_group_size_never_fails() {
        for k in 0..=12 {
            assert_eq!(group_failure_probability(3, 4, 4, k), 0.0, "k = {k}");
        }
        // But losing more than everything is still nonsense-guarded.
        assert_eq!(group_failure_probability(3, 4, 4, 13), 1.0);
    }

    #[test]
    fn pattern_fails_checks_groups() {
        let r = GroupSystem::raid5_paper();
        assert!(!r.pattern_fails(&[0, 12, 24]));
        assert!(r.pattern_fails(&[0, 1]));
        assert!(!r.pattern_fails(&[]));
    }

    #[test]
    fn profile_is_exact_and_monotone() {
        let r = GroupSystem::raid6_paper();
        let p = r.profile();
        let mut prev = 0.0;
        for k in 1..=96 {
            let f = p.entry(k).fraction();
            assert!(f >= prev - 1e-12, "monotone at {k}");
            assert!(p.entry(k).exact);
            prev = f;
        }
        assert_eq!(p.entry(1).fraction(), 0.0);
        assert_eq!(p.entry(96).fraction(), 1.0);
        assert_eq!(p.first_failure(), Some(3), "RAID6 tolerates any two losses");
    }

    #[test]
    fn probabilities_order_raid5_raid6_mirror() {
        // For the paper's device counts, at moderate k:
        // RAID5 most fragile, then mirror… ordering spot-checks.
        let r5 = GroupSystem::raid5_paper();
        let r6 = GroupSystem::raid6_paper();
        for k in 2..=20 {
            assert!(
                r6.failure_probability(k) <= r5.failure_probability(k) + 1e-15,
                "RAID6 must dominate RAID5 at k = {k}"
            );
        }
    }
}
