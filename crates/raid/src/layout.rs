//! Device-to-group layouts.

/// Partition of a device array into equal parity groups ("drawers").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupLayout {
    groups: usize,
    group_size: usize,
}

impl GroupLayout {
    /// `groups` drawers of `group_size` devices each.
    ///
    /// # Panics
    /// Panics on zero groups or zero-size groups.
    pub fn new(groups: usize, group_size: usize) -> Self {
        assert!(groups > 0 && group_size > 0, "degenerate layout");
        Self { groups, group_size }
    }

    /// The paper's configuration: 8 drawers with 12 disks per drawer.
    pub fn paper_8x12() -> Self {
        Self::new(8, 12)
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Devices per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Total devices.
    pub fn total_devices(&self) -> usize {
        self.groups * self.group_size
    }

    /// Which group a device belongs to.
    pub fn group_of(&self, device: usize) -> usize {
        assert!(device < self.total_devices(), "device {device} out of range");
        device / self.group_size
    }

    /// Counts offline devices per group for an erasure pattern.
    pub fn losses_per_group(&self, offline: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.groups];
        for &d in offline {
            counts[self.group_of(d)] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_shape() {
        let l = GroupLayout::paper_8x12();
        assert_eq!(l.total_devices(), 96);
        assert_eq!(l.group_of(0), 0);
        assert_eq!(l.group_of(11), 0);
        assert_eq!(l.group_of(12), 1);
        assert_eq!(l.group_of(95), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_of_checks_bounds() {
        GroupLayout::paper_8x12().group_of(96);
    }

    #[test]
    fn losses_per_group_counts() {
        let l = GroupLayout::new(3, 4);
        let counts = l.losses_per_group(&[0, 1, 4, 11]);
        assert_eq!(counts, vec![2, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_zero_groups() {
        GroupLayout::new(0, 4);
    }
}
