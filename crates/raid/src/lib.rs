//! RAID comparator systems (paper §4.1, Fig. 3 / Tables 1 and 5).
//!
//! The paper compares its Tornado graphs against conventional layouts on
//! the same 96 devices:
//!
//! * **Striping** — no redundancy; any loss is fatal.
//! * **RAID5** — 8 drawers of 12 disks, one parity disk per drawer; a
//!   drawer dies when ≥ 2 of its disks die.
//! * **RAID6** — same drawers, two parity disks each; a drawer dies when
//!   ≥ 3 of its disks die.
//! * **Mirroring (RAID 10)** — 48 pairs; a pair dying is fatal. (The
//!   closed form lives in `tornado_sim::mirror`; re-exported here.)
//!
//! RAID5/6 failure probabilities given `k` offline devices have exact
//! closed forms by counting the placements that keep every group within
//! its parity budget — a product of per-group polynomials evaluated by
//! integer convolution ([`analytic`]). [`simulate`] provides an
//! independent randomized cross-check of the same quantities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod layout;
pub mod simulate;

pub use analytic::{group_failure_probability, GroupSystem};
pub use layout::GroupLayout;
pub use tornado_sim::mirror::{mirrored_failure_probability, mirrored_profile};
