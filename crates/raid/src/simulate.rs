//! Randomized cross-check of the analytic RAID profiles.
//!
//! Mirrors the paper's validation methodology (§3: the sampled mirrored
//! profile was checked against Eq. 1 "to at least 9 significant digits"):
//! the same sampling machinery is pointed at grouped parity systems and
//! compared with the exact convolution counts.

use crate::analytic::GroupSystem;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tornado_sim::FailureProfile;

/// Estimates `P(fail | k)` for a grouped system by sampling `trials`
/// uniform `k`-subsets. Deterministic in `seed`.
pub fn sample_group_failure(system: &GroupSystem, k: usize, trials: u64, seed: u64) -> f64 {
    let n = system.layout.total_devices();
    assert!(k <= n);
    if k == 0 {
        return 0.0;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    let mut failures = 0u64;
    for _ in 0..trials {
        for i in 0..k {
            let j = rng.gen_range(i..n);
            perm.swap(i, j);
        }
        if system.pattern_fails(&perm[..k]) {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

/// Builds a sampled profile for the system (for comparing against
/// [`GroupSystem::profile`]).
pub fn sampled_profile(system: &GroupSystem, trials_per_k: u64, seed: u64) -> FailureProfile {
    let n = system.layout.total_devices();
    let mut p = FailureProfile::new(n);
    for k in 1..=n {
        let frac = sample_group_failure(system, k, trials_per_k, seed ^ (k as u64) << 17);
        p.record(k, trials_per_k, (frac * trials_per_k as f64).round() as u64, false);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::GroupLayout;

    #[test]
    fn sampled_matches_analytic_for_raid5() {
        let sys = GroupSystem::raid5_paper();
        for k in [2usize, 4, 8] {
            let exact = sys.failure_probability(k);
            let trials = 60_000u64;
            let sampled = sample_group_failure(&sys, k, trials, 99);
            let sigma = (exact * (1.0 - exact) / trials as f64).sqrt().max(1e-4);
            assert!(
                (sampled - exact).abs() < 4.0 * sigma,
                "k = {k}: sampled {sampled} vs exact {exact}"
            );
        }
    }

    #[test]
    fn sampled_matches_analytic_for_raid6() {
        let sys = GroupSystem::raid6_paper();
        let exact = sys.failure_probability(6);
        let sampled = sample_group_failure(&sys, 6, 60_000, 7);
        let sigma = (exact * (1.0 - exact) / 60_000f64).sqrt().max(1e-4);
        assert!((sampled - exact).abs() < 4.0 * sigma);
    }

    #[test]
    fn degenerate_small_system_exact_agreement() {
        // 2 groups of 2, tolerance 1, k = 2: fails iff the pair is a group:
        // 2 / C(4,2) = 1/3. Sampling must converge to it.
        let sys = GroupSystem {
            layout: GroupLayout::new(2, 2),
            tolerance: 1,
        };
        let sampled = sample_group_failure(&sys, 2, 90_000, 3);
        assert!((sampled - 1.0 / 3.0).abs() < 0.01, "got {sampled}");
    }

    #[test]
    fn sampled_profile_rows_are_marked_sampled() {
        let sys = GroupSystem {
            layout: GroupLayout::new(2, 3),
            tolerance: 1,
        };
        let p = sampled_profile(&sys, 200, 5);
        assert!(!p.entry(2).exact);
        assert_eq!(p.entry(2).trials, 200);
        assert_eq!(p.entry(6).fraction(), 1.0, "losing everything fails");
    }
}
