//! Blocking clients for the archival block service.
//!
//! One [`Client`] wraps one TCP connection and runs one request at a time
//! (strictly request/response — the legacy wire discipline, byte-identical
//! to pre-correlation servers). A [`PipelinedClient`] keeps several
//! requests in flight on one connection: every request carries a
//! correlation id and responses are matched back as they arrive, in any
//! order. Error statuses come back as typed [`ClientError`] variants so
//! callers can distinguish backpressure ([`ClientError::Busy`] — back off
//! and retry) from real failures.

use crate::error::ClientError;
use crate::protocol::{read_frame, write_frame, FrameRead, Op, Request, Response, StatMeta};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to one server.
pub struct Client {
    stream: TcpStream,
    /// Deadline stamped on every request (milliseconds; 0 = none).
    deadline_ms: u32,
    /// Trace id stamped on every request (`None` = untraced header,
    /// byte-identical to the pre-trace wire format).
    trace_id: Option<u64>,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, deadline_ms: 0, trace_id: None })
    }

    /// Connects with a bounded connection attempt.
    pub fn connect_timeout(addr: &std::net::SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, deadline_ms: 0, trace_id: None })
    }

    /// Sets the per-request deadline stamped on subsequent requests
    /// (0 clears it).
    pub fn set_deadline_ms(&mut self, deadline_ms: u32) {
        self.deadline_ms = deadline_ms;
    }

    /// Sets the trace id stamped on subsequent requests (`None` clears
    /// it). Retries of the same logical operation should keep the same
    /// id so their spans land in one trace.
    pub fn set_trace_id(&mut self, trace_id: Option<u64>) {
        self.trace_id = trace_id;
    }

    /// Sends one request and reads its response frame.
    pub fn roundtrip(&mut self, op: Op) -> Result<Response, ClientError> {
        let req = Request { deadline_ms: self.deadline_ms, corr_id: None, trace_id: self.trace_id, op };
        write_frame(&mut self.stream, &req.encode())?;
        match read_frame(&mut self.stream)? {
            FrameRead::Frame(body) => Ok(Response::decode(&body)?),
            FrameRead::Eof => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ))),
            FrameRead::TimedOut => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "timed out waiting for response",
            ))),
        }
    }

    /// Stores `payload` under `name`, returning the assigned object id.
    pub fn put(&mut self, name: &str, payload: &[u8]) -> Result<u64, ClientError> {
        let resp = self.roundtrip(Op::Put { name: name.into(), payload: payload.to_vec() })?;
        match resp {
            Response::PutOk { id } => Ok(id),
            other => Err(error_from(other, "PUT")),
        }
    }

    /// Retrieves an object (transparently degraded under device failures).
    pub fn get(&mut self, id: u64) -> Result<Vec<u8>, ClientError> {
        match self.roundtrip(Op::Get { id })? {
            Response::GetOk { payload } => Ok(payload),
            other => Err(error_from(other, "GET")),
        }
    }

    /// Deletes an object.
    pub fn delete(&mut self, id: u64) -> Result<(), ClientError> {
        match self.roundtrip(Op::Delete { id })? {
            Response::Ok => Ok(()),
            other => Err(error_from(other, "DELETE")),
        }
    }

    /// Fetches object metadata.
    pub fn stat(&mut self, id: u64) -> Result<StatMeta, ClientError> {
        match self.roundtrip(Op::Stat { id })? {
            Response::StatOk { meta } => Ok(meta),
            other => Err(error_from(other, "STAT")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(Op::Ping)? {
            Response::Ok => Ok(()),
            other => Err(error_from(other, "PING")),
        }
    }

    /// Admin: fails a device (its contents are destroyed).
    pub fn fail_device(&mut self, device: u32) -> Result<(), ClientError> {
        match self.roundtrip(Op::FailDevice { device })? {
            Response::Ok => Ok(()),
            other => Err(error_from(other, "FAIL_DEVICE")),
        }
    }

    /// Admin: replaces a failed device with an empty one.
    pub fn revive_device(&mut self, device: u32) -> Result<(), ClientError> {
        match self.roundtrip(Op::ReviveDevice { device })? {
            Response::Ok => Ok(()),
            other => Err(error_from(other, "REVIVE_DEVICE")),
        }
    }

    /// Admin: fetches the server's `tornado-metrics-v1` snapshot as JSON.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(Op::Metrics)? {
            Response::MetricsOk { json } => Ok(json),
            other => Err(error_from(other, "METRICS")),
        }
    }

    /// Admin: fetches the server's `tornado-health-v1` durability
    /// document (live P(loss), risk margins, SLO burn rates) as JSON.
    pub fn health(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(Op::Health)? {
            Response::HealthOk { json } => Ok(json),
            other => Err(error_from(other, "HEALTH")),
        }
    }

    /// Admin: exports the server's retained trace spans as Chrome
    /// trace-event JSON (loadable in Perfetto).
    pub fn trace_export(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(Op::TraceExport)? {
            Response::TraceOk { json } => Ok(json),
            other => Err(error_from(other, "TRACE_EXPORT")),
        }
    }

    /// Admin: asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(Op::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(error_from(other, "SHUTDOWN")),
        }
    }
}

/// A pipelined connection: issue up to many requests before reading any
/// response, then match completions by correlation id.
///
/// Requires a server that understands the v2 request header (PR 10+);
/// older servers reject the flagged opcode byte loudly rather than
/// misparsing it. For old servers, use [`Client`].
pub struct PipelinedClient {
    stream: TcpStream,
    /// Deadline stamped on every request (milliseconds; 0 = none).
    deadline_ms: u32,
    /// Trace id stamped on every request (`None` = untraced).
    trace_id: Option<u64>,
    /// Next correlation id to assign (wraps; in-flight windows are far
    /// smaller than 2³²).
    next_corr: u32,
    /// Requests submitted and not yet received.
    inflight: usize,
}

impl PipelinedClient {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, deadline_ms: 0, trace_id: None, next_corr: 0, inflight: 0 })
    }

    /// Connects with a bounded connection attempt.
    pub fn connect_timeout(
        addr: &std::net::SocketAddr,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, deadline_ms: 0, trace_id: None, next_corr: 0, inflight: 0 })
    }

    /// Sets the per-request deadline stamped on subsequent requests
    /// (0 clears it).
    pub fn set_deadline_ms(&mut self, deadline_ms: u32) {
        self.deadline_ms = deadline_ms;
    }

    /// Sets the trace id stamped on subsequent requests.
    pub fn set_trace_id(&mut self, trace_id: Option<u64>) {
        self.trace_id = trace_id;
    }

    /// Requests submitted and not yet matched to a response.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Sends one request without waiting, returning the correlation id its
    /// response will carry.
    pub fn submit(&mut self, op: Op) -> Result<u32, ClientError> {
        let corr = self.next_corr;
        self.next_corr = self.next_corr.wrapping_add(1);
        let req = Request {
            deadline_ms: self.deadline_ms,
            corr_id: Some(corr),
            trace_id: self.trace_id,
            op,
        };
        write_frame(&mut self.stream, &req.encode())?;
        self.inflight += 1;
        Ok(corr)
    }

    /// Reads the next response frame — whichever in-flight request
    /// finished first — as `(correlation id, response)`.
    pub fn recv(&mut self) -> Result<(u32, Response), ClientError> {
        match read_frame(&mut self.stream)? {
            FrameRead::Frame(body) => {
                let (corr, resp) = Response::decode_corr(&body)?;
                let corr = corr.ok_or_else(|| {
                    ClientError::Unexpected(
                        "server answered a pipelined request without a correlation id".into(),
                    )
                })?;
                self.inflight = self.inflight.saturating_sub(1);
                Ok((corr, resp))
            }
            FrameRead::Eof => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection with requests in flight",
            ))),
            FrameRead::TimedOut => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "timed out waiting for a pipelined response",
            ))),
        }
    }

    /// Sends one request and waits for its specific response (correlation
    /// ids still matched, so stray completions from earlier fire-and-forget
    /// submits are surfaced as errors rather than misattributed).
    pub fn roundtrip(&mut self, op: Op) -> Result<Response, ClientError> {
        let want = self.submit(op)?;
        let (corr, resp) = self.recv()?;
        if corr != want {
            return Err(ClientError::Unexpected(format!(
                "response corr {corr} does not match request corr {want} \
                 (interleaved with unread completions?)"
            )));
        }
        Ok(resp)
    }
}

/// Maps an error-status response onto a typed [`ClientError`].
fn error_from(resp: Response, op: &str) -> ClientError {
    match resp {
        Response::Busy => ClientError::Busy,
        Response::NotFound { id } => ClientError::NotFound(id),
        Response::Unrecoverable { id, lost_blocks } => ClientError::Unrecoverable { id, lost_blocks },
        Response::BadRequest { message } => ClientError::BadRequest(message),
        Response::DeadlineExceeded => ClientError::DeadlineExceeded,
        Response::ShuttingDown => ClientError::ShuttingDown,
        Response::ServerError { message } => ClientError::Server(message),
        ok => ClientError::Unexpected(format!("{op} answered {}", ok.kind())),
    }
}
