//! Server configuration.

/// Tunables for one [`crate::server::serve`] instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7401`; port 0 picks an ephemeral
    /// port (read it back from [`crate::server::ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bounded queue depth: requests beyond this are rejected with BUSY
    /// (explicit backpressure, never unbounded buffering).
    pub queue_depth: usize,
    /// Server-side deadline applied when a request carries none
    /// (milliseconds; 0 disables).
    pub default_deadline_ms: u32,
    /// Per-connection read poll interval in milliseconds — how often an
    /// idle connection checks the shutdown flag. Also bounds how long
    /// shutdown waits on idle connections.
    pub poll_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            default_deadline_ms: 0,
            poll_interval_ms: 50,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_depth >= 1);
        assert!(c.poll_interval_ms >= 1);
        assert_eq!(c.default_deadline_ms, 0);
    }
}
