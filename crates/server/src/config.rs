//! Server configuration.

use tornado_obs::slo::{standard_windows, BurnWindow};

/// Tunables for the durability observatory ([`crate::health::HealthModel`]).
#[derive(Clone, Debug)]
pub struct HealthConfig {
    /// Master switch; off skips model construction entirely.
    pub enabled: bool,
    /// Annualized per-device failure rate fed into Eq. 2–3.
    pub afr: f64,
    /// Horizon the published P(loss) covers, in hours.
    pub horizon_hours: f64,
    /// Monte-Carlo trials per additional-loss count for the conditional
    /// profile rows that cannot be enumerated exactly.
    pub trials_per_k: u64,
    /// Seed for the conditional profile sampling (deterministic — an
    /// offline recomputation with the same parameters matches exactly).
    pub seed: u64,
    /// Deepest additional-loss count measured; further rows saturate
    /// through the profile's monotone completion.
    pub max_k: usize,
    /// Exhaustive-search cap for risk margins: margins up to this are
    /// exact, beyond it the model reports `margin > cap`.
    pub margin_cap: usize,
    /// Minimum milliseconds between model recomputations. Dirty state
    /// (a fail/replace/scrub transition) inside the window waits for the
    /// next tick; a HEALTH request forces at most one early recompute.
    pub min_recompute_ms: u64,
    /// Error budget for degraded reads: allowed fraction of GETs served
    /// through the decoder.
    pub degraded_read_objective: f64,
    /// Error budget for scrub corruption: allowed fraction of scrubbed
    /// stripes found damaged.
    pub corruption_objective: f64,
    /// Burn-rate window pairs shared by both SLOs (CI shrinks these to
    /// seconds so an alert can fire inside a smoke test).
    pub slo_windows: Vec<BurnWindow>,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            afr: 0.029, // the paper's Table 5 disk AFR
            horizon_hours: 24.0 * 365.0,
            trials_per_k: 2_000,
            seed: 0x7042_6F72_6E61_646F,
            max_k: 6,
            margin_cap: 2,
            min_recompute_ms: 2_000,
            degraded_read_objective: 0.05,
            corruption_objective: 0.01,
            slo_windows: standard_windows(),
        }
    }
}

/// Tunables for one [`crate::server::serve`] instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7401`; port 0 picks an ephemeral
    /// port (read it back from [`crate::server::ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bounded queue depth: requests beyond this are rejected with BUSY
    /// (explicit backpressure, never unbounded buffering).
    pub queue_depth: usize,
    /// Server-side deadline applied when a request carries none
    /// (milliseconds; 0 disables).
    pub default_deadline_ms: u32,
    /// Per-connection read poll interval in milliseconds — how often an
    /// idle connection checks the shutdown flag. Also bounds how long
    /// shutdown waits on idle connections.
    pub poll_interval_ms: u64,
    /// Trace sampling rate: record spans for 1 in N traces (keyed
    /// deterministically on the trace id). 0 disables tracing, 1 samples
    /// every request.
    pub trace_sample: u64,
    /// Maximum spans retained in the trace ring buffer (oldest dropped
    /// past this; the slowest root spans survive separately).
    pub trace_capacity: usize,
    /// How many of the slowest root spans to keep regardless of ring
    /// eviction.
    pub trace_slow_keep: usize,
    /// Emit a `server.slow_request` event (with the full span tree when
    /// the request was sampled) for any request slower than this many
    /// microseconds; 0 disables.
    pub slow_request_us: u64,
    /// Interval between time-series counter samples in milliseconds;
    /// 0 disables the sampler thread.
    pub timeseries_interval_ms: u64,
    /// Serve connections through the nonblocking event loop (epoll/poll
    /// readiness shards) instead of one thread per connection. Ignored on
    /// non-unix targets, which always use the threaded path.
    pub event_loop: bool,
    /// Event-loop shards (each one thread owning a slab of connections).
    pub shards: usize,
    /// Per-connection cap on pipelined (correlated) requests in flight;
    /// past it the shard stops extracting frames until completions free
    /// capacity. One-at-a-time clients are capped at 1 by the protocol's
    /// ordering rule regardless of this value.
    pub max_inflight_per_conn: usize,
    /// Durability-observatory settings (live P(loss), margins, SLOs).
    pub health: HealthConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            default_deadline_ms: 0,
            poll_interval_ms: 50,
            trace_sample: 0,
            trace_capacity: 4096,
            trace_slow_keep: 16,
            slow_request_us: 0,
            timeseries_interval_ms: 500,
            event_loop: true,
            shards: 2,
            max_inflight_per_conn: 64,
            health: HealthConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_depth >= 1);
        assert!(c.poll_interval_ms >= 1);
        assert_eq!(c.default_deadline_ms, 0);
        assert_eq!(c.trace_sample, 0, "tracing is opt-in");
        assert!(c.trace_capacity >= 1);
        assert!(c.timeseries_interval_ms >= 1);
        assert!(c.event_loop, "the event loop is the default serving path");
        assert!(c.shards >= 1);
        assert!(c.max_inflight_per_conn >= 1);
        let h = &c.health;
        assert!(h.enabled, "the observatory is on by default");
        assert!(h.afr > 0.0 && h.afr < 1.0);
        assert!(h.horizon_hours > 0.0);
        assert!(h.trials_per_k >= 1 && h.max_k >= 1);
        assert!(h.margin_cap >= 1);
        assert!(h.degraded_read_objective > 0.0 && h.corruption_objective > 0.0);
        assert_eq!(h.slo_windows.len(), 2, "fast + slow pairs");
    }
}
