//! Server configuration.

/// Tunables for one [`crate::server::serve`] instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7401`; port 0 picks an ephemeral
    /// port (read it back from [`crate::server::ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bounded queue depth: requests beyond this are rejected with BUSY
    /// (explicit backpressure, never unbounded buffering).
    pub queue_depth: usize,
    /// Server-side deadline applied when a request carries none
    /// (milliseconds; 0 disables).
    pub default_deadline_ms: u32,
    /// Per-connection read poll interval in milliseconds — how often an
    /// idle connection checks the shutdown flag. Also bounds how long
    /// shutdown waits on idle connections.
    pub poll_interval_ms: u64,
    /// Trace sampling rate: record spans for 1 in N traces (keyed
    /// deterministically on the trace id). 0 disables tracing, 1 samples
    /// every request.
    pub trace_sample: u64,
    /// Maximum spans retained in the trace ring buffer (oldest dropped
    /// past this; the slowest root spans survive separately).
    pub trace_capacity: usize,
    /// How many of the slowest root spans to keep regardless of ring
    /// eviction.
    pub trace_slow_keep: usize,
    /// Emit a `server.slow_request` event (with the full span tree when
    /// the request was sampled) for any request slower than this many
    /// microseconds; 0 disables.
    pub slow_request_us: u64,
    /// Interval between time-series counter samples in milliseconds;
    /// 0 disables the sampler thread.
    pub timeseries_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            default_deadline_ms: 0,
            poll_interval_ms: 50,
            trace_sample: 0,
            trace_capacity: 4096,
            trace_slow_keep: 16,
            slow_request_us: 0,
            timeseries_interval_ms: 500,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_depth >= 1);
        assert!(c.poll_interval_ms >= 1);
        assert_eq!(c.default_deadline_ms, 0);
        assert_eq!(c.trace_sample, 0, "tracing is opt-in");
        assert!(c.trace_capacity >= 1);
        assert!(c.timeseries_interval_ms >= 1);
    }
}
