//! Request execution: the worker pool behind the bounded queue.
//!
//! Connection handlers decode frames and [`Engine::submit`] jobs; a fixed
//! pool of workers pops them, enforces per-request deadlines, executes
//! against the shared [`ArchivalStore`], and sends the [`Response`] back
//! through the job's reply channel. The queue is the only buffer between
//! accept and execute, so a full queue is an immediate BUSY — the system
//! sheds load instead of hiding it in growing latency.

use crate::obs::ServerObserver;
use crate::protocol::{Op, Request, Response, StatMeta};
use crate::queue::{BoundedQueue, PushError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;
use tornado_obs::trace::{to_chrome_trace, SpanRecord, Tracer};
use tornado_obs::Json;
use tornado_store::{ArchivalStore, StoreError};

/// Trace context for one sampled request, created by the connection
/// handler and carried through the queue so worker-side spans attach to
/// the same tree.
#[derive(Clone, Copy, Debug)]
pub(crate) struct JobTrace {
    /// The request's trace id.
    pub trace_id: u64,
    /// Span id reserved for the root `request` span (recorded by the
    /// handler after the reply; children reference it immediately).
    pub root_span: u64,
    /// Tracer-timebase instant the job was submitted (start of the
    /// queue-wait window).
    pub accepted_us: u64,
}

/// Where a finished response goes: back to a blocking connection-handler
/// thread (thread-per-connection path) or into an event-loop shard's
/// completion mailbox (matched to its connection by slot/generation, and
/// to its request by correlation id).
pub(crate) enum Reply {
    /// A blocking handler waiting on an mpsc channel.
    Channel(mpsc::Sender<Response>),
    /// An event-loop shard: push into its mailbox and kick its waker.
    #[cfg(unix)]
    Shard {
        /// The owning shard's completion mailbox.
        mailbox: Arc<crate::shard::ShardMailbox>,
        /// Connection slot within the shard.
        slot: usize,
        /// Slot generation at dispatch time (stale completions for a
        /// reused slot are dropped by the shard).
        gen: u64,
        /// Correlation id from the request header (None for one-at-a-time
        /// clients — the shard holds frame extraction until it answers).
        corr: Option<u32>,
    },
}

impl Reply {
    /// Delivers the response. A dead receiver (hung-up connection) is not
    /// an error; the work itself already happened.
    pub fn send(self, response: Response) {
        match self {
            Reply::Channel(tx) => {
                let _ = tx.send(response);
            }
            #[cfg(unix)]
            Reply::Shard { mailbox, slot, gen, corr } => {
                mailbox.complete(slot, gen, corr, response);
            }
        }
    }
}

/// One queued request plus everything needed to answer it.
pub(crate) struct Job {
    /// The decoded request.
    pub request: Request,
    /// Where the answer goes.
    pub reply: Reply,
    /// When the server accepted the request (queue-wait measurement).
    pub accepted_at: Instant,
    /// Absolute deadline, if the request (or server default) set one.
    pub deadline: Option<Instant>,
    /// Trace context when this request is sampled.
    pub trace: Option<JobTrace>,
}

/// The worker pool and its bounded queue.
pub(crate) struct Engine {
    queue: Arc<BoundedQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    obs: Arc<ServerObserver>,
}

impl Engine {
    /// Spawns `workers` threads draining a queue of depth `queue_depth`.
    pub fn start(
        store: Arc<ArchivalStore>,
        obs: Arc<ServerObserver>,
        started: Instant,
        workers: usize,
        queue_depth: usize,
    ) -> Self {
        let queue = Arc::new(BoundedQueue::new(queue_depth));
        let handles = (0..workers.max(1))
            .map(|worker| {
                let queue = Arc::clone(&queue);
                let store = Arc::clone(&store);
                let obs = Arc::clone(&obs);
                thread::Builder::new()
                    .name(format!("tornado-worker-{worker}"))
                    .spawn(move || worker_loop(&queue, &store, &obs, started))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { queue, workers: handles, obs }
    }

    /// Admits a job or answers with backpressure: `Busy` when the queue is
    /// at depth, `ShuttingDown` once draining has begun.
    pub fn submit(&self, job: Job) -> Result<(), Response> {
        let kind = job.request.op.kind();
        match self.queue.try_push(job) {
            Ok(depth) => {
                self.obs.count_op(kind);
                self.obs.record_queue_depth(depth);
                Ok(())
            }
            Err(PushError::Busy(_)) => {
                self.obs.busy_rejected.inc();
                self.obs.events.emit(
                    "server.busy",
                    &[("op", Json::Str(kind.into()))],
                );
                Err(Response::Busy)
            }
            Err(PushError::Closed(_)) => Err(Response::ShuttingDown),
        }
    }

    /// Closes the queue and joins every worker once queued jobs drain.
    pub fn shutdown(self) {
        self.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    queue: &BoundedQueue<Job>,
    store: &ArchivalStore,
    obs: &ServerObserver,
    started: Instant,
) {
    static REQ_SEQ: AtomicU64 = AtomicU64::new(0);
    while let Some(job) = queue.pop() {
        obs.record_queue_depth(queue.len());
        let picked_up = Instant::now();
        let wait_us = picked_up.duration_since(job.accepted_at).as_micros() as u64;
        obs.queue_wait_us.record(wait_us);

        let tracer = &obs.tracer;
        if let Some(tr) = &job.trace {
            let picked_up_us = tracer.now_us();
            tracer.record(SpanRecord {
                trace_id: tr.trace_id,
                span_id: tracer.next_span_id(),
                parent_id: Some(tr.root_span),
                name: "queue.wait",
                start_us: tr.accepted_us,
                dur_us: picked_up_us.saturating_sub(tr.accepted_us),
                fields: vec![("queue_depth", Json::U64(queue.len() as u64))],
            });
        }

        let expired = job.deadline.is_some_and(|d| picked_up > d);
        if let Some(tr) = &job.trace {
            let check_start = tracer.now_us();
            tracer.record(SpanRecord {
                trace_id: tr.trace_id,
                span_id: tracer.next_span_id(),
                parent_id: Some(tr.root_span),
                name: "deadline.check",
                start_us: check_start,
                dur_us: tracer.now_us().saturating_sub(check_start),
                fields: vec![("expired", Json::Bool(expired))],
            });
        }
        let response = if expired {
            obs.deadline_exceeded.inc();
            Response::DeadlineExceeded
        } else {
            let exec_ctx = job.trace.as_ref().map(|tr| {
                let span_id = tracer.next_span_id();
                ExecTrace {
                    tracer,
                    trace_id: tr.trace_id,
                    span_id,
                    start_us: tracer.now_us(),
                }
            });
            let response = execute(&job.request.op, store, obs, started, exec_ctx.as_ref());
            if let Some(ctx) = exec_ctx {
                let end_us = ctx.tracer.now_us();
                ctx.tracer.record(SpanRecord {
                    trace_id: ctx.trace_id,
                    span_id: ctx.span_id,
                    parent_id: Some(job.trace.as_ref().unwrap().root_span),
                    name: "execute",
                    start_us: ctx.start_us,
                    dur_us: end_us.saturating_sub(ctx.start_us),
                    fields: vec![
                        ("op", Json::Str(job.request.op.kind().into())),
                        ("status", Json::Str(response.kind().into())),
                    ],
                });
            }
            response
        };

        let service_us = picked_up.elapsed().as_micros() as u64;
        match job.request.op.kind() {
            "put" => obs.put_us.record(service_us),
            "get" => obs.get_us.record(service_us),
            _ => obs.other_us.record(service_us),
        }
        if obs.events.is_enabled() {
            obs.events.emit(
                "server.request",
                &[
                    ("seq", Json::U64(REQ_SEQ.fetch_add(1, Ordering::Relaxed))),
                    ("op", Json::Str(job.request.op.kind().into())),
                    ("status", Json::Str(response.kind().into())),
                    ("queue_wait_us", Json::U64(wait_us)),
                    ("service_us", Json::U64(service_us)),
                ],
            );
        }
        job.reply.send(response);
    }
}

/// Trace context for spans recorded inside [`execute`]: store-call child
/// spans hang off `span_id` (the `execute` span, recorded by the caller).
pub(crate) struct ExecTrace<'a> {
    tracer: &'a Tracer,
    trace_id: u64,
    span_id: u64,
    start_us: u64,
}

impl ExecTrace<'_> {
    /// Records a child span of the `execute` span over `[start_us, now]`,
    /// clamped into the execute window.
    fn child(
        &self,
        name: &'static str,
        start_us: u64,
        dur_us: u64,
        fields: Vec<(&'static str, Json)>,
    ) -> u64 {
        let span_id = self.tracer.next_span_id();
        let end = self.tracer.now_us().max(start_us);
        self.tracer.record(
            SpanRecord {
                trace_id: self.trace_id,
                span_id,
                parent_id: Some(self.span_id),
                name,
                start_us,
                dur_us,
                fields,
            }
            .clamped_into(self.start_us, end),
        );
        span_id
    }
}

/// A recovery whose peeling schedule chained this deep is "expensive":
/// deep chains mean many sequential decode dependencies, the slow tail of
/// degraded reads.
const EXPENSIVE_RECOVERY_DEPTH: u64 = 3;

/// A recovery that pulled this many repair-class bytes (check blocks) is
/// "expensive" regardless of depth.
const EXPENSIVE_RECOVERY_BYTES: u64 = 1 << 20;

/// Runs one operation against the store and maps the result onto the wire.
fn execute(
    op: &Op,
    store: &ArchivalStore,
    obs: &ServerObserver,
    started: Instant,
    trace: Option<&ExecTrace<'_>>,
) -> Response {
    match op {
        Op::Ping => Response::Ok,
        Op::Put { name, payload } => {
            let start_us = trace.map(|t| t.tracer.now_us()).unwrap_or_default();
            let result = store.put(name, payload);
            if let Some(t) = trace {
                t.child(
                    "store.put",
                    start_us,
                    t.tracer.now_us().saturating_sub(start_us),
                    vec![("bytes", Json::U64(payload.len() as u64))],
                );
            }
            match result {
                Ok(id) => {
                    obs.bytes_in.add(payload.len() as u64);
                    Response::PutOk { id }
                }
                Err(e) => error_response(e, obs),
            }
        }
        Op::Get { id } => {
            let start_us = trace.map(|t| t.tracer.now_us()).unwrap_or_default();
            let result = store.get_detailed(*id);
            if let Some(t) = trace {
                let end_us = t.tracer.now_us();
                let get_span = t.child(
                    "store.get",
                    start_us,
                    end_us.saturating_sub(start_us),
                    vec![("id", Json::U64(*id))],
                );
                if let Ok((_, stats)) = &result {
                    record_get_phases(t, get_span, start_us, end_us, stats);
                }
            }
            match result {
                Ok((payload, stats)) => {
                    obs.replans.add(stats.replans as u64);
                    obs.get_repair_bytes.add(stats.repair_bytes_read);
                    obs.get_devices_contacted.add(stats.cost.devices_contacted);
                    if stats.degraded() {
                        obs.degraded_reads.inc();
                        obs.blocks_recovered.add(stats.blocks_recovered as u64);
                        // An expensive recovery (deep schedule or lots of
                        // repair traffic) is worth an event even when the
                        // request was not trace-sampled.
                        if stats.cost.recovery_depth >= EXPENSIVE_RECOVERY_DEPTH
                            || stats.repair_bytes_read >= EXPENSIVE_RECOVERY_BYTES
                        {
                            obs.events.emit(
                                "expensive_recovery",
                                &[
                                    ("id", Json::U64(*id)),
                                    ("bytes_read", Json::U64(stats.cost.bytes_read)),
                                    ("repair_bytes_read", Json::U64(stats.repair_bytes_read)),
                                    (
                                        "devices_contacted",
                                        Json::U64(stats.cost.devices_contacted),
                                    ),
                                    ("recovery_depth", Json::U64(stats.cost.recovery_depth)),
                                    ("replans", Json::U64(stats.replans as u64)),
                                ],
                            );
                        }
                    }
                    obs.bytes_out.add(payload.len() as u64);
                    Response::GetOk { payload }
                }
                Err(e) => error_response(e, obs),
            }
        }
        Op::Delete { id } => match store.delete(*id) {
            Ok(()) => Response::Ok,
            Err(e) => error_response(e, obs),
        },
        Op::Stat { id } => match store.meta(*id) {
            Some(meta) => Response::StatOk {
                meta: StatMeta {
                    id: meta.id,
                    name: meta.name,
                    size: meta.size as u64,
                    block_len: meta.block_len as u64,
                    rotation: meta.rotation as u32,
                },
            },
            None => {
                obs.not_found.inc();
                Response::NotFound { id: *id }
            }
        },
        Op::FailDevice { device } => match store.fail_device(*device as usize) {
            Ok(()) => {
                obs.store_obs.record_device_health(store);
                obs.events.emit("server.fail_device", &[("device", Json::U64(*device as u64))]);
                Response::Ok
            }
            Err(e) => error_response(e, obs),
        },
        Op::ReviveDevice { device } => match store.replace_device(*device as usize) {
            Ok(()) => {
                obs.store_obs.record_device_health(store);
                obs.events.emit("server.revive_device", &[("device", Json::U64(*device as u64))]);
                Response::Ok
            }
            Err(e) => error_response(e, obs),
        },
        Op::Metrics => {
            let elapsed_ms = started.elapsed().as_millis() as u64;
            Response::MetricsOk { json: obs.snapshot(store, elapsed_ms).to_pretty() }
        }
        Op::Health => match obs.health.get() {
            Some(model) => {
                let start_us = trace.map(|t| t.tracer.now_us()).unwrap_or_default();
                let before = model.recomputes.get();
                let now_ms = started.elapsed().as_millis() as u64;
                let doc = model.document(store, obs, now_ms);
                if let Some(t) = trace {
                    t.child(
                        "health.document",
                        start_us,
                        t.tracer.now_us().saturating_sub(start_us),
                        vec![("recomputed", Json::Bool(model.recomputes.get() > before))],
                    );
                }
                Response::HealthOk { json: doc.to_pretty() }
            }
            None => Response::BadRequest {
                message: "health observatory disabled on this server".into(),
            },
        },
        Op::TraceExport => Response::TraceOk {
            json: to_chrome_trace(&obs.tracer.spans()).to_pretty(),
        },
        // The connection layer intercepts SHUTDOWN before queueing; answer
        // OK if one slips through (e.g. submitted via the engine directly).
        Op::Shutdown => Response::Ok,
    }
}

/// Fabricates the sequential plan → fetch → decode child spans of a
/// `store.get` from the phase durations the store measured. Spans are laid
/// out back-to-back from the store-call start and clamped into the call
/// window, so they always nest. `decode.recover` is only recorded when the
/// decoder actually reconstructed blocks — its presence IS the
/// degraded-read signal in a trace.
fn record_get_phases(
    t: &ExecTrace<'_>,
    get_span: u64,
    start_us: u64,
    end_us: u64,
    stats: &tornado_store::GetStats,
) {
    let mut cursor = start_us;
    let mut phase = |name: &'static str, dur_us: u64, fields: Vec<(&'static str, Json)>| {
        let rec = SpanRecord {
            trace_id: t.trace_id,
            span_id: t.tracer.next_span_id(),
            parent_id: Some(get_span),
            name,
            start_us: cursor,
            dur_us,
            fields,
        }
        .clamped_into(start_us, end_us);
        cursor = rec.end_us();
        t.tracer.record(rec);
    };
    phase(
        "retrieval.plan",
        stats.plan_us,
        vec![("replans", Json::U64(stats.replans as u64))],
    );
    phase(
        "store.fetch",
        stats.fetch_us,
        vec![
            ("blocks_fetched", Json::U64(stats.blocks_fetched as u64)),
            ("bytes_read", Json::U64(stats.cost.bytes_read)),
            ("devices_contacted", Json::U64(stats.cost.devices_contacted)),
        ],
    );
    if stats.blocks_recovered > 0 {
        phase(
            "decode.recover",
            stats.decode_us,
            vec![
                ("blocks_recovered", Json::U64(stats.blocks_recovered as u64)),
                ("replans", Json::U64(stats.replans as u64)),
                ("repair_bytes_read", Json::U64(stats.repair_bytes_read)),
                ("recovery_depth", Json::U64(stats.cost.recovery_depth)),
            ],
        );
    }
}

fn error_response(e: StoreError, obs: &ServerObserver) -> Response {
    match e {
        StoreError::UnknownObject { id } => {
            obs.not_found.inc();
            Response::NotFound { id }
        }
        StoreError::Unrecoverable { id, lost_blocks } => {
            obs.unrecoverable.inc();
            Response::Unrecoverable { id, lost_blocks: lost_blocks.len() as u32 }
        }
        StoreError::NoSuchDevice { device, pool_size } => {
            obs.bad_requests.inc();
            Response::BadRequest {
                message: format!("device {device} out of range (pool size {pool_size})"),
            }
        }
        other => {
            obs.errors.inc();
            Response::ServerError { message: other.to_string() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_core::tornado_graph_1;
    use tornado_obs::trace::validate_chrome_trace;

    fn engine_over(store: Arc<ArchivalStore>, workers: usize, depth: usize) -> Engine {
        Engine::start(store, ServerObserver::shared(), Instant::now(), workers, depth)
    }

    fn roundtrip(engine: &Engine, op: Op) -> Response {
        let (tx, rx) = mpsc::channel();
        engine
            .submit(Job {
                request: Request { deadline_ms: 0, corr_id: None, trace_id: None, op },
                reply: Reply::Channel(tx),
                accepted_at: Instant::now(),
                deadline: None,
                trace: None,
            })
            .expect("queue has room");
        rx.recv().expect("worker replies")
    }

    #[test]
    fn put_get_delete_stat_round_trip_through_workers() {
        let store = Arc::new(ArchivalStore::new(tornado_graph_1()));
        let engine = engine_over(Arc::clone(&store), 2, 8);

        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let id = match roundtrip(&engine, Op::Put { name: "a".into(), payload: payload.clone() }) {
            Response::PutOk { id } => id,
            other => panic!("{other:?}"),
        };
        match roundtrip(&engine, Op::Get { id }) {
            Response::GetOk { payload: got } => assert_eq!(got, payload),
            other => panic!("{other:?}"),
        }
        match roundtrip(&engine, Op::Stat { id }) {
            Response::StatOk { meta } => {
                assert_eq!(meta.id, id);
                assert_eq!(meta.size, payload.len() as u64);
                assert_eq!(meta.name, "a");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(roundtrip(&engine, Op::Delete { id }), Response::Ok);
        assert_eq!(roundtrip(&engine, Op::Get { id }), Response::NotFound { id });
        engine.shutdown();
    }

    #[test]
    fn expired_deadline_is_rejected_without_executing() {
        let store = Arc::new(ArchivalStore::new(tornado_graph_1()));
        let engine = engine_over(Arc::clone(&store), 1, 8);
        let (tx, rx) = mpsc::channel();
        engine
            .submit(Job {
                request: Request {
                    deadline_ms: 1,
                    corr_id: None,
                    trace_id: None,
                    op: Op::Put { name: "late".into(), payload: vec![1; 64] },
                },
                reply: Reply::Channel(tx),
                accepted_at: Instant::now() - std::time::Duration::from_millis(50),
                deadline: Some(Instant::now() - std::time::Duration::from_millis(10)),
                trace: None,
            })
            .unwrap();
        assert_eq!(rx.recv().unwrap(), Response::DeadlineExceeded);
        assert!(store.list().is_empty(), "expired request must not execute");
        engine.shutdown();
    }

    #[test]
    fn degraded_get_is_counted_and_correct() {
        let store = Arc::new(ArchivalStore::new(tornado_graph_1()));
        let obs = ServerObserver::shared();
        let engine = Engine::start(Arc::clone(&store), Arc::clone(&obs), Instant::now(), 2, 8);

        let payload: Vec<u8> = (0..9000u32).map(|i| (i * 7 % 256) as u8).collect();
        let id = match roundtrip(&engine, Op::Put { name: "d".into(), payload: payload.clone() }) {
            Response::PutOk { id } => id,
            other => panic!("{other:?}"),
        };
        for device in [2, 17, 48, 95] {
            assert_eq!(roundtrip(&engine, Op::FailDevice { device }), Response::Ok);
        }
        match roundtrip(&engine, Op::Get { id }) {
            Response::GetOk { payload: got } => assert_eq!(got, payload),
            other => panic!("{other:?}"),
        }
        assert!(obs.degraded_reads.get() >= 1, "read through 4 failures is degraded");
        assert!(
            obs.get_repair_bytes.get() > 0,
            "a degraded GET reads check blocks, which are repair-class bytes"
        );
        assert!(obs.get_devices_contacted.get() > 0);
        match roundtrip(&engine, Op::Metrics) {
            Response::MetricsOk { json } => {
                let doc = tornado_obs::json::parse(&json).unwrap();
                tornado_obs::snapshot::validate(&doc).unwrap();
                let counters = doc.get("counters").unwrap();
                assert!(counters.get("server.get.degraded").unwrap().as_u64().unwrap() >= 1);
                assert!(
                    counters.get("server.get.repair_bytes").unwrap().as_u64().unwrap() > 0,
                    "repair-cost counters must surface through METRICS"
                );
                assert!(
                    counters
                        .get("server.get.devices_contacted")
                        .unwrap()
                        .as_u64()
                        .unwrap()
                        > 0
                );
                let gauges = doc.get("gauges").unwrap();
                assert_eq!(gauges.get("device.offline").unwrap().as_u64(), Some(4));
            }
            other => panic!("{other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn sampled_degraded_get_produces_a_nested_span_tree_with_decode_recover() {
        let store = Arc::new(ArchivalStore::new(tornado_graph_1()));
        let obs = Arc::new(ServerObserver::disabled().with_tracer(Tracer::new(1, 1024, 4)));
        let engine = Engine::start(Arc::clone(&store), Arc::clone(&obs), Instant::now(), 1, 8);

        let payload: Vec<u8> = (0..9000u32).map(|i| (i * 13 % 256) as u8).collect();
        let id = store.put("traced", &payload).unwrap();
        for device in [2, 17, 48, 95] {
            store.fail_device(device).unwrap();
        }

        // Submit a traced GET exactly as the connection handler would:
        // reserve the root span id up front, record the root after reply.
        let trace_id = 0xABCDu64;
        let root_span = obs.tracer.next_span_id();
        let accepted_us = obs.tracer.now_us();
        let (tx, rx) = mpsc::channel();
        engine
            .submit(Job {
                request: Request {
                    deadline_ms: 0,
                    corr_id: None,
                    trace_id: Some(trace_id),
                    op: Op::Get { id },
                },
                reply: Reply::Channel(tx),
                accepted_at: Instant::now(),
                deadline: None,
                trace: Some(JobTrace { trace_id, root_span, accepted_us }),
            })
            .unwrap();
        match rx.recv().unwrap() {
            Response::GetOk { payload: got } => assert_eq!(got, payload),
            other => panic!("{other:?}"),
        }
        obs.tracer.record(SpanRecord {
            trace_id,
            span_id: root_span,
            parent_id: None,
            name: "request",
            start_us: accepted_us,
            dur_us: obs.tracer.now_us().saturating_sub(accepted_us),
            fields: vec![("op", Json::Str("get".into()))],
        });

        let names: Vec<&str> = obs.tracer.spans_for(trace_id).iter().map(|s| s.name).collect();
        for want in [
            "request",
            "queue.wait",
            "deadline.check",
            "execute",
            "store.get",
            "retrieval.plan",
            "store.fetch",
            "decode.recover",
        ] {
            assert!(names.contains(&want), "missing span '{want}' in {names:?}");
        }

        // The TRACE_EXPORT op serves the same tree as valid, well-nested
        // Chrome trace JSON.
        match roundtrip(&engine, Op::TraceExport) {
            Response::TraceOk { json } => {
                let doc = tornado_obs::json::parse(&json).unwrap();
                let stats =
                    validate_chrome_trace(&doc, &["request", "store.get", "decode.recover"])
                        .unwrap();
                assert!(stats.events >= 8, "{stats:?}");
                assert_eq!(stats.roots, 1);
            }
            other => panic!("{other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn untraced_jobs_record_no_spans_even_with_tracing_enabled() {
        let store = Arc::new(ArchivalStore::new(tornado_graph_1()));
        let obs = Arc::new(ServerObserver::disabled().with_tracer(Tracer::new(1, 1024, 4)));
        let engine = Engine::start(Arc::clone(&store), Arc::clone(&obs), Instant::now(), 1, 8);
        assert_eq!(roundtrip(&engine, Op::Ping), Response::Ok);
        assert_eq!(obs.tracer.recorded(), 0, "no JobTrace → no spans");
        engine.shutdown();
    }
}
