//! Request execution: the worker pool behind the bounded queue.
//!
//! Connection handlers decode frames and [`Engine::submit`] jobs; a fixed
//! pool of workers pops them, enforces per-request deadlines, executes
//! against the shared [`ArchivalStore`], and sends the [`Response`] back
//! through the job's reply channel. The queue is the only buffer between
//! accept and execute, so a full queue is an immediate BUSY — the system
//! sheds load instead of hiding it in growing latency.

use crate::obs::ServerObserver;
use crate::protocol::{Op, Request, Response, StatMeta};
use crate::queue::{BoundedQueue, PushError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;
use tornado_obs::Json;
use tornado_store::{ArchivalStore, StoreError};

/// One queued request plus everything needed to answer it.
pub(crate) struct Job {
    /// The decoded request.
    pub request: Request,
    /// Where the connection handler waits for the answer.
    pub reply: mpsc::Sender<Response>,
    /// When the server accepted the request (queue-wait measurement).
    pub accepted_at: Instant,
    /// Absolute deadline, if the request (or server default) set one.
    pub deadline: Option<Instant>,
}

/// The worker pool and its bounded queue.
pub(crate) struct Engine {
    queue: Arc<BoundedQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    obs: Arc<ServerObserver>,
}

impl Engine {
    /// Spawns `workers` threads draining a queue of depth `queue_depth`.
    pub fn start(
        store: Arc<ArchivalStore>,
        obs: Arc<ServerObserver>,
        started: Instant,
        workers: usize,
        queue_depth: usize,
    ) -> Self {
        let queue = Arc::new(BoundedQueue::new(queue_depth));
        let handles = (0..workers.max(1))
            .map(|worker| {
                let queue = Arc::clone(&queue);
                let store = Arc::clone(&store);
                let obs = Arc::clone(&obs);
                thread::Builder::new()
                    .name(format!("tornado-worker-{worker}"))
                    .spawn(move || worker_loop(&queue, &store, &obs, started))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { queue, workers: handles, obs }
    }

    /// Admits a job or answers with backpressure: `Busy` when the queue is
    /// at depth, `ShuttingDown` once draining has begun.
    pub fn submit(&self, job: Job) -> Result<(), Response> {
        let kind = job.request.op.kind();
        match self.queue.try_push(job) {
            Ok(depth) => {
                self.obs.count_op(kind);
                self.obs.record_queue_depth(depth);
                Ok(())
            }
            Err(PushError::Busy(_)) => {
                self.obs.busy_rejected.inc();
                self.obs.events.emit(
                    "server.busy",
                    &[("op", Json::Str(kind.into()))],
                );
                Err(Response::Busy)
            }
            Err(PushError::Closed(_)) => Err(Response::ShuttingDown),
        }
    }

    /// Closes the queue and joins every worker once queued jobs drain.
    pub fn shutdown(self) {
        self.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    queue: &BoundedQueue<Job>,
    store: &ArchivalStore,
    obs: &ServerObserver,
    started: Instant,
) {
    static REQ_SEQ: AtomicU64 = AtomicU64::new(0);
    while let Some(job) = queue.pop() {
        obs.record_queue_depth(queue.len());
        let picked_up = Instant::now();
        let wait_us = picked_up.duration_since(job.accepted_at).as_micros() as u64;
        obs.queue_wait_us.record(wait_us);

        let response = if job.deadline.is_some_and(|d| picked_up > d) {
            obs.deadline_exceeded.inc();
            Response::DeadlineExceeded
        } else {
            execute(&job.request.op, store, obs, started)
        };

        let service_us = picked_up.elapsed().as_micros() as u64;
        match job.request.op.kind() {
            "put" => obs.put_us.record(service_us),
            "get" => obs.get_us.record(service_us),
            _ => obs.other_us.record(service_us),
        }
        if obs.events.is_enabled() {
            obs.events.emit(
                "server.request",
                &[
                    ("seq", Json::U64(REQ_SEQ.fetch_add(1, Ordering::Relaxed))),
                    ("op", Json::Str(job.request.op.kind().into())),
                    ("status", Json::Str(response.kind().into())),
                    ("queue_wait_us", Json::U64(wait_us)),
                    ("service_us", Json::U64(service_us)),
                ],
            );
        }
        // A dead reply channel means the connection hung up; drop the
        // response, the work itself (e.g. a PUT) already happened.
        let _ = job.reply.send(response);
    }
}

/// Runs one operation against the store and maps the result onto the wire.
fn execute(op: &Op, store: &ArchivalStore, obs: &ServerObserver, started: Instant) -> Response {
    match op {
        Op::Ping => Response::Ok,
        Op::Put { name, payload } => match store.put(name, payload) {
            Ok(id) => {
                obs.bytes_in.add(payload.len() as u64);
                Response::PutOk { id }
            }
            Err(e) => error_response(e, obs),
        },
        Op::Get { id } => match store.get_detailed(*id) {
            Ok((payload, stats)) => {
                if stats.degraded() {
                    obs.degraded_reads.inc();
                    obs.blocks_recovered.add(stats.blocks_recovered as u64);
                }
                obs.bytes_out.add(payload.len() as u64);
                Response::GetOk { payload }
            }
            Err(e) => error_response(e, obs),
        },
        Op::Delete { id } => match store.delete(*id) {
            Ok(()) => Response::Ok,
            Err(e) => error_response(e, obs),
        },
        Op::Stat { id } => match store.meta(*id) {
            Some(meta) => Response::StatOk {
                meta: StatMeta {
                    id: meta.id,
                    name: meta.name,
                    size: meta.size as u64,
                    block_len: meta.block_len as u64,
                    rotation: meta.rotation as u32,
                },
            },
            None => {
                obs.not_found.inc();
                Response::NotFound { id: *id }
            }
        },
        Op::FailDevice { device } => match store.fail_device(*device as usize) {
            Ok(()) => {
                obs.store_obs.record_device_health(store);
                obs.events.emit("server.fail_device", &[("device", Json::U64(*device as u64))]);
                Response::Ok
            }
            Err(e) => error_response(e, obs),
        },
        Op::ReviveDevice { device } => match store.replace_device(*device as usize) {
            Ok(()) => {
                obs.store_obs.record_device_health(store);
                obs.events.emit("server.revive_device", &[("device", Json::U64(*device as u64))]);
                Response::Ok
            }
            Err(e) => error_response(e, obs),
        },
        Op::Metrics => {
            let elapsed_ms = started.elapsed().as_millis() as u64;
            Response::MetricsOk { json: obs.snapshot(store, elapsed_ms).to_pretty() }
        }
        // The connection layer intercepts SHUTDOWN before queueing; answer
        // OK if one slips through (e.g. submitted via the engine directly).
        Op::Shutdown => Response::Ok,
    }
}

fn error_response(e: StoreError, obs: &ServerObserver) -> Response {
    match e {
        StoreError::UnknownObject { id } => {
            obs.not_found.inc();
            Response::NotFound { id }
        }
        StoreError::Unrecoverable { id, lost_blocks } => {
            obs.unrecoverable.inc();
            Response::Unrecoverable { id, lost_blocks: lost_blocks.len() as u32 }
        }
        StoreError::NoSuchDevice { device, pool_size } => {
            obs.bad_requests.inc();
            Response::BadRequest {
                message: format!("device {device} out of range (pool size {pool_size})"),
            }
        }
        other => {
            obs.errors.inc();
            Response::ServerError { message: other.to_string() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tornado_core::tornado_graph_1;

    fn engine_over(store: Arc<ArchivalStore>, workers: usize, depth: usize) -> Engine {
        Engine::start(store, ServerObserver::shared(), Instant::now(), workers, depth)
    }

    fn roundtrip(engine: &Engine, op: Op) -> Response {
        let (tx, rx) = mpsc::channel();
        engine
            .submit(Job {
                request: Request { deadline_ms: 0, op },
                reply: tx,
                accepted_at: Instant::now(),
                deadline: None,
            })
            .expect("queue has room");
        rx.recv().expect("worker replies")
    }

    #[test]
    fn put_get_delete_stat_round_trip_through_workers() {
        let store = Arc::new(ArchivalStore::new(tornado_graph_1()));
        let engine = engine_over(Arc::clone(&store), 2, 8);

        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let id = match roundtrip(&engine, Op::Put { name: "a".into(), payload: payload.clone() }) {
            Response::PutOk { id } => id,
            other => panic!("{other:?}"),
        };
        match roundtrip(&engine, Op::Get { id }) {
            Response::GetOk { payload: got } => assert_eq!(got, payload),
            other => panic!("{other:?}"),
        }
        match roundtrip(&engine, Op::Stat { id }) {
            Response::StatOk { meta } => {
                assert_eq!(meta.id, id);
                assert_eq!(meta.size, payload.len() as u64);
                assert_eq!(meta.name, "a");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(roundtrip(&engine, Op::Delete { id }), Response::Ok);
        assert_eq!(roundtrip(&engine, Op::Get { id }), Response::NotFound { id });
        engine.shutdown();
    }

    #[test]
    fn expired_deadline_is_rejected_without_executing() {
        let store = Arc::new(ArchivalStore::new(tornado_graph_1()));
        let engine = engine_over(Arc::clone(&store), 1, 8);
        let (tx, rx) = mpsc::channel();
        engine
            .submit(Job {
                request: Request {
                    deadline_ms: 1,
                    op: Op::Put { name: "late".into(), payload: vec![1; 64] },
                },
                reply: tx,
                accepted_at: Instant::now() - std::time::Duration::from_millis(50),
                deadline: Some(Instant::now() - std::time::Duration::from_millis(10)),
            })
            .unwrap();
        assert_eq!(rx.recv().unwrap(), Response::DeadlineExceeded);
        assert!(store.list().is_empty(), "expired request must not execute");
        engine.shutdown();
    }

    #[test]
    fn degraded_get_is_counted_and_correct() {
        let store = Arc::new(ArchivalStore::new(tornado_graph_1()));
        let obs = ServerObserver::shared();
        let engine = Engine::start(Arc::clone(&store), Arc::clone(&obs), Instant::now(), 2, 8);

        let payload: Vec<u8> = (0..9000u32).map(|i| (i * 7 % 256) as u8).collect();
        let id = match roundtrip(&engine, Op::Put { name: "d".into(), payload: payload.clone() }) {
            Response::PutOk { id } => id,
            other => panic!("{other:?}"),
        };
        for device in [2, 17, 48, 95] {
            assert_eq!(roundtrip(&engine, Op::FailDevice { device }), Response::Ok);
        }
        match roundtrip(&engine, Op::Get { id }) {
            Response::GetOk { payload: got } => assert_eq!(got, payload),
            other => panic!("{other:?}"),
        }
        assert!(obs.degraded_reads.get() >= 1, "read through 4 failures is degraded");
        match roundtrip(&engine, Op::Metrics) {
            Response::MetricsOk { json } => {
                let doc = tornado_obs::json::parse(&json).unwrap();
                tornado_obs::snapshot::validate(&doc).unwrap();
                let counters = doc.get("counters").unwrap();
                assert!(counters.get("server.get.degraded").unwrap().as_u64().unwrap() >= 1);
                let gauges = doc.get("gauges").unwrap();
                assert_eq!(gauges.get("device.offline").unwrap().as_u64(), Some(4));
            }
            other => panic!("{other:?}"),
        }
        engine.shutdown();
    }
}
