//! Client-side errors for the serving protocol.

use crate::protocol::WireError;
use std::fmt;
use std::io;

/// Everything a [`crate::Client`] call can fail with: transport problems,
/// malformed frames, or error statuses from the server mapped onto typed
/// variants.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The peer sent a frame this protocol version cannot parse.
    Wire(WireError),
    /// The server shed the request under backpressure — retry later.
    Busy,
    /// No such object.
    NotFound(u64),
    /// The object cannot be reconstructed (too many blocks lost).
    Unrecoverable {
        /// The requested object.
        id: u64,
        /// Data blocks lost for good.
        lost_blocks: u32,
    },
    /// The per-request deadline expired on the server.
    DeadlineExceeded,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The server rejected the request as malformed.
    BadRequest(String),
    /// The server failed internally.
    Server(String),
    /// The server answered with a status that does not fit the request
    /// (protocol confusion).
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Busy => write!(f, "server busy (queue full)"),
            ClientError::NotFound(id) => write!(f, "object {id} not found"),
            ClientError::Unrecoverable { id, lost_blocks } => {
                write!(f, "object {id} unrecoverable ({lost_blocks} data blocks lost)")
            }
            ClientError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ClientError::ShuttingDown => write!(f, "server shutting down"),
            ClientError::BadRequest(m) => write!(f, "bad request: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}
