//! The durability observatory: live §5.1 reliability for a running store.
//!
//! A [`HealthModel`] folds the serving layer's telemetry — which devices
//! are actually offline, scrub outcomes, degraded-read counts — into the
//! same Eq. 2–3 machinery the offline `analysis` crate uses, and
//! publishes the result as a validated `tornado-health-v1` document:
//!
//! * **conditional P(loss)** over a configurable horizon, with the
//!   failure profile seeded by the actually-missing nodes (an empty
//!   fleet-state reproduces the offline `system_failure_probability`
//!   bit for bit, same seed and trial count);
//! * **risk margins** per stripe rotation class — the minimum number of
//!   *additional* device losses until some stripe becomes unrecoverable —
//!   with a "stripes at margin ≤ 1" gauge for dashboards;
//! * an **MTTDL-style** restatement of the composed loss probability and
//!   an effective AFR from observed failure/replacement transitions;
//! * **SLO burn rates** for degraded reads and scrub corruption over
//!   multi-window pairs, with edge-triggered alert events through the
//!   server's [`EventSink`](tornado_obs::EventSink).
//!
//! Recomputation is event-driven: the model watches the store's pool
//! epoch and the scrub decode counter, recomputes only on transitions
//! (rate-limited by `min_recompute_ms`), and serves HEALTH requests from
//! the cached document otherwise. Steady-state cost is therefore a few
//! counter reads per sampler tick — the load bench asserts the overhead
//! stays under 2 %.

use crate::config::HealthConfig;
use crate::obs::ServerObserver;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;
use tornado_analysis::health::{
    conditional_failure_probability, horizon_failure_probability, mttdl_hours, risk_margin,
    ConditionalConfig, HOURS_PER_YEAR,
};
use tornado_obs::{Counter, Histogram, Json, SloTracker};
use tornado_store::ArchivalStore;

/// Schema tag of the health document.
pub const HEALTH_SCHEMA: &str = "tornado-health-v1";

/// At most this many distinct rotation classes get the full (depth
/// `margin_cap`) margin search per recompute; the rest fall back to the
/// cheap depth-1 probe and report a floor. Classes are prioritised by
/// stripe count, so the floor only ever applies to the long tail.
const MAX_DEEP_CLASSES: usize = 16;

/// Total decode attempts the deep margin search may spend per recompute
/// (the depth-`cap` search enumerates `sum_j C(n_rem, j)` patterns per
/// class, which grows quadratically in fleet size for cap 2). When the
/// budget runs out remaining classes keep their proven depth-1 floor —
/// a recompute stays milliseconds even on wide fleets with many distinct
/// rotation classes.
const DEEP_DECODE_BUDGET: u64 = 50_000;

struct State {
    doc: Option<Json>,
    last_recompute_ms: Option<u64>,
    last_pool_epoch: Option<u64>,
    last_scrub_decoded: u64,
    last_offline: usize,
    failures_seen: u64,
    replacements_seen: u64,
    slo_degraded: SloTracker,
    slo_corruption: SloTracker,
}

/// The live durability model. One per server; shared via
/// [`ServerObserver::health`](crate::obs::ServerObserver).
pub struct HealthModel {
    config: HealthConfig,
    /// Healthy-fleet baseline P(loss): the graph never changes, so this
    /// is computed once and reused by every recompute.
    healthy_p_loss: OnceLock<f64>,
    /// Model recomputations performed.
    pub recomputes: Counter,
    /// Wall-clock microseconds per recomputation.
    pub recompute_us: Histogram,
    /// Cumulative burn-rate alert firings (both SLOs, fire edges only).
    pub alerts: Counter,
    state: Mutex<State>,
}

impl HealthModel {
    /// Builds an idle model; nothing is computed until the first tick or
    /// HEALTH request.
    pub fn new(config: HealthConfig) -> Self {
        let state = State {
            doc: None,
            last_recompute_ms: None,
            last_pool_epoch: None,
            last_scrub_decoded: 0,
            last_offline: 0,
            failures_seen: 0,
            replacements_seen: 0,
            slo_degraded: SloTracker::new(
                "degraded_reads",
                config.degraded_read_objective,
                config.slo_windows.clone(),
            ),
            slo_corruption: SloTracker::new(
                "scrub_corruption",
                config.corruption_objective,
                config.slo_windows.clone(),
            ),
        };
        Self {
            config,
            healthy_p_loss: OnceLock::new(),
            recomputes: Counter::new(),
            recompute_us: Histogram::new(),
            alerts: Counter::new(),
            state: Mutex::new(state),
        }
    }

    /// The model's configuration (CLI surfaces echo parameters from it).
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    fn conditional_config(&self) -> ConditionalConfig {
        ConditionalConfig {
            trials_per_k: self.config.trials_per_k,
            seed: self.config.seed,
            max_k: self.config.max_k,
            ..ConditionalConfig::default()
        }
    }

    /// Periodic drive, called from the server's sampler thread: feeds the
    /// SLO trackers, emits alert transitions, counts fleet transitions,
    /// and recomputes the model if it is dirty and the rate limit allows.
    /// Steady-state (no transitions) this is a handful of counter reads.
    pub fn tick(&self, store: &ArchivalStore, obs: &ServerObserver, now_ms: u64) {
        let mut st = self.state.lock().unwrap();
        let offline = store.offline_devices().len();
        if offline > st.last_offline {
            st.failures_seen += (offline - st.last_offline) as u64;
        } else {
            st.replacements_seen += (st.last_offline - offline) as u64;
        }
        st.last_offline = offline;

        let decoded = obs.store_obs.stripes_decoded.get();
        let checked = obs.store_obs.stripes_verified.get() + decoded;
        st.slo_degraded.record(now_ms, obs.degraded_reads.get(), obs.gets.get());
        st.slo_corruption.record(now_ms, decoded, checked);
        let mut transitions = st.slo_degraded.evaluate(now_ms);
        transitions.extend(st.slo_corruption.evaluate(now_ms));
        for a in &transitions {
            if a.firing {
                self.alerts.inc();
            }
            obs.events.emit(
                "slo.burn_rate",
                &[
                    ("slo", Json::Str(a.slo.clone())),
                    ("window", Json::Str(a.window.clone())),
                    ("firing", Json::Bool(a.firing)),
                    ("burn_short", Json::F64(a.burn_short)),
                    ("burn_long", Json::F64(a.burn_long)),
                    ("threshold", Json::F64(a.threshold)),
                ],
            );
        }

        let due = st
            .last_recompute_ms
            .is_none_or(|t| now_ms.saturating_sub(t) >= self.config.min_recompute_ms);
        // Periodic slow refresh keeps stripe counts from going stale on a
        // store that only ever ingests (no failure, no scrub find).
        let stale = st
            .last_recompute_ms
            .is_some_and(|t| now_ms.saturating_sub(t) >= 10 * self.config.min_recompute_ms.max(1));
        if due && (st.doc.is_none() || self.dirty(&st, store, obs) || stale) {
            self.recompute(&mut st, store, obs, now_ms);
        }
    }

    /// The current document, recomputing first if the fleet has changed
    /// since the cached one (a HEALTH request never reports an erasure
    /// pattern the store is no longer in).
    pub fn document(&self, store: &ArchivalStore, obs: &ServerObserver, now_ms: u64) -> Json {
        let mut st = self.state.lock().unwrap();
        if st.doc.is_none() || self.dirty(&st, store, obs) {
            self.recompute(&mut st, store, obs, now_ms);
        }
        st.doc.clone().expect("recompute always installs a document")
    }

    /// The cached document, if any recompute has happened (no store
    /// access, no recompute — the metrics snapshot path uses this).
    pub fn cached(&self) -> Option<Json> {
        self.state.lock().unwrap().doc.clone()
    }

    fn dirty(&self, st: &State, store: &ArchivalStore, obs: &ServerObserver) -> bool {
        st.last_pool_epoch != Some(store.pool_epoch())
            || st.last_scrub_decoded != obs.store_obs.stripes_decoded.get()
    }

    fn recompute(&self, st: &mut State, store: &ArchivalStore, obs: &ServerObserver, now_ms: u64) {
        let t0 = Instant::now();
        let ccfg = self.conditional_config();
        let graph = store.graph();
        let n = store.num_devices();
        let offline = store.offline_devices();
        let p_device = horizon_failure_probability(self.config.afr, self.config.horizon_hours);
        let healthy = *self
            .healthy_p_loss
            .get_or_init(|| conditional_failure_probability(graph, &[], p_device, &ccfg));
        // Fleet-level estimate: the identity rotation class (node index ==
        // device index). The full per-class picture is in `margins`.
        let p_loss = if offline.is_empty() {
            healthy
        } else {
            conditional_failure_probability(graph, &offline, p_device, &ccfg)
        };

        // Rotation classes: stripes whose offline *nodes* coincide share
        // one margin computation. Healthy fleets collapse to one class.
        let metas = store.list();
        let mut classes: BTreeMap<Vec<usize>, u64> = BTreeMap::new();
        for meta in &metas {
            let rot = meta.rotation % n;
            let mut nodes: Vec<usize> = offline.iter().map(|&d| (d + n - rot) % n).collect();
            nodes.sort_unstable();
            *classes.entry(nodes).or_insert(0) += 1;
        }
        if classes.is_empty() {
            classes.insert(offline.clone(), 0);
        }
        let mut ranked: Vec<(Vec<usize>, u64)> = classes.into_iter().collect();
        ranked.sort_by_key(|&(_, count)| std::cmp::Reverse(count));

        let cap = self.config.margin_cap;
        let mut rows = Vec::new();
        let mut min_margin = usize::MAX;
        let mut min_exact = false;
        let mut stripes_total = 0u64;
        let mut stripes_at_risk = 0u64;
        let mut deep_searched = 0usize;
        let mut deep_budget = DEEP_DECODE_BUDGET;
        for (missing, stripes) in &ranked {
            let shallow = risk_margin(graph, missing, 1);
            let deep_cost = deep_search_decodes(graph.num_nodes() - missing.len(), cap);
            let (margin, exact) = if shallow <= 1 {
                (shallow, true)
            } else if cap <= 1 {
                (shallow, false)
            } else if deep_searched < MAX_DEEP_CLASSES && deep_cost <= deep_budget {
                deep_searched += 1;
                deep_budget -= deep_cost;
                let deep = risk_margin(graph, missing, cap);
                (deep, deep <= cap)
            } else {
                (2, false) // floor: proven > 1, search budget spent
            };
            stripes_total += stripes;
            if margin <= 1 {
                stripes_at_risk += stripes;
            }
            match margin.cmp(&min_margin) {
                std::cmp::Ordering::Less => {
                    min_margin = margin;
                    min_exact = exact;
                }
                std::cmp::Ordering::Equal => min_exact |= exact,
                std::cmp::Ordering::Greater => {}
            }
            if rows.len() < 8 {
                rows.push(Json::Obj(vec![
                    (
                        "missing_nodes".into(),
                        Json::Arr(missing.iter().map(|&d| Json::U64(d as u64)).collect()),
                    ),
                    ("stripes".into(), Json::U64(*stripes)),
                    ("margin".into(), Json::U64(margin as u64)),
                    ("exact".into(), Json::Bool(exact)),
                ]));
            }
        }

        let decoded = obs.store_obs.stripes_decoded.get();
        let checked = obs.store_obs.stripes_verified.get() + decoded;
        let elapsed_hours = now_ms as f64 / 3_600_000.0;
        let device_hours = n as f64 * elapsed_hours;
        let effective_afr = if st.failures_seen == 0 || device_hours <= 0.0 {
            0.0
        } else {
            1.0 - (-(st.failures_seen as f64 / device_hours) * HOURS_PER_YEAR).exp()
        };

        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str(HEALTH_SCHEMA.into())),
            ("generated_ms".into(), Json::U64(now_ms)),
            (
                "fleet".into(),
                Json::Obj(vec![
                    ("devices".into(), Json::U64(n as u64)),
                    ("offline".into(), Json::U64(offline.len() as u64)),
                    (
                        "offline_devices".into(),
                        Json::Arr(offline.iter().map(|&d| Json::U64(d as u64)).collect()),
                    ),
                    ("io_errors".into(), Json::U64(device_stat(store, |s| s.io_errors))),
                    (
                        "failed_writes".into(),
                        Json::U64(device_stat(store, |s| s.failed_writes)),
                    ),
                    ("pool_epoch".into(), Json::U64(store.pool_epoch())),
                ]),
            ),
            (
                "reliability".into(),
                Json::Obj(vec![
                    ("afr".into(), Json::F64(self.config.afr)),
                    ("horizon_hours".into(), Json::F64(self.config.horizon_hours)),
                    ("p_device_horizon".into(), Json::F64(p_device)),
                    ("p_loss".into(), Json::F64(p_loss)),
                    ("p_loss_healthy".into(), Json::F64(healthy)),
                    ("mttdl_hours".into(), finite_or_null(mttdl_hours(p_loss, self.config.horizon_hours))),
                    (
                        "missing_nodes".into(),
                        Json::Arr(offline.iter().map(|&d| Json::U64(d as u64)).collect()),
                    ),
                    ("trials_per_k".into(), Json::U64(self.config.trials_per_k)),
                    ("seed".into(), Json::U64(self.config.seed)),
                    ("max_k".into(), Json::U64(self.config.max_k as u64)),
                ]),
            ),
            (
                "margins".into(),
                Json::Obj(vec![
                    ("min_margin".into(), Json::U64(min_margin as u64)),
                    ("min_margin_exact".into(), Json::Bool(min_exact)),
                    ("margin_cap".into(), Json::U64(cap as u64)),
                    ("classes".into(), Json::U64(ranked.len() as u64)),
                    ("classes_deep_searched".into(), Json::U64(deep_searched as u64)),
                    ("stripes_total".into(), Json::U64(stripes_total)),
                    ("stripes_at_margin_le_1".into(), Json::U64(stripes_at_risk)),
                    ("per_class".into(), Json::Arr(rows)),
                ]),
            ),
            (
                "bitrot".into(),
                Json::Obj(vec![
                    ("stripes_checked".into(), Json::U64(checked)),
                    ("corrupt_stripes".into(), Json::U64(decoded)),
                    (
                        "corruption_rate".into(),
                        Json::F64(if checked == 0 { 0.0 } else { decoded as f64 / checked as f64 }),
                    ),
                    ("blocks_repaired".into(), Json::U64(obs.store_obs.blocks_repaired.get())),
                ]),
            ),
            (
                "slo".into(),
                Json::Obj(vec![
                    (
                        "degraded_reads".into(),
                        slo_json(&st.slo_degraded, obs.degraded_reads.get(), obs.gets.get(), now_ms),
                    ),
                    (
                        "scrub_corruption".into(),
                        slo_json(&st.slo_corruption, decoded, checked, now_ms),
                    ),
                ]),
            ),
            (
                "observed".into(),
                Json::Obj(vec![
                    ("failures".into(), Json::U64(st.failures_seen)),
                    ("replacements".into(), Json::U64(st.replacements_seen)),
                    ("elapsed_hours".into(), Json::F64(elapsed_hours)),
                    ("effective_afr".into(), Json::F64(effective_afr)),
                ]),
            ),
            (
                "recompute".into(),
                Json::Obj(vec![
                    ("count".into(), Json::U64(self.recomputes.get())),
                    ("total_us".into(), Json::U64(self.recompute_us.sum())),
                ]),
            ),
        ]);

        st.doc = Some(doc);
        st.last_recompute_ms = Some(now_ms);
        st.last_pool_epoch = Some(store.pool_epoch());
        st.last_scrub_decoded = obs.store_obs.stripes_decoded.get();
        let us = t0.elapsed().as_micros() as u64;
        self.recomputes.inc();
        self.recompute_us.record(us);
        obs.events.emit(
            "health.recompute",
            &[
                ("us", Json::U64(us)),
                ("offline", Json::U64(offline.len() as u64)),
                ("p_loss", Json::F64(p_loss)),
                ("min_margin", Json::U64(min_margin as u64)),
            ],
        );
    }
}

/// Decode attempts a depth-`cap` margin search costs: `sum_{j<=cap}
/// C(n_rem, j)`, saturating (a saturated estimate simply never fits the
/// budget).
fn deep_search_decodes(n_rem: usize, cap: usize) -> u64 {
    let mut total: u64 = 0;
    let mut c: u128 = 1;
    for j in 1..=cap.min(n_rem) {
        c = c * (n_rem - j + 1) as u128 / j as u128;
        total = total.saturating_add(u64::try_from(c).unwrap_or(u64::MAX));
    }
    total
}

fn device_stat(store: &ArchivalStore, f: impl Fn(&tornado_store::DeviceStats) -> u64) -> u64 {
    (0..store.num_devices())
        .filter_map(|d| store.device(d).ok())
        .map(|d| f(&d.stats()))
        .sum()
}

fn finite_or_null(v: f64) -> Json {
    if v.is_finite() {
        Json::F64(v)
    } else {
        Json::Null
    }
}

fn slo_json(t: &SloTracker, bad: u64, total: u64, now_ms: u64) -> Json {
    let windows = t
        .readings(now_ms)
        .into_iter()
        .map(|r| {
            Json::Obj(vec![
                ("label".into(), Json::Str(r.label)),
                ("burn_short".into(), Json::F64(r.short)),
                ("burn_long".into(), Json::F64(r.long)),
                ("threshold".into(), Json::F64(r.threshold)),
                ("firing".into(), Json::Bool(r.firing)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("objective".into(), Json::F64(t.objective())),
        ("bad".into(), Json::U64(bad)),
        ("total".into(), Json::U64(total)),
        ("alerts_total".into(), Json::U64(t.alerts_total())),
        ("windows".into(), Json::Arr(windows)),
    ])
}

/// Validates a `tornado-health-v1` document: schema tag, the required
/// sections, and basic invariants (probabilities in range, offline list
/// consistent with its count). Unknown keys are ignored everywhere, so
/// the schema can grow without breaking old validators.
pub fn validate_health(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(HEALTH_SCHEMA) => {}
        Some(other) => return Err(format!("schema {other:?}, expected {HEALTH_SCHEMA:?}")),
        None => return Err("missing schema".into()),
    }
    let fleet = doc.get("fleet").ok_or("missing fleet section")?;
    let devices = fleet
        .get("devices")
        .and_then(Json::as_u64)
        .ok_or("fleet.devices must be a u64")?;
    let offline = fleet
        .get("offline")
        .and_then(Json::as_u64)
        .ok_or("fleet.offline must be a u64")?;
    if offline > devices {
        return Err(format!("{offline} offline devices out of {devices}"));
    }
    let listed = fleet
        .get("offline_devices")
        .and_then(Json::as_arr)
        .ok_or("fleet.offline_devices must be an array")?;
    if listed.len() as u64 != offline {
        return Err(format!(
            "offline_devices lists {} devices, fleet.offline says {offline}",
            listed.len()
        ));
    }
    let rel = doc.get("reliability").ok_or("missing reliability section")?;
    for key in ["p_loss", "p_loss_healthy"] {
        let p = rel
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("reliability.{key} must be a number"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("reliability.{key} = {p} is not a probability"));
        }
    }
    match rel.get("mttdl_hours") {
        Some(Json::Null) | None => {}
        Some(v) => {
            let m = v.as_f64().ok_or("reliability.mttdl_hours must be a number or null")?;
            if m < 0.0 {
                return Err(format!("reliability.mttdl_hours = {m} is negative"));
            }
        }
    }
    let margins = doc.get("margins").ok_or("missing margins section")?;
    for key in ["min_margin", "stripes_total", "stripes_at_margin_le_1", "margin_cap"] {
        margins
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("margins.{key} must be a u64"))?;
    }
    let slo = doc.get("slo").ok_or("missing slo section")?;
    let Json::Obj(entries) = slo else {
        return Err("slo must be an object".into());
    };
    if entries.is_empty() {
        return Err("slo section is empty".into());
    }
    for (name, entry) in entries {
        entry
            .get("objective")
            .and_then(Json::as_f64)
            .filter(|o| *o > 0.0)
            .ok_or_else(|| format!("slo.{name}.objective must be positive"))?;
        let windows = entry
            .get("windows")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("slo.{name}.windows must be an array"))?;
        for w in windows {
            for key in ["burn_short", "burn_long", "threshold"] {
                w.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("slo.{name} window missing {key}"))?;
            }
            if !matches!(w.get("firing"), Some(Json::Bool(_))) {
                return Err(format!("slo.{name} window missing firing flag"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HealthConfig;
    use tornado_obs::slo::BurnWindow;

    fn test_config() -> HealthConfig {
        HealthConfig {
            trials_per_k: 200,
            max_k: 3,
            min_recompute_ms: 0,
            slo_windows: vec![BurnWindow {
                label: "fast".into(),
                short_ms: 500,
                long_ms: 2_000,
                threshold: 2.0,
            }],
            ..HealthConfig::default()
        }
    }

    fn store_with_objects(n_objects: usize) -> ArchivalStore {
        let graph = tornado_gen::mirror::generate_mirror(8).unwrap();
        let store = ArchivalStore::new(graph);
        for i in 0..n_objects {
            store.put(&format!("obj-{i}"), &vec![i as u8; 600]).unwrap();
        }
        store
    }

    #[test]
    fn healthy_document_validates_and_matches_offline_baseline() {
        let store = store_with_objects(3);
        let obs = ServerObserver::disabled();
        let model = HealthModel::new(test_config());
        let doc = model.document(&store, &obs, 1_000);
        validate_health(&doc).unwrap();
        let rel = doc.get("reliability").unwrap();
        assert_eq!(
            rel.get("p_loss").unwrap().as_f64(),
            rel.get("p_loss_healthy").unwrap().as_f64(),
            "healthy fleet: live == offline baseline"
        );
        assert_eq!(doc.get("fleet").unwrap().get("offline").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn failing_devices_raises_p_loss_and_drops_margins() {
        let store = store_with_objects(4);
        let obs = ServerObserver::disabled();
        let model = HealthModel::new(test_config());
        let healthy_doc = model.document(&store, &obs, 1_000);
        let healthy_margin = healthy_doc
            .get("margins")
            .unwrap()
            .get("min_margin")
            .unwrap()
            .as_u64()
            .unwrap();
        store.fail_device(0).unwrap();
        // The pool epoch changed: the next document is dirty-recomputed.
        let doc = model.document(&store, &obs, 2_000);
        validate_health(&doc).unwrap();
        let rel = doc.get("reliability").unwrap();
        let p_loss = rel.get("p_loss").unwrap().as_f64().unwrap();
        let healthy = rel.get("p_loss_healthy").unwrap().as_f64().unwrap();
        assert!(p_loss > healthy, "conditional {p_loss} must exceed healthy {healthy}");
        let margins = doc.get("margins").unwrap();
        let min_margin = margins.get("min_margin").unwrap().as_u64().unwrap();
        assert!(min_margin < healthy_margin, "margin must drop after a failure");
        // On a mirror, one lost node leaves its partner as the single
        // point of failure: margin 1, and every stripe is at risk.
        assert_eq!(min_margin, 1);
        assert_eq!(
            margins.get("stripes_at_margin_le_1").unwrap().as_u64(),
            margins.get("stripes_total").unwrap().as_u64(),
        );
    }

    #[test]
    fn conditional_p_loss_matches_offline_recomputation() {
        // The acceptance bar: an offline analysis run with the same
        // erasure pattern and parameters reproduces the live number.
        let store = store_with_objects(2);
        let obs = ServerObserver::disabled();
        let model = HealthModel::new(test_config());
        store.fail_device(2).unwrap();
        let doc = model.document(&store, &obs, 500);
        let rel = doc.get("reliability").unwrap();
        let live = rel.get("p_loss").unwrap().as_f64().unwrap();
        let missing: Vec<usize> = rel
            .get("missing_nodes")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap() as usize)
            .collect();
        let cfg = test_config();
        let offline = conditional_failure_probability(
            store.graph(),
            &missing,
            horizon_failure_probability(cfg.afr, cfg.horizon_hours),
            &ConditionalConfig {
                trials_per_k: cfg.trials_per_k,
                seed: cfg.seed,
                max_k: cfg.max_k,
                ..ConditionalConfig::default()
            },
        );
        assert!((live - offline).abs() <= 1e-12, "live {live} vs offline {offline}");
    }

    #[test]
    fn recompute_is_event_driven_not_per_request() {
        let store = store_with_objects(1);
        let obs = ServerObserver::disabled();
        let model = HealthModel::new(HealthConfig {
            min_recompute_ms: 1_000_000, // rate limit far beyond the test
            ..test_config()
        });
        let _ = model.document(&store, &obs, 100);
        assert_eq!(model.recomputes.get(), 1);
        for t in 0..50 {
            let _ = model.document(&store, &obs, 200 + t);
            model.tick(&store, &obs, 200 + t);
        }
        assert_eq!(model.recomputes.get(), 1, "clean fleet: cached document serves");
        store.fail_device(1).unwrap();
        let _ = model.document(&store, &obs, 300);
        assert_eq!(model.recomputes.get(), 2, "pool-epoch transition recomputes once");
        let _ = model.document(&store, &obs, 301);
        assert_eq!(model.recomputes.get(), 2);
    }

    #[test]
    fn burn_rate_alert_fires_through_tick() {
        let store = store_with_objects(1);
        let obs = ServerObserver::disabled();
        let model = HealthModel::new(test_config());
        // 50% of GETs degraded against a 5% objective: burn 10 > 2.
        for s in 0..10u64 {
            obs.gets.add(100);
            obs.degraded_reads.add(50);
            model.tick(&store, &obs, s * 250);
        }
        assert!(model.alerts.get() >= 1, "sustained burn must fire");
        let doc = model.document(&store, &obs, 3_000);
        let slo = doc.get("slo").unwrap().get("degraded_reads").unwrap();
        assert!(slo.get("alerts_total").unwrap().as_u64().unwrap() >= 1);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_health(&Json::Obj(vec![])).is_err());
        let store = store_with_objects(1);
        let obs = ServerObserver::disabled();
        let model = HealthModel::new(test_config());
        let doc = model.document(&store, &obs, 100);
        validate_health(&doc).unwrap();
        // Corrupt one invariant: offline count vs list length.
        let Json::Obj(mut fields) = doc else { panic!() };
        for (k, v) in &mut fields {
            if k == "fleet" {
                if let Json::Obj(f) = v {
                    for (fk, fv) in f.iter_mut() {
                        if fk == "offline" {
                            *fv = Json::U64(3);
                        }
                    }
                }
            }
        }
        assert!(validate_health(&Json::Obj(fields)).is_err());
    }
}
