//! `tornado-server` — a concurrent archival block service over the
//! Tornado-coded [`tornado_store::ArchivalStore`].
//!
//! The paper's methodology measures codes statically (worst-case erasure
//! search, Monte-Carlo profiles); related storage-systems work (Dimakis et
//! al., Park et al.) evaluates them *live* — repair traffic, degraded
//! reads, reconstruction latency under load. This crate closes that gap
//! with a serving layer built on `std::net` alone:
//!
//! * [`protocol`] — the length-prefixed binary wire format (PUT / GET /
//!   DELETE / STAT object ops, PING, device fail/revive admin ops, a
//!   metrics snapshot op, and SHUTDOWN);
//! * [`queue`] — a bounded MPMC request queue with explicit backpressure:
//!   past the configured depth the service answers BUSY instead of
//!   buffering without bound;
//! * [`engine`] — the fixed worker pool draining the queue, enforcing
//!   per-request deadlines, and serving GETs through the store's guided
//!   retrieval path (checksum failures and offline devices degrade into
//!   erasures that the Tornado decoder reconstructs transparently);
//! * [`server`] — the TCP accept loop, per-connection framing, and
//!   graceful shutdown that drains in-flight requests before exiting;
//! * [`client`] — a small blocking client library for the protocol;
//! * [`load`] — a closed-loop multi-connection load generator with a
//!   seeded operation mix (weighted put/get/delete, zipfian object
//!   popularity) and mid-run device-failure injection, verifying every
//!   GET byte-for-byte;
//! * [`obs`] — `tornado-obs` counters, latency histograms, JSON-lines
//!   events, sampled request-scoped trace spans (exported as Chrome
//!   trace-event JSON), and a time-series ring of periodic counter
//!   samples for windowed rates;
//! * [`health`] — the durability observatory: a live §5.1 reliability
//!   model (conditional P(loss), per-stripe risk margins, MTTDL) plus
//!   SLO burn-rate alerting, published through the HEALTH wire op as a
//!   validated `tornado-health-v1` document.

// `deny` rather than `forbid`: the readiness reactor is the one sanctioned
// exception (raw epoll/poll FFI behind `#[allow(unsafe_code)]` with
// documented invariants); everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod engine;
pub mod error;
pub mod health;
pub mod load;
pub mod obs;
pub mod protocol;
pub mod queue;
#[cfg(unix)]
pub mod reactor;
pub mod server;
#[cfg(unix)]
pub mod shard;

pub use client::{Client, PipelinedClient};
pub use config::{HealthConfig, ServerConfig};
pub use error::ClientError;
pub use health::{validate_health, HealthModel, HEALTH_SCHEMA};
pub use load::{run_load, LoadConfig, LoadReport, OpMix, TraceExemplar};
pub use obs::ServerObserver;
pub use protocol::{Op, Request, Response, StatMeta};
pub use queue::BoundedQueue;
pub use server::{serve, ServerHandle};
