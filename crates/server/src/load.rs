//! Closed-loop load generator for the archival block service.
//!
//! [`run_load`] opens `connections` client connections, each driven by its
//! own worker thread in a closed loop: pick the next operation from the
//! seeded weighted mix, run it, record the latency, repeat until the clock
//! runs out. Object popularity is zipfian — earlier objects are hotter —
//! so GETs concentrate on a warm set the way archival read traffic does.
//!
//! Determinism: every random choice (op, object, payload size, payload
//! bytes) derives from `LoadConfig::seed`, so two runs with the same seed
//! issue the same operation stream per worker. Payload bytes regenerate
//! from a per-object seed, which is how every GET is verified
//! byte-for-byte — any corruption the decoder fails to repair shows up as
//! a `payload_mismatches` count, not a silent pass.
//!
//! Mid-run failure injection: when `fail_devices` is non-empty, a
//! dedicated admin connection fails those devices (spaced by
//! `fail_spacing_ms`) after `fail_after_ms`, while the workers keep
//! hammering the server — exercising the transparently-degraded read path
//! under concurrency.

use crate::client::Client;
use crate::error::ClientError;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use tornado_obs::{Histogram, Json, Snapshot};

/// Weighted operation mix (weights need not sum to anything particular).
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    /// Relative weight of PUT.
    pub put: u32,
    /// Relative weight of GET.
    pub get: u32,
    /// Relative weight of DELETE.
    pub delete: u32,
}

impl Default for OpMix {
    /// Read-heavy archival mix: mostly GETs, steady ingest, rare deletes.
    fn default() -> Self {
        Self { put: 20, get: 75, delete: 5 }
    }
}

/// Tunables for one [`run_load`] run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7401`.
    pub addr: String,
    /// Concurrent connections, one closed-loop worker each.
    pub connections: usize,
    /// Wall-clock run length in milliseconds (after prefill).
    pub duration_ms: u64,
    /// Master seed — same seed, same per-worker operation stream.
    pub seed: u64,
    /// Operation mix.
    pub mix: OpMix,
    /// Smallest payload, bytes.
    pub payload_min: usize,
    /// Largest payload, bytes.
    pub payload_max: usize,
    /// Zipf exponent for object popularity (0 = uniform; ~0.99 typical).
    pub zipf_theta: f64,
    /// Objects each worker PUTs before the measured window opens, so GETs
    /// have something to hit from the first sample.
    pub prefill: usize,
    /// Devices to fail mid-run (empty = no injection).
    pub fail_devices: Vec<u32>,
    /// Delay before the first injected failure, milliseconds.
    pub fail_after_ms: u64,
    /// Spacing between injected failures, milliseconds.
    pub fail_spacing_ms: u64,
    /// Per-request deadline stamped by each client (0 = none).
    pub deadline_ms: u32,
    /// Trace propagation: stamp every logical operation with a
    /// deterministic trace id drawn from the worker's seeded rng, and
    /// report the 1-in-N ids the server's sampler will keep (same
    /// `tornado_obs::trace::sampled` key function on both sides).
    /// 0 stamps no trace ids at all — the wire format stays pre-trace.
    pub trace_sample: u64,
    /// Stop each worker after this many measured operations (0 = run
    /// until the clock). With a generous `duration_ms` this makes the
    /// op stream — and therefore the sampled trace-id set — an exact
    /// function of `seed`, independent of server worker count.
    pub op_limit: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7401".into(),
            connections: 4,
            duration_ms: 2_000,
            seed: 1,
            mix: OpMix::default(),
            payload_min: 1 << 10,
            payload_max: 64 << 10,
            zipf_theta: 0.99,
            prefill: 8,
            fail_devices: Vec::new(),
            fail_after_ms: 300,
            fail_spacing_ms: 50,
            deadline_ms: 0,
            trace_sample: 256,
            op_limit: 0,
        }
    }
}

/// How many slowest-operation exemplars each run retains.
pub const EXEMPLAR_KEEP: usize = 5;

/// One slow sampled operation, printable next to p50/p99 so the operator
/// can jump straight from a latency number to its span tree in the
/// server's trace export.
#[derive(Clone, Copy, Debug)]
pub struct TraceExemplar {
    /// Client-observed latency, microseconds.
    pub latency_us: u64,
    /// The trace id stamped on the request (look it up in the export).
    pub trace_id: u64,
    /// Operation kind: `"put"`, `"get"`, or `"delete"`.
    pub op: &'static str,
}

/// Keeps the `EXEMPLAR_KEEP` slowest exemplars via min-replace.
fn note_exemplar(slowest: &mut Vec<TraceExemplar>, e: TraceExemplar) {
    if slowest.len() < EXEMPLAR_KEEP {
        slowest.push(e);
        return;
    }
    if let Some(i) = (0..slowest.len()).min_by_key(|&i| slowest[i].latency_us) {
        if e.latency_us > slowest[i].latency_us {
            slowest[i] = e;
        }
    }
}

/// Aggregated result of one load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Measured window length, milliseconds.
    pub elapsed_ms: u64,
    /// Completed operations (excludes busy retries).
    pub ops: u64,
    /// Completed PUTs.
    pub puts: u64,
    /// Completed GETs.
    pub gets: u64,
    /// Completed DELETEs.
    pub deletes: u64,
    /// BUSY rejections absorbed (each retried after backoff).
    pub busy_retries: u64,
    /// Operations that failed with a transport or server error.
    pub errors: u64,
    /// GETs answered UNRECOVERABLE (possible only past the fault
    /// tolerance of the graph).
    pub unrecoverable: u64,
    /// GETs whose payload did not match the expected bytes — must be zero.
    pub payload_mismatches: u64,
    /// Completed operations per second.
    pub ops_per_sec: f64,
    /// Client-observed operation latency, microseconds.
    pub latency_us: Histogram,
    /// Devices failed by the injector during the run.
    pub devices_failed: Vec<u32>,
    /// `server.get.degraded` from the server's final metrics snapshot.
    pub degraded_reads: u64,
    /// `server.get.replans` from the server's final metrics snapshot —
    /// GETs that had to fall back to a wider plan mid-fetch.
    pub replans: u64,
    /// `server.get.repair_bytes` from the server's final metrics snapshot
    /// — repair-class (check-block) bytes the degraded GETs pulled.
    pub repair_bytes: u64,
    /// The server's final `tornado-metrics-v1` snapshot (pretty JSON).
    pub server_metrics_json: String,
    /// Trace ids the server's deterministic sampler will have kept
    /// (sorted, deduplicated; empty when `trace_sample` is 0).
    pub sampled_trace_ids: Vec<u64>,
    /// The slowest sampled operations across all workers, latency
    /// descending (at most [`EXEMPLAR_KEEP`]).
    pub slowest: Vec<TraceExemplar>,
}

impl LoadReport {
    /// Median latency in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.latency_us.percentile(0.5).unwrap_or(0)
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.latency_us.percentile(0.99).unwrap_or(0)
    }

    /// Builds a client-side `tornado-metrics-v1` snapshot of this run,
    /// embedding the server's own final snapshot under `"server"`.
    pub fn snapshot(&self, seed: u64) -> Snapshot {
        let mut snap = Snapshot::new("load", self.elapsed_ms);
        snap.set("seed", Json::U64(seed))
            .set("ops_per_sec", Json::F64(self.ops_per_sec))
            .counter_value("load.ops", self.ops)
            .counter_value("load.put", self.puts)
            .counter_value("load.get", self.gets)
            .counter_value("load.delete", self.deletes)
            .counter_value("load.busy_retries", self.busy_retries)
            .counter_value("load.errors", self.errors)
            .counter_value("load.unrecoverable", self.unrecoverable)
            .counter_value("load.payload_mismatches", self.payload_mismatches)
            .counter_value("load.devices_failed", self.devices_failed.len() as u64)
            .counter_value("load.degraded_reads", self.degraded_reads)
            .counter_value("load.replans", self.replans)
            .counter_value("load.repair_bytes", self.repair_bytes)
            .counter_value("load.sampled_traces", self.sampled_trace_ids.len() as u64)
            .histogram("load.latency_us", &self.latency_us);
        if !self.slowest.is_empty() {
            let arr = self
                .slowest
                .iter()
                .map(|e| {
                    Json::Obj(vec![
                        ("latency_us".into(), Json::U64(e.latency_us)),
                        ("trace_id".into(), Json::Str(format!("{:#018x}", e.trace_id))),
                        ("op".into(), Json::Str(e.op.into())),
                    ])
                })
                .collect();
            snap.set("slowest_traces", Json::Arr(arr));
        }
        if let Ok(server) = tornado_obs::json::parse(&self.server_metrics_json) {
            snap.set("server", server);
        }
        snap
    }
}

/// Deterministic payload bytes for object seed `seed` — regenerated on the
/// GET side for byte-for-byte verification.
pub fn payload_for(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut buf = vec![0u8; len];
    for chunk in buf.chunks_mut(8) {
        let v = rng.next_u64().to_le_bytes();
        chunk.copy_from_slice(&v[..chunk.len()]);
    }
    buf
}

/// One worker's view of an object it stored.
struct ObjEntry {
    id: u64,
    seed: u64,
    len: usize,
}

/// Zipfian sampler over a growing table: object at rank `r` (insertion
/// order) has weight `1/(r+1)^theta`, so earlier objects stay hottest.
struct ZipfTable {
    entries: Vec<ObjEntry>,
    cumulative: Vec<f64>,
    theta: f64,
}

impl ZipfTable {
    fn new(theta: f64) -> Self {
        Self { entries: Vec::new(), cumulative: Vec::new(), theta }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn push(&mut self, e: ObjEntry) {
        let rank = self.entries.len();
        let w = 1.0 / ((rank + 1) as f64).powf(self.theta);
        let total = self.cumulative.last().copied().unwrap_or(0.0);
        self.entries.push(e);
        self.cumulative.push(total + w);
    }

    /// Samples an index zipfian-by-rank.
    fn sample(&self, rng: &mut SmallRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty table");
        let u = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= u).min(self.entries.len() - 1)
    }

    /// Removes index `i`, recomputing the rank weights of what remains.
    fn remove(&mut self, i: usize) -> ObjEntry {
        let e = self.entries.remove(i);
        self.cumulative.clear();
        let mut total = 0.0;
        for rank in 0..self.entries.len() {
            total += 1.0 / ((rank + 1) as f64).powf(self.theta);
            self.cumulative.push(total);
        }
        e
    }
}

/// Per-worker tallies, summed into the report after join.
#[derive(Default)]
struct WorkerTally {
    ops: u64,
    puts: u64,
    gets: u64,
    deletes: u64,
    busy_retries: u64,
    errors: u64,
    unrecoverable: u64,
    payload_mismatches: u64,
    latency_us: Histogram,
    sampled_trace_ids: Vec<u64>,
    slowest: Vec<TraceExemplar>,
}

impl WorkerTally {
    /// Records one completed operation: latency, per-op counter, and —
    /// when its trace id is one the server's sampler keeps — the sampled
    /// id and a slowest-exemplar candidate.
    fn complete(&mut self, cfg: &LoadConfig, trace_id: Option<u64>, op: &'static str, latency_us: u64) {
        self.latency_us.record(latency_us);
        self.ops += 1;
        match op {
            "put" => self.puts += 1,
            "get" => self.gets += 1,
            "delete" => self.deletes += 1,
            _ => {}
        }
        if let Some(id) = trace_id {
            if tornado_obs::trace::sampled(id, cfg.trace_sample) {
                self.sampled_trace_ids.push(id);
                note_exemplar(&mut self.slowest, TraceExemplar { latency_us, trace_id: id, op });
            }
        }
    }
}

/// Runs the load and returns the aggregated report.
///
/// Fails fast if the first connection cannot be established; individual
/// op errors during the run are counted, not fatal.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, ClientError> {
    // Probe the server before spawning anything.
    let mut admin = Client::connect(&cfg.addr)?;
    admin.ping()?;

    let connections = cfg.connections.max(1);
    let start = Instant::now();
    let stop_at = start + Duration::from_millis(cfg.duration_ms);
    let seq = Arc::new(AtomicU64::new(0));

    let mut tallies: Vec<WorkerTally> = Vec::with_capacity(connections);
    let mut devices_failed = Vec::new();
    thread::scope(|s| {
        let workers: Vec<_> = (0..connections)
            .map(|worker| {
                let cfg = cfg.clone();
                let seq = Arc::clone(&seq);
                s.spawn(move || worker_loop(&cfg, worker as u64, stop_at, &seq))
            })
            .collect();

        // Failure injection rides on the admin connection while workers run.
        if !cfg.fail_devices.is_empty() {
            thread::sleep(Duration::from_millis(cfg.fail_after_ms));
            for &device in &cfg.fail_devices {
                match admin.fail_device(device) {
                    Ok(()) => devices_failed.push(device),
                    Err(_) => break,
                }
                thread::sleep(Duration::from_millis(cfg.fail_spacing_ms));
            }
        }

        for w in workers {
            tallies.push(w.join().expect("load worker panicked"));
        }
    });
    let elapsed_ms = (start.elapsed().as_millis() as u64).max(1);

    let mut report = LoadReport {
        elapsed_ms,
        ops: 0,
        puts: 0,
        gets: 0,
        deletes: 0,
        busy_retries: 0,
        errors: 0,
        unrecoverable: 0,
        payload_mismatches: 0,
        ops_per_sec: 0.0,
        latency_us: Histogram::new(),
        devices_failed,
        degraded_reads: 0,
        replans: 0,
        repair_bytes: 0,
        server_metrics_json: String::new(),
        sampled_trace_ids: Vec::new(),
        slowest: Vec::new(),
    };
    for t in &tallies {
        report.ops += t.ops;
        report.puts += t.puts;
        report.gets += t.gets;
        report.deletes += t.deletes;
        report.busy_retries += t.busy_retries;
        report.errors += t.errors;
        report.unrecoverable += t.unrecoverable;
        report.payload_mismatches += t.payload_mismatches;
        report.latency_us.merge(&t.latency_us);
        report.sampled_trace_ids.extend(&t.sampled_trace_ids);
        for &e in &t.slowest {
            note_exemplar(&mut report.slowest, e);
        }
    }
    report.sampled_trace_ids.sort_unstable();
    report.sampled_trace_ids.dedup();
    report.slowest.sort_unstable_by_key(|e| std::cmp::Reverse(e.latency_us));
    report.ops_per_sec = report.ops as f64 * 1000.0 / elapsed_ms as f64;

    report.server_metrics_json = admin.metrics()?;
    if let Ok(doc) = tornado_obs::json::parse(&report.server_metrics_json) {
        let counter = |key: &str| {
            doc.get("counters").and_then(|c| c.get(key)).and_then(Json::as_u64).unwrap_or(0)
        };
        report.degraded_reads = counter("server.get.degraded");
        report.replans = counter("server.get.replans");
        report.repair_bytes = counter("server.get.repair_bytes");
    }
    Ok(report)
}

fn worker_loop(cfg: &LoadConfig, worker: u64, stop_at: Instant, seq: &AtomicU64) -> WorkerTally {
    let mut tally = WorkerTally::default();
    let mut client = match Client::connect(&cfg.addr) {
        Ok(c) => c,
        Err(_) => {
            tally.errors += 1;
            return tally;
        }
    };
    client.set_deadline_ms(cfg.deadline_ms);
    // Golden-ratio stride keeps per-worker streams uncorrelated while the
    // whole run stays a pure function of cfg.seed.
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(worker + 1));
    let mut table = ZipfTable::new(cfg.zipf_theta);

    for _ in 0..cfg.prefill {
        let tid = next_trace_id(cfg, &mut rng, &mut client);
        do_put(cfg, &mut client, &mut rng, &mut table, seq, &mut tally, tid);
    }

    let measured_start = tally.ops;
    while Instant::now() < stop_at
        && (cfg.op_limit == 0 || tally.ops - measured_start < cfg.op_limit)
    {
        // The trace id is drawn from the same seeded stream as the op
        // choice, so the id sequence — and the sampled subset — is an
        // exact function of (seed, worker index).
        let tid = next_trace_id(cfg, &mut rng, &mut client);
        let total = cfg.mix.put + cfg.mix.get + cfg.mix.delete;
        let pick = if total == 0 { 0 } else { rng.gen_range(0..total) };
        if pick < cfg.mix.put || table.len() == 0 {
            do_put(cfg, &mut client, &mut rng, &mut table, seq, &mut tally, tid);
        } else if pick < cfg.mix.put + cfg.mix.get {
            do_get(cfg, &mut client, &mut rng, &mut table, &mut tally, tid);
        } else {
            do_delete(cfg, &mut client, &mut rng, &mut table, &mut tally, tid);
        }
    }
    tally
}

/// Draws the next logical operation's trace id and stamps it on the
/// client (retries inside the op keep the same id, so their spans land
/// in one trace). `None` — and an untraced wire header — when trace
/// propagation is off.
fn next_trace_id(cfg: &LoadConfig, rng: &mut SmallRng, client: &mut Client) -> Option<u64> {
    if cfg.trace_sample == 0 {
        return None;
    }
    let tid = rng.next_u64();
    client.set_trace_id(Some(tid));
    Some(tid)
}

fn do_put(
    cfg: &LoadConfig,
    client: &mut Client,
    rng: &mut SmallRng,
    table: &mut ZipfTable,
    seq: &AtomicU64,
    tally: &mut WorkerTally,
    trace_id: Option<u64>,
) {
    let len = if cfg.payload_max > cfg.payload_min {
        rng.gen_range(cfg.payload_min..=cfg.payload_max)
    } else {
        cfg.payload_min.max(1)
    };
    let obj_seed = rng.next_u64();
    let payload = payload_for(obj_seed, len.max(1));
    // The atomic sequence makes names globally unique across workers;
    // payload bytes stay a pure function of obj_seed.
    let name = format!("load-{}", seq.fetch_add(1, Ordering::Relaxed));
    loop {
        let t = Instant::now();
        match client.put(&name, &payload) {
            Ok(id) => {
                tally.complete(cfg, trace_id, "put", t.elapsed().as_micros() as u64);
                table.push(ObjEntry { id, seed: obj_seed, len: len.max(1) });
                return;
            }
            Err(ClientError::Busy) => {
                tally.busy_retries += 1;
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                tally.errors += 1;
                return;
            }
        }
    }
}

fn do_get(
    cfg: &LoadConfig,
    client: &mut Client,
    rng: &mut SmallRng,
    table: &mut ZipfTable,
    tally: &mut WorkerTally,
    trace_id: Option<u64>,
) {
    let i = table.sample(rng);
    let (id, seed, len) = {
        let e = &table.entries[i];
        (e.id, e.seed, e.len)
    };
    loop {
        let t = Instant::now();
        match client.get(id) {
            Ok(payload) => {
                tally.complete(cfg, trace_id, "get", t.elapsed().as_micros() as u64);
                if payload != payload_for(seed, len) {
                    tally.payload_mismatches += 1;
                }
                return;
            }
            Err(ClientError::Busy) => {
                tally.busy_retries += 1;
                thread::sleep(Duration::from_millis(1));
            }
            Err(ClientError::Unrecoverable { .. }) => {
                tally.unrecoverable += 1;
                return;
            }
            Err(_) => {
                tally.errors += 1;
                return;
            }
        }
    }
}

fn do_delete(
    cfg: &LoadConfig,
    client: &mut Client,
    rng: &mut SmallRng,
    table: &mut ZipfTable,
    tally: &mut WorkerTally,
    trace_id: Option<u64>,
) {
    let i = table.sample(rng);
    let e = table.remove(i);
    loop {
        let t = Instant::now();
        match client.delete(e.id) {
            Ok(()) => {
                tally.complete(cfg, trace_id, "delete", t.elapsed().as_micros() as u64);
                return;
            }
            Err(ClientError::Busy) => {
                tally.busy_retries += 1;
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                tally.errors += 1;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_are_deterministic_per_seed() {
        assert_eq!(payload_for(42, 1000), payload_for(42, 1000));
        assert_ne!(payload_for(42, 1000), payload_for(43, 1000));
        assert_eq!(payload_for(7, 13).len(), 13);
    }

    #[test]
    fn zipf_prefers_early_ranks() {
        let mut t = ZipfTable::new(0.99);
        for i in 0..50 {
            t.push(ObjEntry { id: i, seed: i, len: 1 });
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let mut hits = [0u32; 50];
        for _ in 0..20_000 {
            hits[t.sample(&mut rng)] += 1;
        }
        assert!(hits[0] > hits[10], "rank 0 hotter than rank 10: {hits:?}");
        assert!(hits[0] > hits[49] * 3, "strongly skewed head");
        assert!(hits.iter().all(|&h| h > 0), "every rank still reachable");
    }

    #[test]
    fn zipf_remove_keeps_sampling_valid() {
        let mut t = ZipfTable::new(1.0);
        for i in 0..10 {
            t.push(ObjEntry { id: i, seed: i, len: 1 });
        }
        let removed = t.remove(3);
        assert_eq!(removed.id, 3);
        assert_eq!(t.len(), 9);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = t.sample(&mut rng);
            assert!(i < 9);
            assert_ne!(t.entries[i].id, 3);
        }
    }

    #[test]
    fn op_mix_default_is_read_heavy() {
        let m = OpMix::default();
        assert!(m.get > m.put + m.delete);
    }

    #[test]
    fn exemplar_keeper_retains_the_slowest() {
        let mut slowest = Vec::new();
        for (i, lat) in [50u64, 900, 10, 700, 300, 5, 800, 600].iter().enumerate() {
            note_exemplar(
                &mut slowest,
                TraceExemplar { latency_us: *lat, trace_id: i as u64, op: "get" },
            );
        }
        assert_eq!(slowest.len(), EXEMPLAR_KEEP);
        let mut kept: Vec<u64> = slowest.iter().map(|e| e.latency_us).collect();
        kept.sort_unstable();
        assert_eq!(kept, vec![300, 600, 700, 800, 900]);
    }

    #[test]
    fn worker_tally_keeps_only_server_sampled_trace_ids() {
        let cfg = LoadConfig { trace_sample: 4, ..LoadConfig::default() };
        let mut tally = WorkerTally::default();
        let mut expected = Vec::new();
        for id in 0..400u64 {
            tally.complete(&cfg, Some(id), "get", id);
            if tornado_obs::trace::sampled(id, cfg.trace_sample) {
                expected.push(id);
            }
        }
        assert_eq!(tally.sampled_trace_ids, expected);
        assert!(!expected.is_empty(), "1-in-4 sampling over 400 ids keeps some");
        assert!(tally
            .slowest
            .iter()
            .all(|e| tornado_obs::trace::sampled(e.trace_id, cfg.trace_sample)));
    }
}
