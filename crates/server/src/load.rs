//! Load generators for the archival block service.
//!
//! [`run_load`] opens `connections` client connections, each driven by its
//! own worker thread: pick the next operation from the seeded weighted
//! mix, run it, record the latency, repeat until the clock runs out.
//! Object popularity is zipfian — earlier objects are hotter — so GETs
//! concentrate on a warm set the way archival read traffic does. Three
//! orthogonal knobs change the discipline:
//!
//! * `pipeline_depth` > 1 switches a worker from the serial
//!   request/response [`Client`] to a [`PipelinedClient`] that keeps up
//!   to that many requests in flight, matching completions by
//!   correlation id in whatever order the server finishes them;
//! * `rate_ops_per_sec` > 0 switches from closed-loop (issue as fast as
//!   responses come back) to open-loop: arrivals follow a fixed schedule
//!   and latency is measured from the *scheduled* time, so server
//!   backlog shows up as queueing delay instead of quietly throttling
//!   the arrival stream (the coordinated-omission correction);
//! * [`mux::run_mux`] (unix) drives thousands of connections from one
//!   thread over the readiness reactor — the connection-count scaling
//!   harness, where thread-per-connection driving would perturb the
//!   measurement more than the server under test.
//!
//! Determinism: every random choice (op, object, payload size, payload
//! bytes) derives from `LoadConfig::seed`, so two runs with the same seed
//! issue the same operation stream per worker. Payload bytes regenerate
//! from a per-object seed, which is how every GET is verified
//! byte-for-byte — any corruption the decoder fails to repair shows up as
//! a `payload_mismatches` count, not a silent pass.
//!
//! Mid-run failure injection: when `fail_devices` is non-empty, a
//! dedicated admin connection fails those devices (spaced by
//! `fail_spacing_ms`) after `fail_after_ms`, while the workers keep
//! hammering the server — exercising the transparently-degraded read path
//! under concurrency.

use crate::client::{Client, PipelinedClient};
use crate::error::ClientError;
use crate::protocol::{Op, Response};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use tornado_obs::{Histogram, Json, Snapshot};

/// Weighted operation mix (weights need not sum to anything particular).
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    /// Relative weight of PUT.
    pub put: u32,
    /// Relative weight of GET.
    pub get: u32,
    /// Relative weight of DELETE.
    pub delete: u32,
}

impl Default for OpMix {
    /// Read-heavy archival mix: mostly GETs, steady ingest, rare deletes.
    fn default() -> Self {
        Self { put: 20, get: 75, delete: 5 }
    }
}

/// Tunables for one [`run_load`] run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7401`.
    pub addr: String,
    /// Concurrent connections, one closed-loop worker each.
    pub connections: usize,
    /// Wall-clock run length in milliseconds (after prefill).
    pub duration_ms: u64,
    /// Master seed — same seed, same per-worker operation stream.
    pub seed: u64,
    /// Operation mix.
    pub mix: OpMix,
    /// Smallest payload, bytes.
    pub payload_min: usize,
    /// Largest payload, bytes.
    pub payload_max: usize,
    /// Zipf exponent for object popularity (0 = uniform; ~0.99 typical).
    pub zipf_theta: f64,
    /// Objects each worker PUTs before the measured window opens, so GETs
    /// have something to hit from the first sample.
    pub prefill: usize,
    /// Devices to fail mid-run (empty = no injection).
    pub fail_devices: Vec<u32>,
    /// Delay before the first injected failure, milliseconds.
    pub fail_after_ms: u64,
    /// Spacing between injected failures, milliseconds.
    pub fail_spacing_ms: u64,
    /// Per-request deadline stamped by each client (0 = none).
    pub deadline_ms: u32,
    /// Trace propagation: stamp every logical operation with a
    /// deterministic trace id drawn from the worker's seeded rng, and
    /// report the 1-in-N ids the server's sampler will keep (same
    /// `tornado_obs::trace::sampled` key function on both sides).
    /// 0 stamps no trace ids at all — the wire format stays pre-trace.
    pub trace_sample: u64,
    /// Stop each worker after this many measured operations (0 = run
    /// until the clock). With a generous `duration_ms` this makes the
    /// op stream — and therefore the sampled trace-id set — an exact
    /// function of `seed`, independent of server worker count.
    pub op_limit: u64,
    /// Requests each worker keeps in flight on its connection. 1 (or 0)
    /// is the legacy serial discipline over [`Client`]; greater depths
    /// switch to [`PipelinedClient`], matching completions by
    /// correlation id — requires a v2-header server (PR 10+).
    pub pipeline_depth: usize,
    /// Open-loop arrival rate, operations per second across the whole
    /// run (0 = closed loop). Each worker paces at `rate / connections`
    /// and latency is measured from the *scheduled* send time, so a
    /// server that falls behind accrues queueing delay in the histogram
    /// instead of silently slowing the arrival stream
    /// (coordinated-omission corrected).
    pub rate_ops_per_sec: f64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7401".into(),
            connections: 4,
            duration_ms: 2_000,
            seed: 1,
            mix: OpMix::default(),
            payload_min: 1 << 10,
            payload_max: 64 << 10,
            zipf_theta: 0.99,
            prefill: 8,
            fail_devices: Vec::new(),
            fail_after_ms: 300,
            fail_spacing_ms: 50,
            deadline_ms: 0,
            trace_sample: 256,
            op_limit: 0,
            pipeline_depth: 1,
            rate_ops_per_sec: 0.0,
        }
    }
}

/// How many slowest-operation exemplars each run retains.
pub const EXEMPLAR_KEEP: usize = 5;

/// One slow sampled operation, printable next to p50/p99 so the operator
/// can jump straight from a latency number to its span tree in the
/// server's trace export.
#[derive(Clone, Copy, Debug)]
pub struct TraceExemplar {
    /// Client-observed latency, microseconds.
    pub latency_us: u64,
    /// The trace id stamped on the request (look it up in the export).
    pub trace_id: u64,
    /// Operation kind: `"put"`, `"get"`, or `"delete"`.
    pub op: &'static str,
}

/// Keeps the `EXEMPLAR_KEEP` slowest exemplars via min-replace.
fn note_exemplar(slowest: &mut Vec<TraceExemplar>, e: TraceExemplar) {
    if slowest.len() < EXEMPLAR_KEEP {
        slowest.push(e);
        return;
    }
    if let Some(i) = (0..slowest.len()).min_by_key(|&i| slowest[i].latency_us) {
        if e.latency_us > slowest[i].latency_us {
            slowest[i] = e;
        }
    }
}

/// Aggregated result of one load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Measured window length, milliseconds.
    pub elapsed_ms: u64,
    /// Completed operations (excludes busy retries).
    pub ops: u64,
    /// Completed PUTs.
    pub puts: u64,
    /// Completed GETs.
    pub gets: u64,
    /// Completed DELETEs.
    pub deletes: u64,
    /// BUSY rejections absorbed (each retried after backoff).
    pub busy_retries: u64,
    /// Operations that failed with a transport or server error.
    pub errors: u64,
    /// GETs answered UNRECOVERABLE (possible only past the fault
    /// tolerance of the graph).
    pub unrecoverable: u64,
    /// GETs whose payload did not match the expected bytes — must be zero.
    pub payload_mismatches: u64,
    /// Completed operations per second.
    pub ops_per_sec: f64,
    /// Client-observed operation latency, microseconds.
    pub latency_us: Histogram,
    /// Devices failed by the injector during the run.
    pub devices_failed: Vec<u32>,
    /// `server.get.degraded` from the server's final metrics snapshot.
    pub degraded_reads: u64,
    /// `server.get.replans` from the server's final metrics snapshot —
    /// GETs that had to fall back to a wider plan mid-fetch.
    pub replans: u64,
    /// `server.get.repair_bytes` from the server's final metrics snapshot
    /// — repair-class (check-block) bytes the degraded GETs pulled.
    pub repair_bytes: u64,
    /// The server's final `tornado-metrics-v1` snapshot (pretty JSON).
    pub server_metrics_json: String,
    /// Trace ids the server's deterministic sampler will have kept
    /// (sorted, deduplicated; empty when `trace_sample` is 0).
    pub sampled_trace_ids: Vec<u64>,
    /// The slowest sampled operations across all workers, latency
    /// descending (at most [`EXEMPLAR_KEEP`]).
    pub slowest: Vec<TraceExemplar>,
}

impl LoadReport {
    /// Median latency in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.latency_us.percentile(0.5).unwrap_or(0)
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.latency_us.percentile(0.99).unwrap_or(0)
    }

    /// Builds a client-side `tornado-metrics-v1` snapshot of this run,
    /// embedding the server's own final snapshot under `"server"`.
    pub fn snapshot(&self, seed: u64) -> Snapshot {
        let mut snap = Snapshot::new("load", self.elapsed_ms);
        snap.set("seed", Json::U64(seed))
            .set("ops_per_sec", Json::F64(self.ops_per_sec))
            .counter_value("load.ops", self.ops)
            .counter_value("load.put", self.puts)
            .counter_value("load.get", self.gets)
            .counter_value("load.delete", self.deletes)
            .counter_value("load.busy_retries", self.busy_retries)
            .counter_value("load.errors", self.errors)
            .counter_value("load.unrecoverable", self.unrecoverable)
            .counter_value("load.payload_mismatches", self.payload_mismatches)
            .counter_value("load.devices_failed", self.devices_failed.len() as u64)
            .counter_value("load.degraded_reads", self.degraded_reads)
            .counter_value("load.replans", self.replans)
            .counter_value("load.repair_bytes", self.repair_bytes)
            .counter_value("load.sampled_traces", self.sampled_trace_ids.len() as u64)
            .histogram("load.latency_us", &self.latency_us);
        if !self.slowest.is_empty() {
            let arr = self
                .slowest
                .iter()
                .map(|e| {
                    Json::Obj(vec![
                        ("latency_us".into(), Json::U64(e.latency_us)),
                        ("trace_id".into(), Json::Str(format!("{:#018x}", e.trace_id))),
                        ("op".into(), Json::Str(e.op.into())),
                    ])
                })
                .collect();
            snap.set("slowest_traces", Json::Arr(arr));
        }
        if let Ok(server) = tornado_obs::json::parse(&self.server_metrics_json) {
            snap.set("server", server);
        }
        snap
    }
}

/// Deterministic payload bytes for object seed `seed` — regenerated on the
/// GET side for byte-for-byte verification.
pub fn payload_for(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut buf = vec![0u8; len];
    for chunk in buf.chunks_mut(8) {
        let v = rng.next_u64().to_le_bytes();
        chunk.copy_from_slice(&v[..chunk.len()]);
    }
    buf
}

/// One worker's view of an object it stored.
struct ObjEntry {
    id: u64,
    seed: u64,
    len: usize,
}

/// Zipfian sampler over a growing table: object at rank `r` (insertion
/// order) has weight `1/(r+1)^theta`, so earlier objects stay hottest.
struct ZipfTable {
    entries: Vec<ObjEntry>,
    cumulative: Vec<f64>,
    theta: f64,
}

impl ZipfTable {
    fn new(theta: f64) -> Self {
        Self { entries: Vec::new(), cumulative: Vec::new(), theta }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn push(&mut self, e: ObjEntry) {
        let rank = self.entries.len();
        let w = 1.0 / ((rank + 1) as f64).powf(self.theta);
        let total = self.cumulative.last().copied().unwrap_or(0.0);
        self.entries.push(e);
        self.cumulative.push(total + w);
    }

    /// Samples an index zipfian-by-rank.
    fn sample(&self, rng: &mut SmallRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty table");
        let u = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= u).min(self.entries.len() - 1)
    }

    /// Removes index `i`, recomputing the rank weights of what remains.
    fn remove(&mut self, i: usize) -> ObjEntry {
        let e = self.entries.remove(i);
        self.cumulative.clear();
        let mut total = 0.0;
        for rank in 0..self.entries.len() {
            total += 1.0 / ((rank + 1) as f64).powf(self.theta);
            self.cumulative.push(total);
        }
        e
    }
}

/// Per-worker tallies, summed into the report after join.
#[derive(Default)]
struct WorkerTally {
    ops: u64,
    puts: u64,
    gets: u64,
    deletes: u64,
    busy_retries: u64,
    errors: u64,
    unrecoverable: u64,
    payload_mismatches: u64,
    latency_us: Histogram,
    sampled_trace_ids: Vec<u64>,
    slowest: Vec<TraceExemplar>,
}

impl WorkerTally {
    /// Records one completed operation: latency, per-op counter, and —
    /// when its trace id is one the server's sampler keeps — the sampled
    /// id and a slowest-exemplar candidate.
    fn complete(&mut self, cfg: &LoadConfig, trace_id: Option<u64>, op: &'static str, latency_us: u64) {
        self.latency_us.record(latency_us);
        self.ops += 1;
        match op {
            "put" => self.puts += 1,
            "get" => self.gets += 1,
            "delete" => self.deletes += 1,
            _ => {}
        }
        if let Some(id) = trace_id {
            if tornado_obs::trace::sampled(id, cfg.trace_sample) {
                self.sampled_trace_ids.push(id);
                note_exemplar(&mut self.slowest, TraceExemplar { latency_us, trace_id: id, op });
            }
        }
    }
}

/// Runs the load and returns the aggregated report.
///
/// Fails fast if the first connection cannot be established; individual
/// op errors during the run are counted, not fatal.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, ClientError> {
    // Probe the server before spawning anything.
    let mut admin = Client::connect(&cfg.addr)?;
    admin.ping()?;

    let connections = cfg.connections.max(1);
    let start = Instant::now();
    let stop_at = start + Duration::from_millis(cfg.duration_ms);
    let seq = Arc::new(AtomicU64::new(0));

    let mut tallies: Vec<WorkerTally> = Vec::with_capacity(connections);
    let mut devices_failed = Vec::new();
    thread::scope(|s| {
        let workers: Vec<_> = (0..connections)
            .map(|worker| {
                let cfg = cfg.clone();
                let seq = Arc::clone(&seq);
                s.spawn(move || {
                    if cfg.pipeline_depth > 1 {
                        worker_loop_pipelined(&cfg, worker as u64, stop_at, &seq)
                    } else {
                        worker_loop(&cfg, worker as u64, stop_at, &seq)
                    }
                })
            })
            .collect();

        // Failure injection rides on the admin connection while workers run.
        if !cfg.fail_devices.is_empty() {
            thread::sleep(Duration::from_millis(cfg.fail_after_ms));
            for &device in &cfg.fail_devices {
                match admin.fail_device(device) {
                    Ok(()) => devices_failed.push(device),
                    Err(_) => break,
                }
                thread::sleep(Duration::from_millis(cfg.fail_spacing_ms));
            }
        }

        for w in workers {
            tallies.push(w.join().expect("load worker panicked"));
        }
    });
    let elapsed_ms = (start.elapsed().as_millis() as u64).max(1);

    let mut report = LoadReport {
        elapsed_ms,
        ops: 0,
        puts: 0,
        gets: 0,
        deletes: 0,
        busy_retries: 0,
        errors: 0,
        unrecoverable: 0,
        payload_mismatches: 0,
        ops_per_sec: 0.0,
        latency_us: Histogram::new(),
        devices_failed,
        degraded_reads: 0,
        replans: 0,
        repair_bytes: 0,
        server_metrics_json: String::new(),
        sampled_trace_ids: Vec::new(),
        slowest: Vec::new(),
    };
    for t in &tallies {
        report.ops += t.ops;
        report.puts += t.puts;
        report.gets += t.gets;
        report.deletes += t.deletes;
        report.busy_retries += t.busy_retries;
        report.errors += t.errors;
        report.unrecoverable += t.unrecoverable;
        report.payload_mismatches += t.payload_mismatches;
        report.latency_us.merge(&t.latency_us);
        report.sampled_trace_ids.extend(&t.sampled_trace_ids);
        for &e in &t.slowest {
            note_exemplar(&mut report.slowest, e);
        }
    }
    report.sampled_trace_ids.sort_unstable();
    report.sampled_trace_ids.dedup();
    report.slowest.sort_unstable_by_key(|e| std::cmp::Reverse(e.latency_us));
    report.ops_per_sec = report.ops as f64 * 1000.0 / elapsed_ms as f64;

    report.server_metrics_json = admin.metrics()?;
    if let Ok(doc) = tornado_obs::json::parse(&report.server_metrics_json) {
        let counter = |key: &str| {
            doc.get("counters").and_then(|c| c.get(key)).and_then(Json::as_u64).unwrap_or(0)
        };
        report.degraded_reads = counter("server.get.degraded");
        report.replans = counter("server.get.replans");
        report.repair_bytes = counter("server.get.repair_bytes");
    }
    Ok(report)
}

fn worker_loop(cfg: &LoadConfig, worker: u64, stop_at: Instant, seq: &AtomicU64) -> WorkerTally {
    let mut tally = WorkerTally::default();
    let mut client = match Client::connect(&cfg.addr) {
        Ok(c) => c,
        Err(_) => {
            tally.errors += 1;
            return tally;
        }
    };
    client.set_deadline_ms(cfg.deadline_ms);
    // Golden-ratio stride keeps per-worker streams uncorrelated while the
    // whole run stays a pure function of cfg.seed.
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(worker + 1));
    let mut table = ZipfTable::new(cfg.zipf_theta);

    for _ in 0..cfg.prefill {
        let tid = next_trace_id(cfg, &mut rng, &mut client);
        do_put(cfg, &mut client, &mut rng, &mut table, seq, &mut tally, tid, None);
    }

    // Open-loop pacing: one worker owns a 1/connections slice of the
    // aggregate rate, and each operation's latency clock starts at its
    // *scheduled* arrival, not when the (possibly backlogged) worker got
    // around to sending it.
    let interval = per_worker_interval(cfg);
    let open_start = Instant::now();
    let mut issued: u64 = 0;

    let measured_start = tally.ops;
    while Instant::now() < stop_at
        && (cfg.op_limit == 0 || tally.ops - measured_start < cfg.op_limit)
    {
        let sched = match interval {
            Some(iv) => {
                let due = open_start + Duration::from_secs_f64(issued as f64 * iv.as_secs_f64());
                if due >= stop_at {
                    break;
                }
                let now = Instant::now();
                if due > now {
                    thread::sleep(due - now);
                }
                Some(due)
            }
            None => None,
        };
        issued += 1;
        // The trace id is drawn from the same seeded stream as the op
        // choice, so the id sequence — and the sampled subset — is an
        // exact function of (seed, worker index).
        let tid = next_trace_id(cfg, &mut rng, &mut client);
        let total = cfg.mix.put + cfg.mix.get + cfg.mix.delete;
        let pick = if total == 0 { 0 } else { rng.gen_range(0..total) };
        if pick < cfg.mix.put || table.len() == 0 {
            do_put(cfg, &mut client, &mut rng, &mut table, seq, &mut tally, tid, sched);
        } else if pick < cfg.mix.put + cfg.mix.get {
            do_get(cfg, &mut client, &mut rng, &mut table, &mut tally, tid, sched);
        } else {
            do_delete(cfg, &mut client, &mut rng, &mut table, &mut tally, tid, sched);
        }
    }
    tally
}

/// The per-worker arrival interval for open-loop runs (`None` = closed
/// loop).
fn per_worker_interval(cfg: &LoadConfig) -> Option<Duration> {
    if cfg.rate_ops_per_sec > 0.0 {
        Some(Duration::from_secs_f64(
            cfg.connections.max(1) as f64 / cfg.rate_ops_per_sec,
        ))
    } else {
        None
    }
}

/// Draws the next logical operation's trace id and stamps it on the
/// client (retries inside the op keep the same id, so their spans land
/// in one trace). `None` — and an untraced wire header — when trace
/// propagation is off.
fn next_trace_id(cfg: &LoadConfig, rng: &mut SmallRng, client: &mut Client) -> Option<u64> {
    if cfg.trace_sample == 0 {
        return None;
    }
    let tid = rng.next_u64();
    client.set_trace_id(Some(tid));
    Some(tid)
}

#[allow(clippy::too_many_arguments)]
fn do_put(
    cfg: &LoadConfig,
    client: &mut Client,
    rng: &mut SmallRng,
    table: &mut ZipfTable,
    seq: &AtomicU64,
    tally: &mut WorkerTally,
    trace_id: Option<u64>,
    sched: Option<Instant>,
) {
    let len = if cfg.payload_max > cfg.payload_min {
        rng.gen_range(cfg.payload_min..=cfg.payload_max)
    } else {
        cfg.payload_min.max(1)
    };
    let obj_seed = rng.next_u64();
    let payload = payload_for(obj_seed, len.max(1));
    // The atomic sequence makes names globally unique across workers;
    // payload bytes stay a pure function of obj_seed.
    let name = format!("load-{}", seq.fetch_add(1, Ordering::Relaxed));
    loop {
        // Open loop: the clock starts at the scheduled arrival and keeps
        // running across busy retries — backlog is the user's latency.
        let t = sched.unwrap_or_else(Instant::now);
        match client.put(&name, &payload) {
            Ok(id) => {
                tally.complete(cfg, trace_id, "put", t.elapsed().as_micros() as u64);
                table.push(ObjEntry { id, seed: obj_seed, len: len.max(1) });
                return;
            }
            Err(ClientError::Busy) => {
                tally.busy_retries += 1;
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                tally.errors += 1;
                return;
            }
        }
    }
}

fn do_get(
    cfg: &LoadConfig,
    client: &mut Client,
    rng: &mut SmallRng,
    table: &mut ZipfTable,
    tally: &mut WorkerTally,
    trace_id: Option<u64>,
    sched: Option<Instant>,
) {
    let i = table.sample(rng);
    let (id, seed, len) = {
        let e = &table.entries[i];
        (e.id, e.seed, e.len)
    };
    loop {
        let t = sched.unwrap_or_else(Instant::now);
        match client.get(id) {
            Ok(payload) => {
                tally.complete(cfg, trace_id, "get", t.elapsed().as_micros() as u64);
                if payload != payload_for(seed, len) {
                    tally.payload_mismatches += 1;
                }
                return;
            }
            Err(ClientError::Busy) => {
                tally.busy_retries += 1;
                thread::sleep(Duration::from_millis(1));
            }
            Err(ClientError::Unrecoverable { .. }) => {
                tally.unrecoverable += 1;
                return;
            }
            Err(_) => {
                tally.errors += 1;
                return;
            }
        }
    }
}

fn do_delete(
    cfg: &LoadConfig,
    client: &mut Client,
    rng: &mut SmallRng,
    table: &mut ZipfTable,
    tally: &mut WorkerTally,
    trace_id: Option<u64>,
    sched: Option<Instant>,
) {
    let i = table.sample(rng);
    let e = table.remove(i);
    loop {
        let t = sched.unwrap_or_else(Instant::now);
        match client.delete(e.id) {
            Ok(()) => {
                tally.complete(cfg, trace_id, "delete", t.elapsed().as_micros() as u64);
                return;
            }
            Err(ClientError::Busy) => {
                tally.busy_retries += 1;
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                tally.errors += 1;
                return;
            }
        }
    }
}

/// What one in-flight pipelined request was, in enough detail to verify
/// its completion — or resubmit it verbatim after a BUSY.
enum PendingKind {
    /// `obj_seed`/`len` regenerate the payload on retry (and are what
    /// the table learns on PutOk), so no payload bytes are retained.
    Put { name: String, obj_seed: u64, len: usize },
    Get { obj_id: u64, obj_seed: u64, len: usize },
    Delete { obj_id: u64 },
}

/// One submitted-but-unanswered pipelined request.
struct PendingOp {
    kind: PendingKind,
    trace_id: Option<u64>,
    /// Latency origin: the scheduled arrival (open loop) or the submit
    /// instant (closed loop). Survives busy-resubmits unchanged.
    sched: Instant,
}

/// Mutable state of one pipelined worker, so submit/receive logic can be
/// factored into methods instead of functions with ten parameters.
struct PipelinedWorker<'a> {
    cfg: &'a LoadConfig,
    client: PipelinedClient,
    rng: SmallRng,
    table: ZipfTable,
    /// In-flight requests by correlation id.
    pending: HashMap<u32, PendingOp>,
    /// Objects with in-flight GETs, by object id — a DELETE of such an
    /// object is deferred (its out-of-order completion could otherwise
    /// race the reads and turn verified GETs into NotFounds).
    inflight_gets: HashMap<u64, u32>,
    tally: WorkerTally,
    seq: &'a AtomicU64,
}

impl PipelinedWorker<'_> {
    /// Draws the next op from the weighted mix. DELETE of an object with
    /// reads still in flight degrades to a GET of that object.
    fn pick_kind(&mut self) -> PendingKind {
        let total = self.cfg.mix.put + self.cfg.mix.get + self.cfg.mix.delete;
        let pick = if total == 0 { 0 } else { self.rng.gen_range(0..total) };
        if pick < self.cfg.mix.put || self.table.len() == 0 {
            let len = if self.cfg.payload_max > self.cfg.payload_min {
                self.rng.gen_range(self.cfg.payload_min..=self.cfg.payload_max)
            } else {
                self.cfg.payload_min.max(1)
            };
            let obj_seed = self.rng.next_u64();
            let name = format!("load-{}", self.seq.fetch_add(1, Ordering::Relaxed));
            return PendingKind::Put { name, obj_seed, len: len.max(1) };
        }
        let i = self.table.sample(&mut self.rng);
        if pick < self.cfg.mix.put + self.cfg.mix.get
            || self.inflight_gets.get(&self.table.entries[i].id).copied().unwrap_or(0) > 0
        {
            let e = &self.table.entries[i];
            PendingKind::Get { obj_id: e.id, obj_seed: e.seed, len: e.len }
        } else {
            // Removing at submit time keeps later picks off this object.
            let e = self.table.remove(i);
            PendingKind::Delete { obj_id: e.id }
        }
    }

    /// Submits `kind`, registering it in the pending window. Returns
    /// `false` when the connection is unusable.
    fn submit_kind(&mut self, kind: PendingKind, trace_id: Option<u64>, sched: Instant) -> bool {
        let op = match &kind {
            PendingKind::Put { name, obj_seed, len } => {
                Op::Put { name: name.clone(), payload: payload_for(*obj_seed, *len) }
            }
            PendingKind::Get { obj_id, .. } => Op::Get { id: *obj_id },
            PendingKind::Delete { obj_id } => Op::Delete { id: *obj_id },
        };
        self.client.set_trace_id(trace_id);
        match self.client.submit(op) {
            Ok(corr) => {
                if let PendingKind::Get { obj_id, .. } = &kind {
                    *self.inflight_gets.entry(*obj_id).or_insert(0) += 1;
                }
                self.pending.insert(corr, PendingOp { kind, trace_id, sched });
                true
            }
            Err(_) => {
                self.tally.errors += 1;
                false
            }
        }
    }

    /// Blocks for one completion and settles it against the pending
    /// window. Returns `false` when the connection is unusable.
    fn recv_one(&mut self) -> bool {
        let (corr, resp) = match self.client.recv() {
            Ok(pair) => pair,
            Err(_) => {
                self.tally.errors += 1;
                return false;
            }
        };
        let Some(p) = self.pending.remove(&corr) else {
            // A correlation id we never issued — protocol breakage.
            self.tally.errors += 1;
            return true;
        };
        if let PendingKind::Get { obj_id, .. } = &p.kind {
            if let Some(n) = self.inflight_gets.get_mut(obj_id) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    self.inflight_gets.remove(obj_id);
                }
            }
        }
        let latency_us = p.sched.elapsed().as_micros() as u64;
        match (resp, p.kind) {
            (Response::PutOk { id }, PendingKind::Put { obj_seed, len, .. }) => {
                self.tally.complete(self.cfg, p.trace_id, "put", latency_us);
                self.table.push(ObjEntry { id, seed: obj_seed, len });
            }
            (Response::GetOk { payload }, PendingKind::Get { obj_seed, len, .. }) => {
                self.tally.complete(self.cfg, p.trace_id, "get", latency_us);
                if payload != payload_for(obj_seed, len) {
                    self.tally.payload_mismatches += 1;
                }
            }
            (Response::Ok, PendingKind::Delete { .. }) => {
                self.tally.complete(self.cfg, p.trace_id, "delete", latency_us);
            }
            (Response::Busy, kind) => {
                // Same backoff as the serial path, then the identical op
                // goes back out under a fresh correlation id with its
                // original latency clock still running.
                self.tally.busy_retries += 1;
                thread::sleep(Duration::from_millis(1));
                return self.submit_kind(kind, p.trace_id, p.sched);
            }
            (Response::Unrecoverable { .. }, PendingKind::Get { .. }) => {
                self.tally.unrecoverable += 1;
            }
            _ => {
                self.tally.errors += 1;
            }
        }
        true
    }
}

/// The pipelined worker body: up to `pipeline_depth` requests in flight
/// on one connection, completions settled in whatever order the shards
/// finish them.
fn worker_loop_pipelined(
    cfg: &LoadConfig,
    worker: u64,
    stop_at: Instant,
    seq: &AtomicU64,
) -> WorkerTally {
    let mut client = match PipelinedClient::connect(&cfg.addr) {
        Ok(c) => c,
        Err(_) => {
            let mut tally = WorkerTally::default();
            tally.errors += 1;
            return tally;
        }
    };
    client.set_deadline_ms(cfg.deadline_ms);
    let rng =
        SmallRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(worker + 1));
    let mut w = PipelinedWorker {
        cfg,
        client,
        rng,
        table: ZipfTable::new(cfg.zipf_theta),
        pending: HashMap::new(),
        inflight_gets: HashMap::new(),
        tally: WorkerTally::default(),
        seq,
    };

    // Prefill serially (depth 1) so the zipf table is warm before the
    // window opens.
    for _ in 0..cfg.prefill {
        let tid = (cfg.trace_sample > 0).then(|| w.rng.next_u64());
        let len = if cfg.payload_max > cfg.payload_min {
            w.rng.gen_range(cfg.payload_min..=cfg.payload_max)
        } else {
            cfg.payload_min.max(1)
        };
        let obj_seed = w.rng.next_u64();
        let name = format!("load-{}", seq.fetch_add(1, Ordering::Relaxed));
        let kind = PendingKind::Put { name, obj_seed, len: len.max(1) };
        if !w.submit_kind(kind, tid, Instant::now()) {
            return w.tally;
        }
        while !w.pending.is_empty() {
            if !w.recv_one() {
                return w.tally;
            }
        }
    }

    let depth = cfg.pipeline_depth.max(1);
    let interval = per_worker_interval(cfg);
    let open_start = Instant::now();
    let mut issued: u64 = 0;
    loop {
        let now = Instant::now();
        if now >= stop_at {
            break;
        }
        let limit_hit = cfg.op_limit > 0 && issued >= cfg.op_limit;
        if !limit_hit && w.pending.len() < depth {
            let sched = match interval {
                Some(iv) => {
                    let due =
                        open_start + Duration::from_secs_f64(issued as f64 * iv.as_secs_f64());
                    if due >= stop_at {
                        break;
                    }
                    if due > now {
                        // Sleep in short slices so the stop clock stays
                        // responsive at low rates; completions buffer in
                        // the socket meanwhile and settle instantly.
                        thread::sleep((due - now).min(Duration::from_millis(5)));
                        continue;
                    }
                    due
                }
                None => now,
            };
            issued += 1;
            let tid = (cfg.trace_sample > 0).then(|| w.rng.next_u64());
            let kind = w.pick_kind();
            if !w.submit_kind(kind, tid, sched) {
                return w.tally;
            }
            continue;
        }
        if w.pending.is_empty() {
            if limit_hit {
                break;
            }
            continue;
        }
        if !w.recv_one() {
            return w.tally;
        }
    }
    // Settle whatever is still in flight — those were real arrivals.
    while !w.pending.is_empty() {
        if !w.recv_one() {
            break;
        }
    }
    w.tally
}

/// Multiplexed open-loop driver: thousands of connections, one thread.
///
/// The connection-count scaling bench needs 10,000+ concurrent
/// connections against a server sharing the same machine. Driving those
/// with one thread each would measure the *driver's* scheduler, not the
/// server; instead [`run_mux`] multiplexes every connection over the
/// same readiness reactor the server itself uses — nonblocking sockets,
/// per-connection frame reassembly, correlation-id matching — and paces
/// arrivals on a fixed open-loop schedule. Latency is measured from each
/// operation's *scheduled* arrival, so a server that falls behind at
/// high connection counts shows the backlog in p99 rather than silently
/// slowing the offered load.
#[cfg(unix)]
pub mod mux {
    use super::payload_for;
    use crate::client::Client;
    use crate::error::ClientError;
    use crate::protocol::{append_frame, FrameBuffer, Op, Request, Response};
    use crate::reactor::{Event, Interest, Poller};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::io::{ErrorKind, Read, Write};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};
    use tornado_obs::Histogram;

    /// Tunables for one [`run_mux`] run.
    #[derive(Clone, Debug)]
    pub struct MuxConfig {
        /// Server address.
        pub addr: String,
        /// Concurrent connections, all multiplexed on one driver thread.
        pub connections: usize,
        /// Measured window, milliseconds (arrivals stop at the window
        /// edge; stragglers get a bounded drain).
        pub duration_ms: u64,
        /// Aggregate open-loop arrival rate, operations per second,
        /// spread round-robin across all connections.
        pub rate_ops_per_sec: f64,
        /// Seed for object choice and verification sampling.
        pub seed: u64,
        /// Objects PUT up front (serially) that the GET stream reads.
        pub prefill: usize,
        /// Payload length of each prefilled object, bytes.
        pub payload_len: usize,
        /// Deadline stamped on every request (0 = none).
        pub deadline_ms: u32,
        /// In-flight cap per connection; arrivals that find every
        /// connection at its cap are shed (counted, not sent).
        pub max_inflight_per_conn: usize,
        /// Verify payload bytes on 1-in-N GETs (0 = never) — full
        /// verification at 10k connections would bottleneck the driver.
        pub verify_sample: u64,
    }

    impl Default for MuxConfig {
        fn default() -> Self {
            Self {
                addr: "127.0.0.1:7401".into(),
                connections: 256,
                duration_ms: 2_000,
                rate_ops_per_sec: 1_000.0,
                seed: 1,
                prefill: 16,
                payload_len: 4 << 10,
                deadline_ms: 0,
                max_inflight_per_conn: 32,
                verify_sample: 64,
            }
        }
    }

    /// Aggregated result of one [`run_mux`] run.
    #[derive(Debug)]
    pub struct MuxReport {
        /// Connections requested.
        pub connections: usize,
        /// Connections actually established.
        pub connected: usize,
        /// Wall-clock from first arrival to last settled completion, ms.
        pub elapsed_ms: u64,
        /// Successfully completed operations.
        pub ops: u64,
        /// BUSY answers (open loop does not retry — shed at the server).
        pub busy: u64,
        /// Arrivals dropped because every connection was at its
        /// in-flight cap (shed at the driver).
        pub shed: u64,
        /// Transport or server errors (includes completions lost to a
        /// dead connection).
        pub errors: u64,
        /// Verified GETs whose bytes did not match — must stay zero.
        pub payload_mismatches: u64,
        /// Requests submitted onto the wire.
        pub submitted: u64,
        /// Still unanswered when the drain deadline expired.
        pub unanswered: u64,
        /// The configured arrival rate, ops/s.
        pub target_rate: f64,
        /// Completed ops per second over the elapsed window.
        pub achieved_rate: f64,
        /// Latency from scheduled arrival to settled completion, µs.
        pub latency_us: Histogram,
    }

    impl MuxReport {
        /// Median latency in microseconds.
        pub fn p50_us(&self) -> u64 {
            self.latency_us.percentile(0.5).unwrap_or(0)
        }

        /// 99th-percentile latency in microseconds.
        pub fn p99_us(&self) -> u64 {
            self.latency_us.percentile(0.99).unwrap_or(0)
        }
    }

    /// One request on the wire, awaiting its completion.
    struct MuxPending {
        corr: u32,
        /// Scheduled arrival — the latency origin.
        sched: Instant,
        obj_seed: u64,
        len: usize,
        verify: bool,
    }

    /// One multiplexed connection's state.
    struct MuxConn {
        stream: TcpStream,
        inbuf: FrameBuffer,
        out: Vec<u8>,
        out_pos: usize,
        pending: Vec<MuxPending>,
        next_corr: u32,
        write_interest: bool,
        dead: bool,
    }

    /// How long past the arrival window stragglers may settle.
    const DRAIN_GRACE: Duration = Duration::from_secs(5);

    /// Runs the multiplexed open-loop GET stream and returns the report.
    ///
    /// Fails fast if the server is unreachable or prefill fails; errors
    /// on individual connections during the run are counted, not fatal.
    pub fn run_mux(cfg: &MuxConfig) -> Result<MuxReport, ClientError> {
        // Prefill over an ordinary serial connection.
        let mut admin = Client::connect(&cfg.addr)?;
        admin.ping()?;
        let mut objects = Vec::with_capacity(cfg.prefill.max(1));
        for i in 0..cfg.prefill.max(1) {
            let obj_seed = cfg.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let len = cfg.payload_len.max(1);
            let payload = payload_for(obj_seed, len);
            let id = admin.put(&format!("mux-{}-{i}", cfg.seed), &payload)?;
            objects.push((id, obj_seed, len));
        }

        // File descriptors: connections + listener-side headroom.
        let _ = crate::reactor::raise_nofile_limit(cfg.connections as u64 + 128);
        let poller = Poller::new().map_err(ClientError::Io)?;
        let mut conns: Vec<MuxConn> = Vec::with_capacity(cfg.connections);
        let mut connect_errors = 0u64;
        for i in 0..cfg.connections.max(1) {
            // Blocking connect gives natural backpressure against the
            // server's accept queue; nonblocking takes over after.
            match TcpStream::connect(&cfg.addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    s.set_nonblocking(true).map_err(ClientError::Io)?;
                    poller.register(&s, conns.len() as u64, Interest::READ).map_err(ClientError::Io)?;
                    conns.push(MuxConn {
                        stream: s,
                        inbuf: FrameBuffer::new(),
                        out: Vec::new(),
                        out_pos: 0,
                        pending: Vec::new(),
                        next_corr: (i as u32) << 16,
                        write_interest: false,
                        dead: false,
                    });
                }
                Err(_) => connect_errors += 1,
            }
        }
        if conns.is_empty() {
            return Err(ClientError::Unexpected("no mux connections established".into()));
        }

        let mut report = MuxReport {
            connections: cfg.connections,
            connected: conns.len(),
            elapsed_ms: 0,
            ops: 0,
            busy: 0,
            shed: 0,
            errors: connect_errors,
            payload_mismatches: 0,
            submitted: 0,
            unanswered: 0,
            target_rate: cfg.rate_ops_per_sec,
            achieved_rate: 0.0,
            latency_us: Histogram::new(),
        };

        let rate = cfg.rate_ops_per_sec.max(1.0);
        let interval_s = 1.0 / rate;
        let start = Instant::now();
        let stop_at = start + Duration::from_millis(cfg.duration_ms);
        let drain_by = stop_at + DRAIN_GRACE;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut arrivals = 0u64;
        let mut rr = 0usize;
        let mut events: Vec<Event> = Vec::new();
        let mut scratch = vec![0u8; 16 << 10];

        loop {
            let now = Instant::now();

            // Emit every arrival that is due, round-robin over
            // connections with window capacity.
            if now < stop_at {
                loop {
                    let due = start + Duration::from_secs_f64(arrivals as f64 * interval_s);
                    if due > now {
                        break;
                    }
                    arrivals += 1;
                    let n = conns.len();
                    let slot = (0..n).map(|k| (rr + k) % n).find(|&c| {
                        !conns[c].dead && conns[c].pending.len() < cfg.max_inflight_per_conn.max(1)
                    });
                    rr = rr.wrapping_add(1);
                    match slot {
                        Some(c) => {
                            let (id, obj_seed, len) = objects[rng.gen_range(0..objects.len())];
                            let verify =
                                cfg.verify_sample > 0 && rng.gen_range(0..cfg.verify_sample) == 0;
                            submit_get(&mut conns[c], cfg, id, obj_seed, len, verify, due);
                            report.submitted += 1;
                            flush_conn(&poller, &mut conns[c], c as u64, &mut report);
                        }
                        None => report.shed += 1,
                    }
                }
            }

            let outstanding: usize = conns.iter().map(|c| c.pending.len()).sum();
            if (now >= stop_at && outstanding == 0) || now >= drain_by {
                report.unanswered = outstanding as u64;
                break;
            }

            // Sleep until the next arrival is due (capped so the stop
            // and drain clocks stay responsive).
            let next_due = start + Duration::from_secs_f64(arrivals as f64 * interval_s);
            let timeout = if now < stop_at {
                next_due.saturating_duration_since(now).min(Duration::from_millis(10))
            } else {
                Duration::from_millis(10)
            };
            poller.wait(&mut events, Some(timeout)).map_err(ClientError::Io)?;
            for ev in events.drain(..) {
                let c = ev.token as usize;
                if c >= conns.len() || conns[c].dead {
                    continue;
                }
                if ev.readable {
                    read_conn(&poller, &mut conns[c], cfg, &mut scratch, &mut report);
                }
                if ev.writable && !conns[c].dead {
                    flush_conn(&poller, &mut conns[c], c as u64, &mut report);
                }
            }
        }

        let elapsed_ms = (start.elapsed().as_millis() as u64).max(1);
        report.elapsed_ms = elapsed_ms;
        report.achieved_rate = report.ops as f64 * 1000.0 / elapsed_ms as f64;
        Ok(report)
    }

    /// Frames one correlated GET into the connection's output buffer.
    fn submit_get(
        conn: &mut MuxConn,
        cfg: &MuxConfig,
        id: u64,
        obj_seed: u64,
        len: usize,
        verify: bool,
        sched: Instant,
    ) {
        let corr = conn.next_corr;
        conn.next_corr = conn.next_corr.wrapping_add(1);
        let req = Request {
            deadline_ms: cfg.deadline_ms,
            corr_id: Some(corr),
            trace_id: None,
            op: Op::Get { id },
        };
        append_frame(&mut conn.out, &req.encode());
        conn.pending.push(MuxPending { corr, sched, obj_seed, len, verify });
    }

    /// Writes as much buffered output as the socket accepts, tracking
    /// write interest across WouldBlock.
    fn flush_conn(poller: &Poller, conn: &mut MuxConn, token: u64, report: &mut MuxReport) {
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    kill_conn(poller, conn, report);
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if !conn.write_interest {
                        conn.write_interest = true;
                        let _ = poller.reregister(&conn.stream, token, Interest::READ_WRITE);
                    }
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    kill_conn(poller, conn, report);
                    return;
                }
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        if conn.write_interest {
            conn.write_interest = false;
            let _ = poller.reregister(&conn.stream, token, Interest::READ);
        }
    }

    /// Drains readable bytes and settles every completed frame.
    fn read_conn(
        poller: &Poller,
        conn: &mut MuxConn,
        cfg: &MuxConfig,
        scratch: &mut [u8],
        report: &mut MuxReport,
    ) {
        loop {
            match conn.stream.read(scratch) {
                Ok(0) => {
                    kill_conn(poller, conn, report);
                    return;
                }
                Ok(n) => conn.inbuf.extend(&scratch[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    kill_conn(poller, conn, report);
                    return;
                }
            }
        }
        loop {
            match conn.inbuf.next_frame() {
                Ok(Some(body)) => settle(conn, cfg, &body, report),
                Ok(None) => break,
                Err(_) => {
                    kill_conn(poller, conn, report);
                    return;
                }
            }
        }
    }

    /// Matches one response frame to its pending request and records it.
    fn settle(conn: &mut MuxConn, _cfg: &MuxConfig, body: &[u8], report: &mut MuxReport) {
        let (corr, resp) = match Response::decode_corr(body) {
            Ok(pair) => pair,
            Err(_) => {
                report.errors += 1;
                return;
            }
        };
        let Some(corr) = corr else {
            report.errors += 1;
            return;
        };
        let Some(i) = conn.pending.iter().position(|p| p.corr == corr) else {
            report.errors += 1;
            return;
        };
        let p = conn.pending.swap_remove(i);
        let latency_us = p.sched.elapsed().as_micros() as u64;
        match resp {
            Response::GetOk { payload } => {
                report.ops += 1;
                report.latency_us.record(latency_us);
                if p.verify && payload != payload_for(p.obj_seed, p.len) {
                    report.payload_mismatches += 1;
                }
            }
            Response::Busy => report.busy += 1,
            _ => report.errors += 1,
        }
    }

    /// Tears a connection down; its in-flight requests become errors.
    fn kill_conn(poller: &Poller, conn: &mut MuxConn, report: &mut MuxReport) {
        if conn.dead {
            return;
        }
        conn.dead = true;
        let _ = poller.deregister(&conn.stream);
        report.errors += conn.pending.len() as u64;
        conn.pending.clear();
        conn.out.clear();
        conn.out_pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_are_deterministic_per_seed() {
        assert_eq!(payload_for(42, 1000), payload_for(42, 1000));
        assert_ne!(payload_for(42, 1000), payload_for(43, 1000));
        assert_eq!(payload_for(7, 13).len(), 13);
    }

    #[test]
    fn zipf_prefers_early_ranks() {
        let mut t = ZipfTable::new(0.99);
        for i in 0..50 {
            t.push(ObjEntry { id: i, seed: i, len: 1 });
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let mut hits = [0u32; 50];
        for _ in 0..20_000 {
            hits[t.sample(&mut rng)] += 1;
        }
        assert!(hits[0] > hits[10], "rank 0 hotter than rank 10: {hits:?}");
        assert!(hits[0] > hits[49] * 3, "strongly skewed head");
        assert!(hits.iter().all(|&h| h > 0), "every rank still reachable");
    }

    #[test]
    fn zipf_remove_keeps_sampling_valid() {
        let mut t = ZipfTable::new(1.0);
        for i in 0..10 {
            t.push(ObjEntry { id: i, seed: i, len: 1 });
        }
        let removed = t.remove(3);
        assert_eq!(removed.id, 3);
        assert_eq!(t.len(), 9);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = t.sample(&mut rng);
            assert!(i < 9);
            assert_ne!(t.entries[i].id, 3);
        }
    }

    #[test]
    fn op_mix_default_is_read_heavy() {
        let m = OpMix::default();
        assert!(m.get > m.put + m.delete);
    }

    #[test]
    fn exemplar_keeper_retains_the_slowest() {
        let mut slowest = Vec::new();
        for (i, lat) in [50u64, 900, 10, 700, 300, 5, 800, 600].iter().enumerate() {
            note_exemplar(
                &mut slowest,
                TraceExemplar { latency_us: *lat, trace_id: i as u64, op: "get" },
            );
        }
        assert_eq!(slowest.len(), EXEMPLAR_KEEP);
        let mut kept: Vec<u64> = slowest.iter().map(|e| e.latency_us).collect();
        kept.sort_unstable();
        assert_eq!(kept, vec![300, 600, 700, 800, 900]);
    }

    /// A protocol-speaking stub server: every connection gets a thread
    /// (test scale only) that answers each request immediately, echoing
    /// correlation ids. PUTs get `PutOk`, GETs a fixed fake payload.
    fn spawn_stub_server() -> std::net::SocketAddr {
        use crate::protocol::{read_frame, write_frame, FrameRead, Request};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind stub");
        let addr = listener.local_addr().expect("stub addr");
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut s) = stream else { break };
                thread::spawn(move || loop {
                    match read_frame(&mut s) {
                        Ok(FrameRead::Frame(body)) => {
                            let Ok(req) = Request::decode(&body) else { return };
                            let resp = match req.op {
                                Op::Put { .. } => Response::PutOk { id: 7 },
                                Op::Get { .. } => Response::GetOk { payload: vec![1, 2, 3] },
                                Op::Metrics => Response::MetricsOk { json: "{}".into() },
                                _ => Response::Ok,
                            };
                            if write_frame(&mut s, &resp.encode_corr(req.corr_id)).is_err() {
                                return;
                            }
                        }
                        _ => return,
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn per_worker_interval_splits_rate_across_connections() {
        let cfg = LoadConfig { connections: 4, rate_ops_per_sec: 200.0, ..LoadConfig::default() };
        let iv = per_worker_interval(&cfg).expect("open loop");
        assert!((iv.as_secs_f64() - 0.02).abs() < 1e-9, "4 workers share 200/s: {iv:?}");
        assert_eq!(per_worker_interval(&LoadConfig::default()), None);
    }

    #[test]
    fn pipelined_worker_completes_its_op_limit_exactly() {
        let addr = spawn_stub_server();
        let cfg = LoadConfig {
            addr: addr.to_string(),
            connections: 1,
            duration_ms: 10_000,
            pipeline_depth: 8,
            // PUT-only mix: the stub fakes GET payloads, which would
            // (correctly) trip byte-for-byte verification.
            mix: OpMix { put: 100, get: 0, delete: 0 },
            payload_min: 32,
            payload_max: 64,
            prefill: 8,
            op_limit: 40,
            trace_sample: 0,
            ..LoadConfig::default()
        };
        let report = run_load(&cfg).expect("load run");
        assert_eq!(report.ops, 48, "8 prefill + 40 measured: {report:?}");
        assert_eq!(report.puts, 48);
        assert_eq!(report.errors, 0);
        assert_eq!(report.payload_mismatches, 0);
    }

    #[cfg(unix)]
    #[test]
    fn mux_driver_sustains_open_loop_over_many_connections() {
        let addr = spawn_stub_server();
        let cfg = mux::MuxConfig {
            addr: addr.to_string(),
            connections: 32,
            duration_ms: 400,
            rate_ops_per_sec: 500.0,
            prefill: 4,
            payload_len: 64,
            verify_sample: 0, // stub payloads are fake by design
            ..mux::MuxConfig::default()
        };
        let report = mux::run_mux(&cfg).expect("mux run");
        assert_eq!(report.connected, 32);
        assert_eq!(report.errors, 0, "{report:?}");
        assert_eq!(report.unanswered, 0, "drain settles everything");
        assert_eq!(report.shed, 0, "32x32 window absorbs 500/s");
        assert!(report.ops >= 100, "~200 arrivals in 400ms: {}", report.ops);
        assert!(report.p99_us() > 0);
        assert!(report.achieved_rate > 0.0);
    }

    #[test]
    fn worker_tally_keeps_only_server_sampled_trace_ids() {
        let cfg = LoadConfig { trace_sample: 4, ..LoadConfig::default() };
        let mut tally = WorkerTally::default();
        let mut expected = Vec::new();
        for id in 0..400u64 {
            tally.complete(&cfg, Some(id), "get", id);
            if tornado_obs::trace::sampled(id, cfg.trace_sample) {
                expected.push(id);
            }
        }
        assert_eq!(tally.sampled_trace_ids, expected);
        assert!(!expected.is_empty(), "1-in-4 sampling over 400 ids keeps some");
        assert!(tally
            .slowest
            .iter()
            .all(|e| tornado_obs::trace::sampled(e.trace_id, cfg.trace_sample)));
    }
}
